//! Distributed PDTL: run the full master/worker protocol of the paper's
//! Figure 1 on a simulated 4-node × 4-core cluster, and print the
//! per-node breakdown plus the network-bound check of Theorem IV.3.
//!
//! ```text
//! cargo run --release --example distributed_cluster
//! ```

use pdtl::cluster::{ClusterConfig, ClusterRunner, NetModel};
use pdtl::core::{theory, MgtOptions};
use pdtl::graph::datasets::Dataset;
use pdtl::graph::DiskGraph;
use pdtl::io::{CostModel, IoBackend, IoStats, MemoryBudget};

fn main() {
    let graph = Dataset::Rmat(11).build().expect("generate");
    let dir = std::env::temp_dir().join("pdtl-distributed");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let stats = IoStats::new();
    let input = DiskGraph::write(&graph, dir.join("rmat11"), &stats).expect("write");

    let (nodes, cores) = (4usize, 4usize);
    let runner = ClusterRunner::new(ClusterConfig {
        nodes,
        cores_per_node: cores,
        budget: MemoryBudget::edges(8 << 10),
        balance: Default::default(),
        listing: false,
        net: NetModel::default(),
        transport: Default::default(),
        // Real cluster nodes stream cold replicas from disk, where
        // overlapped I/O hides device waits. io_uring gets that overlap
        // from kernel submission queues (no prefetch threads) and
        // degrades to the thread-based prefetcher on kernels without
        // it; the choice ships to every worker in its wire
        // WorkerConfig (flags-byte discriminant 3).
        mgt: MgtOptions {
            backend: IoBackend::Uring,
            ..MgtOptions::default()
        },
        // Default failure handling: detect via heartbeats, retry with
        // backoff, reassign ranges off nodes that stay down. Export
        // PDTL_FAULT (e.g. `seed=42;kill=1`) to watch it recover.
        policy: Default::default(),
        heartbeat: std::time::Duration::from_millis(50),
        node_deadline: std::time::Duration::from_secs(5),
        fault: pdtl::cluster::FaultPlan::default_from_env(),
    })
    .expect("config");
    let report = runner.run(&input, &dir).expect("run");

    println!(
        "cluster: {nodes} nodes x {cores} cores, RMAT-11 ({} edges)",
        graph.num_edges()
    );
    println!("triangles : {}", report.triangles);
    println!(
        "wall      : {:?}  (calc: {:?})",
        report.wall,
        report.calc_wall()
    );
    println!("avg copy  : {:?}\n", report.avg_copy());

    let cost = CostModel::default();
    println!("per-node breakdown (modeled seconds on the paper's hardware):");
    for node in &report.nodes {
        println!(
            "  node {:<2} triangles {:>10}  cpu {:>8.3}s  io {:>7.3}s  copied {:>9} bytes",
            node.node,
            node.triangles(),
            cost.cpu_seconds(node.cpu_ops()),
            cost.io_seconds(node.io_bytes(), 0),
            node.copy_bytes,
        );
    }

    println!("\nnetwork traffic (Theorem IV.3: Θ(NP + N|E| + T)):");
    println!(
        "  config    : {:>12} bytes  (Θ(NP) term)",
        report.network.config
    );
    println!(
        "  graph     : {:>12} bytes  (Θ(N|E|) term)",
        report.network.graph
    );
    println!("  results   : {:>12} bytes", report.network.result);
    println!(
        "  control   : {:>12} bytes  (heartbeats/shutdown, outside the bound)",
        report.network.control
    );
    let bound = theory::pdtl_network_bound_bytes(nodes as u64, cores as u64, graph.num_edges(), 0);
    println!(
        "  theorem {} <= 4x bound {} ✓",
        report.network.theorem_bytes(),
        bound
    );
    assert!(report.network.theorem_bytes() <= 4 * bound);

    let _ = std::fs::remove_dir_all(&dir);
}
