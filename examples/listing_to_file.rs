//! Triangle *listing* to disk: stream every triangle of a graph into a
//! binary file through the counted `FileSink`, demonstrating the `T/B`
//! output term of Theorem IV.2, then read it back and verify.
//!
//! ```text
//! cargo run --release --example listing_to_file
//! ```

use pdtl::core::sink::{read_triangle_file, FileSink};
use pdtl::core::{mgt_count_range, orient_to_disk, EdgeRange};
use pdtl::graph::datasets::Dataset;
use pdtl::graph::DiskGraph;
use pdtl::io::{IoStats, MemoryBudget};

fn main() {
    let graph = Dataset::LiveJournal.build_scaled(0.1).expect("generate");
    let dir = std::env::temp_dir().join("pdtl-listing");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let stats = IoStats::new();
    let input = DiskGraph::write(&graph, dir.join("lj"), &stats).expect("write");

    // Orient, then run one MGT worker over the whole range with a
    // file-backed sink.
    let (oriented, _) = orient_to_disk(&input, dir.join("oriented"), 2, &stats).expect("orient");
    let out_path = dir.join("triangles.bin");
    let sink_stats = IoStats::new();
    let mut sink = FileSink::create(&out_path, sink_stats.clone()).expect("sink");
    let report = mgt_count_range(
        &oriented,
        EdgeRange {
            start: 0,
            end: oriented.m_star(),
        },
        MemoryBudget::edges(8 << 10),
        &mut sink,
        IoStats::new(),
    )
    .expect("mgt");
    let written = sink.finish().expect("finish");

    println!("triangles listed : {}", report.triangles);
    println!("file             : {}", out_path.display());
    println!(
        "output bytes     : {} ({} per triangle — the T/B term)",
        sink_stats.bytes_written(),
        sink_stats.bytes_written() / written.max(1)
    );
    assert_eq!(written, report.triangles);

    // Read back and spot-check.
    let listed = read_triangle_file(&out_path, stats).expect("read");
    assert_eq!(listed.len() as u64, report.triangles);
    for &(u, v, w) in listed.iter().take(5) {
        println!("  triangle ({u}, {v}, {w})");
        assert!(graph.has_edge(u, v) && graph.has_edge(v, w) && graph.has_edge(u, w));
    }
    println!("verified all {} triples exist in the graph", listed.len());

    let _ = std::fs::remove_dir_all(&dir);
}
