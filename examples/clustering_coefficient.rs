//! Social-network analysis: clustering coefficients and transitivity
//! from an exact PDTL triangle listing.
//!
//! This is the paper's motivating application (§I): clustering
//! coefficients find high-density nodes and flag fake accounts — sybil
//! detection works because genuine users' friends know each other
//! (high local clustering) while a sybil's victims don't.
//!
//! ```text
//! cargo run --release --example clustering_coefficient
//! ```

use pdtl::analytics::clustering;
use pdtl::core::{BalanceStrategy, LocalConfig, LocalRunner};
use pdtl::graph::datasets::Dataset;
use pdtl::graph::DiskGraph;
use pdtl::io::{IoStats, MemoryBudget};

fn main() {
    // An Orkut-like community graph (dense, high clustering).
    let graph = Dataset::Orkut.build_scaled(0.1).expect("generate");
    let dir = std::env::temp_dir().join("pdtl-clustering");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let stats = IoStats::new();
    let input = DiskGraph::write(&graph, dir.join("orkut"), &stats).expect("write");

    // Full triangle *listing* (not just counting) across 4 cores.
    let runner = LocalRunner::new(LocalConfig {
        cores: 4,
        budget: MemoryBudget::edges(16 << 10),
        balance: BalanceStrategy::InDegree,
        ..Default::default()
    })
    .expect("config");
    let (report, triangles) = runner.run_listing(&input, &dir).expect("run");
    println!("listed {} triangles in {:?}", triangles.len(), report.wall);

    let analysis = clustering::analyze(&graph, &triangles);
    println!("global clustering coefficient : {:.4}", analysis.global);
    println!(
        "transitivity ratio            : {:.4}",
        analysis.transitivity
    );

    // The most and least clustered well-connected vertices.
    let mut ranked: Vec<(u32, f64)> = (0..graph.num_vertices())
        .filter(|&v| graph.degree(v) >= 10)
        .map(|v| (v, analysis.local[v as usize]))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\nmost clustered vertices (degree >= 10):");
    for &(v, c) in ranked.iter().take(5) {
        println!("  v{v:<8} degree {:<5} C = {c:.4}", graph.degree(v));
    }
    println!("least clustered (possible sybils / spam hubs):");
    for &(v, c) in ranked.iter().rev().take(5) {
        println!("  v{v:<8} degree {:<5} C = {c:.4}", graph.degree(v));
    }

    let _ = std::fs::remove_dir_all(&dir);
}
