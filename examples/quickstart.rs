//! Quickstart: generate a graph, write it in PDTL binary format, count
//! its triangles with the full multicore pipeline, and check the result
//! against the paper's complexity bounds.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pdtl::core::{theory, BalanceStrategy, LocalConfig, LocalRunner, MgtOptions};
use pdtl::graph::datasets::Dataset;
use pdtl::graph::{DiskGraph, GraphStats};
use pdtl::io::{CostModel, IoBackend, IoStats, MemoryBudget};

fn main() {
    // 1. A scaled Twitter-like power-law graph (the paper's flagship
    //    dataset at 1/4000 of its size).
    let graph = Dataset::Twitter.build_scaled(0.1).expect("generate");
    println!("{}", GraphStats::header());
    println!("{}", GraphStats::compute("Twitter-like", &graph).row());

    // 2. Write it in the paper's binary .deg/.adj format.
    let dir = std::env::temp_dir().join("pdtl-quickstart");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let stats = IoStats::new();
    let input = DiskGraph::write(&graph, dir.join("twitter"), &stats).expect("write");
    println!(
        "\nwrote {} ({} vertices, {} adjacency entries)",
        input.base().display(),
        input.num_vertices(),
        input.adj_len()
    );

    // 3. Count with 4 cores and a deliberately tiny memory budget —
    //    external memory means the budget barely matters.
    //    A just-generated graph sits in the page cache, so the
    //    zero-copy mmap backend is the right pick (it degrades to
    //    blocking reads automatically where mapping is unsupported).
    //    On a cold NVMe device, IoBackend::Uring — async reads with
    //    queue depth through io_uring — would win instead; see
    //    docs/ARCHITECTURE.md for the full decision matrix.
    let runner = LocalRunner::new(LocalConfig {
        cores: 4,
        budget: MemoryBudget::edges(8 << 10),
        balance: BalanceStrategy::InDegree,
        mgt: MgtOptions {
            backend: IoBackend::Mmap,
            ..MgtOptions::default()
        },
    })
    .expect("config");
    let report = runner.run(&input, &dir).expect("run");

    println!("\ntriangles           : {}", report.triangles);
    println!(
        "orientation wall    : {:?}",
        report.orientation.breakdown.wall
    );
    println!("calculation wall    : {:?}", report.calc_wall());
    println!("chunk iterations    : {}", report.total_iterations());
    let io = report.total_worker_io();
    println!(
        "worker I/O          : {} bytes read over {} ops",
        io.bytes_read, io.read_ops
    );

    // 4. Verify measured work sits inside Theorem IV.2's bound.
    let m = graph.num_edges();
    let bound =
        theory::mgt_io_bound_bytes(m, (8 << 10) / 2, 0) + 4 * m * report.workers.len() as u64;
    println!(
        "I/O bound check     : measured {} <= O-bound {} ✓",
        io.bytes_read, bound
    );
    assert!(
        io.bytes_read <= 4 * bound,
        "I/O must stay within the theorem"
    );

    // 5. Modeled time under the paper's hardware model (500 MB/s SSD).
    let cost = CostModel::default();
    println!(
        "modeled calc (paper hardware): {:.3}s",
        report.modeled_calc(&cost)
    );

    let _ = std::fs::remove_dir_all(&dir);
}
