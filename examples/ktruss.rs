//! k-truss decomposition from a PDTL triangle listing — the dense-
//! subgraph application the paper cites (Wang & Cheng [22]).
//!
//! Plants two communities (cliques) inside a sparse background and
//! recovers them as the maximal k-truss.
//!
//! ```text
//! cargo run --release --example ktruss
//! ```

use pdtl::analytics::ktruss;
use pdtl::core::{BalanceStrategy, LocalConfig, LocalRunner};
use pdtl::graph::gen::classic::erdos_renyi;
use pdtl::graph::{DiskGraph, Graph};
use pdtl::io::{IoStats, MemoryBudget};

fn main() {
    // Sparse ER background + two planted 8-cliques.
    let n = 2000u32;
    let background = erdos_renyi(n, 6000, 42).expect("er");
    let mut edges: Vec<(u32, u32)> = background.edges().collect();
    for base in [100u32, 700] {
        for i in 0..8 {
            for j in (i + 1)..8 {
                edges.push((base + i, base + j));
            }
        }
    }
    let graph = Graph::from_edges(n, &edges).expect("graph");

    let dir = std::env::temp_dir().join("pdtl-ktruss");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let stats = IoStats::new();
    let input = DiskGraph::write(&graph, dir.join("planted"), &stats).expect("write");

    let runner = LocalRunner::new(LocalConfig {
        cores: 2,
        budget: MemoryBudget::edges(4 << 10),
        balance: BalanceStrategy::InDegree,
        ..Default::default()
    })
    .expect("config");
    let (_, triangles) = runner.run_listing(&input, &dir).expect("run");
    println!("listed {} triangles", triangles.len());

    let decomposition = ktruss::truss_decomposition(&graph, &triangles);
    let kmax = decomposition.max_k();
    println!("maximum trussness: {kmax} (planted 8-cliques are 8-trusses)");
    assert_eq!(kmax, 8, "planted cliques must surface as the max truss");

    let core = decomposition.truss_edges(kmax);
    let mut members: Vec<u32> = core.iter().flat_map(|&(u, v)| [u, v]).collect();
    members.sort_unstable();
    members.dedup();
    println!(
        "the {}-truss has {} edges over vertices {:?}",
        kmax,
        core.len(),
        members
    );
    assert_eq!(core.len(), 2 * 28, "two K8s worth of edges");

    let _ = std::fs::remove_dir_all(&dir);
}
