//! Measured-vs-proven: counted work must stay within a constant of the
//! paper's Theorem IV.2 / IV.3 bounds.

use pdtl::cluster::{ClusterConfig, ClusterRunner};
use pdtl::core::{count_triangles_with, orient_to_disk, theory, BalanceStrategy, LocalConfig};
use pdtl::graph::datasets::Dataset;
use pdtl::graph::DiskGraph;
use pdtl::io::{Codec, IoStats, MemoryBudget};

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("pdtl-bounds")
        .join(format!("{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn mgt_io_within_theorem_iv2() {
    let g = Dataset::Rmat(8).build().unwrap();
    let m = g.num_edges();
    for mem in [1usize << 20, 2048, 256] {
        let report = count_triangles_with(
            &g,
            LocalConfig {
                cores: 1,
                budget: MemoryBudget::edges(mem),
                balance: BalanceStrategy::InDegree,
                ..Default::default()
            },
        )
        .unwrap();
        let measured = report.total_worker_io().bytes_read;
        // chunk loader fills c*M with c = 1/2
        let bound = theory::mgt_io_bound_bytes(m, (mem / 2) as u64, 0);
        assert!(
            measured <= 4 * bound + 1024,
            "mem {mem}: measured {measured} > 4x bound {bound}"
        );
    }
}

#[test]
fn mgt_cpu_within_theorem_iv2() {
    let g = Dataset::Rmat(8).build().unwrap();
    let m = g.num_edges();
    let alpha = theory::arboricity_upper_bound(m);
    for mem in [1usize << 20, 1024] {
        let report = count_triangles_with(
            &g,
            LocalConfig {
                cores: 1,
                budget: MemoryBudget::edges(mem),
                balance: BalanceStrategy::InDegree,
                ..Default::default()
            },
        )
        .unwrap();
        let measured = report.total_cpu_ops();
        let bound = theory::mgt_cpu_bound_ops(m, (mem / 2) as u64, alpha);
        assert!(
            measured <= 8 * bound,
            "mem {mem}: measured {measured} > 8x bound {bound}"
        );
    }
}

#[test]
fn iterations_match_formula() {
    // R = ceil(S / cM) per worker (Section IV-B2).
    let g = Dataset::Rmat(8).build().unwrap();
    let mem = 2048usize;
    let report = count_triangles_with(
        &g,
        LocalConfig {
            cores: 3,
            budget: MemoryBudget::edges(mem),
            balance: BalanceStrategy::EqualEdges,
            ..Default::default()
        },
    )
    .unwrap();
    for w in &report.workers {
        let expected = MemoryBudget::edges(mem).iterations_for(w.range.len());
        assert_eq!(w.iterations, expected, "worker {}", w.worker);
    }
}

#[test]
fn cluster_network_within_theorem_iv3() {
    let g = Dataset::Rmat(7).build().unwrap();
    let stats = IoStats::new();
    let input = DiskGraph::write(&g, tmpdir("net").join("g"), &stats).unwrap();
    // What one replica weighs depends on the on-disk codec (raw:
    // exactly (|E| + 4n) * 4 for adjacency + degrees + rank map +
    // pruning bounds; delta-varint: the compressed adjacency plus the
    // .hdr/.vix sidecars), so orient the same input once under the
    // session default and measure the file set the runner will ship.
    // Every replica also carries the constant-size integrity manifest.
    let (oracle, _) = orient_to_disk(&input, tmpdir("net-oracle").join("o"), 2, &stats).unwrap();
    let replica_bytes: u64 = oracle
        .disk
        .file_set()
        .iter()
        .map(|p| std::fs::metadata(p).unwrap().len())
        .sum();
    let mft_bytes = std::fs::metadata(oracle.disk.mft_path()).unwrap().len();
    if oracle.disk.codec() == Codec::Raw {
        assert_eq!(
            replica_bytes,
            (g.num_edges() + 4 * g.num_vertices() as u64) * 4 + mft_bytes,
            "raw replica: |E| adjacency + n degrees + n rank map + 2n bounds + manifest"
        );
    } else {
        assert!(
            replica_bytes < (g.num_edges() + 4 * g.num_vertices() as u64) * 4 + mft_bytes,
            "a compressed replica must ship fewer bytes than raw"
        );
    }
    for (nodes, cores, listing) in [(2usize, 2usize, false), (4, 2, false), (2, 2, true)] {
        let report = ClusterRunner::new(ClusterConfig {
            nodes,
            cores_per_node: cores,
            budget: MemoryBudget::edges(512),
            listing,
            ..Default::default()
        })
        .unwrap()
        .run(&input, &tmpdir(&format!("net-{nodes}-{cores}-{listing}")))
        .unwrap();
        let t_term = if listing { report.triangles } else { 0 };
        let bound =
            theory::pdtl_network_bound_bytes(nodes as u64, cores as u64, g.num_edges(), t_term);
        assert!(
            report.network.total() <= 4 * bound,
            "{nodes}x{cores} listing={listing}: {} > 4x {bound}",
            report.network.total()
        );
        // and the graph-replication term alone matches Θ((N-1)|E*|):
        // every worker node past the master receives one full copy of
        // the oriented file set measured above.
        assert_eq!(report.network.graph, (nodes as u64 - 1) * replica_bytes);
    }
}

#[test]
fn memory_budget_does_not_change_the_answer_only_the_io() {
    // Figure 5's point, as an invariant.
    let g = Dataset::Twitter.build_scaled(0.03).unwrap();
    let big = count_triangles_with(
        &g,
        LocalConfig {
            cores: 2,
            budget: MemoryBudget::edges(1 << 20),
            balance: BalanceStrategy::InDegree,
            ..Default::default()
        },
    )
    .unwrap();
    let small = count_triangles_with(
        &g,
        LocalConfig {
            cores: 2,
            budget: MemoryBudget::edges(256),
            balance: BalanceStrategy::InDegree,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(big.triangles, small.triangles);
    assert!(
        small.total_worker_io().bytes_read > big.total_worker_io().bytes_read,
        "smaller memory must cost more I/O"
    );
}

#[test]
fn ordering_lemma_on_all_standins() {
    // Theorem IV.1's inequality on every dataset stand-in.
    for ds in Dataset::real_graphs() {
        let g = ds.build_scaled(0.02).unwrap();
        let o = pdtl::core::orient::orient_csr(&g);
        let d_star: Vec<u32> = (0..o.num_vertices()).map(|v| o.d_star(v)).collect();
        let lhs = theory::ordering_sum(&o.orig_degrees, &d_star);
        assert!(lhs <= g.min_degree_sum(), "{}", ds.name());
    }
}
