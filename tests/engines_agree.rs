//! Cross-crate integration: every engine in the workspace must report
//! the same exact triangle count on the same graphs.

use pdtl::baselines::{cttp, inmem, optlike, patric, powergraph};
use pdtl::cluster::{ClusterConfig, ClusterRunner};
use pdtl::core::{count_triangles_with, BalanceStrategy, LocalConfig};
use pdtl::graph::datasets::Dataset;
use pdtl::graph::verify::triangle_count;
use pdtl::graph::{DiskGraph, Graph};
use pdtl::io::{IoStats, MemoryBudget};

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("pdtl-integration")
        .join(format!("{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn every_engine_count(g: &Graph, tag: &str) -> Vec<(&'static str, u64)> {
    let mut results = Vec::new();

    // PDTL local, multiple configs
    for (cores, budget) in [(1usize, 1usize << 20), (3, 512)] {
        let r = count_triangles_with(
            g,
            LocalConfig {
                cores,
                budget: MemoryBudget::edges(budget),
                balance: BalanceStrategy::InDegree,
                ..Default::default()
            },
        )
        .unwrap();
        results.push(("pdtl-local", r.triangles));
    }

    // PDTL distributed
    let stats = IoStats::new();
    let input = DiskGraph::write(g, tmpdir(tag).join("g"), &stats).unwrap();
    let cr = ClusterRunner::new(ClusterConfig {
        nodes: 2,
        cores_per_node: 2,
        budget: MemoryBudget::edges(1024),
        ..Default::default()
    })
    .unwrap()
    .run(&input, &tmpdir(&format!("{tag}-cluster")))
    .unwrap();
    results.push(("pdtl-cluster", cr.triangles));

    // in-memory references
    results.push(("node-iterator", inmem::node_iterator(g)));
    results.push(("edge-iterator", inmem::edge_iterator(g)));
    results.push(("forward", inmem::forward(g)));

    // OPT-like
    let ostats = IoStats::new();
    let db = optlike::create_database(&input, &tmpdir(&format!("{tag}-opt")).join("db"), &ostats)
        .unwrap();
    let opt = optlike::count(&db, 2, MemoryBudget::edges(1 << 20), &ostats).unwrap();
    results.push(("opt-like", opt.triangles));
    let opt_ooc = optlike::count(&db, 1, MemoryBudget::edges(32), &ostats).unwrap();
    results.push(("opt-like-ooc", opt_ooc.triangles));

    // PATRIC-like
    let pr = patric::run(
        g,
        patric::PatricConfig {
            processors: 3,
            memory_bytes: u64::MAX,
            balance: patric::PatricBalance::ByDegreeSum,
        },
    )
    .unwrap();
    results.push(("patric-like", pr.triangles));

    // PowerGraph-like
    let pg = powergraph::triangle_count(
        g,
        powergraph::PowerGraphConfig {
            machines: 3,
            memory_bytes: u64::MAX,
            cut: powergraph::VertexCut::Greedy,
            seed: 1,
        },
    )
    .unwrap();
    results.push(("powergraph-like", pg.triangles));

    // CTTP-like
    let ct = cttp::run(
        g,
        cttp::CttpConfig {
            rho: 3,
            reducers: 2,
        },
    )
    .unwrap();
    results.push(("cttp-like", ct.triangles));

    results
}

#[test]
fn all_engines_agree_on_rmat() {
    let g = Dataset::Rmat(7).build().unwrap();
    let expected = triangle_count(&g);
    assert!(expected > 0);
    for (name, got) in every_engine_count(&g, "rmat") {
        assert_eq!(got, expected, "{name} disagrees with the oracle");
    }
}

#[test]
fn all_engines_agree_on_powerlaw_standin() {
    let g = Dataset::Yahoo.build_scaled(0.02).unwrap();
    let expected = triangle_count(&g);
    for (name, got) in every_engine_count(&g, "yahoo") {
        assert_eq!(got, expected, "{name} disagrees with the oracle");
    }
}

#[test]
fn all_engines_agree_on_dense_graph() {
    let g = pdtl::graph::gen::classic::complete(24).unwrap();
    let expected = 24 * 23 * 22 / 6;
    for (name, got) in every_engine_count(&g, "k24") {
        assert_eq!(got, expected, "{name} disagrees on K24");
    }
}

#[test]
fn listing_engines_agree_on_the_triangle_set() {
    let g = Dataset::Rmat(6).build().unwrap();
    let mut expected = pdtl::graph::verify::triangle_list(&g);
    expected.sort_unstable();

    let stats = IoStats::new();
    let input = DiskGraph::write(&g, tmpdir("listset").join("g"), &stats).unwrap();
    let cr = ClusterRunner::new(ClusterConfig {
        nodes: 2,
        cores_per_node: 2,
        budget: MemoryBudget::edges(256),
        listing: true,
        ..Default::default()
    })
    .unwrap()
    .run(&input, &tmpdir("listset-run"))
    .unwrap();
    let mut got: Vec<(u32, u32, u32)> = cr
        .listed
        .unwrap()
        .into_iter()
        .map(|(a, b, c)| {
            let mut t = [a, b, c];
            t.sort_unstable();
            (t[0], t[1], t[2])
        })
        .collect();
    got.sort_unstable();
    assert_eq!(got, expected);
}
