//! Property-based tests (proptest) of the workspace's core invariants,
//! run over arbitrary random graphs, budgets and splits.

use proptest::prelude::*;

use pdtl::core::mgt::mgt_in_memory;
use pdtl::core::orient::orient_csr;
use pdtl::core::sink::{CollectSink, CountSink};
use pdtl::core::{split_ranges, BalanceStrategy, DegreeOrder};
use pdtl::graph::verify::{triangle_count, triangle_list};
use pdtl::graph::Graph;
use pdtl::io::MemoryBudget;

/// Strategy: an arbitrary simple graph with up to `n` vertices and `m`
/// raw edge pairs (duplicates/self-loops cleaned by the builder).
fn arb_graph(n: u32, m: usize) -> impl Strategy<Value = Graph> {
    prop::collection::vec((0..n, 0..n), 0..m)
        .prop_map(move |edges| Graph::from_edges(n, &edges).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn orientation_preserves_edges_and_is_acyclic(g in arb_graph(40, 200)) {
        let o = orient_csr(&g);
        prop_assert_eq!(o.m_star(), g.num_edges());
        let ord = DegreeOrder::new(&o.orig_degrees);
        for u in 0..o.num_vertices() {
            let out = o.out(u);
            // lists stay sorted by id
            prop_assert!(out.windows(2).all(|w| w[0] < w[1]));
            // every arc respects the strict order => DAG
            for &v in out {
                prop_assert!(ord.precedes(u, v));
            }
            // d = d* + in
        }
        let ins = o.in_degrees();
        for v in 0..o.num_vertices() {
            prop_assert_eq!(
                o.orig_degrees[v as usize],
                o.d_star(v) + ins[v as usize]
            );
        }
    }

    #[test]
    fn mgt_matches_oracle_for_any_budget(
        g in arb_graph(32, 160),
        budget in 1usize..4096,
    ) {
        let o = orient_csr(&g);
        let (t, _) = mgt_in_memory(&o, MemoryBudget::edges(budget), &mut CountSink);
        prop_assert_eq!(t, triangle_count(&g));
    }

    #[test]
    fn mgt_lists_each_triangle_exactly_once(
        g in arb_graph(24, 120),
        budget in 1usize..512,
    ) {
        let o = orient_csr(&g);
        let mut sink = CollectSink::default();
        let (t, _) = mgt_in_memory(&o, MemoryBudget::edges(budget), &mut sink);
        prop_assert_eq!(t as usize, sink.triangles.len());
        let mut got: Vec<_> = sink
            .triangles
            .iter()
            .map(|&(a, b, c)| {
                let mut x = [a, b, c];
                x.sort_unstable();
                (x[0], x[1], x[2])
            })
            .collect();
        got.sort_unstable();
        let mut expected = triangle_list(&g);
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn ranges_partition_positions(
        g in arb_graph(48, 300),
        parts in 1usize..12,
        balanced in any::<bool>(),
    ) {
        let o = orient_csr(&g);
        let ins = o.in_degrees();
        let strategy = if balanced {
            BalanceStrategy::InDegree
        } else {
            BalanceStrategy::EqualEdges
        };
        let (ranges, _) = split_ranges(&o.offsets, &ins, parts, strategy);
        prop_assert_eq!(ranges.len(), parts);
        prop_assert_eq!(ranges[0].start, 0);
        prop_assert_eq!(ranges[parts - 1].end, o.m_star());
        for w in ranges.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn triangle_count_bounded_by_arboricity(g in arb_graph(40, 300)) {
        // T <= (1/3) Σ_e min(d(u), d(v))  (Theorem III.4 discussion)
        prop_assert!(3 * triangle_count(&g) <= g.min_degree_sum());
    }

    #[test]
    fn per_worker_counts_sum_to_total(
        g in arb_graph(32, 200),
        parts in 1usize..6,
    ) {
        let o = orient_csr(&g);
        let ins = o.in_degrees();
        let (ranges, _) = split_ranges(&o.offsets, &ins, parts, BalanceStrategy::InDegree);
        // emulate per-range MGT by filtering the full listing on pivot
        // position ownership: sum of parts == whole
        let mut total = 0u64;
        for range in ranges {
            let mut sink = CollectSink::default();
            let o2 = orient_csr(&g);
            // in-memory engine over a sub-range: reuse disk engine logic
            // by restricting chunks: simplest correct emulation is to
            // count triangles whose pivot position falls in the range.
            let (_, _) = mgt_in_memory(&o2, MemoryBudget::edges(1 << 20), &mut sink);
            let count = sink
                .triangles
                .iter()
                .filter(|&&(_, v, w)| {
                    // emitted triples are original ids; pivot positions
                    // live in rank space
                    let (rv, rw) = (o.map.to_rank(v), o.map.to_rank(w));
                    let vi = o.offsets[rv as usize];
                    let idx = o.out(rv).binary_search(&rw).unwrap() as u64 + vi;
                    idx >= range.start && idx < range.end
                })
                .count() as u64;
            total += count;
        }
        prop_assert_eq!(total, triangle_count(&g));
    }

    #[test]
    fn clustering_coefficients_in_unit_interval(g in arb_graph(30, 150)) {
        let list = triangle_list(&g);
        let local = pdtl::analytics::clustering::clustering_coefficients(&g, &list);
        for c in local {
            prop_assert!((0.0..=1.0).contains(&c));
        }
        let t = pdtl::analytics::clustering::transitivity(&g, list.len() as u64);
        prop_assert!((0.0..=1.0).contains(&t));
    }

    #[test]
    fn ktruss_edges_nested(g in arb_graph(20, 80)) {
        let list = triangle_list(&g);
        let d = pdtl::analytics::ktruss::truss_decomposition(&g, &list);
        // (k+1)-truss ⊆ k-truss
        for k in 2..=d.max_k() {
            let outer: std::collections::HashSet<_> =
                d.truss_edges(k).into_iter().collect();
            for e in d.truss_edges(k + 1) {
                prop_assert!(outer.contains(&e));
            }
        }
    }
}
