//! Serve-mode integration tests: concurrent queries against a resident
//! catalog daemon must be bit-identical to one-shot runs, admission
//! must respect the memory budget without deadlocking, and the daemon
//! must survive corrupt catalog entries, hostile parameters, stalled
//! queries and mid-query client disconnects.

use std::sync::Arc;
use std::time::{Duration, Instant};

use pdtl::analytics::{clustering, ktruss};
use pdtl::cluster::{
    Catalog, ClusterError, QueryOperation, QueryOptions, ServeClient, ServeConfig, Server,
};
use pdtl::graph::gen::rmat::rmat;
use pdtl::graph::verify::{triangle_count, triangle_list};
use pdtl::graph::{DiskGraph, Graph};
use pdtl::io::{Codec, DiskFaultPlan, IoStats, MemoryBudget};

/// A fresh temp dir per test (integration tests in one file share a
/// process, so names must not collide).
fn test_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pdtl-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Write `graphs` into `dir/catalog` and boot a server over it.
fn boot(tag: &str, graphs: &[(&str, &Graph)], config: ServeConfig) -> (std::path::PathBuf, Server) {
    let dir = test_dir(tag);
    let cat_dir = dir.join("catalog");
    std::fs::create_dir_all(&cat_dir).unwrap();
    let stats = IoStats::new();
    for (name, g) in graphs {
        DiskGraph::write(g, cat_dir.join(name), &stats).unwrap();
    }
    let catalog = Catalog::open(
        &cat_dir,
        &dir.join("work"),
        &[Codec::Raw, Codec::DeltaVarint],
        2,
    )
    .unwrap();
    assert!(catalog.rejected().is_empty(), "{:?}", catalog.rejected());
    let server = Server::spawn(catalog, config).unwrap();
    (dir, server)
}

/// Canonical triangle set: each triple sorted, list sorted.
fn canon(mut triples: Vec<(u32, u32, u32)>) -> Vec<(u32, u32, u32)> {
    for t in &mut triples {
        let mut v = [t.0, t.1, t.2];
        v.sort_unstable();
        *t = (v[0], v[1], v[2]);
    }
    triples.sort_unstable();
    triples
}

#[test]
fn concurrent_clients_match_one_shot_answers() {
    let g1 = rmat(7, 7).unwrap();
    let g2 = rmat(6, 99).unwrap();
    let (dir, server) = boot(
        "parity",
        &[("a", &g1), ("b", &g2)],
        ServeConfig {
            workers: 4,
            ..Default::default()
        },
    );
    let addr = server.addr();

    // One-shot oracles, computed in-process exactly as the satellites'
    // analytics tests do.
    type Oracle = (String, Graph, u64, Vec<(u32, u32, u32)>);
    let oracles: Vec<Oracle> = vec![
        (
            "a".into(),
            g1.clone(),
            triangle_count(&g1),
            triangle_list(&g1),
        ),
        (
            "b".into(),
            g2.clone(),
            triangle_count(&g2),
            triangle_list(&g2),
        ),
    ];

    let handles: Vec<_> = (0..8)
        .map(|client_id: usize| {
            let addr = addr.clone();
            let oracles: Vec<Oracle> = oracles.clone();
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(&addr).unwrap();
                let (name, g, count, list) = &oracles[client_id % oracles.len()];
                let codec = if client_id.is_multiple_of(2) {
                    Codec::Raw
                } else {
                    Codec::DeltaVarint
                };
                let options = QueryOptions {
                    cores: 1 + (client_id as u32 % 3),
                    budget_edges: 256 << (client_id % 4),
                    codec,
                    ..Default::default()
                };

                let reply = client.query(name, QueryOperation::Count, options).unwrap();
                assert_eq!(reply.triangles, *count, "client {client_id} count");
                assert!(!reply.workers.is_empty());

                let reply = client
                    .query(name, QueryOperation::List { limit: 1 << 20 }, options)
                    .unwrap();
                assert_eq!(reply.triangles, *count);
                assert_eq!(reply.aux, list.len() as u64, "every triangle listed");
                assert_eq!(canon(reply.triples), canon(list.clone()));

                let reply = client
                    .query(name, QueryOperation::Clustering, options)
                    .unwrap();
                let expect = clustering::analyze(g, list);
                assert_eq!(reply.triangles, *count);
                assert_eq!(reply.value_bits, expect.global.to_bits(), "bit-identical");
                assert_eq!(reply.aux, expect.transitivity.to_bits());

                let k = 3 + (client_id as u32 % 2);
                let reply = client
                    .query(name, QueryOperation::KTruss { k }, options)
                    .unwrap();
                let td = ktruss::truss_decomposition(g, list);
                assert_eq!(reply.value_bits, td.truss_edges(k).len() as u64);
                assert_eq!(reply.aux, u64::from(td.max_k()));

                // p = 1 keeps every edge: the estimate is exact, so the
                // approximate path is pinned by the same oracle.
                let reply = client
                    .query(
                        name,
                        QueryOperation::Doulion {
                            p_ppm: 1_000_000,
                            seed: 1,
                            trials: 1,
                        },
                        options,
                    )
                    .unwrap();
                assert_eq!(reply.value_f64(), *count as f64);

                // Seeded determinism: the same request twice gives the
                // same bits, across all concurrent clients.
                let op = QueryOperation::Doulion {
                    p_ppm: 500_000,
                    seed: 42,
                    trials: 4,
                };
                let first = client.query(name, op, options).unwrap();
                let second = client.query(name, op, options).unwrap();
                assert_eq!(first.value_bits, second.value_bits);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let stats = server.shutdown();
    assert_eq!(stats.served, 8 * 7);
    assert_eq!(stats.failed, 0);
    assert!(stats.bytes_read > 0);
    assert!(stats.latency_buckets.iter().sum::<u64>() >= stats.served);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stalled_query_does_not_block_other_clients() {
    let g = rmat(7, 3).unwrap();
    let (dir, server) = boot(
        "stall",
        &[("g", &g)],
        ServeConfig {
            workers: 2,
            ..Default::default()
        },
    );
    let expected = triangle_count(&g);

    // A deterministic slow query: emulated device latency on every
    // block read, tiny budget so the scan takes many reads.
    let mut slow_client = ServeClient::connect(&server.addr()).unwrap();
    slow_client
        .send_query(
            "g",
            QueryOperation::Count,
            QueryOptions {
                cores: 1,
                budget_edges: 64,
                io_latency_us: 2_000,
                ..Default::default()
            },
        )
        .unwrap();
    let slow_done = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let slow_handle = {
        let done = slow_done.clone();
        std::thread::spawn(move || {
            let reply = slow_client.recv_reply().unwrap();
            done.store(true, std::sync::atomic::Ordering::SeqCst);
            reply
        })
    };

    // While the slow query grinds, a fast one on another connection
    // must complete promptly.
    let mut fast_client = ServeClient::connect(&server.addr()).unwrap();
    let start = Instant::now();
    let fast = fast_client
        .query("g", QueryOperation::Count, QueryOptions::default())
        .unwrap();
    assert_eq!(fast.triangles, expected);
    assert!(
        !slow_done.load(std::sync::atomic::Ordering::SeqCst),
        "fast query (finished in {:?}) should overtake the stalled one",
        start.elapsed()
    );

    let slow = slow_handle.join().unwrap();
    assert_eq!(slow.triangles, expected, "stalled query still correct");
    let stats = server.shutdown();
    assert_eq!(stats.served, 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn admission_blocks_without_deadlock_and_never_oversubscribes() {
    let g = rmat(6, 5).unwrap();
    let (dir, server) = boot(
        "admission",
        &[("g", &g)],
        ServeConfig {
            workers: 4,
            admission: MemoryBudget::edges(100_000),
            ..Default::default()
        },
    );
    let expected = triangle_count(&g);
    let addr = server.addr();

    // Each query costs cores × budget_edges = 2 × 30_000 = 60_000 of a
    // 100_000-edge ledger: only one fits at a time, so four concurrent
    // clients serialise through admission — and all must finish.
    let options = QueryOptions {
        cores: 2,
        budget_edges: 30_000,
        ..Default::default()
    };
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(&addr).unwrap();
                client
                    .query("g", QueryOperation::Count, options)
                    .unwrap()
                    .triangles
            })
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap(), expected);
    }

    let stats = server.stats();
    assert!(
        stats.admitted_peak >= 60_000,
        "at least one admission recorded: {}",
        stats.admitted_peak
    );
    assert!(
        stats.admitted_peak <= stats.budget_total,
        "peak {} must never exceed the ledger's {}",
        stats.admitted_peak,
        stats.budget_total
    );

    // A query that could never fit is a typed rejection, not a hang.
    let mut client = ServeClient::connect(&addr).unwrap();
    let err = client
        .query(
            "g",
            QueryOperation::Count,
            QueryOptions {
                cores: 4,
                budget_edges: 1 << 40,
                ..Default::default()
            },
        )
        .unwrap_err();
    match err {
        ClusterError::Query { detail, .. } => {
            assert!(detail.contains("budget too small"), "{detail}")
        }
        other => panic!("expected a typed query rejection, got {other}"),
    }

    // Out-of-range parameters are rejected at the boundary — no panic
    // inside the sparsifier, daemon stays healthy.
    let err = client
        .query(
            "g",
            QueryOperation::Doulion {
                p_ppm: 5_000_000,
                seed: 1,
                trials: 1,
            },
            QueryOptions::default(),
        )
        .unwrap_err();
    assert!(matches!(err, ClusterError::Query { .. }), "{err}");

    // Unknown graphs too.
    let err = client
        .query("missing", QueryOperation::Count, QueryOptions::default())
        .unwrap_err();
    match err {
        ClusterError::Query { detail, .. } => assert!(detail.contains("unknown graph"), "{detail}"),
        other => panic!("expected a typed query rejection, got {other}"),
    }

    // After all that abuse the daemon still answers correctly (with a
    // cost that fits the deliberately small ledger).
    let reply = client.query("g", QueryOperation::Count, options).unwrap();
    assert_eq!(reply.triangles, expected);
    let stats = server.shutdown();
    assert_eq!(stats.failed, 3);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_catalog_entry_is_rejected_and_the_rest_served() {
    let dir = test_dir("corrupt");
    let cat_dir = dir.join("catalog");
    std::fs::create_dir_all(&cat_dir).unwrap();
    let stats = IoStats::new();
    let good = rmat(6, 1).unwrap();
    DiskGraph::write(&good, cat_dir.join("good"), &stats).unwrap();
    let bad = rmat(6, 2).unwrap();
    DiskGraph::write(&bad, cat_dir.join("bad"), &stats).unwrap();

    // Corrupt via the shared fault grammar (`PDTL_DISK_FAULT` syntax):
    // one flipped bit deep in the adjacency, invisible to the quick
    // open-time tier, fatal to the full digest at registration.
    let plan = DiskFaultPlan::parse("bitflip@adj:97").unwrap();
    let touched = plan.apply(&cat_dir.join("bad")).unwrap();
    assert!(!touched.is_empty());

    let catalog = Catalog::open(
        &cat_dir,
        &dir.join("work"),
        &[Codec::Raw, Codec::DeltaVarint],
        2,
    )
    .unwrap();
    assert_eq!(catalog.names(), vec!["good".to_string()]);
    let rejected = catalog.rejected().to_vec();
    assert_eq!(rejected.len(), 1);
    assert_eq!(rejected[0].0, "bad");
    assert!(
        rejected[0].1.contains("corrupt") || rejected[0].1.contains("truncated"),
        "typed integrity error, got: {}",
        rejected[0].1
    );

    let server = Server::spawn(catalog, ServeConfig::default()).unwrap();
    let mut client = ServeClient::connect(&server.addr()).unwrap();
    let reply = client
        .query("good", QueryOperation::Count, QueryOptions::default())
        .unwrap();
    assert_eq!(reply.triangles, triangle_count(&good));
    let err = client
        .query("bad", QueryOperation::Count, QueryOptions::default())
        .unwrap_err();
    assert!(matches!(err, ClusterError::Query { .. }), "{err}");
    let stats = client.stats().unwrap();
    assert_eq!(stats.rejected_graphs, 1);
    assert_eq!(stats.graphs.len(), 1);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mid_query_disconnect_leaves_daemon_healthy() {
    let g = rmat(7, 11).unwrap();
    let (dir, server) = boot(
        "disconnect",
        &[("g", &g)],
        ServeConfig {
            workers: 2,
            ..Default::default()
        },
    );

    // Launch a slow query, then hang up before the answer arrives.
    {
        let mut doomed = ServeClient::connect(&server.addr()).unwrap();
        doomed
            .send_query(
                "g",
                QueryOperation::Count,
                QueryOptions {
                    cores: 1,
                    budget_edges: 64,
                    io_latency_us: 1_000,
                    ..Default::default()
                },
            )
            .unwrap();
        // drop: the socket closes with the query still running
    }

    // The daemon keeps serving other clients, and the orphaned query
    // eventually completes and releases its admission lease.
    let mut client = ServeClient::connect(&server.addr()).unwrap();
    let reply = client
        .query("g", QueryOperation::Count, QueryOptions::default())
        .unwrap();
    assert_eq!(reply.triangles, triangle_count(&g));

    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let s = client.stats().unwrap();
        if s.served == 2 && s.inflight == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "orphaned query never finished: {s:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    let stats = server.shutdown();
    assert_eq!(stats.served, 2);
    assert_eq!(stats.failed, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn client_shutdown_drains_inflight_queries() {
    let g = rmat(7, 23).unwrap();
    let (dir, server) = boot(
        "drain",
        &[("g", &g)],
        ServeConfig {
            workers: 2,
            ..Default::default()
        },
    );
    let expected = triangle_count(&g);

    // A slow query goes in flight...
    let mut inflight = ServeClient::connect(&server.addr()).unwrap();
    inflight
        .send_query(
            "g",
            QueryOperation::Count,
            QueryOptions {
                cores: 1,
                budget_edges: 64,
                io_latency_us: 500,
                ..Default::default()
            },
        )
        .unwrap();

    // ...then another client asks the daemon to exit. `wait` must
    // drain the running query before returning, and the in-flight
    // client still receives its (correct) answer. Wait until the slow
    // query is actually executing, so the shutdown genuinely races a
    // running query rather than an unread socket.
    let mut shutter = ServeClient::connect(&server.addr()).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let s = shutter.stats().unwrap();
        if s.inflight >= 1 || s.served >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "query never started: {s:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
    shutter.shutdown().unwrap();
    let stats = server.wait();
    assert_eq!(stats.served, 1, "in-flight query drained, not dropped");
    assert_eq!(stats.failed, 0);

    let reply = inflight.recv_reply().unwrap();
    assert_eq!(reply.triangles, expected);
    let _ = std::fs::remove_dir_all(&dir);
}
