//! Fault-injection tests of the cluster runtime: seeded node kills,
//! transient crashes, stalls, slow nodes, truncated replicas and failed
//! copies must all leave the triangle count exact (Tolerant) or abort
//! promptly (FailFast), with honest failure counters.
//!
//! Every fault here is driven by a deterministic [`FaultPlan`]; no test
//! uses wall-clock sleeps for synchronization — detection happens through
//! the runner's own heartbeat/deadline machinery.

use std::time::Duration;

use pdtl::cluster::{
    ClusterConfig, ClusterReport, ClusterRunner, FailurePolicy, FaultPlan, RetryPolicy,
    TransportKind,
};
use pdtl::graph::datasets::Dataset;
use pdtl::graph::verify::triangle_count;
use pdtl::graph::{DiskGraph, Graph};
use pdtl::io::{IoStats, MemoryBudget};

fn graph() -> Graph {
    Dataset::Rmat(8).build().unwrap()
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("pdtl-fault-tests")
        .join(format!("{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A cluster config with fast retries and a short failure deadline so
/// stall detection does not dominate test wall time.
fn cfg(nodes: usize, transport: TransportKind, fault: &str) -> ClusterConfig {
    ClusterConfig {
        nodes,
        cores_per_node: 2,
        budget: MemoryBudget::edges(2048),
        transport,
        policy: FailurePolicy::Tolerant(RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(2),
            seed: 7,
        }),
        heartbeat: Duration::from_millis(10),
        node_deadline: Duration::from_millis(400),
        fault: FaultPlan::parse(fault).unwrap(),
        ..Default::default()
    }
}

fn run(g: &Graph, cfg: ClusterConfig, tag: &str) -> pdtl::cluster::Result<ClusterReport> {
    let dir = tmpdir(tag);
    let stats = IoStats::new();
    let input = DiskGraph::write(g, dir.join("g"), &stats).unwrap();
    let report = ClusterRunner::new(cfg).unwrap().run(&input, &dir);
    let _ = std::fs::remove_dir_all(&dir);
    report
}

/// The issue's acceptance case: kill k of N nodes mid-run over both
/// transports, for k = 1 and k = N - 1, and still get the exact count
/// with the failures recorded.
#[test]
fn seeded_kills_stay_exact_over_both_transports() {
    let g = graph();
    let expected = triangle_count(&g);
    for transport in [TransportKind::InProc, TransportKind::Tcp] {
        for (kill, seed) in [(1u32, 101u64), (3, 202)] {
            let plan = format!("seed={seed};kill={kill}");
            let tag = format!("kill-{kill}-{transport:?}");
            let report = run(&g, cfg(4, transport, &plan), &tag).unwrap();
            assert_eq!(report.triangles, expected, "{tag}");
            assert_eq!(report.node_triangle_sum(), expected, "{tag}");
            assert_eq!(report.failed_nodes.len(), kill as usize, "{tag}");
            assert!(report.retries >= 1, "{tag}: respawns must be counted");
            assert!(
                report.reassigned_ranges >= 1,
                "{tag}: a dead node's ranges must move"
            );
        }
    }
}

/// Killing every node exhausts reassignment targets; the master-local
/// fallback still produces the exact count.
#[test]
fn killing_every_node_falls_back_to_master() {
    let g = graph();
    let expected = triangle_count(&g);
    let report = run(
        &g,
        cfg(3, TransportKind::InProc, "seed=9;kill=3"),
        "kill-all",
    )
    .unwrap();
    assert_eq!(report.triangles, expected);
    assert_eq!(report.failed_nodes, vec![0, 1, 2]);
    assert!(report.reassigned_ranges >= 1);
}

/// A transient crash (`x1`) recovers on respawn: retries recorded, no
/// terminal failure, no reassignment.
#[test]
fn transient_panic_recovers_on_respawn() {
    let g = graph();
    let expected = triangle_count(&g);
    let report = run(&g, cfg(3, TransportKind::InProc, "panic@1x1"), "transient").unwrap();
    assert_eq!(report.triangles, expected);
    assert!(report.retries >= 1);
    assert!(report.failed_nodes.is_empty());
    assert_eq!(report.reassigned_ranges, 0);
}

/// A wedged node (no heartbeats, no results) is found by the deadline,
/// not by waiting forever; a transient stall recovers on respawn.
#[test]
fn stall_is_detected_by_heartbeat_deadline() {
    let g = graph();
    let expected = triangle_count(&g);
    let report = run(&g, cfg(3, TransportKind::InProc, "stall@1x1"), "stall").unwrap();
    assert_eq!(report.triangles, expected);
    assert!(
        report.retries >= 1,
        "the stall must be detected and retried"
    );
    assert!(report.failed_nodes.is_empty());
}

/// A slow node whose delay exceeds the deadline is NOT declared dead:
/// its heartbeats keep flowing, distinguishing slow from wedged.
#[test]
fn delayed_node_survives_via_heartbeats() {
    let g = graph();
    let expected = triangle_count(&g);
    let mut c = cfg(3, TransportKind::InProc, "delay@1:600");
    c.node_deadline = Duration::from_millis(300);
    let report = run(&g, c, "delay").unwrap();
    assert_eq!(report.triangles, expected);
    assert_eq!(report.retries, 0, "heartbeats must keep a slow node alive");
    assert!(report.failed_nodes.is_empty());
    assert!(report.network.control > 0, "heartbeats are counted traffic");
}

/// A truncated replica makes every worker on the node error; transient
/// recovers, persistent ends in reassignment. Either way the count is
/// exact.
#[test]
fn short_reads_recover_or_reassign() {
    let g = graph();
    let expected = triangle_count(&g);

    let transient = run(
        &g,
        cfg(3, TransportKind::InProc, "shortread@1x1:4"),
        "shortread-x1",
    )
    .unwrap();
    assert_eq!(transient.triangles, expected);
    assert!(transient.retries >= 1);
    assert!(transient.failed_nodes.is_empty());

    let persistent = run(
        &g,
        cfg(3, TransportKind::InProc, "shortread@1:4"),
        "shortread",
    )
    .unwrap();
    assert_eq!(persistent.triangles, expected);
    assert_eq!(persistent.failed_nodes, vec![1]);
    assert!(persistent.reassigned_ranges >= 1);
}

/// A failed replica copy is retried (transient) or routes the node's
/// ranges elsewhere (persistent); the count stays exact.
#[test]
fn copy_failures_retry_then_reassign() {
    let g = graph();
    let expected = triangle_count(&g);

    let transient = run(
        &g,
        cfg(3, TransportKind::InProc, "copyfail@1x1"),
        "copyfail-x1",
    )
    .unwrap();
    assert_eq!(transient.triangles, expected);
    assert!(transient.retries >= 1);
    assert!(transient.failed_nodes.is_empty());

    let persistent = run(&g, cfg(3, TransportKind::InProc, "copyfail@1"), "copyfail").unwrap();
    assert_eq!(persistent.triangles, expected);
    assert_eq!(persistent.failed_nodes, vec![1]);
}

/// FailFast preserves the pre-fault-tolerance contract: the first node
/// failure aborts the whole run with the node's own error.
#[test]
fn fail_fast_aborts_on_first_failure() {
    let g = graph();
    for (plan, tag) in [("panic@1", "ff-panic"), ("copyfail@1", "ff-copy")] {
        let mut c = cfg(3, TransportKind::InProc, plan);
        c.policy = FailurePolicy::FailFast;
        let err = run(&g, c, tag).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains('1'), "{tag}: error names the node: {msg}");
    }
}

/// Listing mode with a killed node: the retry/reassignment path must
/// not duplicate or drop triangles from a partially-finished dispatch.
#[test]
fn listing_with_killed_node_has_no_duplicates() {
    let g = Dataset::Rmat(7).build().unwrap();
    let expected = triangle_count(&g);
    let mut c = cfg(3, TransportKind::InProc, "seed=303;kill=1");
    c.listing = true;
    let report = run(&g, c, "listing-kill").unwrap();
    assert_eq!(report.triangles, expected);
    let mut listed = report.listed.clone().unwrap();
    assert_eq!(listed.len() as u64, expected);
    listed.sort_unstable();
    listed.dedup();
    assert_eq!(listed.len() as u64, expected, "no duplicate triangles");
}

/// The CI fault matrix sets `PDTL_FAULT` (e.g. `seed=101;kill=1`); this
/// run picks it up through the same env path as production and must
/// stay exact for any plan killing fewer than all nodes. With the env
/// unset it degrades to a plain fault-free run.
#[test]
fn env_driven_plan_stays_exact() {
    let g = graph();
    let expected = triangle_count(&g);
    let mut c = cfg(4, TransportKind::InProc, "");
    c.fault = FaultPlan::default_from_env();
    let report = run(&g, c, "env-plan").unwrap();
    assert_eq!(report.triangles, expected);
    assert_eq!(report.node_triangle_sum(), expected);
}
