//! Umbrella-crate smoke tests: the README/lib.rs quickstart must keep
//! working, and the re-export layout must stay reachable under the
//! documented paths.

use pdtl::core::count_triangles;
use pdtl::graph::gen::classic::complete;

#[test]
fn quickstart_complete_100_lists_161700_triangles() {
    let g = complete(100).unwrap();
    let report = count_triangles(&g).unwrap();
    assert_eq!(report.triangles, 161_700); // C(100, 3)
}

#[test]
fn umbrella_reexports_are_reachable() {
    // One symbol per re-exported crate, through the umbrella paths the
    // docs advertise.
    let _ = pdtl::io::BYTES_PER_U32;
    let g = pdtl::graph::gen::classic::complete(5).unwrap();
    assert_eq!(pdtl::graph::verify::triangle_count(&g), 10);
    let o = pdtl::core::orient_csr(&g);
    assert_eq!(o.m_star(), g.num_edges());
    assert_eq!(pdtl::baselines::inmem::forward(&g), 10);
    let traffic = pdtl::cluster::NetTraffic::new();
    assert_eq!(traffic.total_bytes(), 0);
    let list = pdtl::graph::verify::triangle_list(&g);
    let t = pdtl::analytics::transitivity(&g, list.len() as u64);
    assert!(
        (t - 1.0).abs() < 1e-9,
        "K5 transitivity should be 1, got {t}"
    );
}
