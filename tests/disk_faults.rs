//! Storage-integrity tests: injected disk corruption (bit flips,
//! truncations, torn writes) against the checksummed manifests must be
//! *detected* (typed error) or *healed* (replica re-copy / range
//! reassignment) — never silently counted.
//!
//! Every fault is deterministic: single-process corruption goes through
//! [`DiskFaultSpec`]/[`DiskFaultPlan`] (the `PDTL_DISK_FAULT` grammar),
//! cluster replica corruption through the `corrupt@<node>` leg of the
//! PR 7 [`FaultPlan`].

use std::path::Path;
use std::time::Duration;

use proptest::prelude::*;

use pdtl::cluster::{
    ClusterConfig, ClusterRunner, FailurePolicy, FaultPlan, RetryPolicy, TransportKind,
};
use pdtl::core::orient::orient_to_disk_with;
use pdtl::core::{LocalConfig, LocalRunner, MgtOptions};
use pdtl::graph::datasets::Dataset;
use pdtl::graph::verify::triangle_count;
use pdtl::graph::{DiskGraph, Graph};
use pdtl::io::diskfault::{DiskFaultKind, DiskFaultPlan, DiskFaultSpec, FaultTarget};
use pdtl::io::{Codec, IoStats, MemoryBudget};

fn graph() -> Graph {
    Dataset::Rmat(7).build().unwrap()
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("pdtl-disk-fault-tests")
        .join(format!("{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn local(codec: Codec) -> LocalRunner {
    LocalRunner::new(LocalConfig {
        cores: 2,
        budget: MemoryBudget::edges(2048),
        mgt: MgtOptions {
            codec,
            ..Default::default()
        },
        ..Default::default()
    })
    .unwrap()
}

/// Open-then-count on a possibly-corrupt base: the detection may fire
/// at open (quick tier) or at run entry (full tier); this helper
/// collapses both into one `Result<u64, String>`.
fn try_count(base: &Path, work: &Path, codec: Codec) -> Result<u64, String> {
    let stats = IoStats::new();
    let dg = DiskGraph::open(base, &stats).map_err(|e| e.to_string())?;
    local(codec)
        .run(&dg, work)
        .map(|r| r.triangles)
        .map_err(|e| e.to_string())
}

fn assert_detected(tag: &str, outcome: Result<u64, String>) {
    let msg = outcome.expect_err(&format!("{tag}: corruption must not yield a count"));
    let lower = msg.to_lowercase();
    assert!(
        lower.contains("corrupt") || lower.contains("truncated"),
        "{tag}: error must be a typed integrity failure, got: {msg}"
    );
}

/// Acceptance case, single-process half: a bit flip, a truncation, or
/// a torn write anywhere in the input file set turns the run into a
/// typed error — under both oriented-output codecs, never a wrong
/// count, never a panic. (Input graphs are always the raw pair by
/// contract; the codec governs the oriented copy.)
#[test]
fn corrupted_input_errors_instead_of_counting() {
    let g = graph();
    for codec in Codec::ALL {
        for (kind, seed) in [
            (DiskFaultKind::BitFlip, 12345u64),
            (DiskFaultKind::Truncate, 999),
            (DiskFaultKind::TornWrite, 31_337),
        ] {
            let tag = format!("{codec:?}-{kind:?}");
            let dir = tmpdir(&tag);
            let stats = IoStats::new();
            DiskGraph::write(&g, dir.join("g"), &stats).unwrap();
            let spec = DiskFaultSpec {
                kind,
                target: FaultTarget::Adj,
                seed,
            };
            let hit = spec.apply(&dir.join("g")).unwrap();
            assert!(hit.is_some(), "{tag}: .adj always exists");
            assert_detected(&tag, try_count(&dir.join("g"), &dir.join("w"), codec));
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Corruption of *any* file an oriented graph carries — data, sidecars,
/// or the manifest itself — is caught by open or by the full-digest
/// tier. No target escapes.
#[test]
fn every_oriented_file_is_covered_by_verification() {
    let g = graph();
    for codec in Codec::ALL {
        for target in FaultTarget::ALL {
            let tag = format!("cover-{codec:?}-{}", target.ext().trim_start_matches('.'));
            let dir = tmpdir(&tag);
            let stats = IoStats::new();
            let input = DiskGraph::write(&g, dir.join("g"), &stats).unwrap();
            let (og, _) = orient_to_disk_with(&input, dir.join("o"), 2, codec, &stats).unwrap();
            let base = og.disk.base().to_path_buf();
            let spec = DiskFaultSpec {
                kind: DiskFaultKind::BitFlip,
                target,
                seed: 42,
            };
            if spec.apply(&base).unwrap().is_none() {
                // this codec does not produce the target file (e.g.
                // raw has no .hdr/.vix); nothing to corrupt.
                continue;
            }
            let outcome = match DiskGraph::open(&base, &stats) {
                Err(e) => Err(e.to_string()),
                Ok(dg) => match dg.verify_full() {
                    Err(e) => Err(e.to_string()),
                    Ok(_) => Ok(0),
                },
            };
            assert_detected(&tag, outcome);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Garbage sidecars of the *correct length* defeat the pure length
/// check; the quick tier's small-file digests must still reject them
/// at open time.
#[test]
fn same_length_garbage_sidecars_are_rejected_at_open() {
    let g = graph();
    let stats = IoStats::new();
    for ext in [".hdr", ".vix", ".bnd", ".mft"] {
        let tag = format!("garbage{ext}");
        let dir = tmpdir(&tag);
        let input = DiskGraph::write(&g, dir.join("g"), &stats).unwrap();
        let (og, _) =
            orient_to_disk_with(&input, dir.join("o"), 2, Codec::DeltaVarint, &stats).unwrap();
        let victim = og
            .disk
            .file_set()
            .into_iter()
            .find(|p| p.to_string_lossy().ends_with(ext))
            .unwrap_or_else(|| panic!("{tag}: oriented delta-varint graph carries {ext}"));
        let len = std::fs::metadata(&victim).unwrap().len() as usize;
        std::fs::write(&victim, vec![0xABu8; len]).unwrap();
        let err = DiskGraph::open(og.disk.base(), &stats)
            .err()
            .unwrap_or_else(|| panic!("{tag}: garbage sidecar must fail open"))
            .to_string()
            .to_lowercase();
        assert!(
            err.contains("corrupt") || err.contains("truncated"),
            "{tag}: {err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Pre-integrity graphs (written before the manifest existed) carry no
/// `.mft`; they must still open, count exactly, and report "no
/// manifest" rather than failing.
#[test]
fn pre_integrity_graphs_still_open_and_count() {
    let g = graph();
    let expected = triangle_count(&g);
    for codec in Codec::ALL {
        let dir = tmpdir(&format!("legacy-{codec:?}"));
        let stats = IoStats::new();
        let dg = DiskGraph::write(&g, dir.join("g"), &stats).unwrap();
        std::fs::remove_file(dg.mft_path()).unwrap();
        let reopened = DiskGraph::open(dir.join("g"), &stats).unwrap();
        assert!(reopened.verify_full().unwrap().is_none(), "no manifest");
        let report = local(codec).run(&reopened, &dir.join("w")).unwrap();
        assert_eq!(report.triangles, expected, "{codec:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

fn cluster_cfg(codec: Codec, transport: TransportKind, fault: &str) -> ClusterConfig {
    ClusterConfig {
        nodes: 3,
        cores_per_node: 2,
        budget: MemoryBudget::edges(2048),
        transport,
        mgt: MgtOptions {
            codec,
            ..Default::default()
        },
        policy: FailurePolicy::Tolerant(RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(2),
            seed: 7,
        }),
        heartbeat: Duration::from_millis(10),
        node_deadline: Duration::from_millis(400),
        fault: FaultPlan::parse(fault).unwrap(),
        ..Default::default()
    }
}

fn cluster_run(g: &Graph, cfg: ClusterConfig, tag: &str) -> pdtl::cluster::ClusterReport {
    let dir = tmpdir(tag);
    let stats = IoStats::new();
    let input = DiskGraph::write(g, dir.join("g"), &stats).unwrap();
    let report = ClusterRunner::new(cfg).unwrap().run(&input, &dir).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    report
}

/// Acceptance case, cluster half A: a transiently corrupted replica is
/// caught by the post-copy digest check and healed by re-copying under
/// the retry policy — exact count, no failed nodes, over both
/// transports and both codecs.
#[test]
fn transient_replica_corruption_heals_by_recopy() {
    let g = graph();
    let expected = triangle_count(&g);
    for codec in Codec::ALL {
        for transport in [TransportKind::InProc, TransportKind::Tcp] {
            let tag = format!("heal-{codec:?}-{transport:?}");
            let report = cluster_run(&g, cluster_cfg(codec, transport, "corrupt@1x1:adj"), &tag);
            assert_eq!(report.triangles, expected, "{tag}");
            assert_eq!(report.node_triangle_sum(), expected, "{tag}");
            assert!(report.retries >= 1, "{tag}: the re-copy must be counted");
            assert!(report.failed_nodes.is_empty(), "{tag}");
        }
    }
}

/// Acceptance case, cluster half B: a replica that is corrupted on
/// *every* copy attempt exhausts the retry budget; the node is declared
/// failed and its ranges move to healthy nodes — the count stays exact.
#[test]
fn persistent_replica_corruption_fails_node_and_reassigns() {
    let g = graph();
    let expected = triangle_count(&g);
    for codec in Codec::ALL {
        for transport in [TransportKind::InProc, TransportKind::Tcp] {
            let tag = format!("reassign-{codec:?}-{transport:?}");
            let report = cluster_run(&g, cluster_cfg(codec, transport, "corrupt@1:adj"), &tag);
            assert_eq!(report.triangles, expected, "{tag}");
            assert_eq!(report.failed_nodes, vec![1], "{tag}");
            assert!(report.reassigned_ranges >= 1, "{tag}");
        }
    }
}

/// The CI disk-fault matrix sets `PDTL_DISK_FAULT` (e.g.
/// `bitflip@adj:97`) and `PDTL_CODEC`; this test consumes both through
/// the same env paths as production. Phase 1 corrupts a written input:
/// if the plan touched any file the count must fail typed, otherwise it
/// must be exact. Phase 2 corrupts an *oriented* base (which carries
/// the `.map`/`.bnd`/sidecar targets) and requires the full-digest
/// tier to object. With the env unset both phases degrade to clean
/// runs.
#[test]
fn env_driven_disk_fault_plan_is_detected_or_absent() {
    let g = graph();
    let expected = triangle_count(&g);
    let codec = Codec::default_from_env();
    let plan = DiskFaultPlan::default_from_env();
    let stats = IoStats::new();

    let dir = tmpdir("env-input");
    DiskGraph::write(&g, dir.join("g"), &stats).unwrap();
    let applied = plan.apply(&dir.join("g")).unwrap();
    let outcome = try_count(&dir.join("g"), &dir.join("w"), codec);
    if applied.is_empty() {
        assert_eq!(outcome.unwrap(), expected);
    } else {
        assert_detected("env-input", outcome);
    }
    let _ = std::fs::remove_dir_all(&dir);

    let dir = tmpdir("env-oriented");
    let input = DiskGraph::write(&g, dir.join("g"), &stats).unwrap();
    let (og, _) = orient_to_disk_with(&input, dir.join("o"), 2, codec, &stats).unwrap();
    let base = og.disk.base().to_path_buf();
    let applied = plan.apply(&base).unwrap();
    let outcome = match DiskGraph::open(&base, &stats) {
        Err(e) => Err(e.to_string()),
        Ok(dg) => match dg.verify_full() {
            Err(e) => Err(e.to_string()),
            Ok(_) => Ok(0),
        },
    };
    if applied.is_empty() {
        assert!(outcome.is_ok(), "clean oriented base must verify");
    } else {
        assert_detected("env-oriented", outcome);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Strategy: an arbitrary simple graph, as in `tests/properties.rs`.
fn arb_graph(n: u32, m: usize) -> impl Strategy<Value = Graph> {
    prop::collection::vec((0..n, 0..n), 1..m)
        .prop_map(move |edges| Graph::from_edges(n, &edges).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Satellite 3's property: truncating any file of the set at any
    /// point, under either codec, yields a typed error or the exact
    /// count — never a panic, never a wrong answer.
    #[test]
    fn random_truncation_never_miscounts(
        g in arb_graph(24, 120),
        pick in any::<u64>(),
        cut in any::<u64>(),
        compressed in any::<bool>(),
    ) {
        let expected = triangle_count(&g);
        let codec = if compressed { Codec::DeltaVarint } else { Codec::Raw };
        let dir = tmpdir(&format!("prop-{pick:x}-{cut:x}"));
        let stats = IoStats::new();
        let dg = DiskGraph::write(&g, dir.join("g"), &stats).unwrap();
        let files = dg.file_set();
        let victim = &files[(pick % files.len() as u64) as usize];
        let len = std::fs::metadata(victim).unwrap().len();
        if len > 0 {
            std::fs::OpenOptions::new()
                .write(true)
                .open(victim)
                .unwrap()
                .set_len(cut % len)
                .unwrap();
        }
        match try_count(&dir.join("g"), &dir.join("w"), codec) {
            Ok(t) => prop_assert_eq!(t, expected),
            Err(msg) => {
                let lower = msg.to_lowercase();
                prop_assert!(
                    lower.contains("corrupt")
                        || lower.contains("truncated")
                        || lower.contains("header"),
                    "typed failure expected, got: {}",
                    msg
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
