//! End-to-end import pipeline: raw unsorted edge list → external sort →
//! PDTL binary format → orientation → distributed count, with every
//! intermediate verified.

use pdtl::core::{BalanceStrategy, LocalConfig, LocalRunner};
use pdtl::graph::datasets::Dataset;
use pdtl::graph::disk::from_sorted_packed_edges;
use pdtl::graph::verify::triangle_count;
use pdtl::graph::DiskGraph;
use pdtl::io::{external_sort_u64, extsort, IoStats, MemoryBudget};

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("pdtl-pipeline")
        .join(format!("{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn raw_edge_list_to_triangle_count() {
    let dir = tmpdir("full");
    let g = Dataset::Rmat(7).build().unwrap();
    let expected = triangle_count(&g);
    let n = g.num_vertices();

    // 1. Produce a deliberately shuffled raw edge file (both directions,
    //    with duplicates and self-loops thrown in).
    let stats = IoStats::new();
    let mut packed: Vec<u64> = Vec::new();
    for (u, v) in g.edges() {
        packed.push(((u as u64) << 32) | v as u64);
        packed.push(((v as u64) << 32) | u as u64);
    }
    packed.push((3u64 << 32) | 3); // self loop
    packed.push(packed[0]); // duplicate
                            // deterministic shuffle
    let mut state = 0x9E37u64;
    for i in (1..packed.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        packed.swap(i, (state % (i as u64 + 1)) as usize);
    }
    let raw = dir.join("raw.edges");
    extsort::write_u64_records(&raw, &packed, &stats).unwrap();

    // 2. External sort under a tiny memory budget (forces many runs).
    let sorted = dir.join("sorted.edges");
    let total = external_sort_u64(&raw, &sorted, 1000, &stats).unwrap();
    assert_eq!(total, packed.len() as u64);

    // 3. Streaming import into the PDTL binary format.
    let imported = from_sorted_packed_edges(&sorted, n, dir.join("graph"), &stats).unwrap();
    let round_trip = imported.load_csr(&stats).unwrap();
    round_trip.validate().unwrap();
    assert_eq!(round_trip, g, "import must reproduce the original graph");

    // 4. Count with the full pipeline.
    let runner = LocalRunner::new(LocalConfig {
        cores: 3,
        budget: MemoryBudget::edges(512),
        balance: BalanceStrategy::InDegree,
        ..Default::default()
    })
    .unwrap();
    let report = runner.run(&imported, &dir).unwrap();
    assert_eq!(report.triangles, expected);
}

#[test]
fn replicas_are_bit_identical() {
    let dir = tmpdir("replica");
    let g = Dataset::Orkut.build_scaled(0.02).unwrap();
    let stats = IoStats::new();
    let dg = DiskGraph::write(&g, dir.join("src"), &stats).unwrap();
    let (copy, bytes) = dg.copy_to(dir.join("dst"), &stats).unwrap();
    // the copy ships the data files plus the integrity manifest
    let mft = std::fs::metadata(dg.mft_path()).unwrap().len();
    assert_eq!(bytes, dg.size_bytes() + mft);
    assert_eq!(
        std::fs::read(dg.adj_path()).unwrap(),
        std::fs::read(copy.adj_path()).unwrap()
    );
    assert_eq!(
        std::fs::read(dg.deg_path()).unwrap(),
        std::fs::read(copy.deg_path()).unwrap()
    );
}

#[test]
fn dataset_standins_have_documented_shapes() {
    // The shapes EXPERIMENTS.md relies on: Orkut densest, Yahoo the
    // most skewed, Twitter hub-heavy.
    let scale = 0.05;
    let avg = |ds: Dataset| {
        let g = ds.build_scaled(scale).unwrap();
        2.0 * g.num_edges() as f64 / g.num_vertices() as f64
    };
    let skew = |ds: Dataset| {
        let g = ds.build_scaled(scale).unwrap();
        g.max_degree() as f64 / (2.0 * g.num_edges() as f64 / g.num_vertices() as f64)
    };
    assert!(avg(Dataset::Orkut) > avg(Dataset::LiveJournal));
    assert!(avg(Dataset::Orkut) > avg(Dataset::Yahoo));
    assert!(skew(Dataset::Yahoo) > skew(Dataset::LiveJournal));
    assert!(skew(Dataset::Twitter) > skew(Dataset::LiveJournal));
}
