//! Cross-engine contract of the rank-space pipeline: whatever the
//! budget, core count, balance strategy or I/O mode, the full disk
//! pipeline (orient → balance → per-core MGT → sink translation) must
//! emit the *identical canonical triangle set* as the brute-force
//! oracle — in original ids, with no duplicates, cone vertex first
//! under the degree order. This is the end-to-end guarantee that
//! rank-space relabeling plus sink-side id translation preserves the
//! paper's output contract.
//!
//! The I/O-backend dimension additionally pins down the backend
//! contract: a prefetching or memory-mapped run must report the *same*
//! triangle count and the *same* per-worker `bytes_read` total as its
//! blocking twin — the backend is a scheduling/copy choice, not a
//! different I/O plan.

use pdtl::core::{BalanceStrategy, DegreeOrder, LocalConfig, LocalRunner, MgtOptions};
use pdtl::graph::gen::chunglu::{chung_lu, power_law_weights};
use pdtl::graph::gen::rmat::rmat;
use pdtl::graph::gen::rng::SplitMix64;
use pdtl::graph::verify::triangle_list;
use pdtl::graph::{DiskGraph, Graph};
use pdtl::io::IoBackend;
use pdtl::io::{IoStats, MemoryBudget};

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("pdtl-rank-pipeline")
        .join(format!("{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn canonical(triples: &[(u32, u32, u32)]) -> Vec<(u32, u32, u32)> {
    let mut canon: Vec<(u32, u32, u32)> = triples
        .iter()
        .map(|&(a, b, c)| {
            let mut t = [a, b, c];
            t.sort_unstable();
            (t[0], t[1], t[2])
        })
        .collect();
    canon.sort_unstable();
    canon
}

fn assert_pipeline_matches_oracle(g: &Graph, tag: &str) {
    let mut expected = triangle_list(g);
    expected.sort_unstable();
    let degrees = g.degrees();
    let ord = DegreeOrder::new(&degrees);
    let n = g.num_vertices();

    let stats = IoStats::new();
    let input = DiskGraph::write(g, tmpdir(tag).join("g"), &stats).unwrap();

    for budget in [2usize, 32, 4096] {
        for cores in [1usize, 3, 8] {
            for strategy in [BalanceStrategy::EqualEdges, BalanceStrategy::InDegree] {
                // Every backend must match the oracle *and* the others'
                // I/O accounting (the first run is the twin reference).
                let mut twin: Option<(u64, u64)> = None;
                for backend in IoBackend::ALL {
                    let runner = LocalRunner::new(LocalConfig {
                        cores,
                        budget: MemoryBudget::edges(budget),
                        balance: strategy,
                        mgt: MgtOptions {
                            backend,
                            ..MgtOptions::default()
                        },
                    })
                    .unwrap();
                    let dir = tmpdir(&format!("{tag}-{budget}-{cores}-{strategy:?}-{backend}"));
                    let (report, triples) = runner.run_listing(&input, &dir).unwrap();
                    let label = format!(
                        "{tag} budget={budget} cores={cores} {strategy:?} backend={backend}"
                    );

                    assert_eq!(report.triangles as usize, triples.len(), "{label}");
                    for &(u, v, w) in &triples {
                        assert!(u < n && v < n && w < n, "{label}: original-id range");
                        assert!(
                            ord.precedes(u, v) && ord.precedes(v, w),
                            "{label}: cone vertex first (u ≺ v ≺ w)"
                        );
                    }
                    let canon = canonical(&triples);
                    assert!(
                        canon.windows(2).all(|w| w[0] != w[1]),
                        "{label}: no duplicates"
                    );
                    assert_eq!(canon, expected, "{label}: exact oracle set");

                    let bytes_read: u64 = report.workers.iter().map(|w| w.io.bytes_read).sum();
                    match twin {
                        None => twin = Some((report.triangles, bytes_read)),
                        Some((t, b)) => {
                            assert_eq!(report.triangles, t, "{label}: twin triangle count");
                            assert_eq!(
                                bytes_read, b,
                                "{label}: every backend must read identical bytes"
                            );
                        }
                    }
                    let _ = std::fs::remove_dir_all(&dir);
                }
            }
        }
    }
}

#[test]
fn rank_pipeline_matches_oracle_on_rmat() {
    let g = rmat(7, 77).unwrap();
    assert!(triangle_list(&g).len() > 10, "fixture must have triangles");
    assert_pipeline_matches_oracle(&g, "rmat");
}

#[test]
fn rank_pipeline_matches_oracle_on_chung_lu() {
    let mut rng = SplitMix64::new(99);
    let weights = power_law_weights(180, 2.2, 2.0, 40.0, &mut rng);
    let g = chung_lu(&weights, 900, 100).unwrap();
    assert!(
        triangle_list(&g).len() > 10,
        "fixture must have triangles, got {}",
        triangle_list(&g).len()
    );
    assert_pipeline_matches_oracle(&g, "chunglu");
}
