//! Cross-engine contract of the rank-space pipeline: whatever the
//! budget, core count, balance strategy or I/O mode, the full disk
//! pipeline (orient → balance → per-core MGT → sink translation) must
//! emit the *identical canonical triangle set* as the brute-force
//! oracle — in original ids, with no duplicates, cone vertex first
//! under the degree order. This is the end-to-end guarantee that
//! rank-space relabeling plus sink-side id translation preserves the
//! paper's output contract.
//!
//! The I/O-backend dimension additionally pins down the backend
//! contract: a prefetching or memory-mapped run must report the *same*
//! triangle count and the *same* per-worker `bytes_read` total as its
//! blocking twin — the backend is a scheduling/copy choice, not a
//! different I/O plan.

use pdtl::core::{BalanceStrategy, DegreeOrder, LocalConfig, LocalRunner, MgtOptions};
use pdtl::graph::gen::chunglu::{chung_lu, power_law_weights};
use pdtl::graph::gen::rmat::rmat;
use pdtl::graph::gen::rng::SplitMix64;
use pdtl::graph::verify::triangle_list;
use pdtl::graph::{DiskGraph, Graph};
use pdtl::io::IoBackend;
use pdtl::io::{IoStats, MemoryBudget};

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("pdtl-rank-pipeline")
        .join(format!("{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn canonical(triples: &[(u32, u32, u32)]) -> Vec<(u32, u32, u32)> {
    let mut canon: Vec<(u32, u32, u32)> = triples
        .iter()
        .map(|&(a, b, c)| {
            let mut t = [a, b, c];
            t.sort_unstable();
            (t[0], t[1], t[2])
        })
        .collect();
    canon.sort_unstable();
    canon
}

fn assert_pipeline_matches_oracle(g: &Graph, tag: &str) {
    let mut expected = triangle_list(g);
    expected.sort_unstable();
    let degrees = g.degrees();
    let ord = DegreeOrder::new(&degrees);
    let n = g.num_vertices();

    let stats = IoStats::new();
    let input = DiskGraph::write(g, tmpdir(tag).join("g"), &stats).unwrap();

    for budget in [2usize, 32, 4096] {
        for cores in [1usize, 3, 8] {
            for strategy in [BalanceStrategy::EqualEdges, BalanceStrategy::InDegree] {
                // Every backend must match the oracle *and* the others'
                // I/O accounting (the first run is the twin reference).
                let mut twin: Option<(u64, u64)> = None;
                for backend in IoBackend::ALL {
                    let runner = LocalRunner::new(LocalConfig {
                        cores,
                        budget: MemoryBudget::edges(budget),
                        balance: strategy,
                        mgt: MgtOptions {
                            backend,
                            ..MgtOptions::default()
                        },
                    })
                    .unwrap();
                    let dir = tmpdir(&format!("{tag}-{budget}-{cores}-{strategy:?}-{backend}"));
                    let (report, triples) = runner.run_listing(&input, &dir).unwrap();
                    let label = format!(
                        "{tag} budget={budget} cores={cores} {strategy:?} backend={backend}"
                    );

                    assert_eq!(report.triangles as usize, triples.len(), "{label}");
                    for &(u, v, w) in &triples {
                        assert!(u < n && v < n && w < n, "{label}: original-id range");
                        assert!(
                            ord.precedes(u, v) && ord.precedes(v, w),
                            "{label}: cone vertex first (u ≺ v ≺ w)"
                        );
                    }
                    let canon = canonical(&triples);
                    assert!(
                        canon.windows(2).all(|w| w[0] != w[1]),
                        "{label}: no duplicates"
                    );
                    assert_eq!(canon, expected, "{label}: exact oracle set");

                    let bytes_read: u64 = report.workers.iter().map(|w| w.io.bytes_read).sum();
                    match twin {
                        None => twin = Some((report.triangles, bytes_read)),
                        Some((t, b)) => {
                            assert_eq!(report.triangles, t, "{label}: twin triangle count");
                            assert_eq!(
                                bytes_read, b,
                                "{label}: every backend must read identical bytes"
                            );
                        }
                    }
                    let _ = std::fs::remove_dir_all(&dir);
                }
            }
        }
    }
}

#[test]
fn rank_pipeline_matches_oracle_on_rmat() {
    let g = rmat(7, 77).unwrap();
    assert!(triangle_list(&g).len() > 10, "fixture must have triangles");
    assert_pipeline_matches_oracle(&g, "rmat");
}

#[test]
fn rank_pipeline_matches_oracle_on_chung_lu() {
    let mut rng = SplitMix64::new(99);
    let weights = power_law_weights(180, 2.2, 2.0, 40.0, &mut rng);
    let g = chung_lu(&weights, 900, 100).unwrap();
    assert!(
        triangle_list(&g).len() > 10,
        "fixture must have triangles, got {}",
        triangle_list(&g).len()
    );
    assert_pipeline_matches_oracle(&g, "chunglu");
}

#[test]
fn delta_varint_codec_cuts_multipass_bytes_read() {
    // The Theorem IV.2 acceptance leg: on a multi-pass run (RMAT-12 at
    // a 4096-edge budget the engine re-scans the adjacency once per
    // chunk pass), the delta-varint codec must produce the identical
    // triangle count while reading at least 1.8x fewer real bytes than
    // the raw encoding — rank-space deltas on a skewed graph encode in
    // 1-2 bytes where raw spends 4.
    use pdtl::io::Codec;

    let g = rmat(12, 18).unwrap();
    let stats = IoStats::new();
    let input = DiskGraph::write(&g, tmpdir("codec-win").join("g"), &stats).unwrap();

    let mut measured = Vec::new();
    for codec in Codec::ALL {
        let runner = LocalRunner::new(LocalConfig {
            cores: 2,
            budget: MemoryBudget::edges(4096),
            balance: BalanceStrategy::EqualEdges,
            mgt: MgtOptions {
                codec,
                ..MgtOptions::default()
            },
        })
        .unwrap();
        let dir = tmpdir(&format!("codec-win-{codec}"));
        let report = runner.run(&input, &dir).unwrap();
        let bytes_read: u64 = report.workers.iter().map(|w| w.io.bytes_read).sum();
        let decoded: u64 = report.workers.iter().map(|w| w.io.u32s_decoded).sum();
        assert!(
            report.workers.iter().all(|w| w.iterations > 1),
            "{codec}: the budget must force a multi-pass run"
        );
        measured.push((codec, report.triangles, bytes_read, decoded));
        let _ = std::fs::remove_dir_all(&dir);
    }

    let &(_, raw_t, raw_bytes, raw_dec) = &measured[0];
    let &(_, var_t, var_bytes, var_dec) = &measured[1];
    assert_eq!(var_t, raw_t, "codecs must agree on the triangle count");
    assert_eq!(raw_dec, 0, "raw runs decode nothing");
    assert!(var_dec > 0, "compressed runs report decoded logical volume");
    println!(
        "codec win: raw {raw_bytes} B vs delta-varint {var_bytes} B ({:.2}x)",
        raw_bytes as f64 / var_bytes as f64
    );
    assert!(
        raw_bytes as f64 >= 1.8 * var_bytes as f64,
        "delta-varint must cut multi-pass bytes_read by >= 1.8x: raw {raw_bytes} vs varint {var_bytes} ({:.2}x)",
        raw_bytes as f64 / var_bytes as f64
    );
}
