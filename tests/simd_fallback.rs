//! Process-level `PDTL_SIMD=off` kill-switch coverage.
//!
//! This binary runs in its own process with the SIMD kill-switch set
//! *before any kernel runs*, which is the same code path a non-x86_64
//! host takes: the cached [`simd_level`] must resolve to `Off`, every
//! plain kernel entry point must run the scalar tier, and a full MGT
//! count over the scalar kernels must still match the oracle with the
//! same `cpu_ops` a vectorized run reports (the accounting contract).

use pdtl::core::intersect::{
    intersect_adaptive_visit_counted, intersect_adaptive_visit_counted_with,
    intersect_visit_counted, intersect_visit_counted_with, simd_level, SimdLevel, SIMD_ENV,
};
use pdtl::core::mgt::mgt_in_memory;
use pdtl::core::orient::orient_csr;
use pdtl::core::sink::CountSink;
use pdtl::graph::gen::rmat::rmat;
use pdtl::graph::verify::triangle_count;
use pdtl::io::MemoryBudget;

fn force_off() {
    std::env::set_var(SIMD_ENV, "off");
}

#[test]
fn kill_switch_pins_the_process_to_scalar() {
    force_off();
    assert_eq!(simd_level(), SimdLevel::Off, "env override wins");

    // The plain entry points now ARE the scalar kernels: identical
    // pairs and visit sequences to an explicit SimdLevel::Off call on
    // shapes that would otherwise take every vector tier.
    let shapes: [(usize, usize); 3] = [(1000, 1000), (100, 1000), (10, 10_000)];
    for (la, lb) in shapes {
        let a: Vec<u32> = (0..la as u32).map(|x| x * 3).collect();
        let b: Vec<u32> = (0..lb as u32).map(|x| x * 2).collect();
        let mut plain_order = Vec::new();
        let plain = intersect_visit_counted(&a, &b, |v| plain_order.push(v));
        let mut off_order = Vec::new();
        let off = intersect_visit_counted_with(SimdLevel::Off, &a, &b, |v| off_order.push(v));
        assert_eq!(plain, off, "{la}x{lb}");
        assert_eq!(plain_order, off_order, "{la}x{lb}");
        assert_eq!(
            intersect_adaptive_visit_counted(&a, &b, |_| {}),
            intersect_adaptive_visit_counted_with(SimdLevel::Off, &a, &b, |_| {}),
            "{la}x{lb} adaptive"
        );
    }
}

#[test]
fn scalar_engine_matches_oracle_and_vector_accounting() {
    force_off();
    let g = rmat(9, 33).unwrap();
    let expected = triangle_count(&g);
    let o = orient_csr(&g);
    let (t, engine_cpu_ops) = mgt_in_memory(&o, MemoryBudget::edges(2048), &mut CountSink);
    assert_eq!(t, expected, "scalar tier counts exactly");

    // The accounting contract, engine-level: cpu_ops under the forced
    // scalar tier equal cpu_ops at the host's best level, recomputed
    // here kernel-by-kernel (the engine consumed the cached Off level,
    // so the explicit-level API is the only vectorized path in this
    // process).
    let mut scalar_ops = 0u64;
    let mut best_ops = 0u64;
    for u in 0..o.num_vertices() {
        let out = o.out(u);
        for (idx, &v) in out.iter().enumerate() {
            let suffix = &out[idx + 1..];
            scalar_ops +=
                intersect_adaptive_visit_counted_with(SimdLevel::Off, suffix, o.out(v), |_| {}).1;
            best_ops += intersect_adaptive_visit_counted_with(
                SimdLevel::detect(),
                suffix,
                o.out(v),
                |_| {},
            )
            .1;
        }
    }
    assert_eq!(scalar_ops, best_ops, "cpu_ops are level-invariant");
    assert!(engine_cpu_ops > 0, "engine reported intersection work");
}
