//! Property tests of the distributed runner: arbitrary graphs, cluster
//! shapes and budgets must all produce the oracle's count with exactly
//! partitioned work.

use proptest::prelude::*;

use pdtl::cluster::{ClusterConfig, ClusterRunner};
use pdtl::core::{orient_to_disk, BalanceStrategy};
use pdtl::graph::verify::triangle_count;
use pdtl::graph::{DiskGraph, Graph};
use pdtl::io::{Codec, IoStats, MemoryBudget};

fn arb_graph(n: u32, m: usize) -> impl Strategy<Value = Graph> {
    prop::collection::vec((0..n, 0..n), 0..m)
        .prop_map(move |edges| Graph::from_edges(n, &edges).unwrap())
}

fn tmpdir(case: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("pdtl-cluster-props")
        .join(format!("{}-{case}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn cluster_count_matches_oracle(
        g in arb_graph(40, 250),
        nodes in 1usize..4,
        cores in 1usize..4,
        budget in 4usize..2048,
        balanced in any::<bool>(),
        case in any::<u64>(),
    ) {
        let expected = triangle_count(&g);
        let dir = tmpdir(case);
        let stats = IoStats::new();
        let input = DiskGraph::write(&g, dir.join("g"), &stats).unwrap();
        let report = ClusterRunner::new(ClusterConfig {
            nodes,
            cores_per_node: cores,
            budget: MemoryBudget::edges(budget),
            balance: if balanced {
                BalanceStrategy::InDegree
            } else {
                BalanceStrategy::EqualEdges
            },
            ..Default::default()
        })
        .unwrap()
        .run(&input, &dir)
        .unwrap();

        prop_assert_eq!(report.triangles, expected);
        prop_assert_eq!(report.node_triangle_sum(), expected);
        // every worker's range accounted for, covering |E*| exactly
        let covered: u64 = report
            .nodes
            .iter()
            .flat_map(|n| n.workers.iter())
            .map(|w| w.end - w.start)
            .sum();
        prop_assert_eq!(covered, g.num_edges());
        // replication traffic is exactly (N-1) * oriented size. What
        // one replica weighs depends on the session codec — raw is
        // exactly (|E| + 4n) * 4 (adjacency + degrees + rank map +
        // scan bounds); delta-varint ships the compressed adjacency
        // plus the .hdr/.vix sidecars — so orient the same input once
        // and measure the file set the runner ships.
        let (oracle, _) = orient_to_disk(&input, dir.join("oracle-or"), 2, &stats).unwrap();
        let replica_bytes: u64 = oracle
            .disk
            .file_set()
            .iter()
            .map(|p| std::fs::metadata(p).unwrap().len())
            .sum();
        let mft_bytes = std::fs::metadata(oracle.disk.mft_path()).unwrap().len();
        if oracle.disk.codec() == Codec::Raw {
            prop_assert_eq!(
                replica_bytes,
                (g.num_edges() + 4 * g.num_vertices() as u64) * 4 + mft_bytes
            );
        }
        prop_assert_eq!(report.network.graph, (nodes as u64 - 1) * replica_bytes);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn listing_mode_streams_every_triangle(
        g in arb_graph(24, 120),
        case in any::<u64>(),
    ) {
        let dir = tmpdir(case.wrapping_add(1));
        let stats = IoStats::new();
        let input = DiskGraph::write(&g, dir.join("g"), &stats).unwrap();
        let report = ClusterRunner::new(ClusterConfig {
            nodes: 2,
            cores_per_node: 2,
            budget: MemoryBudget::edges(64),
            listing: true,
            ..Default::default()
        })
        .unwrap()
        .run(&input, &dir)
        .unwrap();
        let listed = report.listed.as_ref().unwrap();
        prop_assert_eq!(listed.len() as u64, triangle_count(&g));
        // triangle traffic matches the Θ(T) term: 12 bytes per triple
        prop_assert!(report.network.triangles >= listed.len() as u64 * 12);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
