//! Engine-level graceful degradation of the `io_uring` backend.
//!
//! A worker configured with `IoBackend::Uring` on a host whose kernel
//! gates `io_uring` off must fall back to the prefetch backend *without
//! miscounting anything*: same triangles, same `bytes_read`, same
//! `seeks` as an explicit prefetch run. This binary runs in its own
//! process with the `PDTL_URING_DISABLE` kill-switch set, which is the
//! same code path a kernel without the syscalls takes.

use pdtl::core::mgt::{mgt_count_range_opt, MgtOptions};
use pdtl::core::orient::orient_to_disk;
use pdtl::core::sink::CountSink;
use pdtl::core::{count_triangles_with, EdgeRange, LocalConfig};
use pdtl::graph::gen::rmat::rmat;
use pdtl::graph::verify::triangle_count;
use pdtl::graph::DiskGraph;
use pdtl::io::{IoBackend, IoStats, MemoryBudget, URING_DISABLE_ENV};
use std::path::PathBuf;

fn disable_uring() {
    std::env::set_var(URING_DISABLE_ENV, "1");
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("pdtl-uring-fallback-engine")
        .join(format!("{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn engine_falls_back_without_miscounting() {
    disable_uring();
    let g = rmat(8, 31).unwrap();
    let expected = triangle_count(&g);

    let stats = IoStats::new();
    let input = DiskGraph::write(&g, tmpdir("fb").join("g"), &stats).unwrap();
    let (og, _) = orient_to_disk(&input, tmpdir("fb").join("oriented"), 2, &stats).unwrap();
    let full = EdgeRange {
        start: 0,
        end: og.m_star(),
    };

    let run = |backend: IoBackend| {
        let s = IoStats::new();
        let r = mgt_count_range_opt(
            &og,
            full,
            MemoryBudget::edges(512),
            &mut CountSink,
            s,
            MgtOptions {
                backend,
                ..MgtOptions::default()
            },
        )
        .unwrap();
        (r.triangles, r.io.bytes_read, r.io.seeks, r.io.read_ops)
    };

    // With uring disabled, a Uring-configured worker runs the prefetch
    // path — identical counts *and* identical I/O accounting.
    let uring = run(IoBackend::Uring);
    let prefetch = run(IoBackend::Prefetch);
    assert_eq!(uring.0, expected, "fallback run matches the oracle");
    assert_eq!(uring, prefetch, "fallback accounts exactly like prefetch");
}

#[test]
fn full_pipeline_accepts_uring_config_on_a_gated_host() {
    // What a production deployment sees: the config names uring
    // everywhere (CLI flag, wire bytes), some hosts cannot serve it,
    // and the count is still exact.
    disable_uring();
    let g = rmat(7, 32).unwrap();
    let report = count_triangles_with(
        &g,
        LocalConfig {
            cores: 3,
            budget: MemoryBudget::edges(256),
            mgt: MgtOptions {
                backend: IoBackend::Uring,
                ..MgtOptions::default()
            },
            ..LocalConfig::default()
        },
    )
    .unwrap();
    assert_eq!(report.triangles, triangle_count(&g));
}
