//! Offline stand-in for the `criterion` crate.
//!
//! Provides the bench-definition surface the workspace's benches use
//! (`Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `criterion_group!`,
//! `criterion_main!`) with a simple but honest timer: each benchmark is
//! warmed up, then run for a fixed measurement window, and the mean,
//! minimum and maximum per-iteration times are printed.
//!
//! Command-line behaviour: any non-flag argument acts as a substring
//! filter on benchmark names (like criterion); flags such as `--bench`
//! that cargo passes are ignored. `PDTL_BENCH_MS` overrides the
//! per-benchmark measurement window (milliseconds).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{param}", name.into()),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation; accepted and ignored by the shim's reporter.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    measurement: Duration,
    report: Option<Sample>,
}

struct Sample {
    iters: u64,
    mean: Duration,
    min: Duration,
    max: Duration,
}

impl Bencher {
    /// Benchmark `f`: warm up, then repeat it for the measurement
    /// window, recording per-iteration wall times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + calibration: one untimed run, then enough runs to
        // estimate scale.
        black_box(f());
        let probe_start = Instant::now();
        black_box(f());
        let probe = probe_start.elapsed().max(Duration::from_nanos(1));

        let budget = self.measurement;
        let (mut iters, mut total) = (0u64, Duration::ZERO);
        let (mut min, mut max) = (Duration::MAX, Duration::ZERO);
        while total < budget {
            let t = Instant::now();
            black_box(f());
            let dt = t.elapsed();
            iters += 1;
            total += dt;
            min = min.min(dt);
            max = max.max(dt);
            // Very slow benchmarks: cap at 3 measured iterations.
            if probe > budget && iters >= 3 {
                break;
            }
        }
        self.report = Some(Sample {
            iters,
            mean: total / iters.max(1) as u32,
            min,
            max,
        });
    }
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Top-level benchmark driver (one per bench target).
pub struct Criterion {
    filter: Option<String>,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        let ms = std::env::var("PDTL_BENCH_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(200);
        Criterion {
            filter,
            measurement: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Parse CLI arguments (already done in `default`; kept for API
    /// compatibility).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Override the measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            measurement: None,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let window = self.measurement;
        self.run_one(name.to_string(), window, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, full_name: String, window: Duration, mut f: F) {
        if let Some(filter) = &self.filter {
            if !full_name.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            measurement: window,
            report: None,
        };
        f(&mut b);
        match b.report {
            Some(s) => println!(
                "{full_name:<44} time: [{} {} {}]  ({} iters)",
                fmt_dur(s.min),
                fmt_dur(s.mean),
                fmt_dur(s.max),
                s.iters
            ),
            None => println!("{full_name:<44} (no measurement)"),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    measurement: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's sampling is adaptive.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Override the measurement window for this group only (like real
    /// criterion, the override dies with the group).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = Some(d);
        self
    }

    /// Accepted and ignored (the shim reports raw times only).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        let window = self.measurement.unwrap_or(self.criterion.measurement);
        self.criterion.run_one(full, window, f);
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        let window = self.measurement.unwrap_or(self.criterion.measurement);
        self.criterion.run_one(full, window, |b| f(b, input));
        self
    }

    /// End the group (report flushing is a no-op in the shim).
    pub fn finish(self) {}
}

/// Define a bench entry point running each target function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` for a bench target (used with `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_square(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.bench_function("square", |b| b.iter(|| black_box(21u64) * 2));
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &x| {
            b.iter(|| x * x)
        });
        group.finish();
    }

    criterion_group!(benches, bench_square);

    #[test]
    fn group_runs_without_panicking() {
        std::env::set_var("PDTL_BENCH_MS", "5");
        benches();
    }
}
