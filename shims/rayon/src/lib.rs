//! Offline stand-in for the `rayon` crate.
//!
//! The build environment cannot reach crates.io, so this shim provides
//! the subset of rayon's API the workspace uses — `par_iter()` /
//! `into_par_iter()` with `map` / `enumerate` / `sum` / `collect` /
//! `for_each`, plus `ThreadPoolBuilder` — with *real* data parallelism
//! implemented over `std::thread::scope`. Work is split into one
//! contiguous chunk per thread; results are reassembled in order, so
//! every operation is deterministic exactly like rayon's indexed
//! parallel iterators.
//!
//! Swap this for the real crate by editing `[workspace.dependencies]`
//! at the workspace root once a registry is available.

use std::cell::Cell;
use std::ops::Range;

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of threads terminal operations will use. The machine's
/// parallelism is cached: `available_parallelism` re-reads
/// cgroup/affinity state on every call (tens of microseconds on Linux),
/// which real rayon also avoids by sizing its pool once.
pub fn current_num_threads() -> usize {
    static MACHINE: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    POOL_THREADS.with(|t| t.get()).unwrap_or_else(|| {
        *MACHINE.get_or_init(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
    })
}

/// An indexed parallel iterator: a random-access source plus a stack of
/// per-item adapters. `eval(i)` computes the i-th item; terminal
/// operations shard `0..len` across threads.
pub trait ParallelIterator: Sized + Sync {
    /// Item type produced by this iterator.
    type Item: Send;

    /// Number of items.
    fn len(&self) -> usize;
    /// Whether the iterator is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Compute the i-th item (pure; called from worker threads).
    fn eval(&self, i: usize) -> Self::Item;

    /// Map each item through `f` in parallel.
    fn map<R: Send, F: Fn(Self::Item) -> R + Sync>(self, f: F) -> Map<Self, F> {
        Map { base: self, f }
    }

    /// Pair each item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Execute and collect all items in index order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        run_chunks(&self).into_iter().collect()
    }

    /// Execute and sum all items.
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        let n = self.len();
        let pieces = execute_mapped(&self, |it, range| range.map(|i| it.eval(i)).sum::<S>(), n);
        pieces.into_iter().sum()
    }

    /// Execute `f` on every item.
    fn for_each<F: Fn(Self::Item) + Sync>(self, f: F) {
        let n = self.len();
        execute_mapped(
            &self,
            |it, range| {
                for i in range {
                    f(it.eval(i));
                }
            },
            n,
        );
    }

    /// Execute and reduce with `op`, starting each chunk from `identity()`.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync,
    {
        let n = self.len();
        let pieces = execute_mapped(
            &self,
            |it, range| range.map(|i| it.eval(i)).fold(identity(), &op),
            n,
        );
        pieces.into_iter().fold(identity(), &op)
    }
}

/// Run `shard` over one contiguous index chunk per worker thread and
/// return the per-chunk results in chunk order.
fn execute_mapped<I, R, F>(it: &I, shard: F, n: usize) -> Vec<R>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(&I, Range<usize>) -> R + Sync,
{
    let threads = current_num_threads().clamp(1, n.max(1));
    if threads <= 1 || n <= 1 {
        return vec![shard(it, 0..n)];
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                let shard = &shard;
                s.spawn(move || shard(it, lo..hi))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// Evaluate every item in parallel, returning them in index order.
fn run_chunks<I: ParallelIterator>(it: &I) -> Vec<I::Item> {
    let n = it.len();
    let pieces = execute_mapped(
        it,
        |it, range| range.map(|i| it.eval(i)).collect::<Vec<_>>(),
        n,
    );
    let mut out = Vec::with_capacity(n);
    for p in pieces {
        out.extend(p);
    }
    out
}

/// `map` adapter.
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync,
{
    type Item = R;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn eval(&self, i: usize) -> R {
        (self.f)(self.base.eval(i))
    }
}

/// `enumerate` adapter.
pub struct Enumerate<I> {
    base: I,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);
    fn len(&self) -> usize {
        self.base.len()
    }
    fn eval(&self, i: usize) -> (usize, I::Item) {
        (i, self.base.eval(i))
    }
}

/// Parallel iterator over a slice (`par_iter`).
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;
    fn len(&self) -> usize {
        self.slice.len()
    }
    fn eval(&self, i: usize) -> &'a T {
        &self.slice[i]
    }
}

/// Parallel iterator over an integer range (`into_par_iter`).
pub struct RangeIter<T> {
    range: Range<T>,
}

macro_rules! impl_range_iter {
    ($($ty:ty),*) => {$(
        impl ParallelIterator for RangeIter<$ty> {
            type Item = $ty;
            fn len(&self) -> usize {
                if self.range.end > self.range.start {
                    (self.range.end - self.range.start) as usize
                } else {
                    0
                }
            }
            fn eval(&self, i: usize) -> $ty {
                self.range.start + i as $ty
            }
        }

        impl IntoParallelIterator for Range<$ty> {
            type Item = $ty;
            type Iter = RangeIter<$ty>;
            fn into_par_iter(self) -> RangeIter<$ty> {
                RangeIter { range: self }
            }
        }
    )*};
}

impl_range_iter!(u32, u64, usize, i32, i64);

/// Parallel iterator that owns a `Vec` (`Vec::into_par_iter`).
pub struct VecIter<T> {
    items: Vec<std::sync::Mutex<Option<T>>>,
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;
    fn len(&self) -> usize {
        self.items.len()
    }
    fn eval(&self, i: usize) -> T {
        self.items[i]
            .lock()
            .unwrap()
            .take()
            .expect("item consumed twice")
    }
}

/// Conversion into a parallel iterator (by value).
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Concrete iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecIter<T>;
    fn into_par_iter(self) -> VecIter<T> {
        VecIter {
            items: self
                .into_iter()
                .map(|t| std::sync::Mutex::new(Some(t)))
                .collect(),
        }
    }
}

/// Conversion into a borrowing parallel iterator (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: Send;
    /// Concrete iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Borrowing conversion.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;
    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;
    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

/// Error returned by [`ThreadPoolBuilder::build`]; never actually
/// produced by the shim.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// New builder with default (host) parallelism.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cap the pool at `n` threads (0 = host default, like rayon).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Build the pool. Infallible in the shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A scoped thread-count override; the shim spawns threads per terminal
/// operation rather than keeping a persistent pool.
pub struct ThreadPool {
    num_threads: Option<usize>,
}

impl ThreadPool {
    /// Run `f` with this pool's thread count governing parallel
    /// operations invoked inside it.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = POOL_THREADS.with(|t| t.replace(self.num_threads));
        let out = f();
        POOL_THREADS.with(|t| t.set(prev));
        out
    }

    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
    }
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().unwrap())
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn range_map_sum() {
        let s: u64 = (0u64..1000).into_par_iter().map(|x| x * 2).sum();
        assert_eq!(s, 999 * 1000);
    }

    #[test]
    fn slice_enumerate_collect_is_ordered() {
        let v: Vec<u32> = (0..257).collect();
        let out: Vec<(usize, u32)> = v.par_iter().enumerate().map(|(i, &x)| (i, x)).collect();
        assert_eq!(out.len(), 257);
        for (i, (j, x)) in out.into_iter().enumerate() {
            assert_eq!(i, j);
            assert_eq!(x, i as u32);
        }
    }

    #[test]
    fn vec_into_par_iter_moves_items() {
        let v = vec![String::from("a"), String::from("b"), String::from("c")];
        let out: Vec<String> = v.into_par_iter().map(|s| s + "!").collect();
        assert_eq!(out, ["a!", "b!", "c!"]);
    }

    #[test]
    fn pool_install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.install(|| assert_eq!(current_num_threads(), 2));
    }

    #[test]
    fn empty_range_sums_to_zero() {
        let s: u64 = (5u64..5).into_par_iter().sum();
        assert_eq!(s, 0);
    }
}
