//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}` — the
//! only surface the workspace uses — implemented with a
//! `Mutex<VecDeque>` + `Condvar` MPMC queue. Like crossbeam (and unlike
//! `std::sync::mpsc`), both endpoints are `Clone + Send + Sync` and
//! disconnection is observed when the opposite side is fully dropped.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent value back, like crossbeam's.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::recv_timeout`]: either the wait
    /// expired with the channel still empty, or every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed before a value arrived.
        Timeout,
        /// The channel is empty and all senders were dropped.
        Disconnected,
    }

    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: inner.clone(),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue `value`; fails only if every receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.inner.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(value);
            drop(q);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue the next value, blocking while the channel is empty;
        /// fails once it is empty and every sender was dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.inner.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Dequeue the next value, blocking at most `timeout`;
        /// distinguishes an expired wait from a disconnected channel.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                let Some(left) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, _) = self
                    .inner
                    .ready
                    .wait_timeout(q, left)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        }

        /// Non-blocking variant; `None` when currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.inner
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn round_trip_across_threads() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || {
                for i in 0..100u32 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<u32> = (0..100).map(|_| rx.recv().unwrap()).collect();
            h.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn recv_errors_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn recv_timeout_returns_value_then_timeout_then_disconnect() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(9).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(9));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_secs(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn recv_timeout_wakes_on_cross_thread_send() {
            let (tx, rx) = unbounded::<u8>();
            let h = std::thread::spawn(move || tx.send(42).unwrap());
            assert_eq!(rx.recv_timeout(Duration::from_secs(30)), Ok(42));
            h.join().unwrap();
        }

        #[test]
        fn send_errors_after_all_receivers_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }
    }
}
