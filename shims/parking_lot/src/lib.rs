//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free,
//! non-poisoning API (`lock()` returns the guard directly). Only the
//! types the workspace uses are provided.

/// A mutex whose `lock` never returns a poison error.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// A reader-writer lock whose accessors never return poison errors.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
