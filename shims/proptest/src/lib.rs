//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map`, range / tuple / `any` /
//! `prop::collection::vec` strategies, the `proptest!` macro with
//! `#![proptest_config(..)]`, and the `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! * values are generated from a deterministic per-(test, case) seed —
//!   runs are exactly reproducible and there is no persistence file;
//! * there is **no shrinking**: a failure reports the case number and
//!   the assertion message instead of a minimised input.

use std::ops::Range;

pub mod prelude {
    /// Lets `prop::collection::vec(..)` resolve, as real proptest's
    /// prelude does.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a collection of as-yet-unknown size (mirrors
    /// `proptest::sample::Index`): holds raw entropy and maps it onto
    /// `0..len` on demand.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Project onto `0..len`; `len` must be nonzero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

pub mod collection {
    use super::*;

    /// Admissible sizes for a generated collection.
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max_exclusive: r.end.max(r.start + 1),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of `elem` values with a length drawn
    /// from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Create a [`VecStrategy`] (mirrors `proptest::collection::vec`).
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.elem.new_value(rng)).collect()
        }
    }
}

/// Deterministic splitmix64 generator seeding each test case.
pub struct TestRng(u64);

impl TestRng {
    /// Seed from a test name and case index (deterministic across runs).
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(h ^ ((case as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// How a property test runs; only `cases` is honoured by the shim.
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property assertion (no shrinking in the shim).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

impl TestCaseError {
    /// Build a failure from a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

/// Generates values of `Self::Value` from a seeded RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.new_value(rng))
    }
}

/// Strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn new_value(&self, rng: &mut TestRng) -> $ty {
                assert!(self.end > self.start, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $ty
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A, B)(A, B, C)(A, B, C, D));

/// Types with a canonical "anything goes" strategy (see [`any`]).
pub trait Arbitrary {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for any value of `T` (mirrors `proptest::arbitrary::any`).
pub struct Any<T>(std::marker::PhantomData<T>);

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `proptest! { .. }` macro: expands each property into a plain
/// `#[test]` fn that draws `config.cases` seeded inputs and runs the
/// body, reporting the failing case number on error.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_props! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_props! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_props {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __rng = $crate::TestRng::for_case(stringify!($name), case);
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $pat = $crate::Strategy::new_value(&($strat), &mut __rng);)+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let Err(e) = outcome {
                    panic!(
                        "proptest property `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        case,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

/// Assert a condition inside `proptest!`, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside `proptest!`, failing the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Assert inequality inside `proptest!`, failing the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 1usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..5).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(mut v in prop::collection::vec(any::<u64>(), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            v.sort_unstable();
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }

        #[test]
        fn tuples_and_map_compose(p in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(p < 19, "sum {} out of range", p);
        }
    }

    #[test]
    fn determinism_across_seedings() {
        let mut a = crate::TestRng::for_case("t", 0);
        let mut b = crate::TestRng::for_case("t", 0);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
