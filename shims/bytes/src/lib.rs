//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the PDTL wire protocol uses: [`Bytes`] (a
//! cheaply-cloneable shared byte buffer with cursor-style reads via
//! [`Buf`]), [`BytesMut`] (an append buffer with little-endian writes
//! via [`BufMut`]), and `freeze`/`split_to` to move between them.

use std::ops::Deref;
use std::sync::Arc;

/// Cursor-style reads over a byte buffer (little-endian subset).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);
    /// Consume one byte.
    fn get_u8(&mut self) -> u8;
    /// Consume a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16;
    /// Consume a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Consume a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
    /// Consume `dst.len()` bytes into `dst`.
    fn copy_to_slice(&mut self, dst: &mut [u8]);
}

/// Append-style writes to a byte buffer (little-endian subset).
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16);
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
    /// Append a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

/// An immutable, cheaply-cloneable byte buffer. Clones and
/// [`Bytes::split_to`] slices share one allocation.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Buffer over a static byte slice. The shim copies (no
    /// zero-allocation static variant); semantics are identical.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// A sub-range of this buffer sharing the same allocation.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of range"
        );
        Bytes {
            data: self.data.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Split off and return the first `n` bytes; `self` keeps the rest.
    /// Both halves share the underlying allocation.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "split_to out of range");
        let head = Bytes {
            data: self.data.clone(),
            start: self.start,
            end: self.start + n,
        };
        self.start += n;
        head
    }

    /// Copy the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        Bytes {
            start: 0,
            end: data.len(),
            data,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of range");
        self.start += n;
    }

    fn get_u8(&mut self) -> u8 {
        let v = self.as_slice()[0];
        self.start += 1;
        v
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "copy_to_slice out of range");
        dst.copy_from_slice(&self.as_slice()[..dst.len()]);
        self.start += dst.len();
    }
}

/// A growable append buffer; [`BytesMut::freeze`] converts it into an
/// immutable [`Bytes`] without copying.
#[derive(Default, Clone, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_freeze_read_round_trip() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u16_le(0xBEAD);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(42);
        b.put_slice(b"hi");
        let mut frozen = b.freeze();
        assert_eq!(frozen.len(), 1 + 2 + 4 + 8 + 2);
        assert_eq!(frozen.get_u8(), 7);
        assert_eq!(frozen.get_u16_le(), 0xBEAD);
        assert_eq!(frozen.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(frozen.get_u64_le(), 42);
        let tail = frozen.split_to(2);
        assert_eq!(tail.to_vec(), b"hi");
        assert_eq!(frozen.remaining(), 0);
    }

    #[test]
    fn split_to_shares_allocation() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(head.to_vec(), [1, 2]);
        assert_eq!(b.to_vec(), [3, 4, 5]);
    }
}
