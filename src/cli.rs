//! Command-line interface logic for the `pdtl` binary.
//!
//! Subcommands:
//!
//! * `gen <dataset> <out-base> [--scale f] [--seed s]` — generate a
//!   dataset stand-in into PDTL binary format;
//! * `import <edges.txt> <out-base>` — convert a SNAP text edge list;
//! * `export <base> <edges.txt>` — write a graph back to text;
//! * `stats <base>` — print the Table-I row of a graph;
//! * `count <base> [--cores p] [--memory edges] [--naive]
//!   [--backend blocking|prefetch|mmap|uring]
//!   [--codec raw|delta-varint]` — multicore exact count; `--codec`
//!   selects the oriented graph's on-disk encoding (delta-varint cuts
//!   the multi-pass `bytes_read`);
//! * `cluster <base> [--nodes n] [--cores p] [--memory edges] [--tcp]
//!   [--backend b] [--codec c] [--fail-fast] [--fault plan]` —
//!   distributed exact count; `--fail-fast` aborts on the first node
//!   failure instead of retrying/reassigning, and `--fault` injects a
//!   deterministic fault plan (same grammar as `PDTL_FAULT`, e.g.
//!   `seed=42;kill=1`);
//! * `list <base> <out.bin> [--cores p]` — triangle listing to file;
//! * `verify <base>` — full integrity verification: open the graph
//!   (structural + quick manifest checks) and digest every file
//!   against the `.mft` manifest. Graphs written before the integrity
//!   layer (no manifest) pass with a note.
//!
//! Parsing is kept dependency-free and fully unit-tested; the binary is
//! a thin wrapper around [`run`].

use std::path::{Path, PathBuf};

use pdtl_cluster::{ClusterConfig, ClusterRunner, FailurePolicy, FaultPlan, TransportKind};
use pdtl_core::mgt::MgtOptions;
use pdtl_core::{BalanceStrategy, LocalConfig, LocalRunner};
use pdtl_graph::datasets::Dataset;
use pdtl_graph::{DiskGraph, GraphStats};
use pdtl_io::{Codec, IoBackend, IoStats, MemoryBudget};

/// A parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Generate a named dataset.
    Gen {
        /// Dataset name (`livejournal|orkut|twitter|yahoo|rmat-K`).
        dataset: String,
        /// Output base path.
        out: PathBuf,
        /// Scale factor.
        scale: f64,
    },
    /// Import a text edge list.
    Import {
        /// Input text file.
        input: PathBuf,
        /// Output base path.
        out: PathBuf,
    },
    /// Export to a text edge list.
    Export {
        /// Input base path.
        base: PathBuf,
        /// Output text file.
        out: PathBuf,
    },
    /// Print dataset statistics.
    Stats {
        /// Input base path.
        base: PathBuf,
    },
    /// Local multicore count.
    Count {
        /// Input base path.
        base: PathBuf,
        /// Cores.
        cores: usize,
        /// Memory budget in edges.
        memory: usize,
        /// Use the naive equal-edges split.
        naive: bool,
        /// I/O backend override (`None` = default / `PDTL_IO_BACKEND`).
        backend: Option<IoBackend>,
        /// On-disk codec override (`None` = default / `PDTL_CODEC`).
        codec: Option<Codec>,
    },
    /// Distributed count.
    Cluster {
        /// Input base path.
        base: PathBuf,
        /// Nodes.
        nodes: usize,
        /// Cores per node.
        cores: usize,
        /// Memory budget in edges.
        memory: usize,
        /// Use TCP transport.
        tcp: bool,
        /// I/O backend override (`None` = default / `PDTL_IO_BACKEND`).
        backend: Option<IoBackend>,
        /// Abort on the first node failure instead of retrying.
        fail_fast: bool,
        /// Fault-injection plan (`None` = default / `PDTL_FAULT`).
        fault: Option<String>,
        /// On-disk codec override (`None` = default / `PDTL_CODEC`).
        codec: Option<Codec>,
    },
    /// Triangle listing to a binary file.
    List {
        /// Input base path.
        base: PathBuf,
        /// Output triangle file.
        out: PathBuf,
        /// Cores.
        cores: usize,
    },
    /// Full integrity verification against the `.mft` manifest.
    Verify {
        /// Input base path.
        base: PathBuf,
    },
}

/// Usage text.
pub const USAGE: &str = "usage: pdtl <gen|import|export|stats|count|cluster|list|verify> ... \
(see crate docs for flags)";

/// Parse an argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Command, String> {
    let mut pos: Vec<&String> = Vec::new();
    let mut flags: std::collections::HashMap<String, String> = Default::default();
    let mut bools: std::collections::HashSet<String> = Default::default();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            match name {
                "naive" | "tcp" | "fail-fast" => {
                    bools.insert(name.to_string());
                }
                _ => {
                    let v = it
                        .next()
                        .ok_or_else(|| format!("flag --{name} needs a value"))?;
                    flags.insert(name.to_string(), v.clone());
                }
            }
        } else {
            pos.push(a);
        }
    }
    let get_usize = |flags: &std::collections::HashMap<String, String>,
                     key: &str,
                     default: usize|
     -> Result<usize, String> {
        match flags.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad --{key}: {v:?}")),
        }
    };
    let get_backend =
        |flags: &std::collections::HashMap<String, String>| -> Result<Option<IoBackend>, String> {
            match flags.get("backend") {
                None => Ok(None),
                Some(v) => IoBackend::parse(v).map(Some).ok_or(format!(
                    "bad --backend: {v:?} (blocking|prefetch|mmap|uring)"
                )),
            }
        };
    let get_codec =
        |flags: &std::collections::HashMap<String, String>| -> Result<Option<Codec>, String> {
            match flags.get("codec") {
                None => Ok(None),
                Some(v) => Codec::parse(v)
                    .map(Some)
                    .ok_or(format!("bad --codec: {v:?} (raw|delta-varint)")),
            }
        };
    let cmd = pos.first().ok_or(USAGE.to_string())?.as_str();
    let need = |i: usize, what: &str| -> Result<PathBuf, String> {
        pos.get(i)
            .map(PathBuf::from)
            .ok_or(format!("{cmd}: missing {what}"))
    };
    match cmd {
        "gen" => Ok(Command::Gen {
            dataset: pos
                .get(1)
                .ok_or("gen: missing dataset name".to_string())?
                .to_string(),
            out: need(2, "output base")?,
            scale: match flags.get("scale") {
                None => 1.0,
                Some(v) => v.parse().map_err(|_| format!("bad --scale: {v:?}"))?,
            },
        }),
        "import" => Ok(Command::Import {
            input: need(1, "input file")?,
            out: need(2, "output base")?,
        }),
        "export" => Ok(Command::Export {
            base: need(1, "input base")?,
            out: need(2, "output file")?,
        }),
        "stats" => Ok(Command::Stats {
            base: need(1, "input base")?,
        }),
        "count" => Ok(Command::Count {
            base: need(1, "input base")?,
            cores: get_usize(&flags, "cores", 4)?,
            memory: get_usize(&flags, "memory", 1 << 20)?,
            naive: bools.contains("naive"),
            backend: get_backend(&flags)?,
            codec: get_codec(&flags)?,
        }),
        "cluster" => Ok(Command::Cluster {
            base: need(1, "input base")?,
            nodes: get_usize(&flags, "nodes", 2)?,
            cores: get_usize(&flags, "cores", 2)?,
            memory: get_usize(&flags, "memory", 1 << 20)?,
            tcp: bools.contains("tcp"),
            backend: get_backend(&flags)?,
            fail_fast: bools.contains("fail-fast"),
            fault: flags.get("fault").cloned(),
            codec: get_codec(&flags)?,
        }),
        "list" => Ok(Command::List {
            base: need(1, "input base")?,
            out: need(2, "output file")?,
            cores: get_usize(&flags, "cores", 4)?,
        }),
        "verify" => Ok(Command::Verify {
            base: need(1, "input base")?,
        }),
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

/// Resolve a dataset name.
pub fn dataset_by_name(name: &str) -> Result<Dataset, String> {
    let lower = name.to_ascii_lowercase();
    if let Some(k) = lower.strip_prefix("rmat-") {
        let k: u32 = k.parse().map_err(|_| format!("bad RMAT scale {k:?}"))?;
        if k >= 31 {
            return Err("RMAT scale must be < 31".to_string());
        }
        return Ok(Dataset::Rmat(k));
    }
    match lower.as_str() {
        "livejournal" | "livej1" | "lj" => Ok(Dataset::LiveJournal),
        "orkut" => Ok(Dataset::Orkut),
        "twitter" => Ok(Dataset::Twitter),
        "yahoo" => Ok(Dataset::Yahoo),
        other => Err(format!(
            "unknown dataset {other:?} (livejournal|orkut|twitter|yahoo|rmat-K)"
        )),
    }
}

fn work_dir(base: &Path, tag: &str) -> PathBuf {
    let name = base
        .file_name()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "graph".into());
    std::env::temp_dir().join(format!("pdtl-cli-{tag}-{name}-{}", std::process::id()))
}

/// Execute a parsed command, writing human output via `out`.
pub fn run(cmd: Command, out: &mut impl std::io::Write) -> Result<(), String> {
    let stats = IoStats::new();
    let fail = |e: &dyn std::fmt::Display| e.to_string();
    match cmd {
        Command::Gen {
            dataset,
            out: base,
            scale,
        } => {
            let ds = dataset_by_name(&dataset)?;
            let g = ds.build_scaled(scale).map_err(|e| fail(&e))?;
            let dg = DiskGraph::write(&g, &base, &stats).map_err(|e| fail(&e))?;
            writeln!(
                out,
                "wrote {} ({} vertices, {} edges)",
                dg.base().display(),
                g.num_vertices(),
                g.num_edges()
            )
            .map_err(|e| fail(&e))
        }
        Command::Import { input, out: base } => {
            let dg =
                pdtl_graph::text::import_edge_list(&input, &base, &stats).map_err(|e| fail(&e))?;
            writeln!(
                out,
                "imported {} vertices, {} adjacency entries",
                dg.num_vertices(),
                dg.adj_len()
            )
            .map_err(|e| fail(&e))
        }
        Command::Export { base, out: path } => {
            let dg = DiskGraph::open(&base, &stats).map_err(|e| fail(&e))?;
            let g = dg.load_csr(&stats).map_err(|e| fail(&e))?;
            pdtl_graph::text::write_edge_list(&g, &path).map_err(|e| fail(&e))?;
            writeln!(
                out,
                "exported {} edges to {}",
                g.num_edges(),
                path.display()
            )
            .map_err(|e| fail(&e))
        }
        Command::Stats { base } => {
            let dg = DiskGraph::open(&base, &stats).map_err(|e| fail(&e))?;
            let g = dg.load_csr(&stats).map_err(|e| fail(&e))?;
            writeln!(out, "{}", GraphStats::header()).map_err(|e| fail(&e))?;
            let name = base
                .file_name()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            writeln!(out, "{}", GraphStats::compute(name, &g).row()).map_err(|e| fail(&e))
        }
        Command::Count {
            base,
            cores,
            memory,
            naive,
            backend,
            codec,
        } => {
            let dg = DiskGraph::open(&base, &stats).map_err(|e| fail(&e))?;
            let mut mgt = MgtOptions::default();
            if let Some(b) = backend {
                mgt.backend = b;
            }
            if let Some(c) = codec {
                mgt.codec = c;
            }
            let runner = LocalRunner::new(LocalConfig {
                cores,
                budget: MemoryBudget::edges(memory),
                balance: if naive {
                    BalanceStrategy::EqualEdges
                } else {
                    BalanceStrategy::InDegree
                },
                mgt,
            })
            .map_err(|e| fail(&e))?;
            let dir = work_dir(&base, "count");
            let report = runner.run(&dg, &dir).map_err(|e| fail(&e))?;
            let _ = std::fs::remove_dir_all(&dir);
            writeln!(
                out,
                "triangles: {}\nwall: {:?} (orientation {:?}, calc {:?})",
                report.triangles,
                report.wall,
                report.orientation.breakdown.wall,
                report.calc_wall()
            )
            .map_err(|e| fail(&e))
        }
        Command::Cluster {
            base,
            nodes,
            cores,
            memory,
            tcp,
            backend,
            fail_fast,
            fault,
            codec,
        } => {
            let dg = DiskGraph::open(&base, &stats).map_err(|e| fail(&e))?;
            let mut mgt = MgtOptions::default();
            if let Some(b) = backend {
                mgt.backend = b;
            }
            if let Some(c) = codec {
                mgt.codec = c;
            }
            let runner = ClusterRunner::new(ClusterConfig {
                nodes,
                cores_per_node: cores,
                budget: MemoryBudget::edges(memory),
                transport: if tcp {
                    TransportKind::Tcp
                } else {
                    TransportKind::InProc
                },
                mgt,
                policy: if fail_fast {
                    FailurePolicy::FailFast
                } else {
                    FailurePolicy::default()
                },
                fault: match fault {
                    Some(plan) => {
                        FaultPlan::parse(&plan).map_err(|e| format!("bad --fault: {e}"))?
                    }
                    None => FaultPlan::default_from_env(),
                },
                ..Default::default()
            })
            .map_err(|e| fail(&e))?;
            let dir = work_dir(&base, "cluster");
            let report = runner.run(&dg, &dir).map_err(|e| fail(&e))?;
            let _ = std::fs::remove_dir_all(&dir);
            writeln!(
                out,
                "triangles: {}\nwall: {:?} (calc {:?}, avg copy {:?})\nnetwork: {} bytes",
                report.triangles,
                report.wall,
                report.calc_wall(),
                report.avg_copy(),
                report.network.total()
            )
            .map_err(|e| fail(&e))?;
            if report.retries > 0 || !report.failed_nodes.is_empty() {
                writeln!(
                    out,
                    "faults: {} retries, {} ranges reassigned, failed nodes {:?}",
                    report.retries, report.reassigned_ranges, report.failed_nodes
                )
                .map_err(|e| fail(&e))?;
            }
            Ok(())
        }
        Command::List {
            base,
            out: path,
            cores,
        } => {
            let dg = DiskGraph::open(&base, &stats).map_err(|e| fail(&e))?;
            let runner = LocalRunner::new(LocalConfig {
                cores,
                budget: MemoryBudget::default(),
                balance: BalanceStrategy::InDegree,
                ..Default::default()
            })
            .map_err(|e| fail(&e))?;
            let dir = work_dir(&base, "list");
            let (report, triangles) = runner.run_listing(&dg, &dir).map_err(|e| fail(&e))?;
            let _ = std::fs::remove_dir_all(&dir);
            let sink_stats = IoStats::new();
            let mut sink =
                pdtl_core::sink::FileSink::create(&path, sink_stats).map_err(|e| fail(&e))?;
            use pdtl_core::sink::TriangleSink;
            for (u, v, w) in triangles {
                sink.emit(u, v, w);
            }
            let written = sink.finish().map_err(|e| fail(&e))?;
            writeln!(
                out,
                "listed {} triangles to {} ({} bytes)",
                report.triangles,
                path.display(),
                written * 12
            )
            .map_err(|e| fail(&e))
        }
        Command::Verify { base } => {
            // `open` runs the structural checks plus the quick manifest
            // tier; `verify_full` then digests every covered file.
            let dg = DiskGraph::open(&base, &stats).map_err(|e| fail(&e))?;
            match dg.verify_full().map_err(|e| fail(&e))? {
                Some(report) => writeln!(
                    out,
                    "ok: {} files verified, {} bytes digested",
                    report.files, report.bytes
                )
                .map_err(|e| fail(&e)),
                None => writeln!(
                    out,
                    "ok (structural checks only): no manifest — graph predates \
                     the integrity layer; rewrite it to gain digests"
                )
                .map_err(|e| fail(&e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("pdtl-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn parses_gen() {
        let cmd = parse(&args("gen rmat-8 /tmp/g --scale 0.5")).unwrap();
        assert_eq!(
            cmd,
            Command::Gen {
                dataset: "rmat-8".into(),
                out: "/tmp/g".into(),
                scale: 0.5
            }
        );
    }

    #[test]
    fn parses_count_with_flags() {
        let cmd = parse(&args("count /tmp/g --cores 8 --memory 4096 --naive")).unwrap();
        assert_eq!(
            cmd,
            Command::Count {
                base: "/tmp/g".into(),
                cores: 8,
                memory: 4096,
                naive: true,
                backend: None,
                codec: None
            }
        );
    }

    #[test]
    fn parses_cluster_defaults() {
        let cmd = parse(&args("cluster /tmp/g")).unwrap();
        assert_eq!(
            cmd,
            Command::Cluster {
                base: "/tmp/g".into(),
                nodes: 2,
                cores: 2,
                memory: 1 << 20,
                tcp: false,
                backend: None,
                fail_fast: false,
                fault: None,
                codec: None
            }
        );
    }

    #[test]
    fn parses_cluster_fault_flags() {
        let cmd = parse(&args(
            "cluster /tmp/g --tcp --fail-fast --fault seed=42;kill=1",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Cluster {
                base: "/tmp/g".into(),
                nodes: 2,
                cores: 2,
                memory: 1 << 20,
                tcp: true,
                backend: None,
                fail_fast: true,
                fault: Some("seed=42;kill=1".into()),
                codec: None
            }
        );
        assert!(parse(&args("cluster /tmp/g --fault")).is_err());
    }

    #[test]
    fn parses_backend_flag() {
        for (name, backend) in [
            ("blocking", IoBackend::Blocking),
            ("prefetch", IoBackend::Prefetch),
            ("MMAP", IoBackend::Mmap),
            ("uring", IoBackend::Uring),
            ("io_uring", IoBackend::Uring),
        ] {
            let cmd = parse(&args(&format!("count /tmp/g --backend {name}"))).unwrap();
            let Command::Count { backend: got, .. } = cmd else {
                panic!("expected Count");
            };
            assert_eq!(got, Some(backend), "{name}");
        }
        let cmd = parse(&args("cluster /tmp/g --backend mmap")).unwrap();
        assert!(matches!(
            cmd,
            Command::Cluster {
                backend: Some(IoBackend::Mmap),
                ..
            }
        ));
        assert!(parse(&args("count /tmp/g --backend io-urng")).is_err());
    }

    #[test]
    fn parses_codec_flag() {
        for (name, codec) in [
            ("raw", Codec::Raw),
            ("delta-varint", Codec::DeltaVarint),
            ("delta_varint", Codec::DeltaVarint),
            ("VARINT", Codec::DeltaVarint),
        ] {
            let cmd = parse(&args(&format!("count /tmp/g --codec {name}"))).unwrap();
            let Command::Count { codec: got, .. } = cmd else {
                panic!("expected Count");
            };
            assert_eq!(got, Some(codec), "{name}");
        }
        let cmd = parse(&args("cluster /tmp/g --codec delta-varint")).unwrap();
        assert!(matches!(
            cmd,
            Command::Cluster {
                codec: Some(Codec::DeltaVarint),
                ..
            }
        ));
        assert!(parse(&args("count /tmp/g --codec gzip")).is_err());
    }

    #[test]
    fn parses_verify() {
        assert_eq!(
            parse(&args("verify /tmp/g")).unwrap(),
            Command::Verify {
                base: "/tmp/g".into()
            }
        );
        assert!(parse(&args("verify")).is_err());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&args("")).is_err());
        assert!(parse(&args("frobnicate x")).is_err());
        assert!(parse(&args("gen")).is_err());
        assert!(parse(&args("count /g --cores notanumber")).is_err());
        assert!(parse(&args("count /g --memory")).is_err());
    }

    #[test]
    fn dataset_names_resolve() {
        assert_eq!(dataset_by_name("twitter").unwrap(), Dataset::Twitter);
        assert_eq!(dataset_by_name("LJ").unwrap(), Dataset::LiveJournal);
        assert_eq!(dataset_by_name("rmat-9").unwrap(), Dataset::Rmat(9));
        assert!(dataset_by_name("rmat-99").is_err());
        assert!(dataset_by_name("facebook").is_err());
    }

    #[test]
    fn end_to_end_gen_stats_count() {
        let base = tmp("e2e");
        let mut out = Vec::new();
        run(
            Command::Gen {
                dataset: "rmat-7".into(),
                out: base.clone(),
                scale: 1.0,
            },
            &mut out,
        )
        .unwrap();
        run(Command::Stats { base: base.clone() }, &mut out).unwrap();
        run(
            Command::Count {
                base: base.clone(),
                cores: 2,
                memory: 1024,
                naive: false,
                backend: Some(IoBackend::Mmap),
                codec: Some(Codec::DeltaVarint),
            },
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("wrote"));
        assert!(text.contains("MaxDeg"));
        assert!(text.contains("triangles:"));
        // the reported count matches the oracle
        let g = Dataset::Rmat(7).build().unwrap();
        let expected = pdtl_graph::verify::triangle_count(&g);
        assert!(text.contains(&format!("triangles: {expected}")));
    }

    #[test]
    fn end_to_end_verify() {
        let base = tmp("verify");
        let mut out = Vec::new();
        run(
            Command::Gen {
                dataset: "rmat-6".into(),
                out: base.clone(),
                scale: 1.0,
            },
            &mut out,
        )
        .unwrap();
        // Freshly written graph verifies clean.
        run(Command::Verify { base: base.clone() }, &mut out).unwrap();
        let text = String::from_utf8(out.clone()).unwrap();
        assert!(text.contains("files verified"), "{text}");

        // A flipped bit anywhere is a typed error, not a panic.
        let dg = DiskGraph::open(&base, &IoStats::new()).unwrap();
        let mut bytes = std::fs::read(dg.adj_path()).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x04;
        std::fs::write(dg.adj_path(), &bytes).unwrap();
        let err = run(Command::Verify { base: base.clone() }, &mut out).unwrap_err();
        assert!(
            err.contains("corrupt") || err.contains("truncated"),
            "{err}"
        );
        bytes[mid] ^= 0x04;
        std::fs::write(dg.adj_path(), &bytes).unwrap();

        // A pre-integrity graph (no manifest) passes with a note.
        std::fs::remove_file(dg.mft_path()).unwrap();
        out.clear();
        run(Command::Verify { base }, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("no manifest"), "{text}");
    }

    #[test]
    fn end_to_end_import_export_cluster_list() {
        let g = Dataset::Rmat(6).build().unwrap();
        let txt = tmp("roundtrip.txt");
        pdtl_graph::text::write_edge_list(&g, &txt).unwrap();
        let base = tmp("imported");
        let mut out = Vec::new();
        run(
            Command::Import {
                input: txt.clone(),
                out: base.clone(),
            },
            &mut out,
        )
        .unwrap();
        run(
            Command::Cluster {
                base: base.clone(),
                nodes: 2,
                cores: 2,
                memory: 512,
                tcp: false,
                backend: None,
                fail_fast: false,
                fault: None,
                codec: Some(Codec::DeltaVarint),
            },
            &mut out,
        )
        .unwrap();
        let listing = tmp("tri.bin");
        run(
            Command::List {
                base: base.clone(),
                out: listing.clone(),
                cores: 2,
            },
            &mut out,
        )
        .unwrap();
        let exported = tmp("exported.txt");
        run(
            Command::Export {
                base,
                out: exported.clone(),
            },
            &mut out,
        )
        .unwrap();

        let text = String::from_utf8(out).unwrap();
        let expected = pdtl_graph::verify::triangle_count(&g);
        assert!(text.contains(&format!("triangles: {expected}")));
        assert!(text.contains("listed"));
        // exported file re-imports to the same graph
        let (g2, _) = pdtl_graph::text::read_edge_list(&exported).unwrap();
        assert_eq!(pdtl_graph::verify::triangle_count(&g2), expected);
        // listing file has the right record count
        let stats = IoStats::new();
        let listed = pdtl_core::sink::read_triangle_file(&listing, stats).unwrap();
        assert_eq!(listed.len() as u64, expected);
    }
}
