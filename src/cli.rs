//! Command-line interface logic for the `pdtl` binary.
//!
//! Subcommands:
//!
//! * `gen <dataset> <out-base> [--scale f] [--seed s]` — generate a
//!   dataset stand-in into PDTL binary format;
//! * `import <edges.txt> <out-base>` — convert a SNAP text edge list;
//! * `export <base> <edges.txt>` — write a graph back to text;
//! * `stats <base>` — print the Table-I row of a graph;
//! * `count <base> [--cores p] [--memory edges] [--naive]
//!   [--backend blocking|prefetch|mmap|uring]
//!   [--codec raw|delta-varint]` — multicore exact count; `--codec`
//!   selects the oriented graph's on-disk encoding (delta-varint cuts
//!   the multi-pass `bytes_read`);
//! * `cluster <base> [--nodes n] [--cores p] [--memory edges] [--tcp]
//!   [--backend b] [--codec c] [--fail-fast] [--fault plan]` —
//!   distributed exact count; `--fail-fast` aborts on the first node
//!   failure instead of retrying/reassigning, and `--fault` injects a
//!   deterministic fault plan (same grammar as `PDTL_FAULT`, e.g.
//!   `seed=42;kill=1`);
//! * `list <base> <out.bin> [--cores p]` — triangle listing to file;
//! * `verify <base>` — full integrity verification: open the graph
//!   (structural + quick manifest checks) and digest every file
//!   against the `.mft` manifest. Graphs written before the integrity
//!   layer (no manifest) pass with a note;
//! * `serve <dir> [--addr host:port] [--workers n] [--cores p]
//!   [--memory edges]` — resident daemon: verify + orient every graph
//!   under `<dir>` once, then answer concurrent queries until a client
//!   sends shutdown;
//! * `query <addr> stats|shutdown` or `query <addr> <graph>
//!   <count|list|clustering|ktruss|doulion> [--k k] [--p f] [--seed s]
//!   [--trials t] [--limit l] [--cores p] [--memory edges]
//!   [--backend b] [--codec c]` — one serve-mode request.
//!
//! Parsing is kept dependency-free and fully unit-tested; the binary is
//! a thin wrapper around [`run`].

use std::path::{Path, PathBuf};

use pdtl_cluster::{
    Catalog, ClusterConfig, ClusterRunner, FailurePolicy, FaultPlan, QueryOperation, QueryOptions,
    ServeClient, ServeConfig, Server, TransportKind,
};
use pdtl_core::mgt::MgtOptions;
use pdtl_core::{BalanceStrategy, LocalConfig, LocalRunner, ScratchDir};
use pdtl_graph::datasets::Dataset;
use pdtl_graph::{DiskGraph, GraphStats};
use pdtl_io::{Codec, IoBackend, IoStats, MemoryBudget};

/// A parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Generate a named dataset.
    Gen {
        /// Dataset name (`livejournal|orkut|twitter|yahoo|rmat-K`).
        dataset: String,
        /// Output base path.
        out: PathBuf,
        /// Scale factor.
        scale: f64,
    },
    /// Import a text edge list.
    Import {
        /// Input text file.
        input: PathBuf,
        /// Output base path.
        out: PathBuf,
    },
    /// Export to a text edge list.
    Export {
        /// Input base path.
        base: PathBuf,
        /// Output text file.
        out: PathBuf,
    },
    /// Print dataset statistics.
    Stats {
        /// Input base path.
        base: PathBuf,
    },
    /// Local multicore count.
    Count {
        /// Input base path.
        base: PathBuf,
        /// Cores.
        cores: usize,
        /// Memory budget in edges.
        memory: usize,
        /// Use the naive equal-edges split.
        naive: bool,
        /// I/O backend override (`None` = default / `PDTL_IO_BACKEND`).
        backend: Option<IoBackend>,
        /// On-disk codec override (`None` = default / `PDTL_CODEC`).
        codec: Option<Codec>,
    },
    /// Distributed count.
    Cluster {
        /// Input base path.
        base: PathBuf,
        /// Nodes.
        nodes: usize,
        /// Cores per node.
        cores: usize,
        /// Memory budget in edges.
        memory: usize,
        /// Use TCP transport.
        tcp: bool,
        /// I/O backend override (`None` = default / `PDTL_IO_BACKEND`).
        backend: Option<IoBackend>,
        /// Abort on the first node failure instead of retrying.
        fail_fast: bool,
        /// Fault-injection plan (`None` = default / `PDTL_FAULT`).
        fault: Option<String>,
        /// On-disk codec override (`None` = default / `PDTL_CODEC`).
        codec: Option<Codec>,
    },
    /// Triangle listing to a binary file.
    List {
        /// Input base path.
        base: PathBuf,
        /// Output triangle file.
        out: PathBuf,
        /// Cores.
        cores: usize,
    },
    /// Full integrity verification against the `.mft` manifest.
    Verify {
        /// Input base path.
        base: PathBuf,
    },
    /// Resident graph-catalog daemon.
    Serve {
        /// Directory of PDTL graph bases to serve.
        dir: PathBuf,
        /// Bind address.
        addr: String,
        /// Worker-pool size.
        workers: usize,
        /// Default cores per query.
        cores: usize,
        /// Admission budget in edges across all in-flight queries.
        memory: usize,
    },
    /// One client request against a running daemon.
    Query {
        /// Daemon address (`host:port`).
        addr: String,
        /// What to ask.
        request: QueryRequest,
    },
}

/// The request a `pdtl query` invocation sends.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryRequest {
    /// Fetch and print the daemon's aggregate counters.
    Stats,
    /// Ask the daemon to drain and exit.
    Shutdown,
    /// Run one analytics operation against a catalog graph.
    Run {
        /// Catalog graph name.
        graph: String,
        /// Operation to run.
        op: QueryOperation,
        /// Per-query engine knobs.
        options: QueryOptions,
    },
}

/// Usage text.
pub const USAGE: &str = "usage: pdtl \
<gen|import|export|stats|count|cluster|list|verify|serve|query> ... \
(see crate docs for flags)";

/// Parse an argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Command, String> {
    let mut pos: Vec<&String> = Vec::new();
    let mut flags: std::collections::HashMap<String, String> = Default::default();
    let mut bools: std::collections::HashSet<String> = Default::default();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            match name {
                "naive" | "tcp" | "fail-fast" => {
                    bools.insert(name.to_string());
                }
                _ => {
                    let v = it
                        .next()
                        .ok_or_else(|| format!("flag --{name} needs a value"))?;
                    flags.insert(name.to_string(), v.clone());
                }
            }
        } else {
            pos.push(a);
        }
    }
    let get_usize = |flags: &std::collections::HashMap<String, String>,
                     key: &str,
                     default: usize|
     -> Result<usize, String> {
        match flags.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad --{key}: {v:?}")),
        }
    };
    let get_backend =
        |flags: &std::collections::HashMap<String, String>| -> Result<Option<IoBackend>, String> {
            match flags.get("backend") {
                None => Ok(None),
                Some(v) => IoBackend::parse(v).map(Some).ok_or(format!(
                    "bad --backend: {v:?} (blocking|prefetch|mmap|uring)"
                )),
            }
        };
    let get_codec =
        |flags: &std::collections::HashMap<String, String>| -> Result<Option<Codec>, String> {
            match flags.get("codec") {
                None => Ok(None),
                Some(v) => Codec::parse(v)
                    .map(Some)
                    .ok_or(format!("bad --codec: {v:?} (raw|delta-varint)")),
            }
        };
    let cmd = pos.first().ok_or(USAGE.to_string())?.as_str();
    let need = |i: usize, what: &str| -> Result<PathBuf, String> {
        pos.get(i)
            .map(PathBuf::from)
            .ok_or(format!("{cmd}: missing {what}"))
    };
    match cmd {
        "gen" => Ok(Command::Gen {
            dataset: pos
                .get(1)
                .ok_or("gen: missing dataset name".to_string())?
                .to_string(),
            out: need(2, "output base")?,
            scale: match flags.get("scale") {
                None => 1.0,
                Some(v) => v.parse().map_err(|_| format!("bad --scale: {v:?}"))?,
            },
        }),
        "import" => Ok(Command::Import {
            input: need(1, "input file")?,
            out: need(2, "output base")?,
        }),
        "export" => Ok(Command::Export {
            base: need(1, "input base")?,
            out: need(2, "output file")?,
        }),
        "stats" => Ok(Command::Stats {
            base: need(1, "input base")?,
        }),
        "count" => Ok(Command::Count {
            base: need(1, "input base")?,
            cores: get_usize(&flags, "cores", 4)?,
            memory: get_usize(&flags, "memory", 1 << 20)?,
            naive: bools.contains("naive"),
            backend: get_backend(&flags)?,
            codec: get_codec(&flags)?,
        }),
        "cluster" => Ok(Command::Cluster {
            base: need(1, "input base")?,
            nodes: get_usize(&flags, "nodes", 2)?,
            cores: get_usize(&flags, "cores", 2)?,
            memory: get_usize(&flags, "memory", 1 << 20)?,
            tcp: bools.contains("tcp"),
            backend: get_backend(&flags)?,
            fail_fast: bools.contains("fail-fast"),
            fault: flags.get("fault").cloned(),
            codec: get_codec(&flags)?,
        }),
        "list" => Ok(Command::List {
            base: need(1, "input base")?,
            out: need(2, "output file")?,
            cores: get_usize(&flags, "cores", 4)?,
        }),
        "verify" => Ok(Command::Verify {
            base: need(1, "input base")?,
        }),
        "serve" => Ok(Command::Serve {
            dir: need(1, "catalog directory")?,
            addr: flags
                .get("addr")
                .cloned()
                .unwrap_or_else(|| "127.0.0.1:0".into()),
            workers: get_usize(&flags, "workers", 4)?,
            cores: get_usize(&flags, "cores", 2)?,
            memory: get_usize(&flags, "memory", 1 << 22)?,
        }),
        "query" => {
            let addr = pos
                .get(1)
                .ok_or("query: missing daemon address".to_string())?
                .to_string();
            let sub = pos
                .get(2)
                .ok_or("query: missing <stats|shutdown|graph>".to_string())?
                .as_str();
            let request = match sub {
                "stats" => QueryRequest::Stats,
                "shutdown" => QueryRequest::Shutdown,
                graph => {
                    let opname = pos
                        .get(3)
                        .ok_or("query: missing operation".to_string())?
                        .as_str();
                    let op = match opname {
                        "count" => QueryOperation::Count,
                        "list" => QueryOperation::List {
                            limit: get_usize(&flags, "limit", 1000)? as u32,
                        },
                        "clustering" => QueryOperation::Clustering,
                        "ktruss" => QueryOperation::KTruss {
                            k: get_usize(&flags, "k", 3)? as u32,
                        },
                        "doulion" => {
                            let p: f64 = match flags.get("p") {
                                None => 0.5,
                                Some(v) => v.parse().map_err(|_| format!("bad --p: {v:?}"))?,
                            };
                            if !(0.0..=1.0).contains(&p) {
                                return Err(format!("bad --p: {p} (want 0..=1)"));
                            }
                            QueryOperation::Doulion {
                                p_ppm: (p * 1_000_000.0).round() as u32,
                                seed: get_usize(&flags, "seed", 42)? as u64,
                                trials: get_usize(&flags, "trials", 8)? as u32,
                            }
                        }
                        other => {
                            return Err(format!(
                                "unknown operation {other:?} \
                                 (count|list|clustering|ktruss|doulion)"
                            ))
                        }
                    };
                    let options = QueryOptions {
                        cores: get_usize(&flags, "cores", 0)? as u32,
                        budget_edges: get_usize(&flags, "memory", 1 << 20)? as u64,
                        backend: get_backend(&flags)?.unwrap_or_else(IoBackend::default_from_env),
                        codec: get_codec(&flags)?.unwrap_or_else(Codec::default_from_env),
                        ..Default::default()
                    };
                    QueryRequest::Run {
                        graph: graph.to_string(),
                        op,
                        options,
                    }
                }
            };
            Ok(Command::Query { addr, request })
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

/// Resolve a dataset name.
pub fn dataset_by_name(name: &str) -> Result<Dataset, String> {
    let lower = name.to_ascii_lowercase();
    if let Some(k) = lower.strip_prefix("rmat-") {
        let k: u32 = k.parse().map_err(|_| format!("bad RMAT scale {k:?}"))?;
        if k >= 31 {
            return Err("RMAT scale must be < 31".to_string());
        }
        return Ok(Dataset::Rmat(k));
    }
    match lower.as_str() {
        "livejournal" | "livej1" | "lj" => Ok(Dataset::LiveJournal),
        "orkut" => Ok(Dataset::Orkut),
        "twitter" => Ok(Dataset::Twitter),
        "yahoo" => Ok(Dataset::Yahoo),
        other => Err(format!(
            "unknown dataset {other:?} (livejournal|orkut|twitter|yahoo|rmat-K)"
        )),
    }
}

fn work_dir(base: &Path, tag: &str) -> PathBuf {
    let name = base
        .file_name()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "graph".into());
    std::env::temp_dir().join(format!("pdtl-cli-{tag}-{name}-{}", std::process::id()))
}

/// Execute a parsed command, writing human output via `out`.
pub fn run(cmd: Command, out: &mut impl std::io::Write) -> Result<(), String> {
    let stats = IoStats::new();
    let fail = |e: &dyn std::fmt::Display| e.to_string();
    match cmd {
        Command::Gen {
            dataset,
            out: base,
            scale,
        } => {
            let ds = dataset_by_name(&dataset)?;
            let g = ds.build_scaled(scale).map_err(|e| fail(&e))?;
            let dg = DiskGraph::write(&g, &base, &stats).map_err(|e| fail(&e))?;
            writeln!(
                out,
                "wrote {} ({} vertices, {} edges)",
                dg.base().display(),
                g.num_vertices(),
                g.num_edges()
            )
            .map_err(|e| fail(&e))
        }
        Command::Import { input, out: base } => {
            let dg =
                pdtl_graph::text::import_edge_list(&input, &base, &stats).map_err(|e| fail(&e))?;
            writeln!(
                out,
                "imported {} vertices, {} adjacency entries",
                dg.num_vertices(),
                dg.adj_len()
            )
            .map_err(|e| fail(&e))
        }
        Command::Export { base, out: path } => {
            let dg = DiskGraph::open(&base, &stats).map_err(|e| fail(&e))?;
            let g = dg.load_csr(&stats).map_err(|e| fail(&e))?;
            pdtl_graph::text::write_edge_list(&g, &path).map_err(|e| fail(&e))?;
            writeln!(
                out,
                "exported {} edges to {}",
                g.num_edges(),
                path.display()
            )
            .map_err(|e| fail(&e))
        }
        Command::Stats { base } => {
            let dg = DiskGraph::open(&base, &stats).map_err(|e| fail(&e))?;
            let g = dg.load_csr(&stats).map_err(|e| fail(&e))?;
            writeln!(out, "{}", GraphStats::header()).map_err(|e| fail(&e))?;
            let name = base
                .file_name()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            writeln!(out, "{}", GraphStats::compute(name, &g).row()).map_err(|e| fail(&e))
        }
        Command::Count {
            base,
            cores,
            memory,
            naive,
            backend,
            codec,
        } => {
            let dg = DiskGraph::open(&base, &stats).map_err(|e| fail(&e))?;
            let mut mgt = MgtOptions::default();
            if let Some(b) = backend {
                mgt.backend = b;
            }
            if let Some(c) = codec {
                mgt.codec = c;
            }
            let runner = LocalRunner::new(LocalConfig {
                cores,
                budget: MemoryBudget::edges(memory),
                balance: if naive {
                    BalanceStrategy::EqualEdges
                } else {
                    BalanceStrategy::InDegree
                },
                mgt,
            })
            .map_err(|e| fail(&e))?;
            // Scratch cleanup must also run when `run` fails, or every
            // failed invocation leaks a work dir in /tmp.
            let scratch = ScratchDir::create(work_dir(&base, "count")).map_err(|e| fail(&e))?;
            let report = runner.run(&dg, scratch.path()).map_err(|e| fail(&e))?;
            writeln!(
                out,
                "triangles: {}\nwall: {:?} (orientation {:?}, calc {:?})",
                report.triangles,
                report.wall,
                report.orientation.breakdown.wall,
                report.calc_wall()
            )
            .map_err(|e| fail(&e))
        }
        Command::Cluster {
            base,
            nodes,
            cores,
            memory,
            tcp,
            backend,
            fail_fast,
            fault,
            codec,
        } => {
            let dg = DiskGraph::open(&base, &stats).map_err(|e| fail(&e))?;
            let mut mgt = MgtOptions::default();
            if let Some(b) = backend {
                mgt.backend = b;
            }
            if let Some(c) = codec {
                mgt.codec = c;
            }
            let runner = ClusterRunner::new(ClusterConfig {
                nodes,
                cores_per_node: cores,
                budget: MemoryBudget::edges(memory),
                transport: if tcp {
                    TransportKind::Tcp
                } else {
                    TransportKind::InProc
                },
                mgt,
                policy: if fail_fast {
                    FailurePolicy::FailFast
                } else {
                    FailurePolicy::default()
                },
                fault: match fault {
                    Some(plan) => {
                        FaultPlan::parse(&plan).map_err(|e| format!("bad --fault: {e}"))?
                    }
                    None => FaultPlan::default_from_env(),
                },
                ..Default::default()
            })
            .map_err(|e| fail(&e))?;
            let scratch = ScratchDir::create(work_dir(&base, "cluster")).map_err(|e| fail(&e))?;
            let report = runner.run(&dg, scratch.path()).map_err(|e| fail(&e))?;
            writeln!(
                out,
                "triangles: {}\nwall: {:?} (calc {:?}, avg copy {:?})\nnetwork: {} bytes",
                report.triangles,
                report.wall,
                report.calc_wall(),
                report.avg_copy(),
                report.network.total()
            )
            .map_err(|e| fail(&e))?;
            if report.retries > 0 || !report.failed_nodes.is_empty() {
                writeln!(
                    out,
                    "faults: {} retries, {} ranges reassigned, failed nodes {:?}",
                    report.retries, report.reassigned_ranges, report.failed_nodes
                )
                .map_err(|e| fail(&e))?;
            }
            Ok(())
        }
        Command::List {
            base,
            out: path,
            cores,
        } => {
            let dg = DiskGraph::open(&base, &stats).map_err(|e| fail(&e))?;
            let runner = LocalRunner::new(LocalConfig {
                cores,
                budget: MemoryBudget::default(),
                balance: BalanceStrategy::InDegree,
                ..Default::default()
            })
            .map_err(|e| fail(&e))?;
            let scratch = ScratchDir::create(work_dir(&base, "list")).map_err(|e| fail(&e))?;
            let (report, triangles) = runner
                .run_listing(&dg, scratch.path())
                .map_err(|e| fail(&e))?;
            let sink_stats = IoStats::new();
            let mut sink =
                pdtl_core::sink::FileSink::create(&path, sink_stats).map_err(|e| fail(&e))?;
            use pdtl_core::sink::TriangleSink;
            for (u, v, w) in triangles {
                sink.emit(u, v, w);
            }
            let written = sink.finish().map_err(|e| fail(&e))?;
            writeln!(
                out,
                "listed {} triangles to {} ({} bytes)",
                report.triangles,
                path.display(),
                written * 12
            )
            .map_err(|e| fail(&e))
        }
        Command::Verify { base } => {
            // `open` runs the structural checks plus the quick manifest
            // tier; `verify_full` then digests every covered file.
            let dg = DiskGraph::open(&base, &stats).map_err(|e| fail(&e))?;
            match dg.verify_full().map_err(|e| fail(&e))? {
                Some(report) => writeln!(
                    out,
                    "ok: {} files verified, {} bytes digested",
                    report.files, report.bytes
                )
                .map_err(|e| fail(&e)),
                None => writeln!(
                    out,
                    "ok (structural checks only): no manifest — graph predates \
                     the integrity layer; rewrite it to gain digests"
                )
                .map_err(|e| fail(&e)),
            }
        }
        Command::Serve {
            dir,
            addr,
            workers,
            cores,
            memory,
        } => {
            let catalog = Catalog::open(
                &dir,
                &work_dir(&dir, "serve"),
                &[Codec::Raw, Codec::DeltaVarint],
                cores.max(2),
            )
            .map_err(|e| fail(&e))?;
            for (name, why) in catalog.rejected() {
                writeln!(out, "rejected {name}: {why}").map_err(|e| fail(&e))?;
            }
            let names = catalog.names();
            let server = Server::spawn(
                catalog,
                ServeConfig {
                    addr,
                    workers,
                    default_cores: cores,
                    admission: MemoryBudget::edges(memory),
                    ..Default::default()
                },
            )
            .map_err(|e| fail(&e))?;
            writeln!(
                out,
                "serving {} graph(s) [{}] on {}",
                names.len(),
                names.join(", "),
                server.addr()
            )
            .map_err(|e| fail(&e))?;
            out.flush().map_err(|e| fail(&e))?;
            // Blocks until a client sends shutdown; drains in-flight
            // queries before returning.
            let final_stats = server.wait();
            writeln!(
                out,
                "shutdown: {} served, {} failed, p50 {}us, p99 {}us",
                final_stats.served,
                final_stats.failed,
                final_stats.quantile_micros(0.5),
                final_stats.quantile_micros(0.99)
            )
            .map_err(|e| fail(&e))
        }
        Command::Query { addr, request } => {
            let mut client = ServeClient::connect(&addr).map_err(|e| fail(&e))?;
            match request {
                QueryRequest::Stats => {
                    let s = client.stats().map_err(|e| fail(&e))?;
                    writeln!(
                        out,
                        "served: {} ({} failed, {} in flight)\n\
                         catalog: {} graph(s), {} rejected\n\
                         io: {} bytes read, {} u32s decoded\n\
                         admission: peak {} / {} edges\n\
                         latency: p50 {}us, p99 {}us",
                        s.served,
                        s.failed,
                        s.inflight,
                        s.graphs.len(),
                        s.rejected_graphs,
                        s.bytes_read,
                        s.u32s_decoded,
                        s.admitted_peak,
                        s.budget_total,
                        s.quantile_micros(0.5),
                        s.quantile_micros(0.99)
                    )
                    .map_err(|e| fail(&e))?;
                    for g in &s.graphs {
                        writeln!(
                            out,
                            "  {}: {} vertices, {} edges",
                            g.name, g.vertices, g.m_star
                        )
                        .map_err(|e| fail(&e))?;
                    }
                    Ok(())
                }
                QueryRequest::Shutdown => {
                    client.shutdown().map_err(|e| fail(&e))?;
                    writeln!(out, "shutdown requested").map_err(|e| fail(&e))
                }
                QueryRequest::Run { graph, op, options } => {
                    let reply = client.query(&graph, op, options).map_err(|e| fail(&e))?;
                    match op {
                        QueryOperation::Count => writeln!(
                            out,
                            "triangles: {} (server wall {:?})",
                            reply.triangles, reply.wall
                        ),
                        QueryOperation::List { .. } => writeln!(
                            out,
                            "triangles: {} ({} listed, {} returned)",
                            reply.triangles,
                            reply.aux,
                            reply.triples.len()
                        ),
                        QueryOperation::Clustering => writeln!(
                            out,
                            "triangles: {}\nglobal clustering: {:.6}\ntransitivity: {:.6}",
                            reply.triangles,
                            reply.value_f64(),
                            reply.aux_f64()
                        ),
                        QueryOperation::KTruss { k } => writeln!(
                            out,
                            "triangles: {}\n{}-truss: {} edges (max k = {})",
                            reply.triangles, k, reply.value_bits, reply.aux
                        ),
                        QueryOperation::Doulion { trials, .. } => writeln!(
                            out,
                            "estimate: {:.1} (mean of {} trials, server wall {:?})",
                            reply.value_f64(),
                            trials,
                            reply.wall
                        ),
                    }
                    .map_err(|e| fail(&e))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("pdtl-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn parses_gen() {
        let cmd = parse(&args("gen rmat-8 /tmp/g --scale 0.5")).unwrap();
        assert_eq!(
            cmd,
            Command::Gen {
                dataset: "rmat-8".into(),
                out: "/tmp/g".into(),
                scale: 0.5
            }
        );
    }

    #[test]
    fn parses_count_with_flags() {
        let cmd = parse(&args("count /tmp/g --cores 8 --memory 4096 --naive")).unwrap();
        assert_eq!(
            cmd,
            Command::Count {
                base: "/tmp/g".into(),
                cores: 8,
                memory: 4096,
                naive: true,
                backend: None,
                codec: None
            }
        );
    }

    #[test]
    fn parses_cluster_defaults() {
        let cmd = parse(&args("cluster /tmp/g")).unwrap();
        assert_eq!(
            cmd,
            Command::Cluster {
                base: "/tmp/g".into(),
                nodes: 2,
                cores: 2,
                memory: 1 << 20,
                tcp: false,
                backend: None,
                fail_fast: false,
                fault: None,
                codec: None
            }
        );
    }

    #[test]
    fn parses_cluster_fault_flags() {
        let cmd = parse(&args(
            "cluster /tmp/g --tcp --fail-fast --fault seed=42;kill=1",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Cluster {
                base: "/tmp/g".into(),
                nodes: 2,
                cores: 2,
                memory: 1 << 20,
                tcp: true,
                backend: None,
                fail_fast: true,
                fault: Some("seed=42;kill=1".into()),
                codec: None
            }
        );
        assert!(parse(&args("cluster /tmp/g --fault")).is_err());
    }

    #[test]
    fn parses_backend_flag() {
        for (name, backend) in [
            ("blocking", IoBackend::Blocking),
            ("prefetch", IoBackend::Prefetch),
            ("MMAP", IoBackend::Mmap),
            ("uring", IoBackend::Uring),
            ("io_uring", IoBackend::Uring),
        ] {
            let cmd = parse(&args(&format!("count /tmp/g --backend {name}"))).unwrap();
            let Command::Count { backend: got, .. } = cmd else {
                panic!("expected Count");
            };
            assert_eq!(got, Some(backend), "{name}");
        }
        let cmd = parse(&args("cluster /tmp/g --backend mmap")).unwrap();
        assert!(matches!(
            cmd,
            Command::Cluster {
                backend: Some(IoBackend::Mmap),
                ..
            }
        ));
        assert!(parse(&args("count /tmp/g --backend io-urng")).is_err());
    }

    #[test]
    fn parses_codec_flag() {
        for (name, codec) in [
            ("raw", Codec::Raw),
            ("delta-varint", Codec::DeltaVarint),
            ("delta_varint", Codec::DeltaVarint),
            ("VARINT", Codec::DeltaVarint),
        ] {
            let cmd = parse(&args(&format!("count /tmp/g --codec {name}"))).unwrap();
            let Command::Count { codec: got, .. } = cmd else {
                panic!("expected Count");
            };
            assert_eq!(got, Some(codec), "{name}");
        }
        let cmd = parse(&args("cluster /tmp/g --codec delta-varint")).unwrap();
        assert!(matches!(
            cmd,
            Command::Cluster {
                codec: Some(Codec::DeltaVarint),
                ..
            }
        ));
        assert!(parse(&args("count /tmp/g --codec gzip")).is_err());
    }

    #[test]
    fn parses_verify() {
        assert_eq!(
            parse(&args("verify /tmp/g")).unwrap(),
            Command::Verify {
                base: "/tmp/g".into()
            }
        );
        assert!(parse(&args("verify")).is_err());
    }

    #[test]
    fn parses_serve_and_query() {
        let cmd = parse(&args(
            "serve /tmp/catalog --addr 127.0.0.1:9999 --workers 2",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                dir: "/tmp/catalog".into(),
                addr: "127.0.0.1:9999".into(),
                workers: 2,
                cores: 2,
                memory: 1 << 22,
            }
        );
        assert!(parse(&args("serve")).is_err());

        assert_eq!(
            parse(&args("query localhost:1 stats")).unwrap(),
            Command::Query {
                addr: "localhost:1".into(),
                request: QueryRequest::Stats
            }
        );
        assert_eq!(
            parse(&args("query localhost:1 shutdown")).unwrap(),
            Command::Query {
                addr: "localhost:1".into(),
                request: QueryRequest::Shutdown
            }
        );
        let cmd = parse(&args(
            "query localhost:1 g ktruss --k 4 --cores 3 --memory 512 --codec delta-varint",
        ))
        .unwrap();
        let Command::Query {
            request: QueryRequest::Run { graph, op, options },
            ..
        } = cmd
        else {
            panic!("expected Run");
        };
        assert_eq!(graph, "g");
        assert_eq!(op, QueryOperation::KTruss { k: 4 });
        assert_eq!(options.cores, 3);
        assert_eq!(options.budget_edges, 512);
        assert_eq!(options.codec, Codec::DeltaVarint);

        let cmd = parse(&args("query localhost:1 g doulion --p 0.25 --trials 4")).unwrap();
        assert!(matches!(
            cmd,
            Command::Query {
                request: QueryRequest::Run {
                    op: QueryOperation::Doulion {
                        p_ppm: 250_000,
                        trials: 4,
                        ..
                    },
                    ..
                },
                ..
            }
        ));
        assert!(parse(&args("query localhost:1 g doulion --p 1.5")).is_err());
        assert!(parse(&args("query localhost:1 g frobnicate")).is_err());
        assert!(parse(&args("query localhost:1")).is_err());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&args("")).is_err());
        assert!(parse(&args("frobnicate x")).is_err());
        assert!(parse(&args("gen")).is_err());
        assert!(parse(&args("count /g --cores notanumber")).is_err());
        assert!(parse(&args("count /g --memory")).is_err());
    }

    #[test]
    fn dataset_names_resolve() {
        assert_eq!(dataset_by_name("twitter").unwrap(), Dataset::Twitter);
        assert_eq!(dataset_by_name("LJ").unwrap(), Dataset::LiveJournal);
        assert_eq!(dataset_by_name("rmat-9").unwrap(), Dataset::Rmat(9));
        assert!(dataset_by_name("rmat-99").is_err());
        assert!(dataset_by_name("facebook").is_err());
    }

    #[test]
    fn end_to_end_gen_stats_count() {
        let base = tmp("e2e");
        let mut out = Vec::new();
        run(
            Command::Gen {
                dataset: "rmat-7".into(),
                out: base.clone(),
                scale: 1.0,
            },
            &mut out,
        )
        .unwrap();
        run(Command::Stats { base: base.clone() }, &mut out).unwrap();
        run(
            Command::Count {
                base: base.clone(),
                cores: 2,
                memory: 1024,
                naive: false,
                backend: Some(IoBackend::Mmap),
                codec: Some(Codec::DeltaVarint),
            },
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("wrote"));
        assert!(text.contains("MaxDeg"));
        assert!(text.contains("triangles:"));
        // the reported count matches the oracle
        let g = Dataset::Rmat(7).build().unwrap();
        let expected = pdtl_graph::verify::triangle_count(&g);
        assert!(text.contains(&format!("triangles: {expected}")));
    }

    #[test]
    fn end_to_end_verify() {
        let base = tmp("verify");
        let mut out = Vec::new();
        run(
            Command::Gen {
                dataset: "rmat-6".into(),
                out: base.clone(),
                scale: 1.0,
            },
            &mut out,
        )
        .unwrap();
        // Freshly written graph verifies clean.
        run(Command::Verify { base: base.clone() }, &mut out).unwrap();
        let text = String::from_utf8(out.clone()).unwrap();
        assert!(text.contains("files verified"), "{text}");

        // A flipped bit anywhere is a typed error, not a panic.
        let dg = DiskGraph::open(&base, &IoStats::new()).unwrap();
        let mut bytes = std::fs::read(dg.adj_path()).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x04;
        std::fs::write(dg.adj_path(), &bytes).unwrap();
        let err = run(Command::Verify { base: base.clone() }, &mut out).unwrap_err();
        assert!(
            err.contains("corrupt") || err.contains("truncated"),
            "{err}"
        );
        bytes[mid] ^= 0x04;
        std::fs::write(dg.adj_path(), &bytes).unwrap();

        // A pre-integrity graph (no manifest) passes with a note.
        std::fs::remove_file(dg.mft_path()).unwrap();
        out.clear();
        run(Command::Verify { base }, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("no manifest"), "{text}");
    }

    /// `Write` target shareable with the thread running the blocking
    /// `serve` command, so the test can read the bound address out of
    /// its output while the daemon is still running.
    #[derive(Clone, Default)]
    struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl SharedBuf {
        fn text(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    #[test]
    fn end_to_end_serve_query_shutdown() {
        let dir = tmp("serve-catalog");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let g = Dataset::Rmat(6).build().unwrap();
        DiskGraph::write(&g, dir.join("rmat6"), &IoStats::new()).unwrap();
        let expected = pdtl_graph::verify::triangle_count(&g);

        let serve_out = SharedBuf::default();
        let serve_thread = {
            let mut out = serve_out.clone();
            let dir = dir.clone();
            std::thread::spawn(move || {
                run(
                    Command::Serve {
                        dir,
                        addr: "127.0.0.1:0".into(),
                        workers: 2,
                        cores: 2,
                        memory: 1 << 22,
                    },
                    &mut out,
                )
            })
        };
        // The daemon prints its ephemeral address once the catalog is
        // up; poll for it.
        let addr = loop {
            let text = serve_out.text();
            if let Some(rest) = text.split(" on ").nth(1) {
                if let Some(addr) = rest.split_whitespace().next() {
                    break addr.to_string();
                }
            }
            assert!(!serve_thread.is_finished(), "serve exited: {}", text);
            std::thread::sleep(std::time::Duration::from_millis(20));
        };

        let mut out = Vec::new();
        run(
            Command::Query {
                addr: addr.clone(),
                request: QueryRequest::Run {
                    graph: "rmat6".into(),
                    op: QueryOperation::Count,
                    options: QueryOptions::default(),
                },
            },
            &mut out,
        )
        .unwrap();
        run(
            Command::Query {
                addr: addr.clone(),
                request: QueryRequest::Stats,
            },
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains(&format!("triangles: {expected}")), "{text}");
        assert!(text.contains("served: 1"), "{text}");
        assert!(text.contains("rmat6"), "{text}");

        // Unknown graphs are typed rejections, not daemon failures.
        let err = run(
            Command::Query {
                addr: addr.clone(),
                request: QueryRequest::Run {
                    graph: "nope".into(),
                    op: QueryOperation::Count,
                    options: QueryOptions::default(),
                },
            },
            &mut Vec::new(),
        )
        .unwrap_err();
        assert!(err.contains("unknown graph"), "{err}");

        let mut out = Vec::new();
        run(
            Command::Query {
                addr,
                request: QueryRequest::Shutdown,
            },
            &mut out,
        )
        .unwrap();
        serve_thread.join().unwrap().unwrap();
        let text = serve_out.text();
        assert!(text.contains("shutdown: 1 served, 1 failed"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn end_to_end_import_export_cluster_list() {
        let g = Dataset::Rmat(6).build().unwrap();
        let txt = tmp("roundtrip.txt");
        pdtl_graph::text::write_edge_list(&g, &txt).unwrap();
        let base = tmp("imported");
        let mut out = Vec::new();
        run(
            Command::Import {
                input: txt.clone(),
                out: base.clone(),
            },
            &mut out,
        )
        .unwrap();
        run(
            Command::Cluster {
                base: base.clone(),
                nodes: 2,
                cores: 2,
                memory: 512,
                tcp: false,
                backend: None,
                fail_fast: false,
                fault: None,
                codec: Some(Codec::DeltaVarint),
            },
            &mut out,
        )
        .unwrap();
        let listing = tmp("tri.bin");
        run(
            Command::List {
                base: base.clone(),
                out: listing.clone(),
                cores: 2,
            },
            &mut out,
        )
        .unwrap();
        let exported = tmp("exported.txt");
        run(
            Command::Export {
                base,
                out: exported.clone(),
            },
            &mut out,
        )
        .unwrap();

        let text = String::from_utf8(out).unwrap();
        let expected = pdtl_graph::verify::triangle_count(&g);
        assert!(text.contains(&format!("triangles: {expected}")));
        assert!(text.contains("listed"));
        // exported file re-imports to the same graph
        let (g2, _) = pdtl_graph::text::read_edge_list(&exported).unwrap();
        assert_eq!(pdtl_graph::verify::triangle_count(&g2), expected);
        // listing file has the right record count
        let stats = IoStats::new();
        let listed = pdtl_core::sink::read_triangle_file(&listing, stats).unwrap();
        assert_eq!(listed.len() as u64, expected);
    }
}
