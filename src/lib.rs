//! # PDTL — Parallel and Distributed Triangle Listing
//!
//! A full Rust reproduction of *"PDTL: Parallel and Distributed Triangle
//! Listing for Massive Graphs"* (Giechaskiel, Panagopoulos, Yoneki;
//! ICPP 2015 / UCAM-CL-TR-866): the first distributed triangle-listing
//! framework with provable CPU, I/O, memory and network bounds.
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! * [`io`] — external-memory substrate (counted block I/O, external sort,
//!   memory budgets, cost model).
//! * [`graph`] — graph substrate (CSR, the binary `.deg`/`.adj` disk
//!   format, generators, statistics, brute-force oracles).
//! * [`core`] — the PDTL core: degree-based orientation, the modified MGT
//!   engine, load balancing, and the multicore runner.
//! * [`cluster`] — the distributed runtime: master/worker protocol over
//!   pluggable transports with full network accounting.
//! * [`baselines`] — reimplementations of the systems the paper compares
//!   against (in-memory counters, OPT-like, PATRIC-like, PowerGraph-like
//!   GAS, CTTP-like MapReduce).
//! * [`analytics`] — triangle-based applications from the paper's intro:
//!   clustering coefficients, transitivity, k-truss.
//!
//! ## Quickstart
//!
//! ```
//! use pdtl::graph::gen::classic::complete;
//! use pdtl::core::count_triangles;
//!
//! let g = complete(100).unwrap();
//! let report = count_triangles(&g).unwrap();
//! assert_eq!(report.triangles, 161_700); // C(100, 3)
//! ```

pub mod cli;

pub use pdtl_analytics as analytics;
pub use pdtl_baselines as baselines;
pub use pdtl_cluster as cluster;
pub use pdtl_core as core;
pub use pdtl_graph as graph;
pub use pdtl_io as io;
