//! The `pdtl` command-line tool: generate, import, inspect and count.
//!
//! ```text
//! pdtl gen rmat-12 /data/rmat12
//! pdtl import edges.txt /data/mygraph
//! pdtl stats /data/mygraph
//! pdtl count /data/mygraph --cores 8 --memory 1048576
//! pdtl cluster /data/mygraph --nodes 4 --cores 4 --tcp
//! pdtl list /data/mygraph /data/triangles.bin
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match pdtl::cli::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout();
    if let Err(e) = pdtl::cli::run(cmd, &mut stdout) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
