//! Test-depth pass over the analytics kernels: every kernel is pinned
//! against an *independent* brute-force oracle on arbitrary random
//! graphs, instead of only hand-picked fixtures.
//!
//! * clustering coefficients — per-vertex neighbour-pair counting,
//!   no triangle listing involved;
//! * k-truss — a fixed-point "delete weak edges until stable" oracle,
//!   no peeling order shared with the implementation;
//! * DOULION — seeded concentration around the exact count, exactness
//!   at `p = 1`, and determinism;
//! * incremental counting — exact recount and re-anchor after random
//!   insert/delete batches.

use std::collections::BTreeSet;

use proptest::prelude::*;

use pdtl_analytics::{clustering, doulion, doulion_mean, ktruss, IncrementalTriangles};
use pdtl_graph::gen::classic::complete;
use pdtl_graph::verify::{triangle_count, triangle_list};
use pdtl_graph::Graph;

fn arb_graph(n: u32, m: usize) -> impl Strategy<Value = Graph> {
    prop::collection::vec((0..n, 0..n), 0..m)
        .prop_map(move |edges| Graph::from_edges(n, &edges).unwrap())
}

/// Brute-force triangles-at-vertex: count adjacent neighbour pairs.
fn brute_vertex_triangles(g: &Graph, v: u32) -> u64 {
    let nbrs = g.neighbors(v);
    let mut t = 0u64;
    for (i, &a) in nbrs.iter().enumerate() {
        for &b in &nbrs[i + 1..] {
            if g.has_edge(a, b) {
                t += 1;
            }
        }
    }
    t
}

/// Brute-force k-truss: delete edges supported by fewer than `k - 2`
/// triangles *within the surviving subgraph* until a fixed point.
fn brute_k_truss(g: &Graph, k: u32) -> Vec<(u32, u32)> {
    let mut adj: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); g.num_vertices() as usize];
    for (u, v) in g.edges() {
        adj[u as usize].insert(v);
        adj[v as usize].insert(u);
    }
    loop {
        let mut doomed = Vec::new();
        for u in 0..g.num_vertices() {
            for &v in adj[u as usize].iter().filter(|&&v| v > u) {
                let support = adj[u as usize].intersection(&adj[v as usize]).count() as u32;
                if support < k.saturating_sub(2) {
                    doomed.push((u, v));
                }
            }
        }
        if doomed.is_empty() {
            break;
        }
        for (u, v) in doomed {
            adj[u as usize].remove(&v);
            adj[v as usize].remove(&u);
        }
    }
    let mut edges = Vec::new();
    for u in 0..g.num_vertices() {
        for &v in adj[u as usize].iter().filter(|&&v| v > u) {
            edges.push((u, v));
        }
    }
    edges
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn clustering_matches_neighbour_pair_oracle(g in arb_graph(24, 140)) {
        let triples = triangle_list(&g);
        let counts = clustering::per_vertex_counts(g.num_vertices(), &triples);
        let locals = clustering::clustering_coefficients(&g, &triples);
        for v in 0..g.num_vertices() {
            let brute = brute_vertex_triangles(&g, v);
            prop_assert_eq!(counts[v as usize], brute);
            let d = g.degree(v) as u64;
            let expect = if d < 2 {
                0.0
            } else {
                2.0 * brute as f64 / (d * (d - 1)) as f64
            };
            prop_assert!(
                (locals[v as usize] - expect).abs() < 1e-12,
                "vertex {}: {} vs {}", v, locals[v as usize], expect
            );
            prop_assert!((0.0..=1.0).contains(&locals[v as usize]));
        }
        // Transitivity from first principles: 3T over wedge count.
        let wedges: u64 = (0..g.num_vertices())
            .map(|v| {
                let d = g.degree(v) as u64;
                d * d.saturating_sub(1) / 2
            })
            .sum();
        let t = clustering::transitivity(&g, triples.len() as u64);
        if wedges == 0 {
            prop_assert_eq!(t, 0.0);
        } else {
            prop_assert!((t - 3.0 * triples.len() as f64 / wedges as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn ktruss_matches_fixed_point_oracle(g in arb_graph(18, 90)) {
        let triples = triangle_list(&g);
        let td = ktruss::truss_decomposition(&g, &triples);
        // Every k from trivial to just past the maximum.
        for k in 2..=td.max_k() + 1 {
            prop_assert_eq!(td.truss_edges(k), brute_k_truss(&g, k));
        }
        // Trussness is total: every edge gets a value, and the 2-truss
        // is the whole graph.
        prop_assert_eq!(td.truss_edges(2).len() as u64, g.num_edges());
    }

    #[test]
    fn doulion_with_p_one_is_exact(g in arb_graph(24, 140), seed in 0u64..1000) {
        let approx = doulion(&g, 1.0, seed).unwrap();
        prop_assert_eq!(approx.estimate, triangle_count(&g) as f64);
        prop_assert_eq!(approx.kept_edges, g.num_edges());
    }

    #[test]
    fn incremental_recounts_and_reanchors_under_updates(
        ops in prop::collection::vec((0..20u32, 0..20u32, 0..4u32), 1..120),
    ) {
        let mut inc = IncrementalTriangles::new(20);
        for (i, &(u, v, kind)) in ops.iter().enumerate() {
            if kind == 0 {
                inc.delete(u, v);
            } else {
                inc.insert(u, v);
            }
            // Every few updates, check the running count against the
            // exact oracle on the materialised graph, and re-anchor:
            // a counter rebuilt from that graph must agree exactly.
            if i % 16 == 0 || i + 1 == ops.len() {
                let snapshot = inc.to_graph();
                prop_assert_eq!(inc.triangles(), triangle_count(&snapshot));
                let reanchored = IncrementalTriangles::from_graph(&snapshot);
                prop_assert_eq!(reanchored.triangles(), inc.triangles());
                prop_assert_eq!(reanchored.num_edges(), inc.num_edges());
            }
        }
    }
}

/// Seeded DOULION concentrates: on a dense graph the mean of many
/// trials lands close to the exact count, single trials are unbiased
/// enough to stay within a loose band, and the whole thing is
/// deterministic per seed.
#[test]
fn doulion_concentration_on_dense_graph() {
    let g = complete(24).unwrap();
    let exact = triangle_count(&g) as f64; // C(24,3) = 2024
    let mean = doulion_mean(&g, 0.5, 64, 7).unwrap();
    let rel = (mean - exact).abs() / exact;
    assert!(
        rel < 0.10,
        "64-trial mean {mean} strays {rel:.3} from exact {exact}"
    );
    // More trials concentrate at least as well as one (same seed base).
    let single = doulion(&g, 0.5, 7).unwrap().estimate;
    let rel_single = (single - exact).abs() / exact;
    assert!(
        rel <= rel_single + 0.05,
        "mean ({mean}) should not be wilder than one trial ({single})"
    );
    // Determinism: same seeds, same bits.
    assert_eq!(
        doulion_mean(&g, 0.5, 64, 7).unwrap().to_bits(),
        mean.to_bits()
    );
    // Different seeds genuinely resample.
    assert_ne!(
        doulion_mean(&g, 0.5, 64, 8).unwrap().to_bits(),
        mean.to_bits()
    );
}
