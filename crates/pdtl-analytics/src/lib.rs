//! Triangle-based analytics — the applications that motivate PDTL.
//!
//! The paper's introduction lists the metrics exact triangle listing
//! unlocks: the clustering coefficient \[24\], the transitivity ratio
//! \[18\], and k-trusses \[22\] (plus spam/sybil detection built on them).
//! This crate implements those consumers on top of the PDTL listing API,
//! demonstrating that the framework's output — a stream of `(u, v, w)`
//! triples — is sufficient for the downstream algorithms.

pub mod approx;
pub mod clustering;
pub mod incremental;
pub mod ktruss;

pub use approx::{doulion, doulion_mean, ApproxCount};
pub use clustering::{clustering_coefficients, global_clustering, transitivity, ClusteringReport};
pub use incremental::IncrementalTriangles;
pub use ktruss::{k_truss, max_truss, TrussDecomposition};
