//! Dynamic (incremental) triangle counting — the paper's other
//! future-work direction (§VI).
//!
//! Maintains the exact triangle count of an evolving simple graph under
//! edge insertions and deletions: inserting `{u, v}` adds
//! `|N(u) ∩ N(v)|` triangles, deleting it removes the same. Neighbour
//! sets are kept as sorted vectors (the workspace's array-first idiom),
//! so each update costs `O(d(u) + d(v))` — optimal for merge-based
//! intersection.

use pdtl_core::intersect::intersect_count;
use pdtl_graph::Graph;

/// An exact triangle counter over a mutable simple graph.
#[derive(Debug, Clone, Default)]
pub struct IncrementalTriangles {
    adj: Vec<Vec<u32>>,
    triangles: u64,
    edges: u64,
}

impl IncrementalTriangles {
    /// An empty graph on `n` vertices.
    pub fn new(n: u32) -> Self {
        Self {
            adj: vec![Vec::new(); n as usize],
            triangles: 0,
            edges: 0,
        }
    }

    /// Start from an existing graph (count seeded from an exact oracle
    /// pass).
    pub fn from_graph(g: &Graph) -> Self {
        let mut s = Self::new(g.num_vertices());
        for (u, v) in g.edges() {
            s.insert(u, v);
        }
        s
    }

    /// Current exact triangle count.
    pub fn triangles(&self) -> u64 {
        self.triangles
    }

    /// Current edge count.
    pub fn num_edges(&self) -> u64 {
        self.edges
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u32 {
        self.adj.len() as u32
    }

    /// True if `{u, v}` is currently an edge.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.adj
            .get(u as usize)
            .is_some_and(|l| l.binary_search(&v).is_ok())
    }

    /// Insert `{u, v}`; returns the number of new triangles closed, or
    /// `None` if the edge already exists / is a self-loop / is out of
    /// range.
    pub fn insert(&mut self, u: u32, v: u32) -> Option<u64> {
        let n = self.num_vertices();
        if u == v || u >= n || v >= n || self.has_edge(u, v) {
            return None;
        }
        let closed = intersect_count(&self.adj[u as usize], &self.adj[v as usize]);
        let pos_u = self.adj[u as usize].binary_search(&v).unwrap_err();
        self.adj[u as usize].insert(pos_u, v);
        let pos_v = self.adj[v as usize].binary_search(&u).unwrap_err();
        self.adj[v as usize].insert(pos_v, u);
        self.triangles += closed;
        self.edges += 1;
        Some(closed)
    }

    /// Delete `{u, v}`; returns the number of triangles broken, or
    /// `None` if the edge does not exist.
    pub fn delete(&mut self, u: u32, v: u32) -> Option<u64> {
        if !self.has_edge(u, v) {
            return None;
        }
        let pos_u = self.adj[u as usize].binary_search(&v).unwrap();
        self.adj[u as usize].remove(pos_u);
        let pos_v = self.adj[v as usize].binary_search(&u).unwrap();
        self.adj[v as usize].remove(pos_v);
        let broken = intersect_count(&self.adj[u as usize], &self.adj[v as usize]);
        self.triangles -= broken;
        self.edges -= 1;
        Some(broken)
    }

    /// Materialise the current graph (for verification).
    pub fn to_graph(&self) -> Graph {
        let edges: Vec<(u32, u32)> = self
            .adj
            .iter()
            .enumerate()
            .flat_map(|(u, l)| {
                l.iter()
                    .filter(move |&&v| (u as u32) < v)
                    .map(move |&v| (u as u32, v))
            })
            .collect();
        Graph::from_edges(self.num_vertices(), &edges).expect("internal adjacency is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdtl_graph::gen::classic::complete;
    use pdtl_graph::gen::rmat::rmat;
    use pdtl_graph::gen::rng::SplitMix64;
    use pdtl_graph::verify::triangle_count;

    #[test]
    fn builds_complete_graph_incrementally() {
        let mut c = IncrementalTriangles::new(6);
        for u in 0..6 {
            for v in (u + 1)..6 {
                c.insert(u, v);
            }
        }
        assert_eq!(c.triangles(), 20); // C(6,3)
        assert_eq!(c.to_graph(), complete(6).unwrap());
    }

    #[test]
    fn insert_returns_closed_count() {
        let mut c = IncrementalTriangles::new(4);
        assert_eq!(c.insert(0, 1), Some(0));
        assert_eq!(c.insert(1, 2), Some(0));
        assert_eq!(c.insert(0, 2), Some(1)); // closes {0,1,2}
        assert_eq!(c.insert(0, 2), None, "duplicate rejected");
        assert_eq!(c.insert(3, 3), None, "self-loop rejected");
        assert_eq!(c.insert(0, 9), None, "out of range rejected");
    }

    #[test]
    fn delete_reverses_insert() {
        let g = rmat(6, 31).unwrap();
        let mut c = IncrementalTriangles::from_graph(&g);
        assert_eq!(c.triangles(), triangle_count(&g));
        let (u, v) = g.edges().next().unwrap();
        let broken = c.delete(u, v).unwrap();
        let closed = c.insert(u, v).unwrap();
        assert_eq!(broken, closed);
        assert_eq!(c.triangles(), triangle_count(&g));
        assert!(c.delete(u, v).is_some());
        assert_eq!(c.delete(u, v), None, "double delete rejected");
    }

    #[test]
    fn random_edit_sequence_tracks_oracle() {
        let n = 40u32;
        let mut c = IncrementalTriangles::new(n);
        let mut rng = SplitMix64::new(99);
        for step in 0..400 {
            let u = rng.next_bounded(n as u64) as u32;
            let v = rng.next_bounded(n as u64) as u32;
            if rng.next_f64() < 0.7 {
                c.insert(u, v);
            } else {
                c.delete(u, v);
            }
            if step % 80 == 79 {
                let g = c.to_graph();
                assert_eq!(c.triangles(), triangle_count(&g), "step {step}");
                assert_eq!(c.num_edges(), g.num_edges());
            }
        }
    }

    #[test]
    fn matches_pdtl_on_final_state() {
        let g = rmat(7, 32).unwrap();
        let c = IncrementalTriangles::from_graph(&g);
        let report = pdtl_core::runner::count_triangles(&c.to_graph()).unwrap();
        assert_eq!(c.triangles(), report.triangles);
    }
}
