//! Approximate triangle counting — the paper's future-work direction
//! ("altering it for dynamic or approximate triangle counting", §VI).
//!
//! Implements the DOULION estimator (Tsourakakis et al., KDD'09): keep
//! each edge independently with probability `p`, count triangles
//! exactly on the sparsified graph (with any exact engine — here the
//! in-memory MGT), and scale by `1/p³`. The estimator is unbiased and
//! its relative error shrinks as the true count grows, trading a `p²`
//! reduction in counting work for bounded variance.

use pdtl_core::mgt::mgt_in_memory;
use pdtl_core::orient::orient_csr;
use pdtl_core::sink::CountSink;
use pdtl_graph::gen::rng::SplitMix64;
use pdtl_graph::{Graph, Result};
use pdtl_io::MemoryBudget;

/// Outcome of one DOULION estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxCount {
    /// The estimate `T_sparse / p³`.
    pub estimate: f64,
    /// Triangles counted in the sparsified graph.
    pub sparse_triangles: u64,
    /// Edges kept by the sparsification.
    pub kept_edges: u64,
    /// The sampling probability used.
    pub p: f64,
}

/// Sparsify `g` by keeping each edge with probability `p`.
pub fn sparsify(g: &Graph, p: f64, seed: u64) -> Result<Graph> {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut rng = SplitMix64::new(seed);
    let kept: Vec<(u32, u32)> = g.edges().filter(|_| rng.next_f64() < p).collect();
    Graph::from_edges(g.num_vertices(), &kept)
}

/// DOULION estimate of the triangle count of `g`.
pub fn doulion(g: &Graph, p: f64, seed: u64) -> Result<ApproxCount> {
    let sparse = sparsify(g, p, seed)?;
    let oriented = orient_csr(&sparse);
    let (sparse_triangles, _) =
        mgt_in_memory(&oriented, MemoryBudget::edges(1 << 20), &mut CountSink);
    let estimate = if sparse_triangles == 0 {
        0.0 // avoids 0/0 when p = 0
    } else {
        sparse_triangles as f64 / (p * p * p)
    };
    Ok(ApproxCount {
        estimate,
        sparse_triangles,
        kept_edges: sparse.num_edges(),
        p,
    })
}

/// Average of `trials` independent DOULION estimates (variance falls
/// as `1/trials`).
pub fn doulion_mean(g: &Graph, p: f64, trials: u32, seed: u64) -> Result<f64> {
    assert!(trials > 0);
    let mut acc = 0.0;
    for t in 0..trials {
        acc += doulion(g, p, seed.wrapping_add(t as u64).wrapping_mul(0x9E37))?.estimate;
    }
    Ok(acc / trials as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdtl_graph::gen::classic::complete;
    use pdtl_graph::gen::rmat::rmat;
    use pdtl_graph::verify::triangle_count;

    #[test]
    fn p_one_is_exact() {
        let g = rmat(7, 21).unwrap();
        let exact = triangle_count(&g) as f64;
        let est = doulion(&g, 1.0, 5).unwrap();
        assert_eq!(est.estimate, exact);
        assert_eq!(est.kept_edges, g.num_edges());
    }

    #[test]
    fn p_zero_keeps_nothing() {
        let g = complete(10).unwrap();
        let est = doulion(&g, 0.0, 5).unwrap();
        assert_eq!(est.kept_edges, 0);
        assert_eq!(est.estimate, 0.0);
    }

    #[test]
    fn sparsify_keeps_roughly_pm_edges() {
        let g = rmat(9, 22).unwrap();
        let m = g.num_edges() as f64;
        let sparse = sparsify(&g, 0.5, 7).unwrap();
        let kept = sparse.num_edges() as f64;
        assert!((kept / m - 0.5).abs() < 0.05, "kept fraction {}", kept / m);
    }

    #[test]
    fn estimate_close_on_triangle_rich_graph() {
        // On a dense graph the relative error at p = 0.5 with a few
        // trials is small.
        let g = complete(40).unwrap();
        let exact = triangle_count(&g) as f64;
        let mean = doulion_mean(&g, 0.5, 8, 11).unwrap();
        let rel = (mean - exact).abs() / exact;
        assert!(rel < 0.15, "relative error {rel}");
    }

    #[test]
    fn estimate_close_on_rmat() {
        let g = rmat(9, 23).unwrap();
        let exact = triangle_count(&g) as f64;
        let mean = doulion_mean(&g, 0.6, 8, 13).unwrap();
        let rel = (mean - exact).abs() / exact;
        assert!(
            rel < 0.2,
            "relative error {rel} (exact {exact}, est {mean})"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let g = rmat(7, 24).unwrap();
        assert_eq!(doulion(&g, 0.4, 9).unwrap(), doulion(&g, 0.4, 9).unwrap());
        assert_ne!(
            doulion(&g, 0.4, 9).unwrap().kept_edges,
            doulion(&g, 0.4, 10).unwrap().kept_edges
        );
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_bad_p() {
        let g = complete(4).unwrap();
        let _ = doulion(&g, 1.5, 0);
    }
}
