//! Clustering coefficients and the transitivity ratio.
//!
//! Both metrics are pure functions of per-vertex triangle counts and
//! degrees (Watts–Strogatz \[24\]; Opsahl–Panzarasa \[18\]):
//!
//! * local coefficient: `C(v) = 2·T(v) / (d(v)·(d(v)−1))`;
//! * global (average) clustering: mean of `C(v)` over `d(v) ≥ 2`;
//! * transitivity: `3·T / Σ_v C(d(v), 2)` — closed triplets over all
//!   triplets.
//!
//! The per-vertex counts come from any triangle listing — these
//! functions consume the `(u, v, w)` triples PDTL emits.

use pdtl_graph::Graph;

/// Summary of a clustering analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusteringReport {
    /// `C(v)` per vertex (0 for degree < 2).
    pub local: Vec<f64>,
    /// Average clustering coefficient over vertices with degree >= 2.
    pub global: f64,
    /// Transitivity ratio `3T / #open-or-closed-triplets`.
    pub transitivity: f64,
    /// Total triangles.
    pub triangles: u64,
}

/// Accumulate per-vertex triangle counts from listed triples.
pub fn per_vertex_counts(n: u32, triangles: &[(u32, u32, u32)]) -> Vec<u64> {
    let mut counts = vec![0u64; n as usize];
    for &(u, v, w) in triangles {
        counts[u as usize] += 1;
        counts[v as usize] += 1;
        counts[w as usize] += 1;
    }
    counts
}

/// Local clustering coefficients from a triangle listing.
pub fn clustering_coefficients(g: &Graph, triangles: &[(u32, u32, u32)]) -> Vec<f64> {
    let counts = per_vertex_counts(g.num_vertices(), triangles);
    (0..g.num_vertices())
        .map(|v| {
            let d = g.degree(v) as u64;
            if d < 2 {
                0.0
            } else {
                2.0 * counts[v as usize] as f64 / (d * (d - 1)) as f64
            }
        })
        .collect()
}

/// Average clustering coefficient over vertices of degree >= 2.
pub fn global_clustering(g: &Graph, triangles: &[(u32, u32, u32)]) -> f64 {
    let local = clustering_coefficients(g, triangles);
    let eligible: Vec<f64> = (0..g.num_vertices())
        .filter(|&v| g.degree(v) >= 2)
        .map(|v| local[v as usize])
        .collect();
    if eligible.is_empty() {
        0.0
    } else {
        eligible.iter().sum::<f64>() / eligible.len() as f64
    }
}

/// Transitivity ratio: `3T / Σ_v C(d(v), 2)`.
pub fn transitivity(g: &Graph, triangle_count: u64) -> f64 {
    let triplets: u64 = (0..g.num_vertices())
        .map(|v| {
            let d = g.degree(v) as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum();
    if triplets == 0 {
        0.0
    } else {
        3.0 * triangle_count as f64 / triplets as f64
    }
}

/// Run the full clustering analysis from a listing.
pub fn analyze(g: &Graph, triangles: &[(u32, u32, u32)]) -> ClusteringReport {
    ClusteringReport {
        local: clustering_coefficients(g, triangles),
        global: global_clustering(g, triangles),
        transitivity: transitivity(g, triangles.len() as u64),
        triangles: triangles.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdtl_graph::gen::classic::{complete, cycle, star, wheel};
    use pdtl_graph::verify::triangle_list;

    #[test]
    fn complete_graph_is_fully_clustered() {
        let g = complete(6).unwrap();
        let r = analyze(&g, &triangle_list(&g));
        assert!(r.local.iter().all(|&c| (c - 1.0).abs() < 1e-12));
        assert!((r.global - 1.0).abs() < 1e-12);
        assert!((r.transitivity - 1.0).abs() < 1e-12);
    }

    #[test]
    fn triangle_free_graphs_are_zero() {
        for g in [cycle(8).unwrap(), star(9).unwrap()] {
            let r = analyze(&g, &triangle_list(&g));
            assert!(r.local.iter().all(|&c| c == 0.0));
            assert_eq!(r.global, 0.0);
            assert_eq!(r.transitivity, 0.0);
        }
    }

    #[test]
    fn wheel_hub_less_clustered_than_rim() {
        // Hub sees n-1 triangles over C(n-1, 2) pairs; each rim vertex
        // sees 2 triangles over C(3,2) = 3 pairs.
        let g = wheel(8).unwrap();
        let r = analyze(&g, &triangle_list(&g));
        let hub = r.local[0];
        let rim = r.local[1];
        assert!((rim - 2.0 / 3.0).abs() < 1e-12, "rim {rim}");
        assert!((hub - 7.0 / 21.0).abs() < 1e-12, "hub {hub}");
        assert!(rim > hub);
    }

    #[test]
    fn transitivity_matches_closed_form_on_wheel() {
        let g = wheel(8).unwrap();
        let t = triangle_list(&g).len() as u64;
        // 7 rim vertices with d=3 (3 triplets each) + hub d=7 (21)
        let triplets = 7 * 3 + 21;
        assert!((transitivity(&g, t) - 3.0 * t as f64 / triplets as f64).abs() < 1e-12);
    }

    #[test]
    fn degree_below_two_excluded_from_global() {
        // path of 2 + triangle: only triangle vertices count.
        let g = Graph::from_edges(5, &[(0, 1), (2, 3), (3, 4), (4, 2)]).unwrap();
        let r = analyze(&g, &triangle_list(&g));
        assert!((r.global - 1.0).abs() < 1e-12);
    }

    #[test]
    fn per_vertex_counts_sum() {
        let g = complete(5).unwrap();
        let list = triangle_list(&g);
        let counts = per_vertex_counts(5, &list);
        assert_eq!(counts.iter().sum::<u64>(), 3 * list.len() as u64);
    }
}
