//! k-truss decomposition (Wang & Cheng \[22\]).
//!
//! The k-truss of `G` is the maximal subgraph in which every edge is
//! supported by at least `k − 2` triangles *within the subgraph*. The
//! decomposition assigns each edge its trussness: the largest `k` for
//! which it survives. The standard peeling algorithm starts from exact
//! per-edge triangle supports — precisely what PDTL's listing provides —
//! then repeatedly removes the weakest edge and decrements its
//! neighbours' supports.

use std::collections::HashMap;

use pdtl_graph::Graph;

/// Result of a truss decomposition.
#[derive(Debug, Clone)]
pub struct TrussDecomposition {
    /// Trussness per edge, keyed by `(u, v)` with `u < v`.
    pub trussness: HashMap<(u32, u32), u32>,
}

impl TrussDecomposition {
    /// The largest k with a non-empty k-truss.
    pub fn max_k(&self) -> u32 {
        self.trussness.values().copied().max().unwrap_or(0)
    }

    /// Edges of the k-truss: those with trussness >= k.
    pub fn truss_edges(&self, k: u32) -> Vec<(u32, u32)> {
        let mut edges: Vec<(u32, u32)> = self
            .trussness
            .iter()
            .filter(|&(_, &t)| t >= k)
            .map(|(&e, _)| e)
            .collect();
        edges.sort_unstable();
        edges
    }
}

fn key(u: u32, v: u32) -> (u32, u32) {
    if u < v {
        (u, v)
    } else {
        (v, u)
    }
}

/// Full truss decomposition by support peeling.
///
/// `triangles` must be the exact triangle listing of `g` (any vertex
/// order within triples).
pub fn truss_decomposition(g: &Graph, triangles: &[(u32, u32, u32)]) -> TrussDecomposition {
    // support = number of triangles on each edge
    let mut support: HashMap<(u32, u32), u32> = g.edges().map(|(u, v)| ((u, v), 0)).collect();
    for &(a, b, c) in triangles {
        *support.get_mut(&key(a, b)).expect("triangle edge in graph") += 1;
        *support.get_mut(&key(b, c)).expect("triangle edge in graph") += 1;
        *support.get_mut(&key(a, c)).expect("triangle edge in graph") += 1;
    }

    // adjacency sets for triangle queries during peeling
    let mut adj: Vec<std::collections::BTreeSet<u32>> =
        vec![Default::default(); g.num_vertices() as usize];
    for (u, v) in g.edges() {
        adj[u as usize].insert(v);
        adj[v as usize].insert(u);
    }

    let mut trussness = HashMap::with_capacity(support.len());
    let mut remaining: Vec<((u32, u32), u32)> = support.into_iter().collect();
    let mut k = 2u32;
    while !remaining.is_empty() {
        // peel all edges with support <= k - 2
        while let Some(pos) = remaining.iter().position(|&(_, s)| s <= k - 2) {
            let ((u, v), _) = remaining.swap_remove(pos);
            trussness.insert((u, v), k);
            // removing (u,v) breaks every triangle through it
            let commons: Vec<u32> = adj[u as usize]
                .intersection(&adj[v as usize])
                .copied()
                .collect();
            adj[u as usize].remove(&v);
            adj[v as usize].remove(&u);
            for w in commons {
                for e in [key(u, w), key(v, w)] {
                    if let Some(entry) = remaining.iter_mut().find(|(edge, _)| *edge == e) {
                        entry.1 = entry.1.saturating_sub(1);
                    }
                }
            }
        }
        k += 1;
    }
    TrussDecomposition { trussness }
}

/// The k-truss subgraph of `g` as an edge list.
pub fn k_truss(g: &Graph, triangles: &[(u32, u32, u32)], k: u32) -> Vec<(u32, u32)> {
    truss_decomposition(g, triangles).truss_edges(k)
}

/// The maximum k with a non-empty k-truss.
pub fn max_truss(g: &Graph, triangles: &[(u32, u32, u32)]) -> u32 {
    truss_decomposition(g, triangles).max_k()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdtl_graph::gen::classic::{complete, cycle, grid};
    use pdtl_graph::gen::rmat::rmat;
    use pdtl_graph::verify::{triangle_count, triangle_list};

    #[test]
    fn complete_graph_is_a_k_truss() {
        // Every edge of K_n lies in n-2 triangles: trussness n.
        let g = complete(6).unwrap();
        let d = truss_decomposition(&g, &triangle_list(&g));
        assert_eq!(d.max_k(), 6);
        assert!(d.trussness.values().all(|&t| t == 6));
        assert_eq!(d.truss_edges(6).len(), 15);
        assert!(d.truss_edges(7).is_empty());
    }

    #[test]
    fn triangle_free_graphs_peel_at_two() {
        for g in [cycle(8).unwrap(), grid(4, 4).unwrap()] {
            let d = truss_decomposition(&g, &triangle_list(&g));
            assert_eq!(d.max_k(), 2);
        }
    }

    #[test]
    fn triangle_with_tail() {
        // K_3 plus a pendant edge: the triangle has trussness 3, the
        // tail 2.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]).unwrap();
        let d = truss_decomposition(&g, &triangle_list(&g));
        assert_eq!(d.trussness[&(0, 1)], 3);
        assert_eq!(d.trussness[&(1, 2)], 3);
        assert_eq!(d.trussness[&(0, 2)], 3);
        assert_eq!(d.trussness[&(2, 3)], 2);
        assert_eq!(d.truss_edges(3), vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn two_cliques_share_a_bridge() {
        // Two K_4s joined by one edge: K_4 edges have trussness 4.
        let mut edges = Vec::new();
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                edges.push((u, v));
                edges.push((u + 4, v + 4));
            }
        }
        edges.push((0, 4));
        let g = Graph::from_edges(8, &edges).unwrap();
        let d = truss_decomposition(&g, &triangle_list(&g));
        assert_eq!(d.max_k(), 4);
        assert_eq!(d.truss_edges(4).len(), 12);
        assert_eq!(d.trussness[&(0, 4)], 2);
    }

    #[test]
    fn truss_invariant_every_edge_supported() {
        // Property: in the k-truss subgraph, each edge closes >= k-2
        // triangles inside the subgraph.
        let g = rmat(6, 111).unwrap();
        let list = triangle_list(&g);
        let d = truss_decomposition(&g, &list);
        for k in 3..=d.max_k() {
            let edges = d.truss_edges(k);
            if edges.is_empty() {
                continue;
            }
            let edge_set: std::collections::HashSet<(u32, u32)> = edges.iter().copied().collect();
            let mut adj: HashMap<u32, Vec<u32>> = HashMap::new();
            for &(u, v) in &edges {
                adj.entry(u).or_default().push(v);
                adj.entry(v).or_default().push(u);
            }
            for &(u, v) in &edges {
                let nu = &adj[&u];
                let support = nu
                    .iter()
                    .filter(|&&w| edge_set.contains(&key(v, w)))
                    .count() as u32;
                assert!(
                    support >= k - 2,
                    "edge ({u},{v}) has support {support} < {k}-2"
                );
            }
        }
    }

    #[test]
    fn decomposition_covers_every_edge() {
        let g = rmat(6, 112).unwrap();
        let d = truss_decomposition(&g, &triangle_list(&g));
        assert_eq!(d.trussness.len() as u64, g.num_edges());
        let _ = triangle_count(&g);
    }
}
