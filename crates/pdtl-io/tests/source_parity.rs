//! Cross-backend accounting contract of the [`U32Source`] seam.
//!
//! The four backends — blocking [`U32Reader`], read-ahead
//! [`PrefetchReader`], zero-copy [`MmapSource`], asynchronous
//! [`UringSource`] — must yield byte-identical `u32` streams, identical
//! final positions, and identical `bytes_read`/`seeks` for *any* access
//! pattern (reads, short and long skips, seeks — all clamped at end of
//! file), at any block size, on any file length including empty. The
//! property test drives randomized patterns; the explicit tests pin the
//! EOF-clamp and empty-file edges the buffered path fixed in PR 3.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use pdtl_io::{
    mmap_supported, uring_supported, IoStats, MmapSource, PrefetchReader, U32Reader, U32Source,
    U32Writer, UringSource,
};

/// The non-reference backends available on this platform (`blocking`
/// is always the reference trace).
fn other_backends() -> Vec<&'static str> {
    let mut v = vec!["prefetch"];
    if mmap_supported() {
        v.push("mmap");
    }
    if uring_supported() {
        v.push("uring");
    }
    v
}

static UNIQ: AtomicU64 = AtomicU64::new(0);

fn write_fixture(vals: &[u32]) -> PathBuf {
    let dir = std::env::temp_dir().join("pdtl-source-parity");
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(format!(
        "f-{}-{}",
        std::process::id(),
        UNIQ.fetch_add(1, Ordering::Relaxed)
    ));
    let mut w = U32Writer::create(&p, IoStats::new()).unwrap();
    w.write_all(vals).unwrap();
    w.finish().unwrap();
    p
}

/// One step of an access pattern: `kind % 3` selects read / skip /
/// seek, `amount` the count or target (often past EOF, exercising the
/// clamps).
fn drive(src: &mut impl U32Source, ops: &[(u8, u64)]) -> (Vec<u32>, u64) {
    let mut out = Vec::new();
    for &(kind, amount) in ops {
        match kind % 3 {
            0 => {
                src.read_into(&mut out, amount as usize % 5000).unwrap();
            }
            1 => src.skip(amount).unwrap(),
            _ => src.seek_to(amount).unwrap(),
        }
    }
    (out, src.position())
}

/// Run the pattern through one backend, returning
/// `(stream, position, bytes_read, seeks, read_ops)`.
type Trace = (Vec<u32>, u64, u64, u64, u64);

fn trace_backend(which: &str, path: &PathBuf, block: usize, ops: &[(u8, u64)]) -> Trace {
    let stats = IoStats::new();
    let (out, pos) = match which {
        "blocking" => {
            let mut r = U32Reader::with_buffer(path, stats.clone(), block).unwrap();
            drive(&mut r, ops)
        }
        "prefetch" => {
            let mut r =
                PrefetchReader::new(U32Reader::with_buffer(path, stats.clone(), block).unwrap())
                    .unwrap();
            drive(&mut r, ops)
        }
        "mmap" => {
            let mut m = MmapSource::with_block(path, stats.clone(), block).unwrap();
            drive(&mut m, ops)
        }
        "uring" => {
            let mut u = UringSource::with_block(path, stats.clone(), block).unwrap();
            drive(&mut u, ops)
        }
        other => panic!("unknown backend {other}"),
    };
    (
        out,
        pos,
        stats.bytes_read(),
        stats.seeks(),
        stats.read_ops(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn backends_yield_identical_streams_and_accounting(
        len in 0usize..30_000,
        block in 1usize..1500,
        ops in prop::collection::vec((0u8..6, 0u64..40_000), 0..32),
    ) {
        let vals: Vec<u32> = (0..len as u32).map(|i| i.wrapping_mul(2_654_435_761)).collect();
        let path = write_fixture(&vals);

        let (b_out, b_pos, b_bytes, b_seeks, b_ops) =
            trace_backend("blocking", &path, block, &ops);
        for which in other_backends() {
            let (out, pos, bytes, seeks, read_ops) = trace_backend(which, &path, block, &ops);
            prop_assert_eq!(&out, &b_out);
            prop_assert_eq!(pos, b_pos);
            prop_assert_eq!(bytes, b_bytes);
            prop_assert_eq!(seeks, b_seeks);
            if which != "prefetch" {
                // The mmap and uring sources mirror the blocking reader
                // refill for refill; the prefetcher's op granularity
                // legitimately differs at EOF (it never issues the
                // empty read).
                prop_assert_eq!(read_ops, b_ops);
            }
        }
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn eof_clamp_edges_agree_across_backends() {
    // The PR 3 regression shape: seek past EOF, then read; skip
    // u64::MAX; read at exactly EOF. Every backend must clamp the same
    // way and count the same I/O.
    let vals: Vec<u32> = (0..1000).collect();
    let path = write_fixture(&vals);
    let ops: Vec<(u8, u64)> = vec![
        (2, 1_000_000), // seek far past EOF: clamps to len
        (0, 10),        // read at EOF: nothing
        (2, 990),       // seek near the end
        (0, 100),       // read the 10-value tail
        (1, u64::MAX),  // skip clamps
        (2, 0),         // rewind
        (1, 999),       // skip to the last value
        (0, 5),         // read it
    ];
    let reference = trace_backend("blocking", &path, 64, &ops);
    assert_eq!(
        &reference.0[reference.0.len() - 1..],
        &[999],
        "sanity: the pattern ends on the last value"
    );
    for which in other_backends() {
        let got = trace_backend(which, &path, 64, &ops);
        assert_eq!(got.0, reference.0, "{which}: stream");
        assert_eq!(got.1, reference.1, "{which}: position");
        assert_eq!(got.2, reference.2, "{which}: bytes_read");
        assert_eq!(got.3, reference.3, "{which}: seeks");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn empty_file_edges_agree_across_backends() {
    let path = write_fixture(&[]);
    let ops: Vec<(u8, u64)> = vec![(0, 10), (2, 5), (1, u64::MAX), (0, 1)];
    let reference = trace_backend("blocking", &path, 16, &ops);
    assert!(reference.0.is_empty());
    assert_eq!(reference.1, 0, "position clamps to the empty length");
    for which in other_backends() {
        let got = trace_backend(which, &path, 16, &ops);
        assert_eq!(got.0, reference.0, "{which}: stream");
        assert_eq!(got.1, reference.1, "{which}: position");
        assert_eq!(got.2, reference.2, "{which}: bytes_read");
        assert_eq!(got.3, reference.3, "{which}: seeks");
    }
    let _ = std::fs::remove_file(&path);
}
