//! Cross-backend accounting contract of the [`U32Source`] seam.
//!
//! The four backends — blocking [`U32Reader`], read-ahead
//! [`PrefetchReader`], zero-copy [`MmapSource`], asynchronous
//! [`UringSource`] — must yield byte-identical `u32` streams, identical
//! final positions, and identical `bytes_read`/`seeks` for *any* access
//! pattern (reads, short and long skips, seeks — all clamped at end of
//! file), at any block size, on any file length including empty. The
//! property test drives randomized patterns; the explicit tests pin the
//! EOF-clamp and empty-file edges the buffered path fixed in PR 3.
//!
//! The codec × transport cross-product extends the same contract one
//! layer up: a [`VarintSource`] over any transport must yield the same
//! logical stream and decoded position as the raw reference, and the
//! *compressed* accounting (bytes_read / seeks / u32s_decoded) must be
//! identical whichever transport carries the bytes.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use pdtl_io::{
    mmap_supported, uring_supported, IoStats, MmapSource, PrefetchReader, U32Reader, U32Source,
    U32Writer, UringSource, VarintAdjWriter, VarintIndex, VarintSource,
};

/// The non-reference backends available on this platform (`blocking`
/// is always the reference trace).
fn other_backends() -> Vec<&'static str> {
    let mut v = vec!["prefetch"];
    if mmap_supported() {
        v.push("mmap");
    }
    if uring_supported() {
        v.push("uring");
    }
    v
}

static UNIQ: AtomicU64 = AtomicU64::new(0);

fn write_fixture(vals: &[u32]) -> PathBuf {
    let dir = std::env::temp_dir().join("pdtl-source-parity");
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(format!(
        "f-{}-{}",
        std::process::id(),
        UNIQ.fetch_add(1, Ordering::Relaxed)
    ));
    let mut w = U32Writer::create(&p, IoStats::new()).unwrap();
    w.write_all(vals).unwrap();
    w.finish().unwrap();
    p
}

/// One step of an access pattern: `kind % 3` selects read / skip /
/// seek, `amount` the count or target (often past EOF, exercising the
/// clamps).
fn drive(src: &mut impl U32Source, ops: &[(u8, u64)]) -> (Vec<u32>, u64) {
    let mut out = Vec::new();
    for &(kind, amount) in ops {
        match kind % 3 {
            0 => {
                src.read_into(&mut out, amount as usize % 5000).unwrap();
            }
            1 => src.skip(amount).unwrap(),
            _ => src.seek_to(amount).unwrap(),
        }
    }
    (out, src.position())
}

/// Run the pattern through one backend, returning
/// `(stream, position, bytes_read, seeks, read_ops)`.
type Trace = (Vec<u32>, u64, u64, u64, u64);

fn trace_backend(which: &str, path: &PathBuf, block: usize, ops: &[(u8, u64)]) -> Trace {
    let stats = IoStats::new();
    let (out, pos) = match which {
        "blocking" => {
            let mut r = U32Reader::with_buffer(path, stats.clone(), block).unwrap();
            drive(&mut r, ops)
        }
        "prefetch" => {
            let mut r =
                PrefetchReader::new(U32Reader::with_buffer(path, stats.clone(), block).unwrap())
                    .unwrap();
            drive(&mut r, ops)
        }
        "mmap" => {
            let mut m = MmapSource::with_block(path, stats.clone(), block).unwrap();
            drive(&mut m, ops)
        }
        "uring" => {
            let mut u = UringSource::with_block(path, stats.clone(), block).unwrap();
            drive(&mut u, ops)
        }
        other => panic!("unknown backend {other}"),
    };
    (
        out,
        pos,
        stats.bytes_read(),
        stats.seeks(),
        stats.read_ops(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn backends_yield_identical_streams_and_accounting(
        len in 0usize..30_000,
        block in 1usize..1500,
        ops in prop::collection::vec((0u8..6, 0u64..40_000), 0..32),
    ) {
        let vals: Vec<u32> = (0..len as u32).map(|i| i.wrapping_mul(2_654_435_761)).collect();
        let path = write_fixture(&vals);

        let (b_out, b_pos, b_bytes, b_seeks, b_ops) =
            trace_backend("blocking", &path, block, &ops);
        for which in other_backends() {
            let (out, pos, bytes, seeks, read_ops) = trace_backend(which, &path, block, &ops);
            prop_assert_eq!(&out, &b_out);
            prop_assert_eq!(pos, b_pos);
            prop_assert_eq!(bytes, b_bytes);
            prop_assert_eq!(seeks, b_seeks);
            if which != "prefetch" {
                // The mmap and uring sources mirror the blocking reader
                // refill for refill; the prefetcher's op granularity
                // legitimately differs at EOF (it never issues the
                // empty read).
                prop_assert_eq!(read_ops, b_ops);
            }
        }
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn eof_clamp_edges_agree_across_backends() {
    // The PR 3 regression shape: seek past EOF, then read; skip
    // u64::MAX; read at exactly EOF. Every backend must clamp the same
    // way and count the same I/O.
    let vals: Vec<u32> = (0..1000).collect();
    let path = write_fixture(&vals);
    let ops: Vec<(u8, u64)> = vec![
        (2, 1_000_000), // seek far past EOF: clamps to len
        (0, 10),        // read at EOF: nothing
        (2, 990),       // seek near the end
        (0, 100),       // read the 10-value tail
        (1, u64::MAX),  // skip clamps
        (2, 0),         // rewind
        (1, 999),       // skip to the last value
        (0, 5),         // read it
    ];
    let reference = trace_backend("blocking", &path, 64, &ops);
    assert_eq!(
        &reference.0[reference.0.len() - 1..],
        &[999],
        "sanity: the pattern ends on the last value"
    );
    for which in other_backends() {
        let got = trace_backend(which, &path, 64, &ops);
        assert_eq!(got.0, reference.0, "{which}: stream");
        assert_eq!(got.1, reference.1, "{which}: position");
        assert_eq!(got.2, reference.2, "{which}: bytes_read");
        assert_eq!(got.3, reference.3, "{which}: seeks");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn empty_file_edges_agree_across_backends() {
    let path = write_fixture(&[]);
    let ops: Vec<(u8, u64)> = vec![(0, 10), (2, 5), (1, u64::MAX), (0, 1)];
    let reference = trace_backend("blocking", &path, 16, &ops);
    assert!(reference.0.is_empty());
    assert_eq!(reference.1, 0, "position clamps to the empty length");
    for which in other_backends() {
        let got = trace_backend(which, &path, 16, &ops);
        assert_eq!(got.0, reference.0, "{which}: stream");
        assert_eq!(got.1, reference.1, "{which}: position");
        assert_eq!(got.2, reference.2, "{which}: bytes_read");
        assert_eq!(got.3, reference.3, "{which}: seeks");
    }
    let _ = std::fs::remove_file(&path);
}

/// Build a varint fixture from per-vertex strictly-increasing runs:
/// writes the compressed file, returns its path, the seek index, and
/// the flattened logical stream (what a raw file would contain).
fn write_varint_fixture(runs: &[Vec<u32>]) -> (PathBuf, Arc<VarintIndex>, Vec<u32>) {
    let dir = std::env::temp_dir().join("pdtl-source-parity");
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(format!(
        "v-{}-{}",
        std::process::id(),
        UNIQ.fetch_add(1, Ordering::Relaxed)
    ));
    let mut w = VarintAdjWriter::create(&p, IoStats::new()).unwrap();
    let mut decoded = vec![0u64];
    let mut logical = Vec::new();
    for run in runs {
        w.write_run(run).unwrap();
        logical.extend_from_slice(run);
        decoded.push(logical.len() as u64);
    }
    let bytes = w.finish().unwrap();
    let index = Arc::new(VarintIndex::new(decoded, bytes).unwrap());
    (p, index, logical)
}

/// Drive `ops` through a [`VarintSource`] over the named transport,
/// returning `(stream, position, bytes_read, seeks, u32s_decoded)`.
fn trace_varint(
    which: &str,
    path: &PathBuf,
    index: &Arc<VarintIndex>,
    block: usize,
    ops: &[(u8, u64)],
) -> (Vec<u32>, u64, u64, u64, u64) {
    let stats = IoStats::new();
    let (out, pos) = match which {
        "blocking" => {
            let inner = U32Reader::with_buffer(path, stats.clone(), block).unwrap();
            let mut s = VarintSource::new(inner, index.clone(), stats.clone()).unwrap();
            drive(&mut s, ops)
        }
        "prefetch" => {
            let inner =
                PrefetchReader::new(U32Reader::with_buffer(path, stats.clone(), block).unwrap())
                    .unwrap();
            let mut s = VarintSource::new(inner, index.clone(), stats.clone()).unwrap();
            drive(&mut s, ops)
        }
        "mmap" => {
            let inner = MmapSource::with_block(path, stats.clone(), block).unwrap();
            let mut s = VarintSource::new(inner, index.clone(), stats.clone()).unwrap();
            drive(&mut s, ops)
        }
        "uring" => {
            let inner = UringSource::with_block(path, stats.clone(), block).unwrap();
            let mut s = VarintSource::new(inner, index.clone(), stats.clone()).unwrap();
            drive(&mut s, ops)
        }
        other => panic!("unknown backend {other}"),
    };
    (
        out,
        pos,
        stats.bytes_read(),
        stats.seeks(),
        stats.u32s_decoded(),
    )
}

/// Shrink a flat value pool into per-vertex strictly-increasing runs:
/// each (gap, len) pair cuts one run whose deltas come from the pool.
fn runs_from_pool(pool: &[(u8, u8)]) -> Vec<Vec<u32>> {
    let mut runs = Vec::new();
    for chunk in pool.chunks(3) {
        let mut run = Vec::new();
        let mut v = 0u32;
        for &(gap, reps) in chunk {
            for r in 0..(reps % 4) {
                v += 1 + u32::from(gap) * (u32::from(r) + 1);
                run.push(v);
            }
        }
        runs.push(run); // empty runs (all reps % 4 == 0) are legal
    }
    runs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn codec_transport_cross_product_agrees(
        pool in prop::collection::vec((0u8..255, 0u8..255), 0..120),
        block in 1usize..900,
        ops in prop::collection::vec((0u8..6, 0u64..4_000), 0..24),
    ) {
        let runs = runs_from_pool(&pool);
        let (vpath, index, logical) = write_varint_fixture(&runs);
        let rpath = write_fixture(&logical);

        // Raw blocking reader is the logical-stream reference.
        let (want_out, want_pos, ..) = trace_backend("blocking", &rpath, block, &ops);

        let (b_out, b_pos, b_bytes, b_seeks, b_dec) =
            trace_varint("blocking", &vpath, &index, block, &ops);
        prop_assert_eq!(&b_out, &want_out);
        prop_assert_eq!(b_pos, want_pos);
        for which in other_backends() {
            let (out, pos, bytes, seeks, dec) =
                trace_varint(which, &vpath, &index, block, &ops);
            prop_assert_eq!(&out, &b_out);
            prop_assert_eq!(pos, b_pos);
            prop_assert_eq!(bytes, b_bytes);
            prop_assert_eq!(seeks, b_seeks);
            prop_assert_eq!(dec, b_dec);
        }
        let _ = std::fs::remove_file(&vpath);
        let _ = std::fs::remove_file(&rpath);
    }
}

#[test]
fn varint_eof_and_empty_edges_agree_across_transports() {
    // The EOF-clamp pattern from the raw edge test, replayed in decoded
    // index space, plus the all-empty-runs graph (zero encoded bytes).
    let mut runs: Vec<Vec<u32>> = (0..50u32)
        .map(|s| (0..20).map(|i| s + i * (s % 7 + 1) + 1).collect())
        .collect();
    runs.insert(7, Vec::new());
    let (vpath, index, logical) = write_varint_fixture(&runs);
    let ops: Vec<(u8, u64)> = vec![
        (2, 1_000_000),
        (0, 10),
        (2, logical.len() as u64 - 10),
        (0, 100),
        (1, u64::MAX),
        (2, 0),
        (1, logical.len() as u64 - 1),
        (0, 5),
    ];
    let reference = trace_varint("blocking", &vpath, &index, 64, &ops);
    assert_eq!(
        reference.0.last(),
        logical.last(),
        "sanity: the pattern ends on the last decoded value"
    );
    assert_eq!(
        reference.1,
        logical.len() as u64,
        "position clamps at decoded EOF"
    );
    for which in other_backends() {
        let got = trace_varint(which, &vpath, &index, 64, &ops);
        assert_eq!(got.0, reference.0, "{which}: stream");
        assert_eq!(got.1, reference.1, "{which}: position");
        assert_eq!(got.2, reference.2, "{which}: bytes_read");
        assert_eq!(got.3, reference.3, "{which}: seeks");
        assert_eq!(got.4, reference.4, "{which}: u32s_decoded");
    }
    let _ = std::fs::remove_file(&vpath);

    let (epath, eindex, elogical) = write_varint_fixture(&[Vec::new(), Vec::new()]);
    assert!(elogical.is_empty());
    let eops: Vec<(u8, u64)> = vec![(0, 10), (2, 5), (1, u64::MAX), (0, 1)];
    let eref = trace_varint("blocking", &epath, &eindex, 16, &eops);
    assert!(eref.0.is_empty());
    assert_eq!(eref.1, 0);
    for which in other_backends() {
        let got = trace_varint(which, &epath, &eindex, 16, &eops);
        assert_eq!((got.0, got.1, got.2, got.3, got.4), eref.clone(), "{which}");
    }
    let _ = std::fs::remove_file(&epath);
}
