//! Property tests of the I/O substrate: external sort, u32 streams,
//! budgets.

use proptest::prelude::*;

use pdtl_io::{external_sort_u64, extsort, IoStats, MemoryBudget, U32Reader, U32Writer};

fn tmp(name: &str, case: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("pdtl-io-proptests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}-{case}", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn external_sort_sorts_any_input(
        mut vals in prop::collection::vec(any::<u64>(), 0..2000),
        mem in 1usize..300,
        case in any::<u64>(),
    ) {
        let stats = IoStats::new();
        let inp = tmp("sort-in", case);
        let out = tmp("sort-out", case);
        extsort::write_u64_records(&inp, &vals, &stats).unwrap();
        let n = external_sort_u64(&inp, &out, mem, &stats).unwrap();
        prop_assert_eq!(n, vals.len() as u64);
        let got = extsort::read_u64_records(&out, &stats).unwrap();
        vals.sort_unstable();
        prop_assert_eq!(got, vals);
        let _ = std::fs::remove_file(inp);
        let _ = std::fs::remove_file(out);
    }

    #[test]
    fn u32_stream_round_trips(
        vals in prop::collection::vec(any::<u32>(), 0..5000),
        buf in 1usize..64,
        case in any::<u64>(),
    ) {
        let stats = IoStats::new();
        let p = tmp("stream", case);
        let mut w = U32Writer::with_buffer(&p, stats.clone(), buf).unwrap();
        w.write_all(&vals).unwrap();
        prop_assert_eq!(w.finish().unwrap(), vals.len() as u64);
        let mut r = U32Reader::with_buffer(&p, stats.clone(), buf).unwrap();
        prop_assert_eq!(r.len_u32(), vals.len() as u64);
        let len = vals.len() as u64;
        prop_assert_eq!(r.read_all().unwrap(), vals);
        // accounting: bytes written == bytes read == 4 * len
        prop_assert_eq!(stats.bytes_written(), 4 * len);
        prop_assert_eq!(stats.bytes_read(), 4 * len);
        let _ = std::fs::remove_file(p);
    }

    #[test]
    fn u32_seek_reads_the_right_value(
        vals in prop::collection::vec(any::<u32>(), 1..2000),
        case in any::<u64>(),
        pick in any::<prop::sample::Index>(),
    ) {
        let stats = IoStats::new();
        let p = tmp("seek", case);
        let mut w = U32Writer::create(&p, stats.clone()).unwrap();
        w.write_all(&vals).unwrap();
        w.finish().unwrap();
        let idx = pick.index(vals.len());
        let mut r = U32Reader::open(&p, stats).unwrap();
        r.seek_to(idx as u64).unwrap();
        prop_assert_eq!(r.next().unwrap(), Some(vals[idx]));
        let _ = std::fs::remove_file(p);
    }

    #[test]
    fn budget_iterations_cover_everything(
        edges in 0u64..1_000_000,
        budget in 1usize..100_000,
    ) {
        let b = MemoryBudget::edges(budget);
        let iters = b.iterations_for(edges);
        let chunk = b.chunk_edges() as u64;
        // enough iterations to cover, never one more than needed
        prop_assert!(iters * chunk >= edges);
        prop_assert!(iters == 0 || (iters - 1) * chunk < edges);
    }
}
