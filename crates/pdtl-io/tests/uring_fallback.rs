//! Graceful degradation of the `io_uring` backend.
//!
//! On a kernel without `io_uring` (pre-5.6, seccomp-filtered, or
//! `io_uring_disabled=2`) the backend must not take the process down:
//! [`UringSource::open`] reports a clean `Unsupported` error and
//! `IoBackend::Uring.resolve()` degrades to the prefetch backend. The
//! `PDTL_URING_DISABLE` kill-switch forces that exact path, which this
//! binary (its own process, so the env var cannot leak into parallel
//! uring tests) exercises end to end.

use pdtl_io::{IoBackend, IoStats, U32Writer, UringSource, URING_DISABLE_ENV};

fn disable_uring() {
    // Safe to call repeatedly; each test sets it before first use so
    // test order cannot matter.
    std::env::set_var(URING_DISABLE_ENV, "1");
}

#[test]
fn disabled_uring_reports_unsupported() {
    disable_uring();
    assert!(!pdtl_io::uring_supported());

    let dir = std::env::temp_dir().join("pdtl-uring-fallback");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("f-{}", std::process::id()));
    let mut w = U32Writer::create(&path, IoStats::new()).unwrap();
    w.write_all(&[1, 2, 3, 4]).unwrap();
    w.finish().unwrap();

    let err = UringSource::open(&path, IoStats::new()).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("io_uring"), "error names the backend: {msg}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn disabled_uring_resolves_to_prefetch() {
    disable_uring();
    assert_eq!(IoBackend::Uring.resolve(), IoBackend::Prefetch);
    // The other backends are unaffected by the kill-switch.
    assert_eq!(IoBackend::Prefetch.resolve(), IoBackend::Prefetch);
    assert_eq!(IoBackend::Blocking.resolve(), IoBackend::Blocking);
}

#[test]
fn disabled_uring_still_parses_and_names() {
    // The selector is plumbing, not capability: configs and wire bytes
    // naming uring stay valid on hosts that cannot serve it.
    disable_uring();
    assert_eq!(IoBackend::parse("uring"), Some(IoBackend::Uring));
    assert_eq!(IoBackend::parse("io_uring"), Some(IoBackend::Uring));
    assert_eq!(IoBackend::Uring.name(), "uring");
}
