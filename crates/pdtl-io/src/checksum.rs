//! In-repo CRC32C (Castagnoli) checksum primitive.
//!
//! The storage-integrity layer (graph manifests, replica verification,
//! `pdtl verify`) needs a fast, well-known digest without pulling in a
//! crates.io dependency. CRC32C fits: table-driven, 4 bytes per entry,
//! and its error-detection properties (all 1- and 2-bit errors, all
//! burst errors up to 32 bits) match the fault model we inject —
//! bit flips, truncations, and torn writes.
//!
//! The implementation is the standard reflected table-driven form over
//! the Castagnoli polynomial `0x1EDC6F41` (reflected `0x82F63B78`),
//! verified against the canonical check vector
//! `crc32c(b"123456789") == 0xE3069283`.

use std::io::Read;
use std::path::Path;

use crate::error::{IoError, Result};

/// Reflected Castagnoli polynomial.
const POLY: u32 = 0x82F6_3B78;

/// 256-entry lookup table, built at compile time.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Streaming CRC32C hasher.
///
/// ```
/// use pdtl_io::checksum::Crc32c;
/// let mut h = Crc32c::new();
/// h.update(b"1234");
/// h.update(b"56789");
/// assert_eq!(h.finalize(), 0xE306_9283);
/// ```
#[derive(Debug, Clone)]
pub struct Crc32c {
    state: u32,
}

impl Crc32c {
    /// Start a fresh digest.
    pub fn new() -> Self {
        Crc32c { state: !0 }
    }

    /// Feed `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
        }
        self.state = crc;
    }

    /// Finish and return the digest. The hasher may keep being fed;
    /// `finalize` is a snapshot, not a terminal operation.
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32c {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC32C of a byte slice.
pub fn crc32c(bytes: &[u8]) -> u32 {
    let mut h = Crc32c::new();
    h.update(bytes);
    h.finalize()
}

/// Digest a whole file, returning `(length, crc32c)`.
///
/// Reads in 64 KiB chunks through a plain [`std::fs::File`]; integrity
/// scans are metadata traffic, deliberately *not* routed through the
/// accounted I/O layer so they never perturb the cost model's
/// `bytes_read` bookkeeping.
pub fn crc32c_of_file(path: &Path) -> Result<(u64, u32)> {
    let mut file = std::fs::File::open(path).map_err(|e| IoError::os("open", path, e))?;
    let mut buf = vec![0u8; 64 * 1024];
    let mut h = Crc32c::new();
    let mut len = 0u64;
    loop {
        let got = file
            .read(&mut buf)
            .map_err(|e| IoError::os("read", path, e))?;
        if got == 0 {
            break;
        }
        h.update(&buf[..got]);
        len += got as u64;
    }
    Ok((len, h.finalize()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vector() {
        // The canonical CRC32C check vector (RFC 3720 appendix et al.).
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32c(b""), 0);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut h = Crc32c::new();
        for chunk in data.chunks(37) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), crc32c(&data));
    }

    #[test]
    fn single_bit_flip_changes_digest() {
        let mut data = vec![0u8; 4096];
        let base = crc32c(&data);
        for byte in [0usize, 1000, 4095] {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32c(&data), base, "flip at {byte}:{bit}");
                data[byte] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn file_digest_matches_slice_digest() {
        let dir = std::env::temp_dir().join("pdtl-crc-test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("blob");
        let data: Vec<u8> = (0..50_000u32).flat_map(|w| w.to_le_bytes()).collect();
        std::fs::write(&p, &data).unwrap();
        let (len, crc) = crc32c_of_file(&p).unwrap();
        assert_eq!(len, data.len() as u64);
        assert_eq!(crc, crc32c(&data));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn missing_file_is_typed_error() {
        let err = crc32c_of_file(Path::new("/nonexistent/pdtl-nope")).unwrap_err();
        assert!(err.to_string().contains("pdtl-nope"));
    }
}
