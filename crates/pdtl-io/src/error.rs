//! Error type shared by the I/O substrate.

use std::fmt;
use std::path::PathBuf;

/// Result alias used throughout the I/O substrate.
pub type Result<T> = std::result::Result<T, IoError>;

/// An I/O error annotated with the operation and path that produced it.
///
/// `std::io::Error` on its own loses the file name, which makes failures in
/// a multi-file external-memory pipeline (degree file, adjacency file, run
/// files, per-node copies) hard to attribute. Every substrate operation
/// wraps errors with enough context to identify the failing file.
#[derive(Debug)]
pub enum IoError {
    /// An operating-system I/O failure on a specific path.
    Os {
        /// What the substrate was doing (e.g. `"read"`, `"create"`).
        op: &'static str,
        /// The file involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A file had an unexpected size or shape (e.g. not a multiple of 4
    /// bytes for a `u32` stream).
    Malformed {
        /// The file involved.
        path: PathBuf,
        /// Human-readable description of the problem.
        detail: String,
    },
    /// A requested memory budget is too small to make progress.
    BudgetTooSmall {
        /// Edges requested by the operation.
        needed: usize,
        /// Edges available under the budget.
        available: usize,
    },
}

impl IoError {
    /// Wrap an OS error with operation and path context.
    pub fn os(op: &'static str, path: impl Into<PathBuf>, source: std::io::Error) -> Self {
        IoError::Os {
            op,
            path: path.into(),
            source,
        }
    }

    /// Build a `Malformed` error for `path`.
    pub fn malformed(path: impl Into<PathBuf>, detail: impl Into<String>) -> Self {
        IoError::Malformed {
            path: path.into(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Os { op, path, source } => {
                write!(f, "{op} {}: {source}", path.display())
            }
            IoError::Malformed { path, detail } => {
                write!(f, "malformed file {}: {detail}", path.display())
            }
            IoError::BudgetTooSmall { needed, available } => write!(
                f,
                "memory budget too small: need {needed} edges, have {available}"
            ),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Os { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_path_and_op() {
        let e = IoError::os(
            "read",
            "/tmp/x.adj",
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        let s = e.to_string();
        assert!(s.contains("read"), "{s}");
        assert!(s.contains("/tmp/x.adj"), "{s}");
    }

    #[test]
    fn display_malformed() {
        let e = IoError::malformed("/tmp/x.deg", "size not a multiple of 4");
        assert!(e.to_string().contains("multiple of 4"));
    }

    #[test]
    fn display_budget() {
        let e = IoError::BudgetTooSmall {
            needed: 10,
            available: 5,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("5"));
    }

    #[test]
    fn source_is_preserved() {
        use std::error::Error;
        let e = IoError::os("open", "/f", std::io::Error::other("x"));
        assert!(e.source().is_some());
        let e2 = IoError::malformed("/f", "bad");
        assert!(e2.source().is_none());
    }
}
