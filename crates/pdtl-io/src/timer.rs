//! Wall-clock timers that split elapsed time into CPU and I/O shares.
//!
//! The paper's Figures 6–8 and Tables IV/VII report, per core and per node,
//! how much of the total time was spent computing versus blocked on disk.
//! [`CpuIoTimer`] reproduces that instrumentation: the I/O share comes from
//! the [`IoStats`] counters that every counted stream
//! updates, and the CPU share is the remainder of wall time.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::stats::IoStats;

/// Measures a worker's wall time and splits it using the I/O time
/// accumulated in an [`IoStats`].
#[derive(Debug)]
pub struct CpuIoTimer {
    stats: Arc<IoStats>,
    start: Instant,
    io_at_start: Duration,
}

impl CpuIoTimer {
    /// Start timing against `stats` (captures the current I/O time so the
    /// breakdown covers only this timer's window).
    pub fn start(stats: Arc<IoStats>) -> Self {
        let io_at_start = stats.io_time();
        Self {
            stats,
            start: Instant::now(),
            io_at_start,
        }
    }

    /// Stop and produce the breakdown for the timed window.
    pub fn finish(self) -> TimeBreakdown {
        let wall = self.start.elapsed();
        let io = self
            .stats
            .io_time()
            .saturating_sub(self.io_at_start)
            .min(wall);
        TimeBreakdown { wall, io }
    }
}

/// Elapsed wall time split into I/O wait and compute.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimeBreakdown {
    /// Total wall time of the window.
    pub wall: Duration,
    /// Portion spent blocked in I/O calls.
    pub io: Duration,
}

impl TimeBreakdown {
    /// Compute share: wall minus I/O.
    pub fn cpu(&self) -> Duration {
        self.wall.saturating_sub(self.io)
    }

    /// Sum two breakdowns (e.g. across phases).
    pub fn merged(&self, other: &TimeBreakdown) -> TimeBreakdown {
        TimeBreakdown {
            wall: self.wall + other.wall,
            io: self.io + other.io,
        }
    }

    /// Fraction of wall time spent on I/O (0 when wall is zero).
    pub fn io_fraction(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.io.as_secs_f64() / self.wall.as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_splits_wall_time() {
        let stats = IoStats::new();
        let t = CpuIoTimer::start(stats.clone());
        stats.record_read(100, Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(10));
        let b = t.finish();
        assert!(b.wall >= Duration::from_millis(10));
        assert_eq!(b.io, Duration::from_millis(5));
        assert!(b.cpu() >= Duration::from_millis(5));
    }

    #[test]
    fn io_before_start_is_excluded() {
        let stats = IoStats::new();
        stats.record_read(100, Duration::from_secs(100)); // pre-existing
        let t = CpuIoTimer::start(stats.clone());
        stats.record_read(1, Duration::from_nanos(10));
        let b = t.finish();
        assert!(b.io < Duration::from_secs(1));
    }

    #[test]
    fn io_clamped_to_wall() {
        // Concurrent writers can accumulate more I/O time than one
        // thread's wall clock; the breakdown must stay sane.
        let stats = IoStats::new();
        let t = CpuIoTimer::start(stats.clone());
        stats.record_read(1, Duration::from_secs(3600));
        let b = t.finish();
        assert_eq!(b.io, b.wall);
        assert_eq!(b.cpu(), Duration::ZERO);
    }

    #[test]
    fn merged_sums_components() {
        let a = TimeBreakdown {
            wall: Duration::from_secs(2),
            io: Duration::from_secs(1),
        };
        let b = TimeBreakdown {
            wall: Duration::from_secs(4),
            io: Duration::from_secs(2),
        };
        let m = a.merged(&b);
        assert_eq!(m.wall, Duration::from_secs(6));
        assert_eq!(m.io, Duration::from_secs(3));
        assert_eq!(m.cpu(), Duration::from_secs(3));
    }

    #[test]
    fn io_fraction() {
        let b = TimeBreakdown {
            wall: Duration::from_secs(4),
            io: Duration::from_secs(1),
        };
        assert!((b.io_fraction() - 0.25).abs() < 1e-9);
        assert_eq!(TimeBreakdown::default().io_fraction(), 0.0);
    }
}
