//! Deterministic read-fault injection at the [`U32Source`] seam.
//!
//! [`FaultySource`] wraps any [`U32Source`] and fails with a
//! [`IoError::Malformed`](crate::IoError) "injected short read" once a
//! configured number of values has been delivered. The cluster layer
//! uses it to simulate a node whose replica goes bad mid-scan (a
//! truncated file, a dying disk) without touching real storage, so
//! fault-tolerance tests stay deterministic and hermetic.
//!
//! Positioning calls (`seek_to` / `skip`) are passed through unchanged
//! and do not count against the budget: the fault models data delivery
//! failing, not the seek machinery, and keeping the trigger tied to
//! values *read* makes the failure point independent of the access
//! pattern's seek/skip mix.

use crate::error::{IoError, Result};
use crate::stream::U32Source;

/// A [`U32Source`] that delivers at most `budget` values and then
/// errors on every subsequent read, emulating a short read / truncated
/// replica at a deterministic offset. A second mode
/// ([`with_bitflip`](Self::with_bitflip)) instead corrupts one value
/// *silently* in flight, modeling media corruption the transport
/// cannot see — the case only end-to-end digests catch.
#[derive(Debug)]
pub struct FaultySource<S> {
    inner: S,
    /// Values still deliverable before the injected failure.
    remaining: u64,
    /// Silent corruption: XOR `mask` into the value at source `index`.
    flip: Option<(u64, u32)>,
}

impl<S: U32Source> FaultySource<S> {
    /// Wrap `inner`, allowing `budget` values to be read before the
    /// injected failure fires.
    pub fn new(inner: S, budget: u64) -> Self {
        FaultySource {
            inner,
            remaining: budget,
            flip: None,
        }
    }

    /// Wrap `inner` so the value at source index `index` is delivered
    /// XOR-ed with `mask` (no read budget). Unlike the short-read mode
    /// this fault is *silent*: reads succeed and the corrupted value
    /// flows into the engine, which is exactly why checksummed
    /// manifests exist — transports cannot detect it.
    pub fn with_bitflip(inner: S, index: u64, mask: u32) -> Self {
        FaultySource {
            inner,
            remaining: u64::MAX,
            flip: Some((index, mask)),
        }
    }

    fn exhausted(&self) -> IoError {
        IoError::malformed(
            "<fault-injected>",
            "injected short read: source budget exhausted",
        )
    }
}

impl<S: U32Source> U32Source for FaultySource<S> {
    fn len_u32(&self) -> u64 {
        self.inner.len_u32()
    }

    fn position(&self) -> u64 {
        self.inner.position()
    }

    fn seek_to(&mut self, index: u64) -> Result<()> {
        self.inner.seek_to(index)
    }

    fn read_into(&mut self, out: &mut Vec<u32>, n: usize) -> Result<usize> {
        if n == 0 {
            return Ok(0);
        }
        if self.remaining == 0 {
            return Err(self.exhausted());
        }
        let allowed = self.remaining.min(n as u64) as usize;
        let before = self.inner.position();
        let got = self.inner.read_into(out, allowed)?;
        self.remaining -= got as u64;
        if let Some((index, mask)) = self.flip {
            if index >= before && index < before + got as u64 {
                let slot = out.len() - got + (index - before) as usize;
                out[slot] ^= mask;
            }
        }
        if got == 0 && allowed < n {
            // At EOF with the budget smaller than the request: report
            // honest EOF rather than a fault — the budget only fires
            // on data that would otherwise have been delivered.
            return Ok(0);
        }
        Ok(got)
    }

    fn skip(&mut self, n: u64) -> Result<()> {
        self.inner.skip(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::IoStats;
    use crate::stream::U32Writer;
    use std::sync::Arc;

    fn write_values(dir: &std::path::Path, vals: &[u32]) -> std::path::PathBuf {
        let path = dir.join("vals.u32");
        let stats = Arc::new(IoStats::default());
        let mut w = U32Writer::create(&path, stats).unwrap();
        w.write_all(vals).unwrap();
        w.finish().unwrap();
        path
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("pdtl-fault-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn delivers_exactly_budget_then_errors() {
        let dir = temp_dir("budget");
        let path = write_values(&dir, &[1, 2, 3, 4, 5, 6]);
        let stats = Arc::new(IoStats::default());
        let reader = crate::stream::U32Reader::open(&path, stats).unwrap();
        let mut src = FaultySource::new(reader, 4);
        let mut out = Vec::new();
        assert_eq!(src.read_into(&mut out, 3).unwrap(), 3);
        assert_eq!(src.read_into(&mut out, 3).unwrap(), 1);
        assert_eq!(out, vec![1, 2, 3, 4]);
        let err = src.read_into(&mut out, 1).unwrap_err();
        assert!(err.to_string().contains("injected short read"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_requests_and_positioning_do_not_consume_budget() {
        let dir = temp_dir("seek");
        let path = write_values(&dir, &[10, 20, 30]);
        let stats = Arc::new(IoStats::default());
        let reader = crate::stream::U32Reader::open(&path, stats).unwrap();
        let mut src = FaultySource::new(reader, 2);
        let mut out = Vec::new();
        assert_eq!(src.read_into(&mut out, 0).unwrap(), 0);
        src.seek_to(1).unwrap();
        src.skip(1).unwrap();
        assert_eq!(src.position(), 2);
        assert_eq!(src.read_into(&mut out, 1).unwrap(), 1);
        assert_eq!(out, vec![30]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bitflip_corrupts_silently_at_the_seeded_index() {
        let dir = temp_dir("flip");
        let path = write_values(&dir, &[10, 20, 30, 40, 50]);
        let stats = Arc::new(IoStats::default());
        let reader = crate::stream::U32Reader::open(&path, stats).unwrap();
        let mut src = FaultySource::with_bitflip(reader, 3, 0x8000_0001);
        let mut out = Vec::new();
        assert_eq!(src.read_into(&mut out, 2).unwrap(), 2);
        assert_eq!(src.read_into(&mut out, 3).unwrap(), 3);
        assert_eq!(out, vec![10, 20, 30, 40 ^ 0x8000_0001, 50]);
        // Re-reading the same index corrupts again: the fault models
        // bad media, not a one-shot glitch.
        src.seek_to(3).unwrap();
        out.clear();
        assert_eq!(src.read_into(&mut out, 1).unwrap(), 1);
        assert_eq!(out, vec![40 ^ 0x8000_0001]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn honest_eof_is_not_a_fault() {
        let dir = temp_dir("eof");
        let path = write_values(&dir, &[7]);
        let stats = Arc::new(IoStats::default());
        let reader = crate::stream::U32Reader::open(&path, stats).unwrap();
        let mut src = FaultySource::new(reader, 100);
        let mut out = Vec::new();
        assert_eq!(src.read_into(&mut out, 8).unwrap(), 1);
        assert_eq!(src.read_into(&mut out, 8).unwrap(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
