//! Per-processor memory budgets.
//!
//! The paper's analysis parameterises every bound by `M`, the memory
//! available to one processor, measured in edges: the MGT chunk loader
//! brings `Θ(M)` oriented edges into memory per iteration, and a processor
//! responsible for `S` edges performs `ceil(S / M)` iterations. PDTL's
//! evaluation (Figure 5) varies `M` while holding everything else fixed;
//! [`MemoryBudget`] is the knob those experiments turn.

use crate::error::{IoError, Result};

/// Fraction of the budget the chunk loader actually fills (the paper's
/// implementation-specific constant `c < 1`; it leaves room for the `ind`
/// offset array and scratch space).
pub const DEFAULT_LOAD_FACTOR: f64 = 0.5;

/// Memory available to a single logical processor, in edges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryBudget {
    /// Total edges' worth of memory available to the processor.
    pub edges: usize,
    /// Fraction of `edges` the chunk loader may fill per iteration.
    pub load_factor: f64,
}

impl MemoryBudget {
    /// A budget of `edges` edges with the default load factor.
    pub fn edges(edges: usize) -> Self {
        Self {
            edges,
            load_factor: DEFAULT_LOAD_FACTOR,
        }
    }

    /// A budget expressed in bytes, at 4 bytes per stored edge endpoint
    /// (the on-disk and in-memory unit of the PDTL format). This mirrors
    /// the paper's "1GB of memory/core" style configuration.
    pub fn bytes(bytes: u64) -> Self {
        Self::edges((bytes / crate::stream::BYTES_PER_U32) as usize)
    }

    /// Override the load factor (clamped to `(0, 1]`; `NaN` falls back
    /// to [`DEFAULT_LOAD_FACTOR`] — `clamp` propagates NaN, which would
    /// otherwise silently collapse every chunk to a single edge).
    pub fn with_load_factor(mut self, f: f64) -> Self {
        self.load_factor = if f.is_nan() {
            DEFAULT_LOAD_FACTOR
        } else {
            f.clamp(f64::MIN_POSITIVE, 1.0)
        };
        self
    }

    /// Edges loaded per MGT iteration: `c * M`, at least 1.
    pub fn chunk_edges(&self) -> usize {
        ((self.edges as f64 * self.load_factor) as usize).max(1)
    }

    /// Number of chunk iterations needed to cover `range_edges` edges:
    /// `ceil(S / cM)` — the `R` of the paper's Section IV-B2.
    pub fn iterations_for(&self, range_edges: u64) -> u64 {
        range_edges.div_ceil(self.chunk_edges() as u64)
    }

    /// Check the paper's small-degree assumption `d* <= cM` for a given
    /// maximum oriented degree; the MGT engine handles violations with an
    /// incremental fallback, but callers may want to warn.
    pub fn satisfies_small_degree(&self, d_star_max: u32) -> bool {
        (d_star_max as usize) <= self.chunk_edges()
    }

    /// Error unless the budget can hold at least `needed` edges per chunk.
    pub fn require_chunk(&self, needed: usize) -> Result<()> {
        let available = self.chunk_edges();
        if needed > available {
            Err(IoError::BudgetTooSmall { needed, available })
        } else {
            Ok(())
        }
    }
}

impl Default for MemoryBudget {
    /// 64 Mi edges (256 MiB), a laptop-friendly default.
    fn default() -> Self {
        Self::edges(64 << 20)
    }
}

/// A concurrency-safe admission ledger over a total [`MemoryBudget`].
///
/// A resident process running many MGT queries at once must never let
/// their *summed* working sets exceed the machine's budget. Each query
/// computes its worst-case resident cost in edges (`cores × M` for an
/// MGT run, plus `|E*|` when it materialises the graph) and calls
/// [`admit`](Self::admit): the call blocks until the cost fits under
/// `total`, and the returned [`BudgetLease`] gives the edges back on
/// drop — on every exit path, including a failed query.
///
/// A cost larger than the whole ledger is a typed
/// [`IoError::BudgetTooSmall`] instead of a block: admitting it could
/// never succeed, and waiting forever is how admission control
/// deadlocks.
#[derive(Debug)]
pub struct BudgetLedger {
    total: u64,
    state: std::sync::Mutex<LedgerState>,
    freed: std::sync::Condvar,
}

#[derive(Debug, Default)]
struct LedgerState {
    used: u64,
    peak: u64,
}

impl BudgetLedger {
    /// A ledger over `budget.edges` total edges.
    pub fn new(budget: MemoryBudget) -> Self {
        Self {
            total: budget.edges as u64,
            state: std::sync::Mutex::new(LedgerState::default()),
            freed: std::sync::Condvar::new(),
        }
    }

    /// Total edges the ledger can have outstanding at once.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Edges currently admitted.
    pub fn used(&self) -> u64 {
        self.state.lock().unwrap().used
    }

    /// High-water mark of admitted edges since creation — the number a
    /// test (or an operator) checks against `total` to prove admission
    /// never oversubscribed.
    pub fn peak(&self) -> u64 {
        self.state.lock().unwrap().peak
    }

    /// Block until `cost` edges fit under the ledger, then reserve
    /// them. Errors immediately when `cost > total`.
    pub fn admit(&self, cost: u64) -> Result<BudgetLease<'_>> {
        if cost > self.total {
            return Err(IoError::BudgetTooSmall {
                needed: cost as usize,
                available: self.total as usize,
            });
        }
        let mut st = self.state.lock().unwrap();
        while st.used + cost > self.total {
            st = self.freed.wait(st).unwrap();
        }
        st.used += cost;
        st.peak = st.peak.max(st.used);
        Ok(BudgetLease { ledger: self, cost })
    }
}

/// An admitted reservation; returns its edges to the ledger on drop.
#[derive(Debug)]
pub struct BudgetLease<'a> {
    ledger: &'a BudgetLedger,
    cost: u64,
}

impl BudgetLease<'_> {
    /// The admitted cost in edges.
    pub fn cost(&self) -> u64 {
        self.cost
    }
}

impl Drop for BudgetLease<'_> {
    fn drop(&mut self) {
        let mut st = self.ledger.state.lock().unwrap();
        st.used = st.used.saturating_sub(self.cost);
        drop(st);
        self.ledger.freed.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_is_load_factor_fraction() {
        let b = MemoryBudget::edges(1000);
        assert_eq!(b.chunk_edges(), 500);
        let b = b.with_load_factor(0.25);
        assert_eq!(b.chunk_edges(), 250);
    }

    #[test]
    fn chunk_is_at_least_one() {
        let b = MemoryBudget::edges(1).with_load_factor(0.1);
        assert_eq!(b.chunk_edges(), 1);
        let b = MemoryBudget::edges(0);
        assert_eq!(b.chunk_edges(), 1);
    }

    #[test]
    fn bytes_constructor_divides_by_endpoint_size() {
        let b = MemoryBudget::bytes(400);
        assert_eq!(b.edges, 100);
    }

    #[test]
    fn iterations_round_up() {
        let b = MemoryBudget::edges(100); // chunk = 50
        assert_eq!(b.iterations_for(0), 0);
        assert_eq!(b.iterations_for(1), 1);
        assert_eq!(b.iterations_for(50), 1);
        assert_eq!(b.iterations_for(51), 2);
        assert_eq!(b.iterations_for(500), 10);
    }

    #[test]
    fn small_degree_assumption() {
        let b = MemoryBudget::edges(100); // chunk = 50
        assert!(b.satisfies_small_degree(50));
        assert!(!b.satisfies_small_degree(51));
    }

    #[test]
    fn require_chunk_errors_when_too_small() {
        let b = MemoryBudget::edges(10); // chunk = 5
        assert!(b.require_chunk(5).is_ok());
        let err = b.require_chunk(6).unwrap_err();
        assert!(matches!(
            err,
            IoError::BudgetTooSmall {
                needed: 6,
                available: 5
            }
        ));
    }

    #[test]
    fn load_factor_clamped() {
        let b = MemoryBudget::edges(100).with_load_factor(2.0);
        assert_eq!(b.chunk_edges(), 100);
        let b = MemoryBudget::edges(100).with_load_factor(-1.0);
        assert_eq!(b.chunk_edges(), 1);
    }

    #[test]
    fn nan_load_factor_falls_back_to_default() {
        // Regression: NaN passed f64::clamp unchanged and silently
        // yielded 1-edge chunks.
        let b = MemoryBudget::edges(1000).with_load_factor(f64::NAN);
        assert_eq!(b.load_factor, DEFAULT_LOAD_FACTOR);
        assert_eq!(b.chunk_edges(), 500);
    }

    #[test]
    fn ledger_admits_releases_and_tracks_peak() {
        let ledger = BudgetLedger::new(MemoryBudget::edges(100));
        let a = ledger.admit(60).unwrap();
        let b = ledger.admit(40).unwrap();
        assert_eq!(ledger.used(), 100);
        assert_eq!(ledger.peak(), 100);
        drop(a);
        assert_eq!(ledger.used(), 40);
        drop(b);
        assert_eq!(ledger.used(), 0);
        assert_eq!(ledger.peak(), 100, "peak is a high-water mark");
    }

    #[test]
    fn ledger_rejects_impossible_costs_instead_of_blocking() {
        let ledger = BudgetLedger::new(MemoryBudget::edges(10));
        let err = ledger.admit(11).unwrap_err();
        assert!(matches!(
            err,
            IoError::BudgetTooSmall {
                needed: 11,
                available: 10
            }
        ));
    }

    #[test]
    fn ledger_blocks_until_space_frees_and_never_oversubscribes() {
        use std::sync::Arc;
        let ledger = Arc::new(BudgetLedger::new(MemoryBudget::edges(100)));
        let first = ledger.admit(80).unwrap();
        let l2 = Arc::clone(&ledger);
        let waiter = std::thread::spawn(move || {
            // Cannot fit beside the 80: must block until it drops.
            let lease = l2.admit(50).unwrap();
            l2.used() <= l2.total() && lease.cost() == 50
        });
        // Give the waiter time to reach the wait loop, then release.
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert_eq!(ledger.used(), 80, "waiter must not have been admitted");
        drop(first);
        assert!(waiter.join().unwrap());
        assert!(ledger.peak() <= ledger.total(), "never oversubscribed");
    }
}
