//! Per-processor memory budgets.
//!
//! The paper's analysis parameterises every bound by `M`, the memory
//! available to one processor, measured in edges: the MGT chunk loader
//! brings `Θ(M)` oriented edges into memory per iteration, and a processor
//! responsible for `S` edges performs `ceil(S / M)` iterations. PDTL's
//! evaluation (Figure 5) varies `M` while holding everything else fixed;
//! [`MemoryBudget`] is the knob those experiments turn.

use crate::error::{IoError, Result};

/// Fraction of the budget the chunk loader actually fills (the paper's
/// implementation-specific constant `c < 1`; it leaves room for the `ind`
/// offset array and scratch space).
pub const DEFAULT_LOAD_FACTOR: f64 = 0.5;

/// Memory available to a single logical processor, in edges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryBudget {
    /// Total edges' worth of memory available to the processor.
    pub edges: usize,
    /// Fraction of `edges` the chunk loader may fill per iteration.
    pub load_factor: f64,
}

impl MemoryBudget {
    /// A budget of `edges` edges with the default load factor.
    pub fn edges(edges: usize) -> Self {
        Self {
            edges,
            load_factor: DEFAULT_LOAD_FACTOR,
        }
    }

    /// A budget expressed in bytes, at 4 bytes per stored edge endpoint
    /// (the on-disk and in-memory unit of the PDTL format). This mirrors
    /// the paper's "1GB of memory/core" style configuration.
    pub fn bytes(bytes: u64) -> Self {
        Self::edges((bytes / crate::stream::BYTES_PER_U32) as usize)
    }

    /// Override the load factor (clamped to `(0, 1]`; `NaN` falls back
    /// to [`DEFAULT_LOAD_FACTOR`] — `clamp` propagates NaN, which would
    /// otherwise silently collapse every chunk to a single edge).
    pub fn with_load_factor(mut self, f: f64) -> Self {
        self.load_factor = if f.is_nan() {
            DEFAULT_LOAD_FACTOR
        } else {
            f.clamp(f64::MIN_POSITIVE, 1.0)
        };
        self
    }

    /// Edges loaded per MGT iteration: `c * M`, at least 1.
    pub fn chunk_edges(&self) -> usize {
        ((self.edges as f64 * self.load_factor) as usize).max(1)
    }

    /// Number of chunk iterations needed to cover `range_edges` edges:
    /// `ceil(S / cM)` — the `R` of the paper's Section IV-B2.
    pub fn iterations_for(&self, range_edges: u64) -> u64 {
        range_edges.div_ceil(self.chunk_edges() as u64)
    }

    /// Check the paper's small-degree assumption `d* <= cM` for a given
    /// maximum oriented degree; the MGT engine handles violations with an
    /// incremental fallback, but callers may want to warn.
    pub fn satisfies_small_degree(&self, d_star_max: u32) -> bool {
        (d_star_max as usize) <= self.chunk_edges()
    }

    /// Error unless the budget can hold at least `needed` edges per chunk.
    pub fn require_chunk(&self, needed: usize) -> Result<()> {
        let available = self.chunk_edges();
        if needed > available {
            Err(IoError::BudgetTooSmall { needed, available })
        } else {
            Ok(())
        }
    }
}

impl Default for MemoryBudget {
    /// 64 Mi edges (256 MiB), a laptop-friendly default.
    fn default() -> Self {
        Self::edges(64 << 20)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_is_load_factor_fraction() {
        let b = MemoryBudget::edges(1000);
        assert_eq!(b.chunk_edges(), 500);
        let b = b.with_load_factor(0.25);
        assert_eq!(b.chunk_edges(), 250);
    }

    #[test]
    fn chunk_is_at_least_one() {
        let b = MemoryBudget::edges(1).with_load_factor(0.1);
        assert_eq!(b.chunk_edges(), 1);
        let b = MemoryBudget::edges(0);
        assert_eq!(b.chunk_edges(), 1);
    }

    #[test]
    fn bytes_constructor_divides_by_endpoint_size() {
        let b = MemoryBudget::bytes(400);
        assert_eq!(b.edges, 100);
    }

    #[test]
    fn iterations_round_up() {
        let b = MemoryBudget::edges(100); // chunk = 50
        assert_eq!(b.iterations_for(0), 0);
        assert_eq!(b.iterations_for(1), 1);
        assert_eq!(b.iterations_for(50), 1);
        assert_eq!(b.iterations_for(51), 2);
        assert_eq!(b.iterations_for(500), 10);
    }

    #[test]
    fn small_degree_assumption() {
        let b = MemoryBudget::edges(100); // chunk = 50
        assert!(b.satisfies_small_degree(50));
        assert!(!b.satisfies_small_degree(51));
    }

    #[test]
    fn require_chunk_errors_when_too_small() {
        let b = MemoryBudget::edges(10); // chunk = 5
        assert!(b.require_chunk(5).is_ok());
        let err = b.require_chunk(6).unwrap_err();
        assert!(matches!(
            err,
            IoError::BudgetTooSmall {
                needed: 6,
                available: 5
            }
        ));
    }

    #[test]
    fn load_factor_clamped() {
        let b = MemoryBudget::edges(100).with_load_factor(2.0);
        assert_eq!(b.chunk_edges(), 100);
        let b = MemoryBudget::edges(100).with_load_factor(-1.0);
        assert_eq!(b.chunk_edges(), 1);
    }

    #[test]
    fn nan_load_factor_falls_back_to_default() {
        // Regression: NaN passed f64::clamp unchanged and silently
        // yielded 1-edge chunks.
        let b = MemoryBudget::edges(1000).with_load_factor(f64::NAN);
        assert_eq!(b.load_factor, DEFAULT_LOAD_FACTOR);
        assert_eq!(b.chunk_edges(), 500);
    }
}
