//! Buffered, counted little-endian `u32` file streams.
//!
//! Every PDTL graph file is a flat stream of little-endian `u32`s (degrees
//! in `.deg`, neighbour ids in `.adj`), matching the binary format of the
//! original MGT implementation the paper builds on. These wrappers add:
//!
//! * buffering in block-sized chunks, so the block-model accounting in
//!   [`IoStats`] reflects real access patterns;
//! * byte/op/time counting on every refill and flush;
//! * positioned reads (`seek_to`), counted as seeks.
//!
//! Positioning guarantees: `seek_to` and `skip` clamp to end-of-file (a
//! reader's position never exceeds [`U32Reader::len_u32`], so
//! `read_all` can never underflow its remaining count), and `skip`
//! coalesces short forward skips into buffered read-through — only a
//! skip landing beyond one buffer refill pays an OS seek. Bound-pruned
//! scans that skip many consecutive short out-lists therefore stay
//! sequential on disk instead of degenerating into a seek storm.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use crate::error::{IoError, Result};
use crate::stats::IoStats;

/// Size of one encoded `u32` in the on-disk format.
pub const BYTES_PER_U32: u64 = 4;

/// Default stream buffer: one 64 KiB block. Shared with
/// [`MmapSource`](crate::MmapSource) so backends account in identical
/// block units by default.
pub(crate) const DEFAULT_BUF_U32S: usize = 16 * 1024;

/// A buffered reader of little-endian `u32`s with I/O accounting.
#[derive(Debug)]
pub struct U32Reader {
    file: File,
    path: PathBuf,
    stats: Arc<IoStats>,
    buf: Vec<u8>,
    /// Valid bytes in `buf`.
    filled: usize,
    /// Consumed bytes in `buf`.
    pos: usize,
    /// Total `u32`s in the file.
    len_u32: u64,
    /// Index of the next `u32` to be returned.
    next_index: u64,
    /// Emulated device latency added to every refill (see
    /// [`set_read_latency`](Self::set_read_latency)).
    read_latency: std::time::Duration,
}

impl U32Reader {
    /// Open `path` for reading with the default buffer size.
    pub fn open(path: impl AsRef<Path>, stats: Arc<IoStats>) -> Result<Self> {
        Self::with_buffer(path, stats, DEFAULT_BUF_U32S)
    }

    /// Open `path` with a buffer of `buf_u32s` values (minimum 1).
    pub fn with_buffer(
        path: impl AsRef<Path>,
        stats: Arc<IoStats>,
        buf_u32s: usize,
    ) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::open(&path).map_err(|e| IoError::os("open", &path, e))?;
        let meta = file.metadata().map_err(|e| IoError::os("stat", &path, e))?;
        if meta.len() % BYTES_PER_U32 != 0 {
            return Err(IoError::malformed(
                &path,
                format!("size {} is not a multiple of 4", meta.len()),
            ));
        }
        Ok(Self {
            file,
            len_u32: meta.len() / BYTES_PER_U32,
            path,
            stats,
            buf: vec![0u8; buf_u32s.max(1) * BYTES_PER_U32 as usize],
            filled: 0,
            pos: 0,
            next_index: 0,
            read_latency: std::time::Duration::ZERO,
        })
    }

    /// Emulate a storage device with the given per-block-read latency:
    /// every refill sleeps `latency` before issuing the OS read, and the
    /// sleep is charged to [`IoStats`] I/O time like any other blocking
    /// read. Zero (the default) measures the real hardware.
    ///
    /// This is the I/O analogue of the cluster's `NetModel`: page-cached
    /// files never block, so ablations that compare blocking against
    /// overlapped I/O on warm fixtures need a deterministic way to
    /// recreate the device waits the paper's multi-pass bound is about.
    pub fn set_read_latency(&mut self, latency: std::time::Duration) {
        self.read_latency = latency;
    }

    /// Total number of `u32`s in the file.
    pub fn len_u32(&self) -> u64 {
        self.len_u32
    }

    /// The file this reader streams from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Buffer capacity in `u32`s (the block size of every refill).
    pub fn buf_u32s(&self) -> usize {
        self.buf.len() / BYTES_PER_U32 as usize
    }

    /// Decompose into the raw parts a background prefetcher needs:
    /// `(file, path, stats, buf_u32s, len_u32, read_latency)`. Any
    /// buffered-but-unread data is discarded; the consumer restarts
    /// from an explicit offset.
    #[allow(clippy::type_complexity)]
    pub(crate) fn into_parts(
        self,
    ) -> (File, PathBuf, Arc<IoStats>, usize, u64, std::time::Duration) {
        let buf_u32s = self.buf_u32s();
        (
            self.file,
            self.path,
            self.stats,
            buf_u32s,
            self.len_u32,
            self.read_latency,
        )
    }

    /// Index of the next value [`next`](Self::next) would return.
    pub fn position(&self) -> u64 {
        self.next_index
    }

    /// Reposition the stream to the `index`-th `u32`. Counted as a seek.
    /// Positions past end-of-file clamp to the end (subsequent reads
    /// report EOF) — they never produce an out-of-range `position`.
    pub fn seek_to(&mut self, index: u64) -> Result<()> {
        let index = index.min(self.len_u32);
        self.file
            .seek(SeekFrom::Start(index * BYTES_PER_U32))
            .map_err(|e| IoError::os("seek", &self.path, e))?;
        self.stats.record_seek();
        self.filled = 0;
        self.pos = 0;
        self.next_index = index;
        Ok(())
    }

    fn refill(&mut self) -> Result<usize> {
        let start = Instant::now();
        if !self.read_latency.is_zero() {
            std::thread::sleep(self.read_latency);
        }
        let n = self
            .file
            .read(&mut self.buf)
            .map_err(|e| IoError::os("read", &self.path, e))?;
        self.stats.record_read(n as u64, start.elapsed());
        self.filled = n;
        self.pos = 0;
        Ok(n)
    }

    /// Read the next value, or `None` at end of file.
    ///
    /// Deliberately named like `Iterator::next` — this is a fallible
    /// streaming reader, not an iterator (it returns `Result<Option<_>>`).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<u32>> {
        if self.pos + 4 > self.filled {
            // A partial trailing word cannot occur: file length is a
            // multiple of 4 and refills always start 4-aligned.
            if self.refill()? == 0 {
                return Ok(None);
            }
        }
        let b = &self.buf[self.pos..self.pos + 4];
        self.pos += 4;
        self.next_index += 1;
        Ok(Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]])))
    }

    /// Append up to `n` values onto `out`, returning how many were read
    /// (less than `n` only at end of file).
    pub fn read_into(&mut self, out: &mut Vec<u32>, n: usize) -> Result<usize> {
        let mut got = 0usize;
        while got < n {
            if self.pos + 4 > self.filled && self.refill()? == 0 {
                break;
            }
            let avail = (self.filled - self.pos) / 4;
            let take = avail.min(n - got);
            let bytes = &self.buf[self.pos..self.pos + take * 4];
            out.extend(
                bytes
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])),
            );
            self.pos += take * 4;
            got += take;
        }
        self.next_index += got as u64;
        Ok(got)
    }

    /// Read the whole remaining file into a vector.
    pub fn read_all(&mut self) -> Result<Vec<u32>> {
        // Saturate: position is clamped to len_u32, but stay safe even
        // if a future caller violates that.
        let remaining = self.len_u32.saturating_sub(self.next_index) as usize;
        let mut out = Vec::with_capacity(remaining);
        self.read_into(&mut out, remaining)?;
        Ok(out)
    }

    /// Seek to `pos` and read exactly `len` values into `out` (cleared
    /// first); errors if the range reaches past end of file. The one
    /// chunk-load primitive shared by the blocking and prefetching MGT
    /// chunk sources, so their failure behaviour cannot drift.
    pub fn read_exact_range(&mut self, pos: u64, len: usize, out: &mut Vec<u32>) -> Result<()> {
        out.clear();
        self.seek_to(pos)?;
        let got = self.read_into(out, len)?;
        if got != len {
            return Err(IoError::malformed(
                &self.path,
                format!("chunk [{pos}, {pos}+{len}) reaches past end of file"),
            ));
        }
        Ok(())
    }

    /// Skip `n` values without decoding them (clamped at end-of-file).
    ///
    /// A skip that stays within the buffered data just advances the
    /// cursor. A skip reaching at most one refill beyond it is
    /// *read through* — the buffer is refilled sequentially and the
    /// skipped values discarded — so consecutive short skips (a
    /// bound-pruned scan) never leave the sequential read path. Only a
    /// skip landing beyond the next refill pays an OS seek.
    pub fn skip(&mut self, n: u64) -> Result<()> {
        let n = n.min(self.len_u32.saturating_sub(self.next_index));
        let buffered = ((self.filled - self.pos) / 4) as u64;
        if n <= buffered {
            self.pos += (n * 4) as usize;
            self.next_index += n;
            return Ok(());
        }
        let beyond = n - buffered;
        if beyond <= (self.buf.len() / 4) as u64 {
            self.pos = self.filled;
            self.next_index += buffered;
            let mut left = beyond;
            while left > 0 {
                if self.refill()? == 0 {
                    break;
                }
                let take = ((self.filled / 4) as u64).min(left);
                self.pos = (take * 4) as usize;
                self.next_index += take;
                left -= take;
            }
            Ok(())
        } else {
            self.seek_to(self.next_index + n)
        }
    }
}

/// The positioned-read interface shared by [`U32Reader`] and the
/// overlapped [`PrefetchReader`](crate::prefetch::PrefetchReader), so
/// stream consumers (the MGT scan pass) can swap blocking for
/// prefetching I/O without changing their logic. Both implementations
/// follow the same positioning contract: positions clamp at
/// end-of-file, short skips read through, long skips count as seeks.
pub trait U32Source {
    /// Total number of `u32`s in the file.
    fn len_u32(&self) -> u64;

    /// Index of the next value a read would return.
    fn position(&self) -> u64;

    /// Reposition to the `index`-th `u32` (clamped; counted as a seek).
    fn seek_to(&mut self, index: u64) -> Result<()>;

    /// Append up to `n` values onto `out`, returning how many were read.
    fn read_into(&mut self, out: &mut Vec<u32>, n: usize) -> Result<usize>;

    /// Skip `n` values (clamped; short skips coalesce to read-through).
    fn skip(&mut self, n: u64) -> Result<()>;

    /// Seek to `pos` and read exactly `len` values into `out` (cleared
    /// first); errors if the range reaches past end of file. Provided in
    /// terms of [`seek_to`](Self::seek_to) + [`read_into`](Self::read_into)
    /// so every source — including codec-wrapped ones, where positions
    /// are *decoded* indices — shares one chunk-load primitive.
    fn read_exact_range(&mut self, pos: u64, len: usize, out: &mut Vec<u32>) -> Result<()> {
        out.clear();
        self.seek_to(pos)?;
        let got = self.read_into(out, len)?;
        if got != len {
            return Err(IoError::malformed(
                "<u32 stream>",
                format!("chunk [{pos}, {pos}+{len}) reaches past end of file"),
            ));
        }
        Ok(())
    }
}

impl U32Source for U32Reader {
    fn len_u32(&self) -> u64 {
        U32Reader::len_u32(self)
    }

    fn position(&self) -> u64 {
        U32Reader::position(self)
    }

    fn seek_to(&mut self, index: u64) -> Result<()> {
        U32Reader::seek_to(self, index)
    }

    fn read_into(&mut self, out: &mut Vec<u32>, n: usize) -> Result<usize> {
        U32Reader::read_into(self, out, n)
    }

    fn skip(&mut self, n: u64) -> Result<()> {
        U32Reader::skip(self, n)
    }
}

/// A buffered writer of little-endian `u32`s with I/O accounting.
#[derive(Debug)]
pub struct U32Writer {
    file: File,
    path: PathBuf,
    stats: Arc<IoStats>,
    buf: Vec<u8>,
    /// Flush threshold in bytes (explicit: `Vec::with_capacity` may
    /// round up, and the flush condition must not depend on that).
    cap: usize,
    written_u32: u64,
}

impl U32Writer {
    /// Create (truncate) `path` for writing with the default buffer.
    pub fn create(path: impl AsRef<Path>, stats: Arc<IoStats>) -> Result<Self> {
        Self::with_buffer(path, stats, DEFAULT_BUF_U32S)
    }

    /// Create `path` with a buffer of `buf_u32s` values.
    pub fn with_buffer(
        path: impl AsRef<Path>,
        stats: Arc<IoStats>,
        buf_u32s: usize,
    ) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path).map_err(|e| IoError::os("create", &path, e))?;
        let cap = buf_u32s.max(1) * BYTES_PER_U32 as usize;
        Ok(Self {
            file,
            path,
            stats,
            buf: Vec::with_capacity(cap),
            cap,
            written_u32: 0,
        })
    }

    /// Number of values written so far (including buffered ones).
    pub fn written_u32(&self) -> u64 {
        self.written_u32
    }

    /// Append one value.
    pub fn write(&mut self, v: u32) -> Result<()> {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self.written_u32 += 1;
        if self.buf.len() >= self.cap {
            self.flush_buf()?;
        }
        Ok(())
    }

    /// Append a slice of values, encoding buffer-sized runs at a time
    /// (one capacity check per run, not one per value).
    pub fn write_all(&mut self, vs: &[u32]) -> Result<()> {
        let mut rest = vs;
        while !rest.is_empty() {
            if self.buf.len() >= self.cap {
                self.flush_buf()?;
            }
            let room = ((self.cap - self.buf.len()) / BYTES_PER_U32 as usize).max(1);
            let (now, later) = rest.split_at(room.min(rest.len()));
            for &v in now {
                self.buf.extend_from_slice(&v.to_le_bytes());
            }
            self.written_u32 += now.len() as u64;
            rest = later;
        }
        if self.buf.len() >= self.cap {
            self.flush_buf()?;
        }
        Ok(())
    }

    fn flush_buf(&mut self) -> Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let start = Instant::now();
        self.file
            .write_all(&self.buf)
            .map_err(|e| IoError::os("write", &self.path, e))?;
        self.stats
            .record_write(self.buf.len() as u64, start.elapsed());
        self.buf.clear();
        Ok(())
    }

    /// Flush buffers and make the file durable; must be called before
    /// dropping if the data matters (drop also flushes, but swallows
    /// errors and does not sync). `sync_all` before close means a
    /// crash immediately after a graph write — or after `copy_to`
    /// lands a replica — cannot lose acknowledged bytes, which is the
    /// contract the integrity manifest's digests are recorded against.
    pub fn finish(mut self) -> Result<u64> {
        self.flush_buf()?;
        self.file
            .flush()
            .map_err(|e| IoError::os("flush", &self.path, e))?;
        self.file
            .sync_all()
            .map_err(|e| IoError::os("sync", &self.path, e))?;
        Ok(self.written_u32)
    }
}

impl Drop for U32Writer {
    fn drop(&mut self) {
        let _ = self.flush_buf();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("pdtl-io-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn round_trip_small() {
        let p = tmp("rt-small");
        let stats = IoStats::new();
        let mut w = U32Writer::create(&p, stats.clone()).unwrap();
        w.write_all(&[1, 2, 3, u32::MAX]).unwrap();
        assert_eq!(w.finish().unwrap(), 4);

        let mut r = U32Reader::open(&p, stats.clone()).unwrap();
        assert_eq!(r.len_u32(), 4);
        assert_eq!(r.read_all().unwrap(), vec![1, 2, 3, u32::MAX]);
        assert_eq!(stats.bytes_written(), 16);
        assert_eq!(stats.bytes_read(), 16);
    }

    #[test]
    fn round_trip_crosses_buffer_boundary() {
        let p = tmp("rt-buf");
        let stats = IoStats::new();
        let vals: Vec<u32> = (0..10_000).collect();
        let mut w = U32Writer::with_buffer(&p, stats.clone(), 7).unwrap();
        w.write_all(&vals).unwrap();
        w.finish().unwrap();

        let mut r = U32Reader::with_buffer(&p, stats.clone(), 13).unwrap();
        assert_eq!(r.read_all().unwrap(), vals);
    }

    #[test]
    fn next_iterates_in_order() {
        let p = tmp("next");
        let stats = IoStats::new();
        let mut w = U32Writer::create(&p, stats.clone()).unwrap();
        w.write_all(&[10, 20, 30]).unwrap();
        w.finish().unwrap();

        let mut r = U32Reader::open(&p, stats).unwrap();
        assert_eq!(r.next().unwrap(), Some(10));
        assert_eq!(r.position(), 1);
        assert_eq!(r.next().unwrap(), Some(20));
        assert_eq!(r.next().unwrap(), Some(30));
        assert_eq!(r.next().unwrap(), None);
        assert_eq!(r.next().unwrap(), None);
    }

    #[test]
    fn seek_and_skip() {
        let p = tmp("seek");
        let stats = IoStats::new();
        let vals: Vec<u32> = (100..200).collect();
        let mut w = U32Writer::create(&p, stats.clone()).unwrap();
        w.write_all(&vals).unwrap();
        w.finish().unwrap();

        let mut r = U32Reader::with_buffer(&p, stats.clone(), 8).unwrap();
        r.seek_to(50).unwrap();
        assert_eq!(r.next().unwrap(), Some(150));
        assert_eq!(stats.seeks(), 1);
        // short skip stays inside the buffer (8-u32 buffer holds 151..=157)
        r.skip(2).unwrap();
        assert_eq!(r.next().unwrap(), Some(153));
        // long skip falls back to seek
        r.skip(40).unwrap();
        assert_eq!(r.next().unwrap(), Some(194));
        assert_eq!(stats.seeks(), 2);
    }

    #[test]
    fn seek_past_eof_clamps_and_read_all_saturates() {
        // Regression: seek_to/skip used to accept positions past EOF,
        // and read_all then computed `len_u32 - next_index` on
        // `next_index > len_u32` (u64 underflow).
        let p = tmp("eof-clamp");
        let stats = IoStats::new();
        let mut w = U32Writer::create(&p, stats.clone()).unwrap();
        w.write_all(&[7, 8, 9]).unwrap();
        w.finish().unwrap();

        let mut r = U32Reader::open(&p, stats.clone()).unwrap();
        r.seek_to(1_000_000).unwrap();
        assert_eq!(r.position(), 3, "clamped to len_u32");
        assert_eq!(r.read_all().unwrap(), Vec::<u32>::new());
        assert_eq!(r.next().unwrap(), None);

        let mut r = U32Reader::open(&p, stats).unwrap();
        r.skip(u64::MAX).unwrap();
        assert_eq!(r.position(), 3, "skip clamps too");
        assert_eq!(r.read_all().unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn consecutive_short_skips_coalesce_into_read_through() {
        // Regression for the seek storm: a bound-pruned scan skipping
        // many short out-lists must stay on the sequential read path.
        let p = tmp("skip-coalesce");
        let stats = IoStats::new();
        let vals: Vec<u32> = (0..4096).collect();
        let mut w = U32Writer::create(&p, stats.clone()).unwrap();
        w.write_all(&vals).unwrap();
        w.finish().unwrap();

        // 16-u32 buffer; skip 10, read 2, repeatedly: every skip lands
        // at most one refill beyond the buffer, so zero OS seeks.
        let mut r = U32Reader::with_buffer(&p, stats.clone(), 16).unwrap();
        let mut out = Vec::new();
        let mut expect_at = 0u64;
        while r.position() + 12 < r.len_u32() {
            r.skip(10).unwrap();
            expect_at += 10;
            out.clear();
            assert_eq!(r.read_into(&mut out, 2).unwrap(), 2);
            assert_eq!(out, vec![expect_at as u32, expect_at as u32 + 1]);
            expect_at += 2;
        }
        assert_eq!(stats.seeks(), 0, "short skips must not seek");

        // A skip landing beyond one refill still falls back to a seek.
        let mut r = U32Reader::with_buffer(&p, stats.clone(), 16).unwrap();
        r.skip(100).unwrap();
        assert_eq!(stats.seeks(), 1);
        assert_eq!(r.next().unwrap(), Some(100));
    }

    #[test]
    fn bulk_write_all_matches_per_value_writes() {
        let stats = IoStats::new();
        let vals: Vec<u32> = (0..1000).map(|i| i * 3 + 1).collect();

        let p_bulk = tmp("bulk");
        let mut w = U32Writer::with_buffer(&p_bulk, stats.clone(), 37).unwrap();
        w.write_all(&vals).unwrap();
        assert_eq!(w.written_u32(), 1000);
        w.finish().unwrap();

        let p_one = tmp("one-by-one");
        let mut w = U32Writer::with_buffer(&p_one, stats.clone(), 37).unwrap();
        for &v in &vals {
            w.write(v).unwrap();
        }
        w.finish().unwrap();

        assert_eq!(
            std::fs::read(&p_bulk).unwrap(),
            std::fs::read(&p_one).unwrap(),
            "bulk and per-value writes must produce identical files"
        );
        let mut r = U32Reader::open(&p_bulk, stats).unwrap();
        assert_eq!(r.read_all().unwrap(), vals);
    }

    #[test]
    fn write_all_flushes_in_buffer_sized_ops() {
        let p = tmp("bulk-ops");
        let stats = IoStats::new();
        let mut w = U32Writer::with_buffer(&p, stats.clone(), 8).unwrap();
        w.write_all(&(0..64u32).collect::<Vec<_>>()).unwrap();
        w.finish().unwrap();
        assert_eq!(stats.bytes_written(), 256);
        assert_eq!(stats.write_ops(), 8, "one op per full 8-u32 buffer");
    }

    #[test]
    fn read_into_partial_at_eof() {
        let p = tmp("partial");
        let stats = IoStats::new();
        let mut w = U32Writer::create(&p, stats.clone()).unwrap();
        w.write_all(&[1, 2, 3]).unwrap();
        w.finish().unwrap();

        let mut r = U32Reader::open(&p, stats).unwrap();
        let mut out = Vec::new();
        assert_eq!(r.read_into(&mut out, 10).unwrap(), 3);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn rejects_non_u32_sized_file() {
        let p = tmp("badsize");
        std::fs::write(&p, [0u8; 5]).unwrap();
        let err = U32Reader::open(&p, IoStats::new()).unwrap_err();
        assert!(err.to_string().contains("multiple of 4"));
    }

    #[test]
    fn missing_file_error_names_path() {
        let p = tmp("does-not-exist-xyz");
        let _ = std::fs::remove_file(&p);
        let err = U32Reader::open(&p, IoStats::new()).unwrap_err();
        assert!(err.to_string().contains("does-not-exist-xyz"));
    }

    #[test]
    fn drop_flushes_buffered_writes() {
        let p = tmp("dropflush");
        let stats = IoStats::new();
        {
            let mut w = U32Writer::with_buffer(&p, stats.clone(), 1024).unwrap();
            w.write(42).unwrap();
            // no finish(): Drop must flush
        }
        let mut r = U32Reader::open(&p, stats).unwrap();
        assert_eq!(r.read_all().unwrap(), vec![42]);
    }

    #[test]
    fn io_time_is_recorded() {
        let p = tmp("iotime");
        let stats = IoStats::new();
        let mut w = U32Writer::create(&p, stats.clone()).unwrap();
        w.write_all(&(0..100u32).collect::<Vec<_>>()).unwrap();
        w.finish().unwrap();
        let mut r = U32Reader::open(&p, stats.clone()).unwrap();
        r.read_all().unwrap();
        assert!(stats.io_time() > std::time::Duration::ZERO);
    }
}
