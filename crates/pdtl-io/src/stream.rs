//! Buffered, counted little-endian `u32` file streams.
//!
//! Every PDTL graph file is a flat stream of little-endian `u32`s (degrees
//! in `.deg`, neighbour ids in `.adj`), matching the binary format of the
//! original MGT implementation the paper builds on. These wrappers add:
//!
//! * buffering in block-sized chunks, so the block-model accounting in
//!   [`IoStats`] reflects real access patterns;
//! * byte/op/time counting on every refill and flush;
//! * positioned reads (`seek_to`), counted as seeks.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use crate::error::{IoError, Result};
use crate::stats::IoStats;

/// Size of one encoded `u32` in the on-disk format.
pub const BYTES_PER_U32: u64 = 4;

/// Default stream buffer: one 64 KiB block.
const DEFAULT_BUF_U32S: usize = 16 * 1024;

/// A buffered reader of little-endian `u32`s with I/O accounting.
#[derive(Debug)]
pub struct U32Reader {
    file: File,
    path: PathBuf,
    stats: Arc<IoStats>,
    buf: Vec<u8>,
    /// Valid bytes in `buf`.
    filled: usize,
    /// Consumed bytes in `buf`.
    pos: usize,
    /// Total `u32`s in the file.
    len_u32: u64,
    /// Index of the next `u32` to be returned.
    next_index: u64,
}

impl U32Reader {
    /// Open `path` for reading with the default buffer size.
    pub fn open(path: impl AsRef<Path>, stats: Arc<IoStats>) -> Result<Self> {
        Self::with_buffer(path, stats, DEFAULT_BUF_U32S)
    }

    /// Open `path` with a buffer of `buf_u32s` values (minimum 1).
    pub fn with_buffer(
        path: impl AsRef<Path>,
        stats: Arc<IoStats>,
        buf_u32s: usize,
    ) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::open(&path).map_err(|e| IoError::os("open", &path, e))?;
        let meta = file.metadata().map_err(|e| IoError::os("stat", &path, e))?;
        if meta.len() % BYTES_PER_U32 != 0 {
            return Err(IoError::malformed(
                &path,
                format!("size {} is not a multiple of 4", meta.len()),
            ));
        }
        Ok(Self {
            file,
            len_u32: meta.len() / BYTES_PER_U32,
            path,
            stats,
            buf: vec![0u8; buf_u32s.max(1) * BYTES_PER_U32 as usize],
            filled: 0,
            pos: 0,
            next_index: 0,
        })
    }

    /// Total number of `u32`s in the file.
    pub fn len_u32(&self) -> u64 {
        self.len_u32
    }

    /// Index of the next value [`next`](Self::next) would return.
    pub fn position(&self) -> u64 {
        self.next_index
    }

    /// Reposition the stream to the `index`-th `u32`. Counted as a seek.
    pub fn seek_to(&mut self, index: u64) -> Result<()> {
        self.file
            .seek(SeekFrom::Start(index * BYTES_PER_U32))
            .map_err(|e| IoError::os("seek", &self.path, e))?;
        self.stats.record_seek();
        self.filled = 0;
        self.pos = 0;
        self.next_index = index;
        Ok(())
    }

    fn refill(&mut self) -> Result<usize> {
        let start = Instant::now();
        let n = self
            .file
            .read(&mut self.buf)
            .map_err(|e| IoError::os("read", &self.path, e))?;
        self.stats.record_read(n as u64, start.elapsed());
        self.filled = n;
        self.pos = 0;
        Ok(n)
    }

    /// Read the next value, or `None` at end of file.
    ///
    /// Deliberately named like `Iterator::next` — this is a fallible
    /// streaming reader, not an iterator (it returns `Result<Option<_>>`).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<u32>> {
        if self.pos + 4 > self.filled {
            // A partial trailing word cannot occur: file length is a
            // multiple of 4 and refills always start 4-aligned.
            if self.refill()? == 0 {
                return Ok(None);
            }
        }
        let b = &self.buf[self.pos..self.pos + 4];
        self.pos += 4;
        self.next_index += 1;
        Ok(Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]])))
    }

    /// Append up to `n` values onto `out`, returning how many were read
    /// (less than `n` only at end of file).
    pub fn read_into(&mut self, out: &mut Vec<u32>, n: usize) -> Result<usize> {
        let mut got = 0usize;
        while got < n {
            if self.pos + 4 > self.filled && self.refill()? == 0 {
                break;
            }
            let avail = (self.filled - self.pos) / 4;
            let take = avail.min(n - got);
            let bytes = &self.buf[self.pos..self.pos + take * 4];
            out.extend(
                bytes
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])),
            );
            self.pos += take * 4;
            got += take;
        }
        self.next_index += got as u64;
        Ok(got)
    }

    /// Read the whole remaining file into a vector.
    pub fn read_all(&mut self) -> Result<Vec<u32>> {
        let remaining = (self.len_u32 - self.next_index) as usize;
        let mut out = Vec::with_capacity(remaining);
        self.read_into(&mut out, remaining)?;
        Ok(out)
    }

    /// Skip `n` values without decoding them (buffered skip; long skips
    /// fall back to a seek).
    pub fn skip(&mut self, n: u64) -> Result<()> {
        let buffered = ((self.filled - self.pos) / 4) as u64;
        if n <= buffered {
            self.pos += (n * 4) as usize;
            self.next_index += n;
            Ok(())
        } else {
            self.seek_to(self.next_index + n)
        }
    }
}

/// A buffered writer of little-endian `u32`s with I/O accounting.
#[derive(Debug)]
pub struct U32Writer {
    file: File,
    path: PathBuf,
    stats: Arc<IoStats>,
    buf: Vec<u8>,
    written_u32: u64,
}

impl U32Writer {
    /// Create (truncate) `path` for writing with the default buffer.
    pub fn create(path: impl AsRef<Path>, stats: Arc<IoStats>) -> Result<Self> {
        Self::with_buffer(path, stats, DEFAULT_BUF_U32S)
    }

    /// Create `path` with a buffer of `buf_u32s` values.
    pub fn with_buffer(
        path: impl AsRef<Path>,
        stats: Arc<IoStats>,
        buf_u32s: usize,
    ) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path).map_err(|e| IoError::os("create", &path, e))?;
        Ok(Self {
            file,
            path,
            stats,
            buf: Vec::with_capacity(buf_u32s.max(1) * BYTES_PER_U32 as usize),
            written_u32: 0,
        })
    }

    /// Number of values written so far (including buffered ones).
    pub fn written_u32(&self) -> u64 {
        self.written_u32
    }

    /// Append one value.
    pub fn write(&mut self, v: u32) -> Result<()> {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self.written_u32 += 1;
        if self.buf.len() == self.buf.capacity() {
            self.flush_buf()?;
        }
        Ok(())
    }

    /// Append a slice of values.
    pub fn write_all(&mut self, vs: &[u32]) -> Result<()> {
        for &v in vs {
            self.write(v)?;
        }
        Ok(())
    }

    fn flush_buf(&mut self) -> Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let start = Instant::now();
        self.file
            .write_all(&self.buf)
            .map_err(|e| IoError::os("write", &self.path, e))?;
        self.stats
            .record_write(self.buf.len() as u64, start.elapsed());
        self.buf.clear();
        Ok(())
    }

    /// Flush buffers and sync lengths; must be called before dropping if
    /// the data matters (drop also flushes, but swallows errors).
    pub fn finish(mut self) -> Result<u64> {
        self.flush_buf()?;
        self.file
            .flush()
            .map_err(|e| IoError::os("flush", &self.path, e))?;
        Ok(self.written_u32)
    }
}

impl Drop for U32Writer {
    fn drop(&mut self) {
        let _ = self.flush_buf();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("pdtl-io-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn round_trip_small() {
        let p = tmp("rt-small");
        let stats = IoStats::new();
        let mut w = U32Writer::create(&p, stats.clone()).unwrap();
        w.write_all(&[1, 2, 3, u32::MAX]).unwrap();
        assert_eq!(w.finish().unwrap(), 4);

        let mut r = U32Reader::open(&p, stats.clone()).unwrap();
        assert_eq!(r.len_u32(), 4);
        assert_eq!(r.read_all().unwrap(), vec![1, 2, 3, u32::MAX]);
        assert_eq!(stats.bytes_written(), 16);
        assert_eq!(stats.bytes_read(), 16);
    }

    #[test]
    fn round_trip_crosses_buffer_boundary() {
        let p = tmp("rt-buf");
        let stats = IoStats::new();
        let vals: Vec<u32> = (0..10_000).collect();
        let mut w = U32Writer::with_buffer(&p, stats.clone(), 7).unwrap();
        w.write_all(&vals).unwrap();
        w.finish().unwrap();

        let mut r = U32Reader::with_buffer(&p, stats.clone(), 13).unwrap();
        assert_eq!(r.read_all().unwrap(), vals);
    }

    #[test]
    fn next_iterates_in_order() {
        let p = tmp("next");
        let stats = IoStats::new();
        let mut w = U32Writer::create(&p, stats.clone()).unwrap();
        w.write_all(&[10, 20, 30]).unwrap();
        w.finish().unwrap();

        let mut r = U32Reader::open(&p, stats).unwrap();
        assert_eq!(r.next().unwrap(), Some(10));
        assert_eq!(r.position(), 1);
        assert_eq!(r.next().unwrap(), Some(20));
        assert_eq!(r.next().unwrap(), Some(30));
        assert_eq!(r.next().unwrap(), None);
        assert_eq!(r.next().unwrap(), None);
    }

    #[test]
    fn seek_and_skip() {
        let p = tmp("seek");
        let stats = IoStats::new();
        let vals: Vec<u32> = (100..200).collect();
        let mut w = U32Writer::create(&p, stats.clone()).unwrap();
        w.write_all(&vals).unwrap();
        w.finish().unwrap();

        let mut r = U32Reader::with_buffer(&p, stats.clone(), 8).unwrap();
        r.seek_to(50).unwrap();
        assert_eq!(r.next().unwrap(), Some(150));
        assert_eq!(stats.seeks(), 1);
        // short skip stays inside the buffer (8-u32 buffer holds 151..=157)
        r.skip(2).unwrap();
        assert_eq!(r.next().unwrap(), Some(153));
        // long skip falls back to seek
        r.skip(40).unwrap();
        assert_eq!(r.next().unwrap(), Some(194));
        assert_eq!(stats.seeks(), 2);
    }

    #[test]
    fn read_into_partial_at_eof() {
        let p = tmp("partial");
        let stats = IoStats::new();
        let mut w = U32Writer::create(&p, stats.clone()).unwrap();
        w.write_all(&[1, 2, 3]).unwrap();
        w.finish().unwrap();

        let mut r = U32Reader::open(&p, stats).unwrap();
        let mut out = Vec::new();
        assert_eq!(r.read_into(&mut out, 10).unwrap(), 3);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn rejects_non_u32_sized_file() {
        let p = tmp("badsize");
        std::fs::write(&p, [0u8; 5]).unwrap();
        let err = U32Reader::open(&p, IoStats::new()).unwrap_err();
        assert!(err.to_string().contains("multiple of 4"));
    }

    #[test]
    fn missing_file_error_names_path() {
        let p = tmp("does-not-exist-xyz");
        let _ = std::fs::remove_file(&p);
        let err = U32Reader::open(&p, IoStats::new()).unwrap_err();
        assert!(err.to_string().contains("does-not-exist-xyz"));
    }

    #[test]
    fn drop_flushes_buffered_writes() {
        let p = tmp("dropflush");
        let stats = IoStats::new();
        {
            let mut w = U32Writer::with_buffer(&p, stats.clone(), 1024).unwrap();
            w.write(42).unwrap();
            // no finish(): Drop must flush
        }
        let mut r = U32Reader::open(&p, stats).unwrap();
        assert_eq!(r.read_all().unwrap(), vec![42]);
    }

    #[test]
    fn io_time_is_recorded() {
        let p = tmp("iotime");
        let stats = IoStats::new();
        let mut w = U32Writer::create(&p, stats.clone()).unwrap();
        w.write_all(&(0..100u32).collect::<Vec<_>>()).unwrap();
        w.finish().unwrap();
        let mut r = U32Reader::open(&p, stats.clone()).unwrap();
        r.read_all().unwrap();
        assert!(stats.io_time() > std::time::Duration::ZERO);
    }
}
