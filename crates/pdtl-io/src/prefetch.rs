//! Overlapped (read-ahead) streaming: hide disk latency behind compute.
//!
//! The MGT engine's inner loop alternates chunk loads and scan-pass
//! reads with intersection work, and with the blocking [`U32Reader`]
//! every one of those reads stalls the worker (Theorem IV.2's
//! `|E|²/(MB)` multi-pass term is pure I/O wait). This module provides
//! the two overlap primitives the engines build on:
//!
//! * [`PrefetchReader`] — a [`U32Source`] whose background thread keeps
//!   up to [`PREFETCH_DEPTH`] block-sized buffers ahead of the
//!   consumer, so sequential scans (including bound-pruned scans, whose
//!   short skips read through) never block on the next block. Blocks
//!   stay raw bytes until the consumer decodes what it actually reads,
//!   so skipped regions cost no decode — the same cost profile as the
//!   blocking reader, minus the read stalls.
//! * [`ChunkPrefetcher`] — positioned whole-range loads on a background
//!   thread; the MGT engine requests chunk `k+1` the moment chunk `k`
//!   is handed over, so the next `edg` array loads during the current
//!   scan pass.
//!
//! **Accounting contract:** both primitives report through the same
//! [`IoStats`] as their blocking twins and count *exactly the same*
//! `bytes_read` and `seeks` for the same logical access pattern — a
//! prefetched block is charged when the consumer takes it (a blocking
//! reader charges the equivalent refill), and read-ahead blocks
//! discarded by a reposition are never charged. The integration tests
//! assert this byte-for-byte, which is what makes `IoBackend::Prefetch`
//! a pure scheduling change rather than a different I/O plan.
//!
//! One deliberate asymmetry: `io_time` measures *device activity*
//! (each consumed block is charged its producer-side read duration,
//! emulated latency included). For a blocking reader that equals the
//! caller's stall time; for an overlapped reader the activity runs
//! concurrently with compute, so a worker's `io_time` can approach —
//! or exceed — its wall time even though it barely stalled. That is
//! the point of overlapping; `CpuIoTimer` clamps its breakdown to the
//! wall accordingly.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::error::{IoError, Result};
use crate::stats::IoStats;
use crate::stream::{U32Reader, U32Source, BYTES_PER_U32};

/// Blocks the producer keeps ready ahead of the consumer.
pub const PREFETCH_DEPTH: usize = 4;

/// Shared producer/consumer state of a [`PrefetchReader`].
struct Shared {
    state: Mutex<State>,
    /// Signalled when the producer should look for work.
    produce: Condvar,
    /// Signalled when a block (or EOF/error) is ready for the consumer.
    consume: Condvar,
}

struct State {
    /// Bumped by every consumer reposition; blocks from older epochs
    /// are recycled, never delivered.
    epoch: u64,
    /// Next `u32` index the producer should read for the current epoch.
    read_at: u64,
    /// Filled byte blocks (in file order) with their read times.
    queue: VecDeque<(Vec<u8>, Duration)>,
    /// Recycled block buffers.
    free: Vec<Vec<u8>>,
    /// Current epoch reached end-of-file.
    eof: bool,
    /// Producer-side failure, delivered to the consumer once.
    error: Option<IoError>,
    shutdown: bool,
}

/// A read-ahead [`U32Source`]: a background thread fills the next
/// block-sized buffers while the caller consumes the current one.
///
/// Construct one from an (unconsumed) [`U32Reader`] via
/// [`PrefetchReader::new`]; it inherits the reader's file, block size
/// and [`IoStats`]. Positioning follows the same contract as
/// [`U32Reader`]: `seek_to`/`skip` clamp at end-of-file, short skips
/// coalesce into read-through, and only repositions count as seeks.
pub struct PrefetchReader {
    shared: Arc<Shared>,
    handle: Option<JoinHandle<()>>,
    stats: Arc<IoStats>,
    /// Block currently being consumed (raw little-endian bytes).
    cur: Vec<u8>,
    /// Consumed bytes in `cur`.
    pos: usize,
    len_u32: u64,
    next_index: u64,
    block_u32s: usize,
}

impl std::fmt::Debug for PrefetchReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrefetchReader")
            .field("len_u32", &self.len_u32)
            .field("next_index", &self.next_index)
            .field("block_u32s", &self.block_u32s)
            .finish()
    }
}

impl PrefetchReader {
    /// Wrap `reader`, taking over its file and block size. Reading
    /// starts at the reader's current position; any data the reader had
    /// buffered is re-read by the producer (constructors hand over
    /// fresh readers in practice). Errors if the background thread
    /// cannot be spawned (the engines' whole API is `Result`-based, so
    /// thread exhaustion must not abort the process).
    pub fn new(reader: U32Reader) -> Result<Self> {
        let start = reader.position();
        let (file, path, stats, block_u32s, len_u32, latency) = reader.into_parts();
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                read_at: start,
                queue: VecDeque::new(),
                free: Vec::new(),
                eof: false,
                error: None,
                shutdown: false,
            }),
            produce: Condvar::new(),
            consume: Condvar::new(),
        });
        let producer_shared = Arc::clone(&shared);
        let spawn_path = path.clone();
        let handle = std::thread::Builder::new()
            .name("pdtl-prefetch".into())
            .spawn(move || producer(file, path, len_u32, block_u32s, latency, producer_shared))
            .map_err(|e| IoError::os("spawn", spawn_path, e))?;
        Ok(Self {
            shared,
            handle: Some(handle),
            stats,
            cur: Vec::new(),
            pos: 0,
            len_u32,
            next_index: start,
            block_u32s,
        })
    }

    /// Take the next ready block from the producer; returns `false` at
    /// end of file. Charges the block's bytes/time to [`IoStats`] —
    /// this is the prefetching equivalent of a blocking refill.
    fn pull(&mut self) -> Result<bool> {
        let mut st = self.shared.state.lock().unwrap();
        loop {
            if let Some((block, took)) = st.queue.pop_front() {
                let old = std::mem::replace(&mut self.cur, block);
                if old.capacity() > 0 {
                    st.free.push(old);
                }
                self.pos = 0;
                self.shared.produce.notify_one();
                drop(st);
                self.stats.record_read(self.cur.len() as u64, took);
                return Ok(true);
            }
            if let Some(e) = st.error.take() {
                return Err(e);
            }
            if st.eof {
                return Ok(false);
            }
            st = self.shared.consume.wait(st).unwrap();
        }
    }

    /// Values left unconsumed in the current block.
    fn buffered(&self) -> u64 {
        ((self.cur.len() - self.pos) as u64) / BYTES_PER_U32
    }
}

impl U32Source for PrefetchReader {
    fn len_u32(&self) -> u64 {
        self.len_u32
    }

    fn position(&self) -> u64 {
        self.next_index
    }

    fn seek_to(&mut self, index: u64) -> Result<()> {
        let index = index.min(self.len_u32);
        {
            let mut st = self.shared.state.lock().unwrap();
            st.epoch += 1;
            st.read_at = index;
            st.eof = false;
            st.error = None;
            while let Some((b, _)) = st.queue.pop_front() {
                st.free.push(b);
            }
            let old = std::mem::take(&mut self.cur);
            if old.capacity() > 0 {
                st.free.push(old);
            }
            self.shared.produce.notify_one();
        }
        self.pos = 0;
        self.next_index = index;
        self.stats.record_seek();
        Ok(())
    }

    fn read_into(&mut self, out: &mut Vec<u32>, n: usize) -> Result<usize> {
        let mut got = 0usize;
        while got < n {
            if self.pos >= self.cur.len() && !self.pull()? {
                break;
            }
            let avail = (self.cur.len() - self.pos) / BYTES_PER_U32 as usize;
            let take = avail.min(n - got);
            let bytes = &self.cur[self.pos..self.pos + take * BYTES_PER_U32 as usize];
            out.extend(
                bytes
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])),
            );
            self.pos += take * BYTES_PER_U32 as usize;
            got += take;
        }
        self.next_index += got as u64;
        Ok(got)
    }

    fn skip(&mut self, n: u64) -> Result<()> {
        let n = n.min(self.len_u32.saturating_sub(self.next_index));
        let buffered = self.buffered();
        if n <= buffered {
            self.pos += (n * BYTES_PER_U32) as usize;
            self.next_index += n;
            return Ok(());
        }
        let beyond = n - buffered;
        if beyond <= self.block_u32s as u64 {
            // Read-through: same coalescing rule as `U32Reader::skip`.
            self.pos = self.cur.len();
            self.next_index += buffered;
            let mut left = beyond;
            while left > 0 {
                if !self.pull()? {
                    break;
                }
                let take = ((self.cur.len() as u64) / BYTES_PER_U32).min(left);
                self.pos = (take * BYTES_PER_U32) as usize;
                self.next_index += take;
                left -= take;
            }
            Ok(())
        } else {
            self.seek_to(self.next_index + n)
        }
    }
}

impl Drop for PrefetchReader {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.produce.notify_one();
        }
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// The background read loop of a [`PrefetchReader`].
fn producer(
    mut file: File,
    path: PathBuf,
    len_u32: u64,
    block_u32s: usize,
    latency: Duration,
    shared: Arc<Shared>,
) {
    // The producer's actual file cursor (u32 index); `None` forces a
    // seek before the next read.
    let mut cursor: Option<u64> = None;
    loop {
        // Decide what to read (or stop) under the lock.
        let (epoch, at, mut out) = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if !st.eof && st.error.is_none() && st.queue.len() < PREFETCH_DEPTH {
                    if st.read_at >= len_u32 {
                        st.eof = true;
                        shared.consume.notify_one();
                        continue;
                    }
                    let out = st.free.pop().unwrap_or_default();
                    break (st.epoch, st.read_at, out);
                }
                st = shared.produce.wait(st).unwrap();
            }
        };

        // The emulated device wait runs first, *interruptibly*: a
        // consumer reposition (epoch bump) notifies `produce`, so the
        // producer abandons a stale wait immediately instead of
        // serialising stale sleeps in front of the new epoch's first
        // block. Real sleeps would make every scan rewind pay for
        // whatever read-ahead was in flight.
        if !latency.is_zero() {
            let deadline = Instant::now() + latency;
            let mut st = shared.state.lock().unwrap();
            let abandoned = loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != epoch {
                    break true;
                }
                let now = Instant::now();
                if now >= deadline {
                    break false;
                }
                let (back, _) = shared.produce.wait_timeout(st, deadline - now).unwrap();
                st = back;
            };
            if abandoned {
                st.free.push(out);
                drop(st);
                cursor = None;
                continue;
            }
        }

        // Read one block outside the lock, straight into the buffer.
        let want_u32s = (len_u32 - at).min(block_u32s as u64) as usize;
        let result = (|| -> std::result::Result<Duration, IoError> {
            if cursor != Some(at) {
                file.seek(SeekFrom::Start(at * BYTES_PER_U32))
                    .map_err(|e| IoError::os("seek", &path, e))?;
            }
            let want_bytes = want_u32s * BYTES_PER_U32 as usize;
            out.clear();
            out.resize(want_bytes, 0);
            let start = Instant::now();
            let mut filled = 0usize;
            while filled < want_bytes {
                let n = file
                    .read(&mut out[filled..])
                    .map_err(|e| IoError::os("read", &path, e))?;
                if n == 0 {
                    break;
                }
                filled += n;
            }
            // Charge the emulated device wait like `U32Reader::refill`
            // does (there the sleep sits inside the timed window).
            let took = start.elapsed() + latency;
            // File length is a multiple of 4 and fixed at open time; a
            // short tail can only mean concurrent truncation.
            out.truncate(filled / BYTES_PER_U32 as usize * BYTES_PER_U32 as usize);
            cursor = Some(at + (out.len() / BYTES_PER_U32 as usize) as u64);
            Ok(took)
        })();

        // Publish under the lock, unless a reposition obsoleted us.
        let mut st = shared.state.lock().unwrap();
        if st.epoch != epoch {
            cursor = None; // consumer moved the goalposts; re-seek
            if out.capacity() > 0 {
                st.free.push(out);
            }
            continue;
        }
        match result {
            Ok(took) => {
                if out.is_empty() {
                    st.eof = true;
                } else {
                    st.read_at = at + (out.len() / BYTES_PER_U32 as usize) as u64;
                    st.queue.push_back((out, took));
                }
            }
            Err(e) => {
                st.error = Some(e);
                st.eof = true; // deliver the error once, then EOF
            }
        }
        shared.consume.notify_one();
    }
}

/// A request to load `[pos, pos + len)` of a `u32` file, with a spare
/// buffer to fill.
type ChunkRequest = (u64, usize, Vec<u32>);

/// Positioned whole-range loads on a background thread.
///
/// The MGT engine requests chunk `k+1` as soon as chunk `k` is handed
/// over, so the next `edg` chunk loads from disk while the current scan
/// pass computes. Loads go through an owned [`U32Reader`] (one
/// `seek_to` + `read_into` per chunk), so `bytes_read` and `seeks`
/// match the blocking chunk loader exactly.
#[derive(Debug)]
pub struct ChunkPrefetcher {
    requests: Option<std::sync::mpsc::Sender<ChunkRequest>>,
    results: std::sync::mpsc::Receiver<Result<Vec<u32>>>,
    handle: Option<JoinHandle<()>>,
    /// Set on drop so the worker discards queued requests instead of
    /// performing (and then throwing away) their reads.
    closed: Arc<std::sync::atomic::AtomicBool>,
    path: PathBuf,
}

impl ChunkPrefetcher {
    /// Move `reader` to a background thread that serves load requests.
    /// Errors if the background thread cannot be spawned.
    pub fn new(mut reader: U32Reader) -> Result<Self> {
        let path = reader.path().to_path_buf();
        let (req_tx, req_rx) = std::sync::mpsc::channel::<ChunkRequest>();
        let (res_tx, res_rx) = std::sync::mpsc::channel::<Result<Vec<u32>>>();
        let closed = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let thread_closed = Arc::clone(&closed);
        let handle = std::thread::Builder::new()
            .name("pdtl-chunk-prefetch".into())
            .spawn(move || {
                for (pos, len, mut buf) in req_rx {
                    if thread_closed.load(std::sync::atomic::Ordering::Acquire) {
                        // Consumer hung up: drain without reading, so
                        // error-path teardown never waits on a chunk
                        // load (or its emulated device latency) whose
                        // result nobody will take.
                        continue;
                    }
                    let loaded = reader
                        .read_exact_range(pos, len, &mut buf)
                        .map(|()| std::mem::take(&mut buf));
                    if res_tx.send(loaded).is_err() {
                        return; // consumer gone
                    }
                }
            })
            .map_err(|e| IoError::os("spawn", &path, e))?;
        Ok(Self {
            requests: Some(req_tx),
            results: res_rx,
            handle: Some(handle),
            closed,
            path,
        })
    }

    /// Enqueue the load of `[pos, pos + len)`; `spare` is recycled as
    /// the destination buffer. Results arrive in request order via
    /// [`take`](Self::take).
    pub fn request(&self, pos: u64, len: usize, spare: Vec<u32>) {
        if let Some(tx) = &self.requests {
            // A send failure surfaces as an error on the next `take`.
            let _ = tx.send((pos, len, spare));
        }
    }

    /// Block until the oldest outstanding request completes and return
    /// its chunk.
    pub fn take(&mut self) -> Result<Vec<u32>> {
        self.results.recv().map_err(|_| {
            IoError::os(
                "prefetch",
                &self.path,
                std::io::Error::other("chunk prefetch thread terminated"),
            )
        })?
    }
}

impl Drop for ChunkPrefetcher {
    fn drop(&mut self) {
        self.closed
            .store(true, std::sync::atomic::Ordering::Release);
        self.requests.take(); // hang up; the thread drains and exits
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::U32Writer;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("pdtl-prefetch-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    fn write_vals(name: &str, vals: &[u32]) -> PathBuf {
        let p = tmp(name);
        let stats = IoStats::new();
        let mut w = U32Writer::create(&p, stats).unwrap();
        w.write_all(vals).unwrap();
        w.finish().unwrap();
        p
    }

    /// Drive any `U32Source` through a mixed access pattern and return
    /// everything it produced.
    fn drive(r: &mut impl U32Source) -> Vec<u32> {
        let mut out = Vec::new();
        r.read_into(&mut out, 100).unwrap();
        r.skip(37).unwrap(); // short: read-through
        r.read_into(&mut out, 50).unwrap();
        r.skip(5000).unwrap(); // long: seek
        r.read_into(&mut out, 200).unwrap();
        r.seek_to(3).unwrap();
        r.read_into(&mut out, 10).unwrap();
        r.skip(u64::MAX).unwrap(); // clamps at EOF
        r.read_into(&mut out, 10).unwrap(); // nothing left
        out
    }

    #[test]
    fn matches_blocking_reader_values_and_accounting() {
        let vals: Vec<u32> = (0..20_000).map(|i| i * 7 + 1).collect();
        let p = write_vals("parity", &vals);

        let blocking_stats = IoStats::new();
        let mut blocking = U32Reader::with_buffer(&p, blocking_stats.clone(), 512).unwrap();
        let blocking_out = drive(&mut blocking);

        let prefetch_stats = IoStats::new();
        let mut prefetch =
            PrefetchReader::new(U32Reader::with_buffer(&p, prefetch_stats.clone(), 512).unwrap())
                .unwrap();
        let prefetch_out = drive(&mut prefetch);

        assert_eq!(prefetch_out, blocking_out, "identical value streams");
        assert_eq!(prefetch.position(), blocking.position());
        assert_eq!(
            prefetch_stats.bytes_read(),
            blocking_stats.bytes_read(),
            "prefetching must not change the byte accounting"
        );
        assert_eq!(
            prefetch_stats.seeks(),
            blocking_stats.seeks(),
            "prefetching must not change the seek accounting"
        );
    }

    #[test]
    fn sequential_read_all_round_trips() {
        let vals: Vec<u32> = (0..100_000).collect();
        let p = write_vals("seq", &vals);
        let stats = IoStats::new();
        let mut r =
            PrefetchReader::new(U32Reader::with_buffer(&p, stats.clone(), 1000).unwrap()).unwrap();
        let mut out = Vec::new();
        assert_eq!(r.read_into(&mut out, vals.len() + 5).unwrap(), vals.len());
        assert_eq!(out, vals);
        assert_eq!(stats.bytes_read(), vals.len() as u64 * 4);
        assert!(stats.io_time() > Duration::ZERO);
    }

    #[test]
    fn seek_discards_read_ahead_without_charging_it() {
        let vals: Vec<u32> = (0..50_000).collect();
        let p = write_vals("discard", &vals);
        let stats = IoStats::new();
        let mut r =
            PrefetchReader::new(U32Reader::with_buffer(&p, stats.clone(), 100).unwrap()).unwrap();
        let mut out = Vec::new();
        // Consume one block, give the producer time to read ahead,
        // then jump: the read-ahead must not be charged.
        r.read_into(&mut out, 100).unwrap();
        std::thread::sleep(Duration::from_millis(10));
        r.seek_to(40_000).unwrap();
        out.clear();
        r.read_into(&mut out, 100).unwrap();
        assert_eq!(out[0], 40_000);
        assert_eq!(
            stats.bytes_read(),
            2 * 100 * 4,
            "only the two consumed blocks are charged"
        );
        assert_eq!(stats.seeks(), 1);
    }

    #[test]
    fn repeated_rescans_deliver_identical_data() {
        // The MGT scan pass seeks back to 0 once per chunk iteration.
        let vals: Vec<u32> = (0..5_000).map(|i| i ^ 0xA5A5).collect();
        let p = write_vals("rescan", &vals);
        let mut r =
            PrefetchReader::new(U32Reader::with_buffer(&p, IoStats::new(), 64).unwrap()).unwrap();
        for _ in 0..5 {
            r.seek_to(0).unwrap();
            let mut out = Vec::new();
            r.read_into(&mut out, vals.len()).unwrap();
            assert_eq!(out, vals);
        }
    }

    #[test]
    fn chunk_prefetcher_serves_requests_in_order() {
        let vals: Vec<u32> = (0..10_000).collect();
        let p = write_vals("chunks", &vals);
        let stats = IoStats::new();
        let mut pf = ChunkPrefetcher::new(U32Reader::open(&p, stats.clone()).unwrap()).unwrap();
        pf.request(0, 100, Vec::new());
        pf.request(5_000, 250, Vec::new());
        pf.request(9_990, 10, Vec::new());
        assert_eq!(pf.take().unwrap(), &vals[0..100]);
        assert_eq!(pf.take().unwrap(), &vals[5_000..5_250]);
        assert_eq!(pf.take().unwrap(), &vals[9_990..10_000]);
        assert_eq!(stats.seeks(), 3, "one seek per positioned chunk load");
    }

    #[test]
    fn chunk_prefetcher_reports_out_of_range_loads() {
        let vals: Vec<u32> = (0..100).collect();
        let p = write_vals("chunk-oob", &vals);
        let mut pf = ChunkPrefetcher::new(U32Reader::open(&p, IoStats::new()).unwrap()).unwrap();
        pf.request(50, 100, Vec::new());
        let err = pf.take().unwrap_err();
        assert!(err.to_string().contains("past end of file"), "{err}");
    }

    #[test]
    fn drop_joins_background_threads_cleanly() {
        let vals: Vec<u32> = (0..100_000).collect();
        let p = write_vals("drop", &vals);
        // Drop with read-ahead in flight and requests outstanding.
        let r = PrefetchReader::new(U32Reader::open(&p, IoStats::new()).unwrap()).unwrap();
        drop(r);
        let pf = ChunkPrefetcher::new(U32Reader::open(&p, IoStats::new()).unwrap()).unwrap();
        pf.request(0, 50_000, Vec::new());
        drop(pf);
    }
}
