//! The I/O backend selector shared by every stream consumer.
//!
//! PDTL's engines read graph files through the [`U32Source`] seam, which
//! has three interchangeable implementations with identical accounting
//! (`bytes_read` / `seeks` counted per block *touched*):
//!
//! * [`Blocking`](IoBackend::Blocking) — [`U32Reader`], one synchronous
//!   `read(2)` per block. The reference implementation the other two are
//!   asserted against.
//! * [`Prefetch`](IoBackend::Prefetch) — [`PrefetchReader`] +
//!   `ChunkPrefetcher`, background threads keep blocks read ahead so
//!   device waits hide behind compute. Wins when reads actually block
//!   (cold cache, emulated latency), costs a copy + synchronisation when
//!   they don't.
//! * [`Mmap`](IoBackend::Mmap) — [`MmapSource`], the file mapped into
//!   the address space and served zero-copy. Wins on page-cache-resident
//!   graphs where every `read(2)` copy is pure overhead; falls back to
//!   `Blocking` on platforms without the mapping syscalls.
//!
//! [`U32Source`]: crate::U32Source
//! [`U32Reader`]: crate::U32Reader
//! [`PrefetchReader`]: crate::PrefetchReader
//! [`MmapSource`]: crate::MmapSource

/// Which [`U32Source`](crate::U32Source) implementation an engine
/// streams its graph files through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IoBackend {
    /// Synchronous buffered reads ([`U32Reader`](crate::U32Reader)).
    Blocking,
    /// Background read-ahead ([`PrefetchReader`](crate::PrefetchReader)
    /// for scans, `ChunkPrefetcher` for chunk loads).
    #[default]
    Prefetch,
    /// Zero-copy memory mapping ([`MmapSource`](crate::MmapSource));
    /// resolves to `Blocking` where mapping is unsupported.
    Mmap,
}

/// Environment variable overriding the default backend
/// (`blocking` | `prefetch` | `mmap`, case-insensitive). Consumed by
/// `MgtOptions::default`, which is how the CI test matrix runs the
/// whole suite under each backend without touching any call site.
pub const BACKEND_ENV: &str = "PDTL_IO_BACKEND";

impl IoBackend {
    /// Every backend, in wire-discriminant order.
    pub const ALL: [IoBackend; 3] = [IoBackend::Blocking, IoBackend::Prefetch, IoBackend::Mmap];

    /// Stable lowercase name (bench row / CLI / env spelling).
    pub fn name(self) -> &'static str {
        match self {
            IoBackend::Blocking => "blocking",
            IoBackend::Prefetch => "prefetch",
            IoBackend::Mmap => "mmap",
        }
    }

    /// Parse a backend name, case-insensitively.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "blocking" => Some(IoBackend::Blocking),
            "prefetch" => Some(IoBackend::Prefetch),
            "mmap" => Some(IoBackend::Mmap),
            _ => None,
        }
    }

    /// The backend selected by [`BACKEND_ENV`], if set and valid.
    pub fn from_env() -> Option<Self> {
        std::env::var(BACKEND_ENV)
            .ok()
            .and_then(|v| Self::parse(&v))
    }

    /// The default backend, honouring the environment override:
    /// [`Prefetch`](IoBackend::Prefetch) unless [`BACKEND_ENV`] names
    /// another one.
    pub fn default_from_env() -> Self {
        Self::from_env().unwrap_or(IoBackend::Prefetch)
    }

    /// Resolve to a backend the current platform can actually run:
    /// [`Mmap`](IoBackend::Mmap) degrades to
    /// [`Blocking`](IoBackend::Blocking) where the mapping syscalls are
    /// unavailable; the other two are always supported.
    pub fn resolve(self) -> Self {
        if self == IoBackend::Mmap && !crate::mmap::mmap_supported() {
            IoBackend::Blocking
        } else {
            self
        }
    }
}

impl std::fmt::Display for IoBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for b in IoBackend::ALL {
            assert_eq!(IoBackend::parse(b.name()), Some(b));
            assert_eq!(IoBackend::parse(&b.name().to_uppercase()), Some(b));
        }
        assert_eq!(IoBackend::parse("io_uring"), None);
    }

    #[test]
    fn default_is_prefetch() {
        assert_eq!(IoBackend::default(), IoBackend::Prefetch);
    }

    #[test]
    fn resolve_never_yields_unsupported_mmap() {
        let r = IoBackend::Mmap.resolve();
        assert!(r == IoBackend::Mmap || r == IoBackend::Blocking);
        if crate::mmap::mmap_supported() {
            assert_eq!(r, IoBackend::Mmap);
        }
        assert_eq!(IoBackend::Blocking.resolve(), IoBackend::Blocking);
        assert_eq!(IoBackend::Prefetch.resolve(), IoBackend::Prefetch);
    }
}
