//! The I/O backend selector shared by every stream consumer.
//!
//! PDTL's engines read graph files through the [`U32Source`] seam, which
//! has four interchangeable implementations with identical accounting
//! (`bytes_read` / `seeks` counted per block *touched*):
//!
//! * [`Blocking`](IoBackend::Blocking) — [`U32Reader`], one synchronous
//!   `read(2)` per block. The reference implementation the other three
//!   are asserted against.
//! * [`Prefetch`](IoBackend::Prefetch) — [`PrefetchReader`] +
//!   `ChunkPrefetcher`, background threads keep blocks read ahead so
//!   device waits hide behind compute. Wins when reads actually block
//!   (cold cache, emulated latency), costs a copy + synchronisation when
//!   they don't.
//! * [`Mmap`](IoBackend::Mmap) — [`MmapSource`], the file mapped into
//!   the address space and served zero-copy. Wins on page-cache-resident
//!   graphs where every `read(2)` copy is pure overhead; falls back to
//!   `Blocking` on platforms without the mapping syscalls.
//! * [`Uring`](IoBackend::Uring) — [`UringSource`], block reads driven
//!   through `io_uring` submission/completion queues with depth > 1 and
//!   *no* extra threads: the kernel overlaps device waits with compute.
//!   Falls back to `Prefetch` (the thread-based overlapper) on kernels
//!   without `io_uring`.
//!
//! [`U32Source`]: crate::U32Source
//! [`U32Reader`]: crate::U32Reader
//! [`PrefetchReader`]: crate::PrefetchReader
//! [`MmapSource`]: crate::MmapSource
//! [`UringSource`]: crate::UringSource

/// Which [`U32Source`](crate::U32Source) implementation an engine
/// streams its graph files through.
///
/// Names round-trip through [`parse`](Self::parse) (which also accepts
/// the `io_uring` spelling), and [`resolve`](Self::resolve) degrades a
/// backend the running platform cannot serve to one it can:
///
/// ```
/// use pdtl_io::IoBackend;
///
/// // Every backend's canonical name parses back to itself…
/// for b in IoBackend::ALL {
///     assert_eq!(IoBackend::parse(b.name()), Some(b));
/// }
/// // …case-insensitively, and with the io_uring alias.
/// assert_eq!(IoBackend::parse("MMAP"), Some(IoBackend::Mmap));
/// assert_eq!(IoBackend::parse("io_uring"), Some(IoBackend::Uring));
///
/// // `resolve` never yields a backend this platform cannot run:
/// // io_uring degrades to the thread-based prefetcher where missing.
/// let r = IoBackend::Uring.resolve();
/// assert!(r == IoBackend::Uring || r == IoBackend::Prefetch);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IoBackend {
    /// Synchronous buffered reads ([`U32Reader`](crate::U32Reader)).
    Blocking,
    /// Background read-ahead ([`PrefetchReader`](crate::PrefetchReader)
    /// for scans, `ChunkPrefetcher` for chunk loads).
    #[default]
    Prefetch,
    /// Zero-copy memory mapping ([`MmapSource`](crate::MmapSource));
    /// resolves to `Blocking` where mapping is unsupported.
    Mmap,
    /// Asynchronous `io_uring` reads ([`UringSource`](crate::UringSource))
    /// with queue depth > 1 and no prefetch threads; resolves to
    /// `Prefetch` where `io_uring` is unavailable.
    Uring,
}

/// Environment variable overriding the default backend
/// (`blocking` | `prefetch` | `mmap` | `uring`, case-insensitive).
/// Consumed by `MgtOptions::default`, which is how the CI test matrix
/// runs the whole suite under each backend without touching any call
/// site.
pub const BACKEND_ENV: &str = "PDTL_IO_BACKEND";

impl IoBackend {
    /// Every backend, in wire-discriminant order (the order of the
    /// flags-byte encoding in the cluster's `WorkerConfig`).
    pub const ALL: [IoBackend; 4] = [
        IoBackend::Blocking,
        IoBackend::Prefetch,
        IoBackend::Mmap,
        IoBackend::Uring,
    ];

    /// Stable lowercase name (bench row / CLI / env spelling).
    pub fn name(self) -> &'static str {
        match self {
            IoBackend::Blocking => "blocking",
            IoBackend::Prefetch => "prefetch",
            IoBackend::Mmap => "mmap",
            IoBackend::Uring => "uring",
        }
    }

    /// Parse a backend name, case-insensitively. `uring` and the
    /// kernel-interface spelling `io_uring` both name
    /// [`Uring`](IoBackend::Uring).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "blocking" => Some(IoBackend::Blocking),
            "prefetch" => Some(IoBackend::Prefetch),
            "mmap" => Some(IoBackend::Mmap),
            "uring" | "io_uring" => Some(IoBackend::Uring),
            _ => None,
        }
    }

    /// The backend selected by [`BACKEND_ENV`], if set and valid.
    pub fn from_env() -> Option<Self> {
        std::env::var(BACKEND_ENV)
            .ok()
            .and_then(|v| Self::parse(&v))
    }

    /// The default backend, honouring the environment override:
    /// [`Prefetch`](IoBackend::Prefetch) unless [`BACKEND_ENV`] names
    /// another one.
    pub fn default_from_env() -> Self {
        Self::from_env().unwrap_or(IoBackend::Prefetch)
    }

    /// Resolve to a backend the current platform can actually run:
    /// [`Mmap`](IoBackend::Mmap) degrades to
    /// [`Blocking`](IoBackend::Blocking) where the mapping syscalls are
    /// unavailable, [`Uring`](IoBackend::Uring) degrades to
    /// [`Prefetch`](IoBackend::Prefetch) — the thread-based overlapper,
    /// its closest behavioural twin — where the kernel lacks (or has
    /// disabled) `io_uring`; the first two are always supported.
    pub fn resolve(self) -> Self {
        match self {
            IoBackend::Mmap if !crate::mmap::mmap_supported() => IoBackend::Blocking,
            IoBackend::Uring if !crate::uring::uring_supported() => IoBackend::Prefetch,
            other => other,
        }
    }
}

impl std::fmt::Display for IoBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_for_all_four_backends() {
        assert_eq!(IoBackend::ALL.len(), 4);
        for b in IoBackend::ALL {
            assert_eq!(IoBackend::parse(b.name()), Some(b));
            assert_eq!(IoBackend::parse(&b.name().to_uppercase()), Some(b));
            assert_eq!(b.to_string(), b.name());
        }
        assert_eq!(IoBackend::parse("gibberish"), None);
    }

    #[test]
    fn uring_accepts_both_spellings() {
        assert_eq!(IoBackend::parse("uring"), Some(IoBackend::Uring));
        assert_eq!(IoBackend::parse("io_uring"), Some(IoBackend::Uring));
        assert_eq!(IoBackend::parse("IO_URING"), Some(IoBackend::Uring));
        assert_eq!(IoBackend::Uring.name(), "uring", "canonical name");
    }

    #[test]
    fn default_is_prefetch() {
        assert_eq!(IoBackend::default(), IoBackend::Prefetch);
    }

    #[test]
    fn resolve_never_yields_unsupported_backends() {
        let r = IoBackend::Mmap.resolve();
        assert!(r == IoBackend::Mmap || r == IoBackend::Blocking);
        if crate::mmap::mmap_supported() {
            assert_eq!(r, IoBackend::Mmap);
        }
        let r = IoBackend::Uring.resolve();
        assert!(r == IoBackend::Uring || r == IoBackend::Prefetch);
        if crate::uring::uring_supported() {
            assert_eq!(r, IoBackend::Uring);
        }
        assert_eq!(IoBackend::Blocking.resolve(), IoBackend::Blocking);
        assert_eq!(IoBackend::Prefetch.resolve(), IoBackend::Prefetch);
    }
}
