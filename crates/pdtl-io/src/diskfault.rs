//! Deterministic disk-fault injection (`PDTL_DISK_FAULT`).
//!
//! The compute-fault plan (`PDTL_FAULT` in `pdtl-cluster`) injects
//! crashes, stalls and copy failures; this module injects *storage*
//! faults — the bit flips, truncations and torn writes the integrity
//! layer exists to catch. A plan names graph files by extension and
//! mutates them in place, seeded so every CI leg is reproducible:
//!
//! ```text
//! PDTL_DISK_FAULT="bitflip@adj:97;truncate@bnd:55"
//! ```
//!
//! Grammar: `;`-separated specs of the form `<kind>@<target>[:<seed>]`
//! where `<kind>` is `bitflip` | `truncate` | `torn` and `<target>` is
//! a graph-file extension without the dot (`deg`, `adj`, `hdr`, `vix`,
//! `map`, `bnd`, `mft`). The seed defaults to 1 and picks the fault
//! offset deterministically from the file length.

use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::error::{IoError, Result};

/// Environment variable holding the disk-fault plan.
pub const DISK_FAULT_ENV: &str = "PDTL_DISK_FAULT";

/// The graph file a disk fault targets, by extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// The degree array (`.deg`).
    Deg,
    /// The adjacency payload (`.adj`).
    Adj,
    /// The codec header (`.hdr`).
    Hdr,
    /// The varint fencepost index (`.vix`).
    Vix,
    /// The rank map (`.map`).
    Map,
    /// The per-rank bounds sidecar (`.bnd`).
    Bnd,
    /// The integrity manifest itself (`.mft`).
    Mft,
}

impl FaultTarget {
    /// All targets, in manifest extension-code order.
    pub const ALL: [FaultTarget; 7] = [
        FaultTarget::Deg,
        FaultTarget::Adj,
        FaultTarget::Hdr,
        FaultTarget::Vix,
        FaultTarget::Map,
        FaultTarget::Bnd,
        FaultTarget::Mft,
    ];

    /// The file extension this target names, dot included.
    pub fn ext(self) -> &'static str {
        match self {
            FaultTarget::Deg => ".deg",
            FaultTarget::Adj => ".adj",
            FaultTarget::Hdr => ".hdr",
            FaultTarget::Vix => ".vix",
            FaultTarget::Map => ".map",
            FaultTarget::Bnd => ".bnd",
            FaultTarget::Mft => ".mft",
        }
    }

    /// Parse a dotless extension name (`"adj"`), or `None`.
    pub fn parse(s: &str) -> Option<FaultTarget> {
        Self::ALL.iter().copied().find(|t| &t.ext()[1..] == s)
    }
}

/// What kind of damage to inflict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFaultKind {
    /// Flip one seeded bit in place (silent media corruption).
    BitFlip,
    /// Truncate the file to a seeded shorter length (lost tail).
    Truncate,
    /// Invert a seeded ~256-byte window in place, modeling a sector
    /// that persisted stale bytes during a torn write.
    TornWrite,
}

impl DiskFaultKind {
    fn parse(s: &str) -> Option<DiskFaultKind> {
        match s {
            "bitflip" => Some(DiskFaultKind::BitFlip),
            "truncate" => Some(DiskFaultKind::Truncate),
            "torn" => Some(DiskFaultKind::TornWrite),
            _ => None,
        }
    }
}

/// One parsed fault: a kind, a target file, and a seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskFaultSpec {
    /// Damage to inflict.
    pub kind: DiskFaultKind,
    /// Which graph file to damage.
    pub target: FaultTarget,
    /// Deterministic offset seed.
    pub seed: u64,
}

impl DiskFaultSpec {
    /// Apply this fault to `<base><ext>`. Returns the damaged path, or
    /// `Ok(None)` when the target file does not exist (plans are
    /// codec-generic; a raw graph has no `.vix` to corrupt) or is
    /// empty.
    pub fn apply(&self, base: &Path) -> Result<Option<PathBuf>> {
        let mut p = base.as_os_str().to_owned();
        p.push(self.target.ext());
        let path = PathBuf::from(p);
        let len = match std::fs::metadata(&path) {
            Ok(md) => md.len(),
            Err(_) => return Ok(None),
        };
        if len == 0 {
            return Ok(None);
        }
        match self.kind {
            DiskFaultKind::BitFlip => {
                let off = self.seed % len;
                let bit = (self.seed / len.max(1)) % 8;
                let mut f = std::fs::OpenOptions::new()
                    .read(true)
                    .write(true)
                    .open(&path)
                    .map_err(|e| IoError::os("open", &path, e))?;
                let mut b = [0u8; 1];
                f.seek(SeekFrom::Start(off))
                    .map_err(|e| IoError::os("seek", &path, e))?;
                f.read_exact(&mut b)
                    .map_err(|e| IoError::os("read", &path, e))?;
                b[0] ^= 1 << bit;
                f.seek(SeekFrom::Start(off))
                    .map_err(|e| IoError::os("seek", &path, e))?;
                f.write_all(&b)
                    .map_err(|e| IoError::os("write", &path, e))?;
                f.sync_all().map_err(|e| IoError::os("sync", &path, e))?;
            }
            DiskFaultKind::Truncate => {
                let new_len = self.seed % len; // always strictly shorter
                let f = std::fs::OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .map_err(|e| IoError::os("open", &path, e))?;
                f.set_len(new_len)
                    .map_err(|e| IoError::os("truncate", &path, e))?;
                f.sync_all().map_err(|e| IoError::os("sync", &path, e))?;
            }
            DiskFaultKind::TornWrite => {
                let off = self.seed % len;
                let window = 256.min(len - off) as usize;
                let mut f = std::fs::OpenOptions::new()
                    .read(true)
                    .write(true)
                    .open(&path)
                    .map_err(|e| IoError::os("open", &path, e))?;
                let mut buf = vec![0u8; window];
                f.seek(SeekFrom::Start(off))
                    .map_err(|e| IoError::os("seek", &path, e))?;
                f.read_exact(&mut buf)
                    .map_err(|e| IoError::os("read", &path, e))?;
                // Bit-inverting guarantees every byte in the window
                // changes, keeping seeded CI legs deterministic.
                for b in &mut buf {
                    *b = !*b;
                }
                f.seek(SeekFrom::Start(off))
                    .map_err(|e| IoError::os("seek", &path, e))?;
                f.write_all(&buf)
                    .map_err(|e| IoError::os("write", &path, e))?;
                f.sync_all().map_err(|e| IoError::os("sync", &path, e))?;
            }
        }
        Ok(Some(path))
    }
}

/// A parsed `PDTL_DISK_FAULT` plan: zero or more specs applied in order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiskFaultPlan {
    /// The faults, in plan order.
    pub specs: Vec<DiskFaultSpec>,
}

impl DiskFaultPlan {
    /// Parse a plan string (see module docs for the grammar). The empty
    /// string parses to the empty plan.
    pub fn parse(s: &str) -> Result<DiskFaultPlan> {
        let mut specs = Vec::new();
        for raw in s.split(';') {
            let part = raw.trim();
            if part.is_empty() {
                continue;
            }
            specs.push(parse_spec(part)?);
        }
        Ok(DiskFaultPlan { specs })
    }

    /// Parse the plan in [`DISK_FAULT_ENV`], or the empty plan when the
    /// variable is unset.
    pub fn from_env() -> Result<DiskFaultPlan> {
        match std::env::var(DISK_FAULT_ENV) {
            Ok(v) => Self::parse(&v),
            Err(_) => Ok(DiskFaultPlan::default()),
        }
    }

    /// Like [`from_env`](Self::from_env), but a malformed plan string
    /// falls back to the empty plan instead of erroring — for
    /// best-effort call sites like test harness setup.
    pub fn default_from_env() -> DiskFaultPlan {
        Self::from_env().unwrap_or_default()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Apply every spec against `base`, returning the paths actually
    /// damaged (specs whose target file is absent are skipped).
    pub fn apply(&self, base: &Path) -> Result<Vec<PathBuf>> {
        let mut hit = Vec::new();
        for spec in &self.specs {
            if let Some(p) = spec.apply(base)? {
                hit.push(p);
            }
        }
        Ok(hit)
    }
}

fn bad_plan(detail: String) -> IoError {
    IoError::malformed(Path::new(DISK_FAULT_ENV), detail)
}

fn parse_spec(part: &str) -> Result<DiskFaultSpec> {
    let (kind_s, rest) = part
        .split_once('@')
        .ok_or_else(|| bad_plan(format!("spec `{part}` missing `@target`")))?;
    let kind = DiskFaultKind::parse(kind_s)
        .ok_or_else(|| bad_plan(format!("unknown disk fault kind `{kind_s}`")))?;
    let (target_s, seed_s) = match rest.split_once(':') {
        Some((t, s)) => (t, Some(s)),
        None => (rest, None),
    };
    let target = FaultTarget::parse(target_s)
        .ok_or_else(|| bad_plan(format!("unknown fault target `{target_s}`")))?;
    let seed = match seed_s {
        Some(s) => s
            .parse::<u64>()
            .map_err(|_| bad_plan(format!("bad seed `{s}` in `{part}`")))?,
        None => 1,
    };
    Ok(DiskFaultSpec { kind, target, seed })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("pdtl-diskfault-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn parses_full_grammar() {
        let plan = DiskFaultPlan::parse("bitflip@adj:97; truncate@bnd:55;torn@deg").unwrap();
        assert_eq!(
            plan.specs,
            vec![
                DiskFaultSpec {
                    kind: DiskFaultKind::BitFlip,
                    target: FaultTarget::Adj,
                    seed: 97
                },
                DiskFaultSpec {
                    kind: DiskFaultKind::Truncate,
                    target: FaultTarget::Bnd,
                    seed: 55
                },
                DiskFaultSpec {
                    kind: DiskFaultKind::TornWrite,
                    target: FaultTarget::Deg,
                    seed: 1
                },
            ]
        );
        assert!(DiskFaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn rejects_malformed_plans() {
        for bad in ["bitflip", "melt@adj", "bitflip@exe", "bitflip@adj:xyz"] {
            assert!(DiskFaultPlan::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn bitflip_changes_exactly_one_bit() {
        let base = scratch("flip");
        let mut p = base.as_os_str().to_owned();
        p.push(".adj");
        let path = PathBuf::from(p);
        let data = vec![0xA5u8; 1000];
        std::fs::write(&path, &data).unwrap();
        let plan = DiskFaultPlan::parse("bitflip@adj:12345").unwrap();
        let hit = plan.apply(&base).unwrap();
        assert_eq!(hit, vec![path.clone()]);
        let after = std::fs::read(&path).unwrap();
        let diff_bits: u32 = data
            .iter()
            .zip(&after)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff_bits, 1);
    }

    #[test]
    fn truncate_shortens_and_torn_rewrites_window() {
        let base = scratch("tt");
        let mk = |ext: &str, len: usize| {
            let mut p = base.as_os_str().to_owned();
            p.push(ext);
            let path = PathBuf::from(p);
            std::fs::write(&path, vec![0x3Cu8; len]).unwrap();
            path
        };
        let deg = mk(".deg", 800);
        let bnd = mk(".bnd", 640);
        let plan = DiskFaultPlan::parse("truncate@bnd:9999;torn@deg:3").unwrap();
        let hit = plan.apply(&base).unwrap();
        assert_eq!(hit.len(), 2);
        assert!(std::fs::metadata(&bnd).unwrap().len() < 640);
        let after = std::fs::read(&deg).unwrap();
        assert_eq!(after.len(), 800);
        assert!(after.contains(&!0x3Cu8));
    }

    #[test]
    fn absent_target_is_skipped() {
        let base = scratch("absent");
        let plan = DiskFaultPlan::parse("bitflip@vix:7").unwrap();
        assert!(plan.apply(&base).unwrap().is_empty());
    }

    #[test]
    fn same_seed_is_deterministic() {
        let base = scratch("det");
        let mut p = base.as_os_str().to_owned();
        p.push(".map");
        let path = PathBuf::from(p);
        let spec = DiskFaultSpec {
            kind: DiskFaultKind::BitFlip,
            target: FaultTarget::Map,
            seed: 424_242,
        };
        let mut outcomes = Vec::new();
        for _ in 0..2 {
            std::fs::write(&path, vec![0u8; 512]).unwrap();
            spec.apply(&base).unwrap();
            outcomes.push(std::fs::read(&path).unwrap());
        }
        assert_eq!(outcomes[0], outcomes[1]);
    }
}
