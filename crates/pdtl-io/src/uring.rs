//! Asynchronous block streaming over `io_uring`: real device queue
//! depth without prefetch threads.
//!
//! The [`PrefetchReader`](crate::PrefetchReader) hides device latency
//! by spending a thread per stream on blocking `read(2)` calls.
//! [`UringSource`] gets the same overlap from the kernel instead: block
//! reads are submitted to an `io_uring` submission queue and complete
//! asynchronously, so up to [`URING_DEPTH`] block-sized reads are in
//! flight per stream with *zero* extra threads, no producer/consumer
//! hand-off, and no cross-thread copy. The MGT engines select it via
//! `IoBackend::Uring` (wire discriminant 3).
//!
//! **Accounting contract.** `UringSource` implements
//! [`U32Source`] and mirrors [`U32Reader`]'s control
//! flow refill for refill, exactly like
//! [`MmapSource`](crate::MmapSource) does: a block is charged to
//! [`IoStats`] when the consumer takes it (`record_read` of the block's
//! bytes where the buffered reader would refill, `record_seek` where it
//! would reposition, one zero-byte `record_read` where it would issue
//! the empty end-of-file read), and read-ahead blocks discarded by a
//! reposition are never charged. `bytes_read`, `seeks` *and* `read_ops`
//! are therefore byte-identical to the blocking twin on identical
//! access patterns — asserted across randomized patterns by
//! `tests/source_parity.rs`. Emulated device latency
//! ([`set_read_latency`](UringSource::set_read_latency)) models an
//! asynchronous device: each block becomes *ready* `latency` after its
//! submission, so a consumer that arrives late (the overlap case) never
//! sleeps, while one that arrives early sleeps only the remainder —
//! which is exactly what distinguishes queue-depth I/O from the
//! one-sleep-per-refill blocking emulation.
//!
//! The ring is bound the same `extern "C"` way the mapping syscalls
//! were in the mmap backend: raw `io_uring_setup(2)` /
//! `io_uring_enter(2)` via `syscall(2)` plus `mmap`/`munmap` for the
//! shared SQ/CQ rings, gated to 64-bit little-endian Linux. Elsewhere —
//! or on kernels where the probe fails (pre-5.6, seccomp,
//! `io_uring_disabled`) — [`UringSource::open`] reports `Unsupported`
//! and `IoBackend::Uring.resolve()` degrades to the prefetch backend,
//! so no caller needs platform knowledge. [`URING_DISABLE_ENV`] forces
//! the degradation path for tests and operators.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::{IoError, Result};
use crate::stats::IoStats;
#[cfg(doc)]
use crate::stream::U32Reader;
use crate::stream::{U32Source, BYTES_PER_U32, DEFAULT_BUF_U32S};

/// Block-sized reads kept in flight (or ready) ahead of the consumer —
/// the queue depth of the backend, and the async analogue of
/// [`PREFETCH_DEPTH`](crate::prefetch::PREFETCH_DEPTH).
pub const URING_DEPTH: usize = 4;

/// Environment kill-switch: when set (non-empty),
/// [`uring_supported`] reports `false`, [`UringSource::open`] fails
/// with `Unsupported` and `IoBackend::Uring` resolves to the prefetch
/// backend — the same path a kernel without `io_uring` takes. Lets the
/// degradation tests (and operators on locked-down hosts) exercise the
/// fallback deterministically.
pub const URING_DISABLE_ENV: &str = "PDTL_URING_DISABLE";

/// Whether this build can contain the `io_uring` backend at all (64-bit
/// little-endian Linux, the same gate as the mmap backend). Runtime
/// availability is a separate question — see [`uring_supported`].
pub const fn uring_compiled() -> bool {
    cfg!(all(
        target_os = "linux",
        target_endian = "little",
        target_pointer_width = "64"
    ))
}

/// Whether the running kernel accepts `io_uring_setup(2)` (probed once
/// and cached) and [`URING_DISABLE_ENV`] is not set. `false` means
/// [`UringSource::open`] will report `Unsupported` and
/// `IoBackend::Uring.resolve()` degrades to prefetch.
pub fn uring_supported() -> bool {
    if !uring_compiled() {
        return false;
    }
    if std::env::var_os(URING_DISABLE_ENV).is_some_and(|v| !v.is_empty()) {
        return false;
    }
    probe_kernel()
}

#[cfg(all(
    target_os = "linux",
    target_endian = "little",
    target_pointer_width = "64"
))]
fn probe_kernel() -> bool {
    static PROBE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *PROBE.get_or_init(|| sys::Ring::new(2).is_ok())
}

#[cfg(not(all(
    target_os = "linux",
    target_endian = "little",
    target_pointer_width = "64"
)))]
fn probe_kernel() -> bool {
    false
}

#[cfg(all(
    target_os = "linux",
    target_endian = "little",
    target_pointer_width = "64"
))]
mod sys {
    //! Minimal raw `io_uring` binding: `io_uring_setup(2)` /
    //! `io_uring_enter(2)` via `syscall(2)` plus the three ring
    //! mappings. `std` already links libc, so — like the mmap
    //! backend's binding — no new dependency is introduced.

    use std::os::raw::{c_int, c_long, c_void};
    use std::sync::atomic::{AtomicU32, Ordering};

    // asm-generic syscall numbers (shared by every 64-bit Linux arch
    // that has io_uring).
    const SYS_IO_URING_SETUP: c_long = 425;
    const SYS_IO_URING_ENTER: c_long = 426;

    const PROT_READ: c_int = 0x1;
    const PROT_WRITE: c_int = 0x2;
    const MAP_SHARED: c_int = 0x01;
    const MAP_POPULATE: c_int = 0x8000;

    /// `mmap` offsets selecting which ring region to map.
    const IORING_OFF_SQ_RING: i64 = 0;
    const IORING_OFF_CQ_RING: i64 = 0x800_0000;
    const IORING_OFF_SQES: i64 = 0x1000_0000;

    /// SQ and CQ rings share one mapping when the kernel reports this
    /// feature (5.4+); older kernels need two.
    const IORING_FEAT_SINGLE_MMAP: u32 = 1;

    /// Positional read into a plain buffer (5.6+), the only opcode the
    /// backend uses.
    const IORING_OP_READ: u8 = 22;
    const IORING_ENTER_GETEVENTS: u32 = 1;

    extern "C" {
        fn syscall(num: c_long, ...) -> c_long;
        fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, length: usize) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    /// `struct io_sqring_offsets`.
    #[repr(C)]
    #[derive(Default, Clone, Copy)]
    struct SqOffsets {
        head: u32,
        tail: u32,
        ring_mask: u32,
        ring_entries: u32,
        flags: u32,
        dropped: u32,
        array: u32,
        resv1: u32,
        user_addr: u64,
    }

    /// `struct io_cqring_offsets`.
    #[repr(C)]
    #[derive(Default, Clone, Copy)]
    struct CqOffsets {
        head: u32,
        tail: u32,
        ring_mask: u32,
        ring_entries: u32,
        overflow: u32,
        cqes: u32,
        flags: u32,
        resv1: u32,
        user_addr: u64,
    }

    /// `struct io_uring_params` (120 bytes).
    #[repr(C)]
    #[derive(Default, Clone, Copy)]
    struct Params {
        sq_entries: u32,
        cq_entries: u32,
        flags: u32,
        sq_thread_cpu: u32,
        sq_thread_idle: u32,
        features: u32,
        wq_fd: u32,
        resv: [u32; 3],
        sq_off: SqOffsets,
        cq_off: CqOffsets,
    }

    /// `struct io_uring_sqe` (64 bytes; the fields this backend uses,
    /// the rest zeroed padding).
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct Sqe {
        opcode: u8,
        flags: u8,
        ioprio: u16,
        fd: i32,
        off: u64,
        addr: u64,
        len: u32,
        rw_flags: u32,
        user_data: u64,
        _pad: [u64; 3],
    }

    /// `struct io_uring_cqe`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct Cqe {
        user_data: u64,
        res: i32,
        flags: u32,
    }

    /// One completed read: `(user_data, result)` with `result` either
    /// the byte count or an OS error.
    pub type Completion = (u64, std::io::Result<usize>);

    /// An mmap'd ring region, unmapped on drop.
    struct Mapping {
        ptr: *mut c_void,
        len: usize,
    }

    impl Mapping {
        fn new(fd: c_int, len: usize, offset: i64) -> std::io::Result<Self> {
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE,
                    fd,
                    offset,
                )
            };
            if ptr as isize == -1 {
                return Err(std::io::Error::last_os_error());
            }
            Ok(Self { ptr, len })
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            unsafe {
                let _ = munmap(self.ptr, self.len);
            }
        }
    }

    /// A minimal single-issuer `io_uring` instance: submit positional
    /// reads, reap completions. All pointer arithmetic is confined to
    /// this type; everything above it deals in safe `Completion`s.
    pub struct Ring {
        fd: c_int,
        /// SQ ring mapping (also the CQ ring under `SINGLE_MMAP`).
        sq_ring: Mapping,
        /// Separate CQ ring mapping on pre-5.4 kernels.
        cq_ring: Option<Mapping>,
        sqes: Mapping,
        sq_mask: u32,
        cq_mask: u32,
        // Offsets into the ring mappings (kept as offsets, resolved per
        // access, so no self-referential pointers are stored).
        sq_tail_off: u32,
        sq_array_off: u32,
        cq_head_off: u32,
        cq_tail_off: u32,
        cq_cqes_off: u32,
    }

    impl std::fmt::Debug for Ring {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Ring").field("fd", &self.fd).finish()
        }
    }

    impl Ring {
        /// Create a ring with `entries` SQ slots.
        pub fn new(entries: u32) -> std::io::Result<Self> {
            let mut p = Params::default();
            let fd = unsafe { syscall(SYS_IO_URING_SETUP, entries, &mut p as *mut Params) };
            if fd < 0 {
                return Err(std::io::Error::last_os_error());
            }
            let fd = fd as c_int;
            // Guard the fd until the mappings succeed.
            struct FdGuard(c_int);
            impl Drop for FdGuard {
                fn drop(&mut self) {
                    if self.0 >= 0 {
                        unsafe {
                            let _ = close(self.0);
                        }
                    }
                }
            }
            let mut guard = FdGuard(fd);

            let sq_len = p.sq_off.array as usize + p.sq_entries as usize * 4;
            let cq_len = p.cq_off.cqes as usize + p.cq_entries as usize * 16;
            let (sq_ring, cq_ring) = if p.features & IORING_FEAT_SINGLE_MMAP != 0 {
                (
                    Mapping::new(fd, sq_len.max(cq_len), IORING_OFF_SQ_RING)?,
                    None,
                )
            } else {
                (
                    Mapping::new(fd, sq_len, IORING_OFF_SQ_RING)?,
                    Some(Mapping::new(fd, cq_len, IORING_OFF_CQ_RING)?),
                )
            };
            let sqes = Mapping::new(
                fd,
                p.sq_entries as usize * std::mem::size_of::<Sqe>(),
                IORING_OFF_SQES,
            )?;
            let mut ring = Self {
                fd,
                sq_ring,
                cq_ring,
                sqes,
                sq_mask: 0,
                cq_mask: 0,
                sq_tail_off: p.sq_off.tail,
                sq_array_off: p.sq_off.array,
                cq_head_off: p.cq_off.head,
                cq_tail_off: p.cq_off.tail,
                cq_cqes_off: p.cq_off.cqes,
            };
            // The masks live in the mapped rings; read them once.
            ring.sq_mask = unsafe { ring.sq_u32(p.sq_off.ring_mask).load(Ordering::Relaxed) };
            ring.cq_mask = unsafe { ring.cq_u32(p.cq_off.ring_mask).load(Ordering::Relaxed) };
            guard.0 = -1; // ring owns the fd now
            Ok(ring)
        }

        /// The `u32` at byte offset `off` of the SQ ring, as an atomic
        /// (the kernel writes these fields concurrently).
        unsafe fn sq_u32(&self, off: u32) -> &AtomicU32 {
            &*(self.sq_ring.ptr.add(off as usize) as *const AtomicU32)
        }

        /// The `u32` at byte offset `off` of the CQ ring.
        unsafe fn cq_u32(&self, off: u32) -> &AtomicU32 {
            let base = self.cq_ring.as_ref().map_or(self.sq_ring.ptr, |m| m.ptr);
            &*(base.add(off as usize) as *const AtomicU32)
        }

        /// Queue one positional read of `len` bytes at file offset
        /// `off` into `buf`, tagged `user_data`, and submit it.
        ///
        /// # Safety
        /// `buf` must stay valid (and unmoved) until the completion
        /// tagged `user_data` has been reaped.
        pub unsafe fn submit_read(
            &mut self,
            file_fd: c_int,
            buf: *mut u8,
            len: usize,
            off: u64,
            user_data: u64,
        ) -> std::io::Result<()> {
            let tail = self.sq_u32(self.sq_tail_off).load(Ordering::Acquire);
            let idx = tail & self.sq_mask;
            let sqe = &mut *(self.sqes.ptr as *mut Sqe).add(idx as usize);
            *sqe = Sqe {
                opcode: IORING_OP_READ,
                flags: 0,
                ioprio: 0,
                fd: file_fd,
                off,
                addr: buf as u64,
                len: len as u32,
                rw_flags: 0,
                user_data,
                _pad: [0; 3],
            };
            let slot = self.sq_u32(self.sq_array_off + 4 * idx);
            slot.store(idx, Ordering::Relaxed);
            self.sq_u32(self.sq_tail_off)
                .store(tail.wrapping_add(1), Ordering::Release);
            let r = syscall(
                SYS_IO_URING_ENTER,
                self.fd,
                1u32,
                0u32,
                0u32,
                0usize,
                0usize,
            );
            if r < 0 {
                return Err(std::io::Error::last_os_error());
            }
            Ok(())
        }

        /// Block until at least one completion is pending.
        pub fn wait(&self) -> std::io::Result<()> {
            let r = unsafe {
                syscall(
                    SYS_IO_URING_ENTER,
                    self.fd,
                    0u32,
                    1u32,
                    IORING_ENTER_GETEVENTS,
                    0usize,
                    0usize,
                )
            };
            if r < 0 {
                let e = std::io::Error::last_os_error();
                if e.kind() == std::io::ErrorKind::Interrupted {
                    return Ok(()); // retry at the caller's next wait
                }
                return Err(e);
            }
            Ok(())
        }

        /// Reap one completion if any is pending.
        pub fn pop(&mut self) -> Option<Completion> {
            unsafe {
                let head = self.cq_u32(self.cq_head_off).load(Ordering::Relaxed);
                let tail = self.cq_u32(self.cq_tail_off).load(Ordering::Acquire);
                if head == tail {
                    return None;
                }
                let base = self.cq_ring.as_ref().map_or(self.sq_ring.ptr, |m| m.ptr);
                let cqe = *(base.add(self.cq_cqes_off as usize) as *const Cqe)
                    .add((head & self.cq_mask) as usize);
                self.cq_u32(self.cq_head_off)
                    .store(head.wrapping_add(1), Ordering::Release);
                let result = if cqe.res < 0 {
                    Err(std::io::Error::from_raw_os_error(-cqe.res))
                } else {
                    Ok(cqe.res as usize)
                };
                Some((cqe.user_data, result))
            }
        }
    }

    impl Drop for Ring {
        fn drop(&mut self) {
            unsafe {
                let _ = close(self.fd);
            }
        }
    }
}

#[cfg(not(all(
    target_os = "linux",
    target_endian = "little",
    target_pointer_width = "64"
)))]
mod sys {
    //! Type-level stub so [`UringSource`](super::UringSource)'s
    //! definition compiles on platforms the backend is not built for
    //! (no constructor succeeds there, so no `Ring` ever exists).

    /// Uninhabited stand-in for the real ring.
    #[derive(Debug)]
    pub enum Ring {}
}

/// Submission-queue size of each source's ring (completions queue is
/// twice this by default; both comfortably exceed [`URING_DEPTH`]).
#[cfg(all(
    target_os = "linux",
    target_endian = "little",
    target_pointer_width = "64"
))]
const SQ_ENTRIES: u32 = 8;

/// Lifecycle of one read-ahead slot.
#[derive(Debug)]
enum SlotState {
    /// No read associated with this slot.
    Free,
    /// A read starting at `u32` index `start` is queued in the kernel.
    InFlight { start: u64, submitted: Instant },
    /// The read completed; `res` is the kernel's byte count or error.
    Ready {
        start: u64,
        submitted: Instant,
        res: std::io::Result<usize>,
    },
}

/// One read-ahead slot: a reusable buffer plus its state.
#[derive(Debug)]
struct Slot {
    buf: Vec<u8>,
    state: SlotState,
}

/// An `io_uring`-backed [`U32Source`] with [`U32Reader`]-identical I/O
/// accounting: up to [`URING_DEPTH`] block-sized reads in flight per
/// stream, submitted ahead of the consumer and charged only when
/// consumed. See the module docs for the contract.
///
/// Beyond the trait it offers the positioned whole-chunk load the disk
/// MGT engine's chunk source builds on
/// ([`read_exact_range`](Self::read_exact_range), accounting-identical
/// to [`U32Reader::read_exact_range`]) and a
/// [`pre_read`](Self::pre_read) hint that queues a *future* range's
/// blocks — how chunk `k+1` loads in the kernel while chunk `k`'s scan
/// pass computes, with no prefetch thread.
#[derive(Debug)]
#[cfg_attr(
    not(all(
        target_os = "linux",
        target_endian = "little",
        target_pointer_width = "64"
    )),
    allow(dead_code)
)]
pub struct UringSource {
    slots: Vec<Slot>,
    ring: sys::Ring,
    file: std::fs::File,
    path: PathBuf,
    stats: Arc<IoStats>,
    /// Total `u32`s in the file.
    len_u32: u64,
    /// Index of the next value a read would return.
    next_index: u64,
    /// Where the next refill "reads" (mirrors the buffered reader's OS
    /// file cursor).
    file_pos: u64,
    /// Block currently being consumed (raw little-endian bytes).
    cur: Vec<u8>,
    /// Consumed bytes in `cur`.
    pos: usize,
    /// Block size in `u32`s (the refill / accounting granularity).
    block_u32s: usize,
    /// Emulated device latency per block (see
    /// [`set_read_latency`](Self::set_read_latency)).
    read_latency: Duration,
}

#[cfg(all(
    target_os = "linux",
    target_endian = "little",
    target_pointer_width = "64"
))]
impl UringSource {
    /// Open `path` with the default block size (identical to
    /// [`U32Reader::open`]'s buffer, so the two account identically).
    /// Fails with `Unsupported` when [`uring_supported`] is `false`.
    pub fn open(path: impl AsRef<Path>, stats: Arc<IoStats>) -> Result<Self> {
        Self::with_block(path, stats, DEFAULT_BUF_U32S)
    }

    /// Open `path` with a block of `block_u32s` values (minimum 1) —
    /// the accounting twin of [`U32Reader::with_buffer`].
    pub fn with_block(
        path: impl AsRef<Path>,
        stats: Arc<IoStats>,
        block_u32s: usize,
    ) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        if !uring_supported() {
            return Err(IoError::os(
                "io_uring",
                &path,
                std::io::Error::new(
                    std::io::ErrorKind::Unsupported,
                    "io_uring is unavailable on this kernel (or disabled via PDTL_URING_DISABLE)",
                ),
            ));
        }
        let file = std::fs::File::open(&path).map_err(|e| IoError::os("open", &path, e))?;
        let meta = file.metadata().map_err(|e| IoError::os("stat", &path, e))?;
        if meta.len() % BYTES_PER_U32 != 0 {
            return Err(IoError::malformed(
                &path,
                format!("size {} is not a multiple of 4", meta.len()),
            ));
        }
        let ring = sys::Ring::new(SQ_ENTRIES).map_err(|e| IoError::os("io_uring", &path, e))?;
        Ok(Self {
            slots: (0..URING_DEPTH)
                .map(|_| Slot {
                    buf: Vec::new(),
                    state: SlotState::Free,
                })
                .collect(),
            ring,
            len_u32: meta.len() / BYTES_PER_U32,
            file,
            path,
            stats,
            next_index: 0,
            file_pos: 0,
            cur: Vec::new(),
            pos: 0,
            block_u32s: block_u32s.max(1),
            read_latency: Duration::ZERO,
        })
    }

    /// Emulate an asynchronous storage device with the given per-block
    /// latency: a block becomes *ready* `latency` after its submission,
    /// so consumers that overlap compute with the in-flight reads wait
    /// only the un-hidden remainder (the blocking twin sleeps the full
    /// latency on every refill). Charged to [`IoStats`] as device
    /// activity, like the other backends.
    pub fn set_read_latency(&mut self, latency: Duration) {
        self.read_latency = latency;
    }

    /// Total number of `u32`s in the file.
    pub fn len_u32(&self) -> u64 {
        self.len_u32
    }

    /// The file this source streams from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The refill length (in `u32`s) of a block starting at `start`.
    fn want_at(&self, start: u64) -> usize {
        (self.len_u32 - start).min(self.block_u32s as u64) as usize
    }

    /// The next [`URING_DEPTH`] refill start positions from `from`
    /// (fewer near end of file).
    fn planned_from(&self, from: u64) -> ([u64; URING_DEPTH], usize) {
        let mut plan = [0u64; URING_DEPTH];
        let mut n = 0;
        let mut p = from;
        while n < URING_DEPTH && p < self.len_u32 {
            plan[n] = p;
            n += 1;
            p += self.want_at(p) as u64;
        }
        (plan, n)
    }

    /// Drain the completion queue into the slots.
    fn reap(&mut self) {
        while let Some((user_data, res)) = self.ring.pop() {
            let Some(slot) = self.slots.get_mut(user_data as usize) else {
                continue;
            };
            if let SlotState::InFlight { start, submitted } = slot.state {
                slot.state = SlotState::Ready {
                    start,
                    submitted,
                    res,
                };
            }
        }
    }

    /// The slot (ready or in flight) holding the block at `start`.
    fn slot_for(&self, start: u64) -> Option<usize> {
        self.slots.iter().position(|s| match s.state {
            SlotState::InFlight { start: p, .. } | SlotState::Ready { start: p, .. } => p == start,
            SlotState::Free => false,
        })
    }

    /// A slot that can take a new submission: a free one, else a ready
    /// one whose block is not in `protect` (evicted, never charged).
    fn acquire_slot(&mut self, protect: &[u64]) -> Option<usize> {
        if let Some(i) = self
            .slots
            .iter()
            .position(|s| matches!(s.state, SlotState::Free))
        {
            return Some(i);
        }
        let i = self.slots.iter().position(|s| match s.state {
            SlotState::Ready { start, .. } => !protect.contains(&start),
            _ => false,
        })?;
        self.slots[i].state = SlotState::Free;
        Some(i)
    }

    /// Queue the read of the block starting at `start` into slot `idx`.
    fn submit_slot(&mut self, idx: usize, start: u64) -> Result<()> {
        use std::os::unix::io::AsRawFd;
        let want_bytes = self.want_at(start) * BYTES_PER_U32 as usize;
        let slot = &mut self.slots[idx];
        slot.buf.clear();
        slot.buf.resize(want_bytes, 0);
        // SAFETY: the buffer lives in `self.slots` and is neither freed
        // nor resized until the slot leaves `InFlight` (consumption,
        // eviction and drop all reap first).
        let submitted = Instant::now();
        unsafe {
            self.ring.submit_read(
                self.file.as_raw_fd(),
                slot.buf.as_mut_ptr(),
                want_bytes,
                start * BYTES_PER_U32,
                idx as u64,
            )
        }
        .map_err(|e| IoError::os("io_uring", &self.path, e))?;
        self.slots[idx].state = SlotState::InFlight { start, submitted };
        Ok(())
    }

    /// Keep the pipeline full: queue reads for the upcoming refill
    /// positions into whatever slots are available. Best-effort — a
    /// submission failure here surfaces on the refill that needs the
    /// block.
    fn top_up(&mut self) {
        self.reap();
        let (plan, n) = self.planned_from(self.file_pos);
        for &p in &plan[..n] {
            if self.slot_for(p).is_some() {
                continue;
            }
            let Some(idx) = self.acquire_slot(&plan[..n]) else {
                break;
            };
            if self.submit_slot(idx, p).is_err() {
                break;
            }
        }
    }

    /// Hint that a positioned load of `[pos, pos + len)` is coming
    /// (the next MGT chunk): queue its first blocks now so they
    /// complete while the current chunk's scan pass computes. Advisory
    /// and never charged — the accounting happens when the announced
    /// `seek_to(pos)` + reads consume the blocks.
    pub fn pre_read(&mut self, pos: u64, len: usize) {
        self.reap();
        let (plan, n) = self.planned_from(pos.min(self.len_u32));
        let end = pos + len as u64;
        for &p in &plan[..n] {
            if p >= end {
                break;
            }
            if self.slot_for(p).is_some() {
                continue;
            }
            let Some(idx) = self.acquire_slot(&plan[..n]) else {
                break;
            };
            if self.submit_slot(idx, p).is_err() {
                break;
            }
        }
    }

    /// Take the block at `file_pos` (waiting on the kernel if it is
    /// still in flight, submitting it if it was never queued), charge
    /// it, and top the pipeline back up. Returns the `u32`s now
    /// buffered — 0 at end of file, where the buffered reader's empty
    /// `read(2)` is mirrored by a zero-byte charge.
    fn refill(&mut self) -> Result<usize> {
        let started = Instant::now();
        if self.want_at(self.file_pos) == 0 {
            // EOF: the buffered twin issues a real zero-byte read(2)
            // here, device wait included — mirror both so io_time and
            // wall stay comparable across backends under emulation
            // (nothing is ever submitted ahead for EOF, so the full
            // latency is honest).
            if !self.read_latency.is_zero() {
                std::thread::sleep(self.read_latency);
            }
            self.cur.clear();
            self.pos = 0;
            self.stats.record_read(0, started.elapsed());
            return Ok(0);
        }
        self.reap();
        let idx = match self.slot_for(self.file_pos) {
            Some(i) => i,
            None => {
                let (plan, n) = self.planned_from(self.file_pos);
                let mut idx = self.acquire_slot(&plan[..n]);
                while idx.is_none() {
                    // Every slot is in flight for stale positions: wait
                    // for any completion and evict it.
                    self.ring
                        .wait()
                        .map_err(|e| IoError::os("io_uring", &self.path, e))?;
                    self.reap();
                    idx = self.acquire_slot(&plan[..n]);
                }
                let idx = idx.expect("acquire_slot loops until a slot frees up");
                self.submit_slot(idx, self.file_pos)?;
                idx
            }
        };
        while matches!(self.slots[idx].state, SlotState::InFlight { .. }) {
            self.ring
                .wait()
                .map_err(|e| IoError::os("io_uring", &self.path, e))?;
            self.reap();
        }
        let state = std::mem::replace(&mut self.slots[idx].state, SlotState::Free);
        let SlotState::Ready { submitted, res, .. } = state else {
            unreachable!("slot was just waited into Ready");
        };
        let n_bytes = res.map_err(|e| IoError::os("read", &self.path, e))?;
        // The emulated device serves a block `latency` after it was
        // queued; sleep only the part compute did not already hide.
        if !self.read_latency.is_zero() {
            let since = submitted.elapsed();
            if since < self.read_latency {
                std::thread::sleep(self.read_latency - since);
            }
        }
        // Whole u32s only (a short tail can only mean concurrent
        // truncation; file length is fixed at open).
        let n_bytes = n_bytes / BYTES_PER_U32 as usize * BYTES_PER_U32 as usize;
        std::mem::swap(&mut self.cur, &mut self.slots[idx].buf);
        self.cur.truncate(n_bytes);
        self.pos = 0;
        // Charge device activity: at least the emulated latency, or the
        // real wall this refill blocked (whichever is larger), matching
        // the other backends' per-refill charges.
        self.stats
            .record_read(n_bytes as u64, started.elapsed().max(self.read_latency));
        let n_u32 = n_bytes / BYTES_PER_U32 as usize;
        self.file_pos += n_u32 as u64;
        self.top_up();
        Ok(n_u32)
    }

    /// Seek to `pos` and read exactly `len` values into `out` (cleared
    /// first); errors if the range reaches past end of file. The
    /// accounting twin of [`U32Reader::read_exact_range`] — and the MGT
    /// chunk-load path: combined with [`pre_read`](Self::pre_read) the
    /// blocks are usually already completed when this runs.
    pub fn read_exact_range(&mut self, pos: u64, len: usize, out: &mut Vec<u32>) -> Result<()> {
        out.clear();
        U32Source::seek_to(self, pos)?;
        let got = U32Source::read_into(self, out, len)?;
        if got != len {
            return Err(IoError::malformed(
                &self.path,
                format!("chunk [{pos}, {pos}+{len}) reaches past end of file"),
            ));
        }
        Ok(())
    }

    /// Wait out every in-flight read so no kernel write can land in a
    /// freed buffer. Called on drop.
    fn drain(&mut self) {
        loop {
            self.reap();
            let in_flight = self
                .slots
                .iter()
                .any(|s| matches!(s.state, SlotState::InFlight { .. }));
            if !in_flight {
                return;
            }
            if self.ring.wait().is_err() {
                // Cannot prove the reads finished: leak the buffers
                // rather than hand the kernel freed memory.
                for slot in &mut self.slots {
                    if matches!(slot.state, SlotState::InFlight { .. }) {
                        std::mem::forget(std::mem::take(&mut slot.buf));
                    }
                }
                return;
            }
        }
    }
}

#[cfg(all(
    target_os = "linux",
    target_endian = "little",
    target_pointer_width = "64"
))]
impl Drop for UringSource {
    fn drop(&mut self) {
        self.drain();
    }
}

#[cfg(all(
    target_os = "linux",
    target_endian = "little",
    target_pointer_width = "64"
))]
impl U32Source for UringSource {
    fn len_u32(&self) -> u64 {
        self.len_u32
    }

    fn position(&self) -> u64 {
        self.next_index
    }

    fn seek_to(&mut self, index: u64) -> Result<()> {
        let index = index.min(self.len_u32);
        self.stats.record_seek();
        self.cur.clear();
        self.pos = 0;
        self.next_index = index;
        self.file_pos = index;
        // Unconsumed read-ahead for the old position simply stops
        // matching future refills (discarded unchaged); queue the new
        // position's blocks right away.
        self.top_up();
        Ok(())
    }

    fn read_into(&mut self, out: &mut Vec<u32>, n: usize) -> Result<usize> {
        let mut got = 0usize;
        while got < n {
            if self.pos + 4 > self.cur.len() && self.refill()? == 0 {
                break;
            }
            let avail = (self.cur.len() - self.pos) / 4;
            let take = avail.min(n - got);
            let bytes = &self.cur[self.pos..self.pos + take * 4];
            out.extend(
                bytes
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])),
            );
            self.pos += take * 4;
            got += take;
        }
        self.next_index += got as u64;
        Ok(got)
    }

    fn skip(&mut self, n: u64) -> Result<()> {
        let n = n.min(self.len_u32.saturating_sub(self.next_index));
        let buffered = ((self.cur.len() - self.pos) / 4) as u64;
        if n <= buffered {
            self.pos += (n * 4) as usize;
            self.next_index += n;
            return Ok(());
        }
        let beyond = n - buffered;
        if beyond <= self.block_u32s as u64 {
            // Read-through: same coalescing rule (and refill charges)
            // as `U32Reader::skip`.
            self.pos = self.cur.len();
            self.next_index += buffered;
            let mut left = beyond;
            while left > 0 {
                if self.refill()? == 0 {
                    break;
                }
                let take = ((self.cur.len() / 4) as u64).min(left);
                self.pos = (take * 4) as usize;
                self.next_index += take;
                left -= take;
            }
            Ok(())
        } else {
            self.seek_to(self.next_index + n)
        }
    }
}

// ---------------------------------------------------------------------
// Fallback stub: platforms the backend is not compiled for. `open`
// reports `Unsupported`; `IoBackend::Uring.resolve()` degrades to
// `Prefetch` before any engine gets here, so the remaining methods are
// unreachable by construction.
// ---------------------------------------------------------------------
#[cfg(not(all(
    target_os = "linux",
    target_endian = "little",
    target_pointer_width = "64"
)))]
#[allow(unused_variables, clippy::missing_const_for_fn)]
impl UringSource {
    /// Unsupported on this platform; always errors.
    pub fn open(path: impl AsRef<Path>, stats: Arc<IoStats>) -> Result<Self> {
        Self::with_block(path, stats, DEFAULT_BUF_U32S)
    }

    /// Unsupported on this platform; always errors.
    pub fn with_block(
        path: impl AsRef<Path>,
        stats: Arc<IoStats>,
        block_u32s: usize,
    ) -> Result<Self> {
        let _ = (stats, block_u32s);
        Err(IoError::os(
            "io_uring",
            path.as_ref(),
            std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "the io_uring backend requires 64-bit little-endian Linux",
            ),
        ))
    }

    /// Unreachable: no constructor succeeds on this platform.
    pub fn set_read_latency(&mut self, _latency: Duration) {
        unreachable!("UringSource cannot be constructed on this platform")
    }

    /// Unreachable: no constructor succeeds on this platform.
    pub fn len_u32(&self) -> u64 {
        unreachable!("UringSource cannot be constructed on this platform")
    }

    /// Unreachable: no constructor succeeds on this platform.
    pub fn path(&self) -> &Path {
        unreachable!("UringSource cannot be constructed on this platform")
    }

    /// Unreachable: no constructor succeeds on this platform.
    pub fn pre_read(&mut self, _pos: u64, _len: usize) {
        unreachable!("UringSource cannot be constructed on this platform")
    }

    /// Unreachable: no constructor succeeds on this platform.
    pub fn read_exact_range(&mut self, _pos: u64, _len: usize, _out: &mut Vec<u32>) -> Result<()> {
        unreachable!("UringSource cannot be constructed on this platform")
    }
}

#[cfg(not(all(
    target_os = "linux",
    target_endian = "little",
    target_pointer_width = "64"
)))]
impl U32Source for UringSource {
    fn len_u32(&self) -> u64 {
        unreachable!("UringSource cannot be constructed on this platform")
    }
    fn position(&self) -> u64 {
        unreachable!("UringSource cannot be constructed on this platform")
    }
    fn seek_to(&mut self, _index: u64) -> Result<()> {
        unreachable!("UringSource cannot be constructed on this platform")
    }
    fn read_into(&mut self, _out: &mut Vec<u32>, _n: usize) -> Result<usize> {
        unreachable!("UringSource cannot be constructed on this platform")
    }
    fn skip(&mut self, _n: u64) -> Result<()> {
        unreachable!("UringSource cannot be constructed on this platform")
    }
}

#[cfg(all(
    test,
    target_os = "linux",
    target_endian = "little",
    target_pointer_width = "64"
))]
mod tests {
    use super::*;
    use crate::stream::{U32Reader, U32Writer};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("pdtl-uring-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    fn write_vals(name: &str, vals: &[u32]) -> PathBuf {
        let p = tmp(name);
        let mut w = U32Writer::create(&p, IoStats::new()).unwrap();
        w.write_all(vals).unwrap();
        w.finish().unwrap();
        p
    }

    #[test]
    fn supported_or_cleanly_degraded() {
        // Gated kernels (seccomp, io_uring_disabled, pre-5.6) are a
        // supported configuration — the backend promises degradation,
        // not availability. Assert the degradation contract instead of
        // the kernel feature; the remaining tests in this module cover
        // the real ring wherever the probe succeeds.
        assert!(uring_compiled(), "this module only builds on Linux");
        if !uring_supported() {
            let p = write_vals("probe", &[1, 2, 3]);
            let err = UringSource::open(&p, IoStats::new()).unwrap_err();
            assert!(err.to_string().contains("io_uring"), "{err}");
            eprintln!("io_uring unavailable here; degradation path verified instead");
        }
    }

    #[test]
    fn sequential_read_matches_file() {
        if !uring_supported() {
            return;
        }
        let vals: Vec<u32> = (0..50_000).map(|i| i ^ 0xBEEF).collect();
        let p = write_vals("seq", &vals);
        let stats = IoStats::new();
        let mut u = UringSource::with_block(&p, stats.clone(), 512).unwrap();
        assert_eq!(UringSource::len_u32(&u), vals.len() as u64);
        let mut out = Vec::new();
        assert_eq!(
            U32Source::read_into(&mut u, &mut out, vals.len() + 7).unwrap(),
            vals.len()
        );
        assert_eq!(out, vals);
        // One zero-byte EOF op beyond the data blocks, like U32Reader.
        assert_eq!(stats.bytes_read(), vals.len() as u64 * 4);
    }

    #[test]
    fn accounting_matches_blocking_reader_exactly() {
        if !uring_supported() {
            return;
        }
        let vals: Vec<u32> = (0..20_000).map(|i| i * 3 + 1).collect();
        let p = write_vals("acct", &vals);

        let drive = |src: &mut dyn U32Source| {
            let mut out = Vec::new();
            src.read_into(&mut out, 100).unwrap();
            src.skip(37).unwrap(); // short: read-through
            src.read_into(&mut out, 50).unwrap();
            src.skip(5000).unwrap(); // long: seek
            src.read_into(&mut out, 200).unwrap();
            src.seek_to(3).unwrap();
            src.read_into(&mut out, 10).unwrap();
            src.skip(u64::MAX).unwrap(); // clamps at EOF
            src.read_into(&mut out, 10).unwrap(); // EOF read
            (out, src.position())
        };

        let bstats = IoStats::new();
        let mut b = U32Reader::with_buffer(&p, bstats.clone(), 512).unwrap();
        let (b_out, b_pos) = drive(&mut b);

        let ustats = IoStats::new();
        let mut u = UringSource::with_block(&p, ustats.clone(), 512).unwrap();
        let (u_out, u_pos) = drive(&mut u);

        assert_eq!(u_out, b_out, "identical value streams");
        assert_eq!(u_pos, b_pos);
        assert_eq!(ustats.bytes_read(), bstats.bytes_read());
        assert_eq!(ustats.seeks(), bstats.seeks());
        assert_eq!(ustats.read_ops(), bstats.read_ops());
    }

    #[test]
    fn read_exact_range_mirrors_blocking_chunk_loads() {
        if !uring_supported() {
            return;
        }
        let vals: Vec<u32> = (0..20_000).collect();
        let p = write_vals("range", &vals);

        let bstats = IoStats::new();
        let mut r = U32Reader::with_buffer(&p, bstats.clone(), 512).unwrap();
        let mut bbuf = Vec::new();
        r.read_exact_range(3_000, 700, &mut bbuf).unwrap();

        let ustats = IoStats::new();
        let mut u = UringSource::with_block(&p, ustats.clone(), 512).unwrap();
        let mut ubuf = Vec::new();
        u.read_exact_range(3_000, 700, &mut ubuf).unwrap();
        assert_eq!(ubuf, bbuf);
        assert_eq!(ustats.bytes_read(), bstats.bytes_read());
        assert_eq!(ustats.seeks(), bstats.seeks());
        assert_eq!(ustats.read_ops(), bstats.read_ops());

        // Out-of-range loads fail identically.
        let be = r.read_exact_range(19_900, 200, &mut bbuf).unwrap_err();
        let ue = u.read_exact_range(19_900, 200, &mut ubuf).unwrap_err();
        assert!(be.to_string().contains("past end of file"));
        assert!(ue.to_string().contains("past end of file"));
    }

    #[test]
    fn pre_read_is_advisory_and_unaccounted() {
        if !uring_supported() {
            return;
        }
        let vals: Vec<u32> = (0..50_000).collect();
        let p = write_vals("preread", &vals);
        let stats = IoStats::new();
        let mut u = UringSource::with_block(&p, stats.clone(), 1000).unwrap();
        u.pre_read(30_000, 4_000);
        u.pre_read(49_999, 500); // clamps at the end
        u.pre_read(60_000, 10); // past the end: ignored
        assert_eq!(stats.bytes_read(), 0, "hints are never charged");
        assert_eq!(stats.read_ops(), 0);
        // The hinted load is then served (and charged) normally.
        let mut out = Vec::new();
        u.read_exact_range(30_000, 2_500, &mut out).unwrap();
        assert_eq!(out, &vals[30_000..32_500]);
    }

    #[test]
    fn rescans_deliver_identical_data() {
        if !uring_supported() {
            return;
        }
        // The MGT scan pass seeks back to 0 once per chunk iteration,
        // discarding whatever read-ahead was queued.
        let vals: Vec<u32> = (0..5_000).map(|i| i ^ 0xA5A5).collect();
        let p = write_vals("rescan", &vals);
        let mut u = UringSource::with_block(&p, IoStats::new(), 64).unwrap();
        for _ in 0..5 {
            U32Source::seek_to(&mut u, 0).unwrap();
            let mut out = Vec::new();
            U32Source::read_into(&mut u, &mut out, vals.len()).unwrap();
            assert_eq!(out, vals);
        }
    }

    #[test]
    fn empty_file_reads_nothing() {
        if !uring_supported() {
            return;
        }
        let p = write_vals("empty", &[]);
        let stats = IoStats::new();
        let mut u = UringSource::open(&p, stats.clone()).unwrap();
        assert_eq!(UringSource::len_u32(&u), 0);
        let mut out = Vec::new();
        assert_eq!(U32Source::read_into(&mut u, &mut out, 10).unwrap(), 0);
        U32Source::seek_to(&mut u, 5).unwrap();
        assert_eq!(U32Source::position(&u), 0, "clamped to empty length");
        U32Source::skip(&mut u, u64::MAX).unwrap();
    }

    #[test]
    fn rejects_non_u32_sized_file() {
        if !uring_supported() {
            return;
        }
        let p = tmp("badsize");
        std::fs::write(&p, [0u8; 6]).unwrap();
        let err = UringSource::open(&p, IoStats::new()).unwrap_err();
        assert!(err.to_string().contains("multiple of 4"));
    }

    #[test]
    fn missing_file_error_names_path() {
        if !uring_supported() {
            return;
        }
        let p = tmp("does-not-exist-uring");
        let _ = std::fs::remove_file(&p);
        let err = UringSource::open(&p, IoStats::new()).unwrap_err();
        assert!(err.to_string().contains("does-not-exist-uring"));
    }

    #[test]
    fn read_latency_emulates_an_async_device() {
        if !uring_supported() {
            return;
        }
        let vals: Vec<u32> = (0..4_000).collect();
        let p = write_vals("latency", &vals);
        let stats = IoStats::new();
        let mut u = UringSource::with_block(&p, stats.clone(), 1000).unwrap();
        u.set_read_latency(Duration::from_millis(4));
        // First block: nothing was in flight, pay the full latency.
        let t = Instant::now();
        let mut out = Vec::new();
        U32Source::read_into(&mut u, &mut out, 1000).unwrap();
        assert!(t.elapsed() >= Duration::from_millis(4));
        // Blocks 2..4 were submitted while block 1 was consumed;
        // "compute" longer than the latency hides them completely.
        std::thread::sleep(Duration::from_millis(6));
        let t = Instant::now();
        U32Source::read_into(&mut u, &mut out, 3000).unwrap();
        assert!(
            t.elapsed() < Duration::from_millis(9),
            "queued blocks must not serialise their latencies: {:?}",
            t.elapsed()
        );
        assert_eq!(out, vals);
        // Device activity is still charged per block.
        assert!(stats.io_time() >= Duration::from_millis(16));
    }

    #[test]
    fn drop_with_reads_in_flight_is_clean() {
        if !uring_supported() {
            return;
        }
        let vals: Vec<u32> = (0..100_000).collect();
        let p = write_vals("drop", &vals);
        let mut u = UringSource::with_block(&p, IoStats::new(), 256).unwrap();
        u.pre_read(0, 100_000); // queue read-ahead, then drop immediately
        drop(u);
    }
}
