//! Zero-copy memory-mapped streaming: serve page-cache-resident graphs
//! without `read(2)` copies.
//!
//! On a warm page cache every buffered read pays a syscall plus two
//! copies (kernel → user buffer → decoded `Vec`). [`MmapSource`] maps
//! the file once and serves `u32` runs as slices *directly out of the
//! mapping* — scans and chunk loads become pointer arithmetic. The MGT
//! engines select it via `IoBackend::Mmap`.
//!
//! **Accounting contract.** `MmapSource` implements
//! [`U32Source`] and mirrors [`U32Reader`]'s control
//! flow exactly, block for block: a *virtual* block-sized buffer window
//! advances over the mapping, charging [`IoStats`] one block-sized
//! `record_read` wherever the buffered reader would refill and one
//! `record_seek` wherever it would reposition — so `bytes_read`,
//! `read_ops` and `seeks` are byte-identical to the blocking twin on
//! identical access patterns (counted per block touched; the property
//! tests assert this across budgets × seek patterns). Emulated device
//! latency ([`set_read_latency`](MmapSource::set_read_latency)) sleeps
//! once per virtual refill, exactly like `U32Reader`, so the
//! `io_latency` ablations remain comparable across all four backends.
//!
//! The mapping syscalls (`mmap` / `munmap` / `madvise`) are bound
//! through a tiny `extern "C"` module (the same offline-shim pattern as
//! `shims/`), gated to 64-bit little-endian Linux. Elsewhere
//! [`MmapSource::open`] reports `Unsupported` and
//! `IoBackend::Mmap.resolve()` degrades to the buffered reader, so no
//! caller needs platform knowledge. On open the whole mapping is
//! advised `MADV_SEQUENTIAL` (scan-heavy access), and
//! [`will_need`](MmapSource::will_need) lets the chunk loader hint the
//! next resident window with `MADV_WILLNEED`.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::{IoError, Result};
use crate::stats::IoStats;
#[cfg(doc)]
use crate::stream::U32Reader;
use crate::stream::{U32Source, BYTES_PER_U32, DEFAULT_BUF_U32S};

/// Whether this platform supports the mmap backend (64-bit
/// little-endian Linux; the mapping is reinterpreted as `&[u32]`, so
/// the file's little-endian encoding must match the host's).
pub const fn mmap_supported() -> bool {
    cfg!(all(
        target_os = "linux",
        target_endian = "little",
        target_pointer_width = "64"
    ))
}

#[cfg(all(
    target_os = "linux",
    target_endian = "little",
    target_pointer_width = "64"
))]
mod sys {
    //! Minimal `extern "C"` bindings for the three mapping syscalls.
    //! `std` already links libc, so no new dependency is introduced.
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 0x1;
    pub const MAP_PRIVATE: c_int = 0x02;
    pub const MADV_SEQUENTIAL: c_int = 2;
    pub const MADV_WILLNEED: c_int = 3;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, length: usize) -> c_int;
        pub fn madvise(addr: *mut c_void, length: usize, advice: c_int) -> c_int;
    }
}

/// RAII owner of one read-only file mapping (empty files map nothing).
#[derive(Debug)]
struct Map {
    ptr: *const u8,
    len: usize,
}

// SAFETY: the mapping is read-only (PROT_READ, MAP_PRIVATE) for its
// whole lifetime, so sharing the pointer across threads is sound.
unsafe impl Send for Map {}
unsafe impl Sync for Map {}

#[cfg(all(
    target_os = "linux",
    target_endian = "little",
    target_pointer_width = "64"
))]
impl Map {
    fn new(file: &std::fs::File, len: usize, path: &Path) -> Result<Self> {
        if len == 0 {
            return Ok(Self {
                ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(),
                len: 0,
            });
        }
        use std::os::unix::io::AsRawFd;
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(IoError::os("mmap", path, std::io::Error::last_os_error()));
        }
        Ok(Self {
            ptr: ptr as *const u8,
            len,
        })
    }

    /// Advise the kernel about `[offset, offset + len)` (page-aligned
    /// down; advisory only, failures ignored).
    fn advise(&self, offset: usize, len: usize, advice: std::os::raw::c_int) {
        if self.len == 0 || len == 0 || offset >= self.len {
            return;
        }
        let page = 4096usize;
        let lo = offset & !(page - 1);
        let hi = (offset + len).min(self.len);
        unsafe {
            let _ = sys::madvise(self.ptr.add(lo) as *mut _, hi - lo, advice);
        }
    }
}

#[cfg(all(
    target_os = "linux",
    target_endian = "little",
    target_pointer_width = "64"
))]
impl Drop for Map {
    fn drop(&mut self) {
        if self.len > 0 {
            unsafe {
                let _ = sys::munmap(self.ptr as *mut _, self.len);
            }
        }
    }
}

/// A zero-copy, memory-mapped [`U32Source`] with [`U32Reader`]-identical
/// I/O accounting. See the module docs for the contract.
///
/// Beyond the trait, it offers the zero-copy entry points the disk MGT
/// engine builds on: [`read_run`](Self::read_run) (the next `n` values
/// as a slice into the mapping) and [`range_run`](Self::range_run) (a
/// positioned exact-length load — the mmap equivalent of
/// [`U32Reader::read_exact_range`], same seek/refill charges, same
/// failure behaviour).
#[derive(Debug)]
pub struct MmapSource {
    map: Map,
    path: PathBuf,
    stats: Arc<IoStats>,
    /// Total `u32`s in the file.
    len_u32: u64,
    /// Index of the next value a read would return.
    next_index: u64,
    /// Virtual OS file cursor: where the next virtual refill "reads".
    file_pos: u64,
    /// Virtual buffer fill/consumption, in `u32`s (mirrors
    /// `U32Reader`'s byte-based `filled`/`pos`).
    filled: usize,
    pos: usize,
    /// Virtual block size in `u32`s (the accounting granularity).
    block_u32s: usize,
    /// Emulated device latency per virtual refill.
    read_latency: Duration,
}

#[cfg(all(
    target_os = "linux",
    target_endian = "little",
    target_pointer_width = "64"
))]
impl MmapSource {
    /// Map `path` with the default block size (identical to
    /// [`U32Reader::open`]'s buffer, so the two account identically).
    pub fn open(path: impl AsRef<Path>, stats: Arc<IoStats>) -> Result<Self> {
        Self::with_block(path, stats, DEFAULT_BUF_U32S)
    }

    /// Map `path` with a virtual block of `block_u32s` values (minimum
    /// 1) — the accounting twin of [`U32Reader::with_buffer`].
    pub fn with_block(
        path: impl AsRef<Path>,
        stats: Arc<IoStats>,
        block_u32s: usize,
    ) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = std::fs::File::open(&path).map_err(|e| IoError::os("open", &path, e))?;
        let meta = file.metadata().map_err(|e| IoError::os("stat", &path, e))?;
        if meta.len() % BYTES_PER_U32 != 0 {
            return Err(IoError::malformed(
                &path,
                format!("size {} is not a multiple of 4", meta.len()),
            ));
        }
        let map = Map::new(&file, meta.len() as usize, &path)?;
        // The engines scan graph files front to back, repeatedly.
        map.advise(0, map.len, sys::MADV_SEQUENTIAL);
        Ok(Self {
            map,
            len_u32: meta.len() / BYTES_PER_U32,
            path,
            stats,
            next_index: 0,
            file_pos: 0,
            filled: 0,
            pos: 0,
            block_u32s: block_u32s.max(1),
            read_latency: Duration::ZERO,
        })
    }

    /// Hint that `[pos, pos + len)` (in `u32`s) is about to be read
    /// (`MADV_WILLNEED`); the chunk loader calls this for the *next*
    /// chunk while the current one is scanned. Advisory, never charged.
    pub fn will_need(&self, pos: u64, len: usize) {
        self.map.advise(
            (pos * BYTES_PER_U32) as usize,
            len * BYTES_PER_U32 as usize,
            sys::MADV_WILLNEED,
        );
    }

    /// The `n` values starting at `start` as a slice into the mapping.
    fn u32s(&self, start: u64, n: usize) -> &[u32] {
        if n == 0 {
            return &[];
        }
        debug_assert!(start + n as u64 <= self.len_u32);
        // SAFETY: the mapping is page-aligned (so 4-aligned), lives as
        // long as `self`, is never written, and the range is in bounds.
        unsafe { std::slice::from_raw_parts((self.map.ptr as *const u32).add(start as usize), n) }
    }
}

// Everything below is platform-independent bookkeeping, compiled only
// alongside the real mapping (the fallback stub replaces the lot).
#[cfg(all(
    target_os = "linux",
    target_endian = "little",
    target_pointer_width = "64"
))]
impl MmapSource {
    /// Emulate a storage device with the given per-block latency —
    /// every virtual refill sleeps `latency`, charged to [`IoStats`]
    /// exactly like [`U32Reader::set_read_latency`].
    pub fn set_read_latency(&mut self, latency: Duration) {
        self.read_latency = latency;
    }

    /// Total number of `u32`s in the file.
    pub fn len_u32(&self) -> u64 {
        self.len_u32
    }

    /// The file this source streams from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The virtual refill: advance the accounting window one block,
    /// charging the same bytes a buffered refill would read.
    fn refill(&mut self) -> usize {
        let start = Instant::now();
        if !self.read_latency.is_zero() {
            std::thread::sleep(self.read_latency);
        }
        let n = (self.len_u32 - self.file_pos).min(self.block_u32s as u64) as usize;
        self.stats
            .record_read(n as u64 * BYTES_PER_U32, start.elapsed());
        self.file_pos += n as u64;
        self.filled = n;
        self.pos = 0;
        n
    }

    /// Advance the accounting by up to `n` consumed values; returns how
    /// many were available before end of file.
    fn consume(&mut self, n: usize) -> usize {
        let mut got = 0usize;
        while got < n {
            if self.pos >= self.filled && self.refill() == 0 {
                break;
            }
            let take = (self.filled - self.pos).min(n - got);
            self.pos += take;
            got += take;
        }
        self.next_index += got as u64;
        got
    }

    /// The next `n` values (fewer at end of file) as a zero-copy slice,
    /// with buffered-reader-identical refill accounting.
    pub fn read_run(&mut self, n: usize) -> Result<&[u32]> {
        let start = self.next_index;
        let got = self.consume(n);
        Ok(self.u32s(start, got))
    }

    /// Seek to `pos` and return exactly `len` values as a zero-copy
    /// slice; errors if the range reaches past end of file. Charges one
    /// seek plus block refills — the accounting twin of
    /// [`U32Reader::read_exact_range`].
    pub fn range_run(&mut self, pos: u64, len: usize) -> Result<&[u32]> {
        U32Source::seek_to(self, pos)?;
        let start = self.next_index;
        let got = self.consume(len);
        if got != len {
            return Err(IoError::malformed(
                &self.path,
                format!("chunk [{pos}, {pos}+{len}) reaches past end of file"),
            ));
        }
        Ok(self.u32s(start, len))
    }
}

#[cfg(all(
    target_os = "linux",
    target_endian = "little",
    target_pointer_width = "64"
))]
impl U32Source for MmapSource {
    fn len_u32(&self) -> u64 {
        self.len_u32
    }

    fn position(&self) -> u64 {
        self.next_index
    }

    fn seek_to(&mut self, index: u64) -> Result<()> {
        let index = index.min(self.len_u32);
        self.stats.record_seek();
        self.filled = 0;
        self.pos = 0;
        self.next_index = index;
        self.file_pos = index;
        Ok(())
    }

    fn read_into(&mut self, out: &mut Vec<u32>, n: usize) -> Result<usize> {
        let start = self.next_index;
        let got = self.consume(n);
        out.extend_from_slice(self.u32s(start, got));
        Ok(got)
    }

    fn skip(&mut self, n: u64) -> Result<()> {
        let n = n.min(self.len_u32.saturating_sub(self.next_index));
        let buffered = (self.filled - self.pos) as u64;
        if n <= buffered {
            self.pos += n as usize;
            self.next_index += n;
            return Ok(());
        }
        let beyond = n - buffered;
        if beyond <= self.block_u32s as u64 {
            // Read-through: same coalescing rule (and refill charges)
            // as `U32Reader::skip`.
            self.pos = self.filled;
            self.next_index += buffered;
            let mut left = beyond;
            while left > 0 {
                if self.refill() == 0 {
                    break;
                }
                let take = (self.filled as u64).min(left);
                self.pos = take as usize;
                self.next_index += take;
                left -= take;
            }
            Ok(())
        } else {
            self.seek_to(self.next_index + n)
        }
    }
}

// ---------------------------------------------------------------------
// Fallback stub: platforms without the mapping syscalls (or with the
// wrong endianness for the zero-copy reinterpretation). `open` reports
// `Unsupported`; `IoBackend::Mmap.resolve()` degrades to `Blocking`
// before any engine gets here, so the remaining methods are
// unreachable by construction.
// ---------------------------------------------------------------------
#[cfg(not(all(
    target_os = "linux",
    target_endian = "little",
    target_pointer_width = "64"
)))]
#[allow(unused_variables, clippy::missing_const_for_fn)]
impl MmapSource {
    /// Unsupported on this platform; always errors.
    pub fn open(path: impl AsRef<Path>, stats: Arc<IoStats>) -> Result<Self> {
        Self::with_block(path, stats, DEFAULT_BUF_U32S)
    }

    /// Unsupported on this platform; always errors.
    pub fn with_block(
        path: impl AsRef<Path>,
        stats: Arc<IoStats>,
        block_u32s: usize,
    ) -> Result<Self> {
        let _ = (stats, block_u32s);
        Err(IoError::os(
            "mmap",
            path.as_ref(),
            std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "the mmap backend requires 64-bit little-endian Linux",
            ),
        ))
    }

    /// Unreachable: no constructor succeeds on this platform.
    pub fn set_read_latency(&mut self, _latency: Duration) {
        unreachable!("MmapSource cannot be constructed on this platform")
    }

    /// Unreachable: no constructor succeeds on this platform.
    pub fn len_u32(&self) -> u64 {
        unreachable!("MmapSource cannot be constructed on this platform")
    }

    /// Unreachable: no constructor succeeds on this platform.
    pub fn path(&self) -> &Path {
        unreachable!("MmapSource cannot be constructed on this platform")
    }

    /// Unreachable: no constructor succeeds on this platform.
    pub fn will_need(&self, _pos: u64, _len: usize) {
        unreachable!("MmapSource cannot be constructed on this platform")
    }

    /// Unreachable: no constructor succeeds on this platform.
    pub fn read_run(&mut self, _n: usize) -> Result<&[u32]> {
        unreachable!("MmapSource cannot be constructed on this platform")
    }

    /// Unreachable: no constructor succeeds on this platform.
    pub fn range_run(&mut self, _pos: u64, _len: usize) -> Result<&[u32]> {
        unreachable!("MmapSource cannot be constructed on this platform")
    }
}

#[cfg(not(all(
    target_os = "linux",
    target_endian = "little",
    target_pointer_width = "64"
)))]
impl U32Source for MmapSource {
    fn len_u32(&self) -> u64 {
        unreachable!("MmapSource cannot be constructed on this platform")
    }
    fn position(&self) -> u64 {
        unreachable!("MmapSource cannot be constructed on this platform")
    }
    fn seek_to(&mut self, _index: u64) -> Result<()> {
        unreachable!("MmapSource cannot be constructed on this platform")
    }
    fn read_into(&mut self, _out: &mut Vec<u32>, _n: usize) -> Result<usize> {
        unreachable!("MmapSource cannot be constructed on this platform")
    }
    fn skip(&mut self, _n: u64) -> Result<()> {
        unreachable!("MmapSource cannot be constructed on this platform")
    }
}

#[cfg(all(
    test,
    target_os = "linux",
    target_endian = "little",
    target_pointer_width = "64"
))]
mod tests {
    use super::*;
    use crate::stream::{U32Reader, U32Writer};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("pdtl-mmap-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    fn write_vals(name: &str, vals: &[u32]) -> PathBuf {
        let p = tmp(name);
        let mut w = U32Writer::create(&p, IoStats::new()).unwrap();
        w.write_all(vals).unwrap();
        w.finish().unwrap();
        p
    }

    #[test]
    fn supported_on_this_container() {
        assert!(mmap_supported());
    }

    #[test]
    fn sequential_read_matches_file() {
        let vals: Vec<u32> = (0..50_000).map(|i| i ^ 0xDEAD).collect();
        let p = write_vals("seq", &vals);
        let stats = IoStats::new();
        let mut m = MmapSource::with_block(&p, stats.clone(), 512).unwrap();
        assert_eq!(m.len_u32(), vals.len() as u64);
        let mut out = Vec::new();
        assert_eq!(
            U32Source::read_into(&mut m, &mut out, vals.len() + 7).unwrap(),
            vals.len()
        );
        assert_eq!(out, vals);
        assert_eq!(stats.bytes_read(), vals.len() as u64 * 4);
    }

    #[test]
    fn read_run_is_zero_copy_and_counts_blocks() {
        let vals: Vec<u32> = (0..10_000).collect();
        let p = write_vals("run", &vals);
        let stats = IoStats::new();
        let mut m = MmapSource::with_block(&p, stats.clone(), 1000).unwrap();
        let run = m.read_run(2500).unwrap();
        assert_eq!(run, &vals[..2500]);
        // 2500 values over 1000-u32 blocks: three refills charged.
        assert_eq!(stats.bytes_read(), 3 * 1000 * 4);
        assert_eq!(stats.read_ops(), 3);
        let run = m.read_run(400).unwrap();
        assert_eq!(run, &vals[2500..2900]);
        assert_eq!(stats.bytes_read(), 3 * 1000 * 4, "still inside block 3");
    }

    #[test]
    fn range_run_mirrors_read_exact_range_accounting() {
        let vals: Vec<u32> = (0..20_000).collect();
        let p = write_vals("range", &vals);

        let bstats = IoStats::new();
        let mut r = U32Reader::with_buffer(&p, bstats.clone(), 512).unwrap();
        let mut buf = Vec::new();
        r.read_exact_range(3_000, 700, &mut buf).unwrap();

        let mstats = IoStats::new();
        let mut m = MmapSource::with_block(&p, mstats.clone(), 512).unwrap();
        let run = m.range_run(3_000, 700).unwrap();
        assert_eq!(run, &buf[..]);
        assert_eq!(mstats.bytes_read(), bstats.bytes_read());
        assert_eq!(mstats.seeks(), bstats.seeks());
        assert_eq!(mstats.read_ops(), bstats.read_ops());

        // Out-of-range loads fail identically.
        let be = r.read_exact_range(19_900, 200, &mut buf).unwrap_err();
        let me = m.range_run(19_900, 200).unwrap_err();
        assert!(be.to_string().contains("past end of file"));
        assert!(me.to_string().contains("past end of file"));
    }

    #[test]
    fn empty_file_reads_nothing() {
        let p = write_vals("empty", &[]);
        let stats = IoStats::new();
        let mut m = MmapSource::open(&p, stats.clone()).unwrap();
        assert_eq!(m.len_u32(), 0);
        let mut out = Vec::new();
        assert_eq!(U32Source::read_into(&mut m, &mut out, 10).unwrap(), 0);
        U32Source::seek_to(&mut m, 5).unwrap();
        assert_eq!(U32Source::position(&m), 0, "clamped to empty length");
        U32Source::skip(&mut m, u64::MAX).unwrap();
        assert!(m.read_run(3).unwrap().is_empty());
    }

    #[test]
    fn rejects_non_u32_sized_file() {
        let p = tmp("badsize");
        std::fs::write(&p, [0u8; 7]).unwrap();
        let err = MmapSource::open(&p, IoStats::new()).unwrap_err();
        assert!(err.to_string().contains("multiple of 4"));
    }

    #[test]
    fn read_latency_is_charged_per_block() {
        let vals: Vec<u32> = (0..3_000).collect();
        let p = write_vals("latency", &vals);
        let stats = IoStats::new();
        let mut m = MmapSource::with_block(&p, stats.clone(), 1000).unwrap();
        m.set_read_latency(Duration::from_millis(2));
        let t = Instant::now();
        let run = m.read_run(3_000).unwrap();
        assert_eq!(run.len(), 3_000);
        assert!(t.elapsed() >= Duration::from_millis(6), "3 refills slept");
        assert!(stats.io_time() >= Duration::from_millis(6));
    }

    #[test]
    fn will_need_is_advisory_and_unaccounted() {
        let vals: Vec<u32> = (0..5_000).collect();
        let p = write_vals("advise", &vals);
        let stats = IoStats::new();
        let m = MmapSource::open(&p, stats.clone()).unwrap();
        m.will_need(1_000, 2_000);
        m.will_need(4_999, 500); // clamps at the end
        m.will_need(10_000, 10); // past the end: ignored
        assert_eq!(stats.bytes_read(), 0);
        assert_eq!(stats.read_ops(), 0);
    }
}
