//! External merge sort for `u64` records.
//!
//! Raw graph inputs arrive as unsorted edge lists; PDTL's on-disk format
//! requires adjacency sorted by (source, destination). An undirected edge
//! `(u, v)` packs into a single `u64` as `(u << 32) | v`, so sorting the
//! packed stream yields exactly the required order. This module implements
//! the classic two-phase external merge sort of the Aggarwal–Vitter model:
//! bounded-memory run formation followed by a k-way merge, with every byte
//! counted through [`IoStats`].

use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use crate::error::{IoError, Result};
use crate::stats::IoStats;

const RECORD_BYTES: usize = 8;

/// Sort the `u64` records in `input` into `output` using at most
/// `mem_records` records of memory, returning the record count.
///
/// Run files are created next to `output` (suffix `.runN`) and removed on
/// success. `input` and `output` may not alias.
pub fn external_sort_u64(
    input: &Path,
    output: &Path,
    mem_records: usize,
    stats: &Arc<IoStats>,
) -> Result<u64> {
    if mem_records == 0 {
        return Err(IoError::BudgetTooSmall {
            needed: 1,
            available: 0,
        });
    }
    let runs = form_runs(input, output, mem_records, stats)?;
    let total: u64 = runs.iter().map(|r| r.records).sum();
    let run_paths: Vec<PathBuf> = runs.into_iter().map(|r| r.path).collect();
    merge_sorted_files(&run_paths, output, stats)?;
    for p in &run_paths {
        let _ = std::fs::remove_file(p);
    }
    Ok(total)
}

struct Run {
    path: PathBuf,
    records: u64,
}

fn form_runs(
    input: &Path,
    output: &Path,
    mem_records: usize,
    stats: &Arc<IoStats>,
) -> Result<Vec<Run>> {
    let file = File::open(input).map_err(|e| IoError::os("open", input, e))?;
    let mut reader = BufReader::with_capacity(1 << 16, file);
    let mut runs = Vec::new();
    let mut buf: Vec<u64> = Vec::with_capacity(mem_records);
    let mut chunk = vec![0u8; RECORD_BYTES * 4096];

    loop {
        buf.clear();
        let mut eof = false;
        while buf.len() < mem_records {
            let want = (mem_records - buf.len()).min(4096) * RECORD_BYTES;
            let start = Instant::now();
            let n = read_full(&mut reader, &mut chunk[..want])
                .map_err(|e| IoError::os("read", input, e))?;
            stats.record_read(n as u64, start.elapsed());
            if n % RECORD_BYTES != 0 {
                return Err(IoError::malformed(
                    input,
                    format!("trailing {} bytes (not a multiple of 8)", n % RECORD_BYTES),
                ));
            }
            buf.extend(
                chunk[..n]
                    .chunks_exact(RECORD_BYTES)
                    .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]])),
            );
            if n < want {
                eof = true;
                break;
            }
        }
        if buf.is_empty() {
            break;
        }
        buf.sort_unstable();
        let path = run_path(output, runs.len());
        write_run(&path, &buf, stats)?;
        runs.push(Run {
            path,
            records: buf.len() as u64,
        });
        if eof {
            break;
        }
    }
    if runs.is_empty() {
        // Empty input still needs an empty run so the merge emits an
        // empty (but present) output file.
        let path = run_path(output, 0);
        write_run(&path, &[], stats)?;
        runs.push(Run { path, records: 0 });
    }
    Ok(runs)
}

fn run_path(output: &Path, idx: usize) -> PathBuf {
    let mut os = output.as_os_str().to_os_string();
    os.push(format!(".run{idx}"));
    PathBuf::from(os)
}

fn write_run(path: &Path, records: &[u64], stats: &Arc<IoStats>) -> Result<()> {
    let file = File::create(path).map_err(|e| IoError::os("create", path, e))?;
    let mut w = BufWriter::with_capacity(1 << 16, file);
    let start = Instant::now();
    for &r in records {
        w.write_all(&r.to_le_bytes())
            .map_err(|e| IoError::os("write", path, e))?;
    }
    w.flush().map_err(|e| IoError::os("flush", path, e))?;
    stats.record_write((records.len() * RECORD_BYTES) as u64, start.elapsed());
    Ok(())
}

/// Read until `buf` is full or EOF; returns bytes read.
fn read_full<R: Read>(r: &mut R, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut total = 0;
    while total < buf.len() {
        let n = r.read(&mut buf[total..])?;
        if n == 0 {
            break;
        }
        total += n;
    }
    Ok(total)
}

struct RunReader {
    reader: BufReader<File>,
    path: PathBuf,
    head: Option<u64>,
}

impl RunReader {
    fn open(path: &Path, stats: &Arc<IoStats>) -> Result<Self> {
        let file = File::open(path).map_err(|e| IoError::os("open", path, e))?;
        let mut rr = Self {
            reader: BufReader::with_capacity(1 << 16, file),
            path: path.to_path_buf(),
            head: None,
        };
        rr.advance(stats)?;
        Ok(rr)
    }

    fn advance(&mut self, stats: &Arc<IoStats>) -> Result<()> {
        let mut b = [0u8; RECORD_BYTES];
        let start = Instant::now();
        let n =
            read_full(&mut self.reader, &mut b).map_err(|e| IoError::os("read", &self.path, e))?;
        stats.record_read(n as u64, start.elapsed());
        self.head = match n {
            0 => None,
            RECORD_BYTES => Some(u64::from_le_bytes(b)),
            _ => {
                return Err(IoError::malformed(&self.path, "truncated record"));
            }
        };
        Ok(())
    }
}

/// Heap entry ordered by smallest head first (BinaryHeap is a max-heap, so
/// we reverse the comparison).
struct HeapEntry {
    head: u64,
    run: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.head == other.head && self.run == other.run
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .head
            .cmp(&self.head)
            .then_with(|| other.run.cmp(&self.run))
    }
}

/// k-way merge of already-sorted `u64` record files into `output`.
///
/// Exposed separately so callers (e.g. parallel orientation) can sort
/// shards independently and merge once.
pub fn merge_sorted_files(inputs: &[PathBuf], output: &Path, stats: &Arc<IoStats>) -> Result<u64> {
    let mut readers = Vec::with_capacity(inputs.len());
    for p in inputs {
        readers.push(RunReader::open(p, stats)?);
    }
    let mut heap = BinaryHeap::new();
    for (i, r) in readers.iter().enumerate() {
        if let Some(h) = r.head {
            heap.push(HeapEntry { head: h, run: i });
        }
    }

    let file = File::create(output).map_err(|e| IoError::os("create", output, e))?;
    let mut w = BufWriter::with_capacity(1 << 16, file);
    let mut written = 0u64;
    let mut pending_bytes = 0u64;
    let write_start = Instant::now();
    while let Some(HeapEntry { head, run }) = heap.pop() {
        w.write_all(&head.to_le_bytes())
            .map_err(|e| IoError::os("write", output, e))?;
        written += 1;
        pending_bytes += RECORD_BYTES as u64;
        readers[run].advance(stats)?;
        if let Some(h) = readers[run].head {
            heap.push(HeapEntry { head: h, run });
        }
    }
    w.flush().map_err(|e| IoError::os("flush", output, e))?;
    stats.record_write(pending_bytes, write_start.elapsed());
    Ok(written)
}

/// Write `records` to `path` as raw little-endian `u64`s (test/workload
/// helper for producing unsorted edge files).
pub fn write_u64_records(path: &Path, records: &[u64], stats: &Arc<IoStats>) -> Result<()> {
    write_run(path, records, stats)
}

/// Read an entire `u64` record file (helper for tests and verification).
pub fn read_u64_records(path: &Path, stats: &Arc<IoStats>) -> Result<Vec<u64>> {
    let file = File::open(path).map_err(|e| IoError::os("open", path, e))?;
    let mut reader = BufReader::with_capacity(1 << 16, file);
    let mut out = Vec::new();
    let mut b = [0u8; RECORD_BYTES];
    loop {
        let start = Instant::now();
        let n = read_full(&mut reader, &mut b).map_err(|e| IoError::os("read", path, e))?;
        stats.record_read(n as u64, start.elapsed());
        match n {
            0 => break,
            RECORD_BYTES => out.push(u64::from_le_bytes(b)),
            _ => return Err(IoError::malformed(path, "truncated record")),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("pdtl-extsort-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    fn sort_case(vals: &[u64], mem: usize, tag: &str) -> Vec<u64> {
        let stats = IoStats::new();
        let inp = tmp(&format!("{tag}-in"));
        let out = tmp(&format!("{tag}-out"));
        write_u64_records(&inp, vals, &stats).unwrap();
        let n = external_sort_u64(&inp, &out, mem, &stats).unwrap();
        assert_eq!(n, vals.len() as u64);
        read_u64_records(&out, &stats).unwrap()
    }

    #[test]
    fn sorts_fits_in_memory() {
        let got = sort_case(&[5, 3, 9, 1, 1, 0], 100, "fit");
        assert_eq!(got, vec![0, 1, 1, 3, 5, 9]);
    }

    #[test]
    fn sorts_with_many_runs() {
        let vals: Vec<u64> = (0..5000).rev().collect();
        let got = sort_case(&vals, 64, "runs");
        let want: Vec<u64> = (0..5000).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn sorts_empty_input() {
        let got = sort_case(&[], 16, "empty");
        assert!(got.is_empty());
    }

    #[test]
    fn sorts_single_record() {
        assert_eq!(sort_case(&[7], 1, "single"), vec![7]);
    }

    #[test]
    fn mem_one_degenerate_runs() {
        let got = sort_case(&[3, 1, 2], 1, "mem1");
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn duplicates_preserved() {
        let got = sort_case(&[2, 2, 2, 1, 1], 2, "dups");
        assert_eq!(got, vec![1, 1, 2, 2, 2]);
    }

    #[test]
    fn zero_budget_rejected() {
        let stats = IoStats::new();
        let inp = tmp("zb-in");
        write_u64_records(&inp, &[1], &stats).unwrap();
        let err = external_sort_u64(&inp, &tmp("zb-out"), 0, &stats).unwrap_err();
        assert!(matches!(err, IoError::BudgetTooSmall { .. }));
    }

    #[test]
    fn run_files_are_cleaned_up() {
        let stats = IoStats::new();
        let inp = tmp("clean-in");
        let out = tmp("clean-out");
        write_u64_records(&inp, &(0..100u64).rev().collect::<Vec<_>>(), &stats).unwrap();
        external_sort_u64(&inp, &out, 16, &stats).unwrap();
        assert!(!run_path(&out, 0).exists());
        assert!(!run_path(&out, 1).exists());
    }

    #[test]
    fn io_is_counted() {
        let stats = IoStats::new();
        let inp = tmp("cnt-in");
        let out = tmp("cnt-out");
        let vals: Vec<u64> = (0..1000).rev().collect();
        write_u64_records(&inp, &vals, &stats).unwrap();
        stats.reset();
        external_sort_u64(&inp, &out, 128, &stats).unwrap();
        // Must read input once + runs once, write runs once + output once.
        let bytes = (vals.len() * 8) as u64;
        assert!(stats.bytes_read() >= 2 * bytes);
        assert!(stats.bytes_written() >= 2 * bytes);
    }

    #[test]
    fn merge_of_presorted_files() {
        let stats = IoStats::new();
        let a = tmp("m-a");
        let b = tmp("m-b");
        let out = tmp("m-out");
        write_u64_records(&a, &[1, 4, 7], &stats).unwrap();
        write_u64_records(&b, &[2, 3, 9], &stats).unwrap();
        let n = merge_sorted_files(&[a, b], &out, &stats).unwrap();
        assert_eq!(n, 6);
        assert_eq!(
            read_u64_records(&out, &stats).unwrap(),
            vec![1, 2, 3, 4, 7, 9]
        );
    }

    #[test]
    fn packed_edge_order_matches_src_dst() {
        // Sorting packed (u << 32) | v is exactly (src, dst) order.
        let edges = [(3u32, 1u32), (1, 9), (1, 2), (2, 0)];
        let mut packed: Vec<u64> = edges
            .iter()
            .map(|&(u, v)| ((u as u64) << 32) | v as u64)
            .collect();
        let sorted = sort_case(&packed, 2, "packed");
        packed.sort_unstable();
        assert_eq!(sorted, packed);
        let unpacked: Vec<(u32, u32)> = sorted
            .iter()
            .map(|&p| ((p >> 32) as u32, p as u32))
            .collect();
        assert_eq!(unpacked, vec![(1, 2), (1, 9), (2, 0), (3, 1)]);
    }
}
