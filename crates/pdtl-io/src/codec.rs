//! The codec layer of the transport × codec split: how byte runs become
//! `u32` runs, independent of how the bytes are fetched.
//!
//! PDTL's four I/O backends ([`IoBackend`](crate::IoBackend)) are pure
//! *block transports*: they move little-endian words from disk with
//! identical accounting and know nothing about what the words mean. This
//! module adds the layer above them — a [`Codec`] selected per file:
//!
//! * [`Raw`](Codec::Raw) — the identity. Words on disk *are* the logical
//!   `u32`s, engines read transports directly, nothing changes.
//! * [`DeltaVarint`](Codec::DeltaVarint) — each vertex's out-list (a
//!   strictly increasing run, guaranteed by rank-space relabeling) is
//!   stored as `varint(first)` then `varint(gap - 1)` per successor,
//!   LEB128-style (7 payload bits per byte, high bit = continuation).
//!   [`VarintSource`] wraps *any* transport and decodes the byte stream
//!   carried in its words back into logical `u32`s, using a
//!   [`VarintIndex`] (per-vertex decoded + byte offsets) so `seek_to`
//!   and `skip` still work in decoded index space.
//!
//! The compressed `.adj` byte stream is zero-padded to a 4-byte multiple
//! so every transport's "length is a multiple of 4" open check passes,
//! and [`VarintSource`] issues the *same* word-level operation sequence
//! regardless of which transport it wraps — so the property-tested
//! accounting parity across backends extends to the codec × transport
//! cross-product for free. `IoStats::bytes_read`/`seeks` keep counting
//! device transfers (now compressed), while the decoded logical volume
//! lands in the new [`IoStats::record_decoded`] dimension.

use std::path::Path;
use std::sync::Arc;

use crate::error::{IoError, Result};
use crate::stats::IoStats;
use crate::stream::{U32Reader, U32Source, U32Writer};

/// How the logical `u32`s of a graph file are encoded into the bytes a
/// block transport moves.
///
/// Names round-trip through [`parse`](Self::parse), and the wire
/// discriminant through [`from_discriminant`](Self::from_discriminant):
///
/// ```
/// use pdtl_io::Codec;
///
/// for c in Codec::ALL {
///     assert_eq!(Codec::parse(c.name()), Some(c));
///     assert_eq!(Codec::from_discriminant(c.discriminant()), Some(c));
/// }
/// assert_eq!(Codec::parse("DELTA-VARINT"), Some(Codec::DeltaVarint));
/// assert_eq!(Codec::default(), Codec::Raw);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Codec {
    /// Identity: one little-endian word per logical `u32` (the PR 2
    /// on-disk format, and the format of every `.deg` file regardless
    /// of the adjacency codec).
    #[default]
    Raw,
    /// Per-vertex delta + LEB128 varint runs with a byte-offset index
    /// sidecar; decoded by [`VarintSource`] above any transport.
    DeltaVarint,
}

/// Environment variable overriding the default codec
/// (`raw` | `delta-varint`, case-insensitive). Consumed by
/// `MgtOptions::default`, which is how the CI matrix runs the whole
/// suite under each codec without touching any call site.
pub const CODEC_ENV: &str = "PDTL_CODEC";

impl Codec {
    /// Every codec, in wire-discriminant order (the order of the
    /// record-tail encoding in the cluster's `WorkerConfig`).
    pub const ALL: [Codec; 2] = [Codec::Raw, Codec::DeltaVarint];

    /// Stable lowercase name (bench row / CLI / env spelling).
    pub fn name(self) -> &'static str {
        match self {
            Codec::Raw => "raw",
            Codec::DeltaVarint => "delta-varint",
        }
    }

    /// Parse a codec name, case-insensitively. `delta_varint` and the
    /// short `varint` spelling both name [`DeltaVarint`](Codec::DeltaVarint).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "raw" => Some(Codec::Raw),
            "delta-varint" | "delta_varint" | "varint" => Some(Codec::DeltaVarint),
            _ => None,
        }
    }

    /// The codec selected by [`CODEC_ENV`], if set and valid.
    pub fn from_env() -> Option<Self> {
        std::env::var(CODEC_ENV).ok().and_then(|v| Self::parse(&v))
    }

    /// The default codec, honouring the environment override:
    /// [`Raw`](Codec::Raw) unless [`CODEC_ENV`] names another one.
    pub fn default_from_env() -> Self {
        Self::from_env().unwrap_or(Codec::Raw)
    }

    /// Stable single-byte discriminant used by the on-disk format
    /// header and the wire `WorkerConfig` record tail.
    pub fn discriminant(self) -> u8 {
        match self {
            Codec::Raw => 0,
            Codec::DeltaVarint => 1,
        }
    }

    /// Inverse of [`discriminant`](Self::discriminant); `None` for
    /// values no known codec uses (decoders treat those as `Raw` for
    /// forward compatibility, but the distinction is the caller's).
    pub fn from_discriminant(d: u8) -> Option<Self> {
        match d {
            0 => Some(Codec::Raw),
            1 => Some(Codec::DeltaVarint),
            _ => None,
        }
    }
}

impl std::fmt::Display for Codec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Append the LEB128 varint encoding of `v` (1–5 bytes) to `out`.
pub fn encode_varint_u32(mut v: u32, out: &mut Vec<u8>) {
    while v >= 0x80 {
        out.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Decode one LEB128 varint from `bytes` starting at `*pos`, advancing
/// `*pos` past it. `None` on truncation or a value overflowing `u32`.
pub fn decode_varint_u32(bytes: &[u8], pos: &mut usize) -> Option<u32> {
    let mut acc: u32 = 0;
    let mut shift = 0u32;
    loop {
        let b = *bytes.get(*pos)?;
        *pos += 1;
        if shift == 28 && b > 0x0f {
            return None; // fifth byte may only carry the top 4 bits
        }
        acc |= u32::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some(acc);
        }
        shift += 7;
        if shift > 28 {
            return None;
        }
    }
}

/// Append the delta + varint encoding of one strictly increasing run
/// (one vertex's out-list): `varint(run[0])`, then `varint(gap - 1)`
/// per successor. Errors if the run is not strictly increasing (the
/// invariant rank-space orientation guarantees).
pub fn encode_run(run: &[u32], out: &mut Vec<u8>) -> Result<()> {
    let Some(&first) = run.first() else {
        return Ok(());
    };
    encode_varint_u32(first, out);
    let mut prev = first;
    for &v in &run[1..] {
        if v <= prev {
            return Err(IoError::malformed(
                "<adjacency run>",
                format!("run not strictly increasing: {v} after {prev}"),
            ));
        }
        encode_varint_u32(v - prev - 1, out);
        prev = v;
    }
    Ok(())
}

/// The per-vertex index a [`VarintSource`] navigates by: for each of
/// the `n + 1` fenceposts, the decoded `u32` offset (prefix sums of the
/// `.deg` degrees) and the byte offset of the vertex's encoded run
/// within the compressed `.adj` (persisted in the `.vix` sidecar).
///
/// Both arrays are monotone with equal length; the last entries are the
/// total decoded length and total encoded byte length. Shared via `Arc`
/// by every source over the same file.
#[derive(Debug)]
pub struct VarintIndex {
    decoded: Vec<u64>,
    bytes: Vec<u64>,
}

impl VarintIndex {
    /// Build an index from fencepost arrays (validated: equal non-zero
    /// length, both monotone non-decreasing, starting at 0).
    pub fn new(decoded: Vec<u64>, bytes: Vec<u64>) -> Result<Self> {
        let check = |name: &str, v: &[u64]| -> Result<()> {
            if v.first() != Some(&0) || v.windows(2).any(|w| w[0] > w[1]) {
                return Err(IoError::malformed(
                    "<varint index>",
                    format!("{name} offsets must be monotone and start at 0"),
                ));
            }
            Ok(())
        };
        if decoded.len() != bytes.len() || decoded.is_empty() {
            return Err(IoError::malformed(
                "<varint index>",
                format!(
                    "offset arrays disagree: {} decoded vs {} byte fenceposts",
                    decoded.len(),
                    bytes.len()
                ),
            ));
        }
        check("decoded", &decoded)?;
        check("byte", &bytes)?;
        Ok(Self { decoded, bytes })
    }

    /// Number of vertices indexed.
    pub fn num_vertices(&self) -> usize {
        self.decoded.len() - 1
    }

    /// Total decoded length in `u32`s (what `len_u32` reports above the
    /// codec).
    pub fn decoded_len(&self) -> u64 {
        *self.decoded.last().unwrap()
    }

    /// Total encoded byte length, before word padding.
    pub fn encoded_bytes(&self) -> u64 {
        *self.bytes.last().unwrap()
    }

    /// Load the byte-offset sidecar at `vix_path` (pairs of `(lo, hi)`
    /// words per fencepost) and pair it with `decoded` fenceposts.
    pub fn load(
        vix_path: impl AsRef<Path>,
        decoded: Vec<u64>,
        stats: Arc<IoStats>,
    ) -> Result<Self> {
        let vix_path = vix_path.as_ref();
        let mut r = U32Reader::open(vix_path, stats)?;
        let words = r.read_all()?;
        if words.len() != 2 * decoded.len() {
            return Err(IoError::malformed(
                vix_path,
                format!(
                    "index has {} words, expected {} for {} fenceposts",
                    words.len(),
                    2 * decoded.len(),
                    decoded.len()
                ),
            ));
        }
        let bytes = words
            .chunks_exact(2)
            .map(|c| u64::from(c[0]) | (u64::from(c[1]) << 32))
            .collect();
        Self::new(decoded, bytes)
    }

    /// Persist byte fenceposts as the `.vix` sidecar format
    /// [`load`](Self::load) reads.
    pub fn store(
        vix_path: impl AsRef<Path>,
        byte_offsets: &[u64],
        stats: Arc<IoStats>,
    ) -> Result<()> {
        let mut w = U32Writer::create(vix_path, stats)?;
        for &b in byte_offsets {
            w.write(b as u32)?;
            w.write((b >> 32) as u32)?;
        }
        w.finish()?;
        Ok(())
    }
}

/// Writer producing the compressed `.adj` representation: encoded runs
/// appended back to back, the whole stream zero-padded to a 4-byte
/// multiple and written through an accounted [`U32Writer`] (so
/// `bytes_written` counts the compressed volume the device sees).
/// Collects the per-vertex byte fenceposts for the `.vix` sidecar.
#[derive(Debug)]
pub struct VarintAdjWriter {
    writer: U32Writer,
    pending: Vec<u8>,
    scratch: Vec<u8>,
    byte_offsets: Vec<u64>,
    total_bytes: u64,
}

impl VarintAdjWriter {
    /// Create (truncate) the compressed adjacency file at `path`.
    pub fn create(path: impl AsRef<Path>, stats: Arc<IoStats>) -> Result<Self> {
        Ok(Self {
            writer: U32Writer::create(path, stats)?,
            pending: Vec::new(),
            scratch: Vec::new(),
            byte_offsets: Vec::new(),
            total_bytes: 0,
        })
    }

    /// Encode and append one vertex's out-list (strictly increasing;
    /// empty runs occupy zero bytes). Call exactly once per vertex, in
    /// vertex order.
    pub fn write_run(&mut self, run: &[u32]) -> Result<()> {
        self.byte_offsets.push(self.total_bytes);
        self.scratch.clear();
        encode_run(run, &mut self.scratch)?;
        self.total_bytes += self.scratch.len() as u64;
        self.pending.extend_from_slice(&self.scratch);
        let whole = self.pending.len() / 4;
        for w in self.pending[..whole * 4].chunks_exact(4) {
            self.writer
                .write(u32::from_le_bytes([w[0], w[1], w[2], w[3]]))?;
        }
        self.pending.drain(..whole * 4);
        Ok(())
    }

    /// Pad to a word boundary, flush, and return the `n + 1` byte
    /// fenceposts (the last is the unpadded encoded byte length).
    pub fn finish(mut self) -> Result<Vec<u64>> {
        self.byte_offsets.push(self.total_bytes);
        while !self.pending.is_empty() && !self.pending.len().is_multiple_of(4) {
            self.pending.push(0);
        }
        for w in std::mem::take(&mut self.pending).chunks_exact(4) {
            self.writer
                .write(u32::from_le_bytes([w[0], w[1], w[2], w[3]]))?;
        }
        self.writer.finish()?;
        Ok(std::mem::take(&mut self.byte_offsets))
    }
}

/// How many transport words a [`VarintSource`] fetches per refill of
/// its decode buffer. Deliberately no larger than the transports' own
/// block buffer, so the word-op sequence the codec issues is identical
/// above every backend.
const FETCH_WORDS: usize = 4 * 1024;

/// A [`U32Source`] decoding a delta + varint byte stream carried in the
/// little-endian words of any block transport.
///
/// All positions (`position`, `seek_to`, `skip`, `len_u32`) are in
/// *decoded* index space, so engines written against raw sources work
/// unchanged. Device accounting stays with the wrapped transport
/// (compressed bytes, real seeks); the decoded logical volume is
/// charged to [`IoStats::record_decoded`].
///
/// Positioning follows the seam contract: positions clamp at (decoded)
/// end-of-file; `seek_to` costs one transport seek (to the word holding
/// the target vertex's first byte) plus in-buffer decode-discard;
/// forward `skip`s move the transport with its own `skip`, so the
/// short-skip coalescing that keeps bound-pruned scans sequential is
/// inherited from the transport layer.
#[derive(Debug)]
pub struct VarintSource<T> {
    inner: T,
    index: Arc<VarintIndex>,
    stats: Arc<IoStats>,
    /// Decoded position (next value index).
    pos: u64,
    /// Vertex whose run contains `pos` (maintained lazily; advanced in
    /// `decode_next`).
    vertex: usize,
    /// Last decoded value of the current run (valid when `pos` is past
    /// the run start).
    prev: u32,
    /// Words fetched from the transport, served as a byte stream.
    word_buf: Vec<u32>,
    /// Absolute byte offset of `word_buf[0]` (always word-aligned).
    buf_byte_start: u64,
    /// Absolute byte offset of the next byte to serve.
    abs_byte: u64,
}

impl<T: U32Source> VarintSource<T> {
    /// Wrap a freshly opened transport (positioned at word 0) over the
    /// compressed file described by `index`.
    pub fn new(inner: T, index: Arc<VarintIndex>, stats: Arc<IoStats>) -> Result<Self> {
        let words = inner.len_u32();
        let needed = index.encoded_bytes().div_ceil(4);
        if words < needed {
            return Err(IoError::malformed(
                "<varint stream>",
                format!("file holds {words} words, index expects at least {needed}"),
            ));
        }
        Ok(Self {
            inner,
            index,
            stats,
            pos: 0,
            vertex: 0,
            prev: 0,
            word_buf: Vec::new(),
            buf_byte_start: 0,
            abs_byte: 0,
        })
    }

    /// The wrapped transport (for latency injection and inspection).
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    fn buffered_end(&self) -> u64 {
        self.buf_byte_start + 4 * self.word_buf.len() as u64
    }

    /// Serve the next byte of the encoded stream, refilling from the
    /// transport as needed.
    fn next_byte(&mut self) -> Result<u8> {
        if self.abs_byte >= self.buffered_end() {
            self.word_buf.clear();
            let word_pos = self.inner.position();
            self.buf_byte_start = word_pos * 4;
            let got = self.inner.read_into(&mut self.word_buf, FETCH_WORDS)?;
            if got == 0 || self.abs_byte >= self.buffered_end() {
                return Err(IoError::malformed(
                    "<varint stream>",
                    format!("encoded stream truncated at byte {}", self.abs_byte),
                ));
            }
        }
        let off = (self.abs_byte - self.buf_byte_start) as usize;
        let b = (self.word_buf[off / 4] >> (8 * (off % 4))) as u8;
        self.abs_byte += 1;
        Ok(b)
    }

    fn read_varint(&mut self) -> Result<u32> {
        let mut acc: u32 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.next_byte()?;
            if shift == 28 && b > 0x0f {
                return Err(IoError::malformed(
                    "<varint stream>",
                    "varint overflows u32".to_string(),
                ));
            }
            acc |= u32::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(acc);
            }
            shift += 7;
            if shift > 28 {
                return Err(IoError::malformed(
                    "<varint stream>",
                    "varint longer than 5 bytes".to_string(),
                ));
            }
        }
    }

    /// Decode the value at `pos` (caller guarantees `pos < len`),
    /// advancing the run state.
    fn decode_next(&mut self) -> Result<u32> {
        while self.index.decoded[self.vertex + 1] <= self.pos {
            self.vertex += 1;
        }
        let at_run_start = self.pos == self.index.decoded[self.vertex];
        let g = self.read_varint()?;
        let v = if at_run_start { g } else { self.prev + g + 1 };
        self.prev = v;
        self.pos += 1;
        Ok(v)
    }

    /// Vertex whose run contains decoded index `idx` (`idx < len`).
    fn vertex_of(&self, idx: u64) -> usize {
        // First fencepost strictly above idx, minus one: zero-degree
        // vertices share fenceposts and are skipped past.
        self.index.decoded.partition_point(|&d| d <= idx) - 1
    }

    /// Move the byte cursor forward to `to_byte` without recording a
    /// seek where the transport's own skip coalescing avoids one.
    fn byte_skip_to(&mut self, to_byte: u64) -> Result<()> {
        if to_byte >= self.buf_byte_start && to_byte <= self.buffered_end() {
            self.abs_byte = to_byte;
            return Ok(());
        }
        let word_tgt = to_byte / 4;
        let cur = self.inner.position();
        if word_tgt >= cur {
            self.inner.skip(word_tgt - cur)?;
        } else {
            self.inner.seek_to(word_tgt)?;
        }
        self.word_buf.clear();
        self.buf_byte_start = word_tgt * 4;
        self.abs_byte = to_byte;
        Ok(())
    }

    /// Reposition to decoded index `idx`, landing the byte stream at
    /// the containing vertex's run start and decode-discarding up to
    /// `idx`. `reposition` moves the transport.
    fn land_at(
        &mut self,
        idx: u64,
        reposition: impl FnOnce(&mut Self, u64) -> Result<()>,
    ) -> Result<()> {
        let len = self.index.decoded_len();
        debug_assert!(idx <= len);
        let (vertex, run_start, byte) = if idx == len {
            let n = self.index.num_vertices();
            (n, len, self.index.encoded_bytes())
        } else {
            let v = self.vertex_of(idx);
            (v, self.index.decoded[v], self.index.bytes[v])
        };
        reposition(self, byte)?;
        self.vertex = vertex;
        self.pos = run_start;
        self.prev = 0;
        while self.pos < idx {
            self.decode_next()?;
        }
        Ok(())
    }
}

impl<T: U32Source> U32Source for VarintSource<T> {
    fn len_u32(&self) -> u64 {
        self.index.decoded_len()
    }

    fn position(&self) -> u64 {
        self.pos
    }

    fn seek_to(&mut self, index: u64) -> Result<()> {
        let index = index.min(self.index.decoded_len());
        self.land_at(index, |s, byte| {
            s.inner.seek_to(byte / 4)?;
            s.word_buf.clear();
            s.buf_byte_start = (byte / 4) * 4;
            s.abs_byte = byte;
            Ok(())
        })
    }

    fn read_into(&mut self, out: &mut Vec<u32>, n: usize) -> Result<usize> {
        let len = self.index.decoded_len();
        let mut got = 0usize;
        while got < n && self.pos < len {
            let v = self.decode_next()?;
            out.push(v);
            got += 1;
        }
        if got > 0 {
            self.stats.record_decoded(got as u64);
        }
        Ok(got)
    }

    fn skip(&mut self, n: u64) -> Result<()> {
        let len = self.index.decoded_len();
        let n = n.min(len.saturating_sub(self.pos));
        if n == 0 {
            return Ok(());
        }
        let target = self.pos + n;
        // Inside the current vertex's run the byte stream is already
        // positioned: decode-discard (pure buffer work, usually).
        if self.vertex < self.index.num_vertices()
            && self.pos >= self.index.decoded[self.vertex]
            && target <= self.index.decoded[self.vertex + 1]
        {
            while self.pos < target {
                self.decode_next()?;
            }
            return Ok(());
        }
        // Crossing runs: jump by index, moving the transport with its
        // own skip so short moves inherit read-through coalescing.
        self.land_at(target, |s, byte| s.byte_skip_to(byte))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("pdtl-codec-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    /// Deterministic strictly-increasing runs with varied gaps.
    fn make_runs(n: usize, seed: u64) -> Vec<Vec<u32>> {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..n)
            .map(|_| {
                let deg = (next() % 7) as usize; // includes zero-degree
                let mut v = next() as u32 % 1000;
                let mut run = Vec::with_capacity(deg);
                for _ in 0..deg {
                    run.push(v);
                    v = v.saturating_add(1 + (next() as u32 % 200));
                }
                run
            })
            .collect()
    }

    /// Write runs through the compressed writer, return (index, path).
    fn write_fixture(name: &str, runs: &[Vec<u32>]) -> (Arc<VarintIndex>, PathBuf) {
        let p = tmp(name);
        let stats = IoStats::new();
        let mut w = VarintAdjWriter::create(&p, stats.clone()).unwrap();
        for run in runs {
            w.write_run(run).unwrap();
        }
        let bytes = w.finish().unwrap();
        let mut decoded = vec![0u64];
        for run in runs {
            decoded.push(decoded.last().unwrap() + run.len() as u64);
        }
        (Arc::new(VarintIndex::new(decoded, bytes).unwrap()), p)
    }

    fn open_source(
        index: &Arc<VarintIndex>,
        path: &Path,
        stats: &Arc<IoStats>,
    ) -> VarintSource<U32Reader> {
        let r = U32Reader::open(path, stats.clone()).unwrap();
        VarintSource::new(r, index.clone(), stats.clone()).unwrap()
    }

    #[test]
    fn codec_names_and_discriminants_round_trip() {
        assert_eq!(Codec::ALL.len(), 2);
        for c in Codec::ALL {
            assert_eq!(Codec::parse(c.name()), Some(c));
            assert_eq!(Codec::parse(&c.name().to_uppercase()), Some(c));
            assert_eq!(Codec::from_discriminant(c.discriminant()), Some(c));
            assert_eq!(c.to_string(), c.name());
        }
        assert_eq!(Codec::parse("varint"), Some(Codec::DeltaVarint));
        assert_eq!(Codec::parse("delta_varint"), Some(Codec::DeltaVarint));
        assert_eq!(Codec::parse("gibberish"), None);
        assert_eq!(Codec::from_discriminant(7), None);
    }

    #[test]
    fn varint_round_trips_edge_values() {
        for v in [
            0u32,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX - 1,
            u32::MAX,
        ] {
            let mut buf = Vec::new();
            encode_varint_u32(v, &mut buf);
            assert!(buf.len() <= 5);
            let mut pos = 0;
            assert_eq!(decode_varint_u32(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
        // Truncated and overlong streams are rejected.
        let mut pos = 0;
        assert_eq!(decode_varint_u32(&[0x80], &mut pos), None);
        let mut pos = 0;
        assert_eq!(
            decode_varint_u32(&[0xff, 0xff, 0xff, 0xff, 0x7f], &mut pos),
            None,
            "would overflow u32"
        );
    }

    #[test]
    fn encode_run_rejects_non_increasing() {
        let mut out = Vec::new();
        assert!(encode_run(&[5, 5], &mut out).is_err());
        assert!(encode_run(&[5, 3], &mut out).is_err());
        assert!(encode_run(&[], &mut out).is_ok());
        assert!(encode_run(&[5, 6, 100], &mut out).is_ok());
    }

    #[test]
    fn dense_runs_compress_near_one_byte_per_value() {
        // Gap-1 deltas of a dense rank-space out-list are tiny: the
        // encoded size should approach 1 byte per value vs 4 raw.
        let run: Vec<u32> = (0..10_000u32).map(|i| i * 2).collect();
        let mut out = Vec::new();
        encode_run(&run, &mut out).unwrap();
        assert!(
            out.len() < run.len() + 8,
            "{} bytes for {} values",
            out.len(),
            run.len()
        );
    }

    #[test]
    fn sequential_decode_matches_logical_stream() {
        let runs = make_runs(300, 42);
        let (index, p) = write_fixture("seq", &runs);
        let flat: Vec<u32> = runs.iter().flatten().copied().collect();
        assert_eq!(index.decoded_len(), flat.len() as u64);

        let stats = IoStats::new();
        let mut src = open_source(&index, &p, &stats);
        assert_eq!(src.len_u32(), flat.len() as u64);
        let mut out = Vec::new();
        assert_eq!(
            src.read_into(&mut out, flat.len() + 10).unwrap(),
            flat.len()
        );
        assert_eq!(out, flat);
        assert_eq!(src.position(), flat.len() as u64);
        assert_eq!(stats.u32s_decoded(), flat.len() as u64);
        assert!(
            stats.bytes_read() < 4 * flat.len() as u64,
            "compressed file must be smaller than raw"
        );
    }

    #[test]
    fn seek_lands_mid_run_and_mid_word() {
        let runs = make_runs(200, 7);
        let (index, p) = write_fixture("seek", &runs);
        let flat: Vec<u32> = runs.iter().flatten().copied().collect();
        let stats = IoStats::new();
        let mut src = open_source(&index, &p, &stats);
        // Probe a spread of positions, including mid-run ones whose
        // byte offsets are certainly not word-aligned.
        for idx in [0usize, 1, 3, 17, flat.len() / 2, flat.len() - 1] {
            src.seek_to(idx as u64).unwrap();
            assert_eq!(src.position(), idx as u64);
            let mut out = Vec::new();
            src.read_into(&mut out, 3).unwrap();
            let want: Vec<u32> = flat[idx..(idx + 3).min(flat.len())].to_vec();
            assert_eq!(out, want, "at index {idx}");
        }
    }

    #[test]
    fn seek_and_skip_clamp_at_decoded_eof() {
        let runs = make_runs(50, 3);
        let (index, p) = write_fixture("clamp", &runs);
        let stats = IoStats::new();
        let mut src = open_source(&index, &p, &stats);
        src.seek_to(u64::MAX).unwrap();
        assert_eq!(src.position(), index.decoded_len());
        let mut out = Vec::new();
        assert_eq!(src.read_into(&mut out, 5).unwrap(), 0);

        let mut src = open_source(&index, &p, &stats);
        src.skip(u64::MAX).unwrap();
        assert_eq!(src.position(), index.decoded_len());
        assert_eq!(src.read_into(&mut out, 5).unwrap(), 0);
    }

    #[test]
    fn empty_file_decodes_to_nothing() {
        let (index, p) = write_fixture("empty", &[Vec::new(), Vec::new()]);
        assert_eq!(index.decoded_len(), 0);
        assert_eq!(index.encoded_bytes(), 0);
        let stats = IoStats::new();
        let mut src = open_source(&index, &p, &stats);
        assert_eq!(src.len_u32(), 0);
        let mut out = Vec::new();
        assert_eq!(src.read_into(&mut out, 10).unwrap(), 0);
        src.seek_to(3).unwrap();
        src.skip(2).unwrap();
        assert_eq!(src.position(), 0);
    }

    #[test]
    fn interleaved_skip_read_matches_reference() {
        let runs = make_runs(400, 99);
        let (index, p) = write_fixture("interleave", &runs);
        let flat: Vec<u32> = runs.iter().flatten().copied().collect();
        let stats = IoStats::new();
        let mut src = open_source(&index, &p, &stats);
        let mut at = 0usize;
        let mut step = 1usize;
        while at < flat.len() {
            src.skip(step as u64).unwrap();
            at = (at + step).min(flat.len());
            assert_eq!(src.position(), at as u64);
            let mut out = Vec::new();
            let got = src.read_into(&mut out, 2).unwrap();
            assert_eq!(out, flat[at..at + got]);
            at += got;
            step = step % 37 + 3;
        }
    }

    #[test]
    fn short_skips_do_not_seek() {
        // The bound-pruned scan pattern: skip a few values, read a few,
        // repeatedly. The transport's read-through coalescing must be
        // inherited — zero OS seeks.
        let runs = make_runs(500, 11);
        let (index, p) = write_fixture("noseek", &runs);
        let stats = IoStats::new();
        let mut src = open_source(&index, &p, &stats);
        let mut out = Vec::new();
        while src.position() + 8 < src.len_u32() {
            src.skip(6).unwrap();
            out.clear();
            src.read_into(&mut out, 2).unwrap();
        }
        assert_eq!(stats.seeks(), 0, "short skips must stay sequential");
    }

    #[test]
    fn trait_read_exact_range_works_in_decoded_space() {
        let runs = make_runs(100, 5);
        let (index, p) = write_fixture("range", &runs);
        let flat: Vec<u32> = runs.iter().flatten().copied().collect();
        let stats = IoStats::new();
        let mut src = open_source(&index, &p, &stats);
        let mut out = Vec::new();
        let (pos, len) = (flat.len() as u64 / 3, flat.len() / 2);
        src.read_exact_range(pos, len, &mut out).unwrap();
        assert_eq!(out, flat[pos as usize..pos as usize + len]);
        let err = src
            .read_exact_range(flat.len() as u64 - 1, 2, &mut out)
            .unwrap_err();
        assert!(err.to_string().contains("past end"));
    }

    #[test]
    fn index_sidecar_round_trips() {
        let runs = make_runs(64, 21);
        let (index, _p) = write_fixture("vix", &runs);
        let vix = tmp("vix-sidecar");
        let stats = IoStats::new();
        VarintIndex::store(&vix, &index.bytes, stats.clone()).unwrap();
        assert!(stats.bytes_written() > 0, "sidecar writes are accounted");
        let loaded = VarintIndex::load(&vix, index.decoded.clone(), stats.clone()).unwrap();
        assert_eq!(loaded.bytes, index.bytes);
        assert!(stats.bytes_read() > 0, "sidecar reads are accounted");

        let short = index.decoded[..index.decoded.len() - 1].to_vec();
        assert!(VarintIndex::load(&vix, short, stats).is_err());
    }

    #[test]
    fn index_validation_rejects_bad_shapes() {
        assert!(VarintIndex::new(vec![], vec![]).is_err());
        assert!(VarintIndex::new(vec![0, 1], vec![0]).is_err());
        assert!(
            VarintIndex::new(vec![1, 2], vec![1, 2]).is_err(),
            "must start at 0"
        );
        assert!(
            VarintIndex::new(vec![0, 2, 1], vec![0, 1, 2]).is_err(),
            "monotone"
        );
        assert!(VarintIndex::new(vec![0], vec![0]).is_ok(), "empty graph");
    }
}
