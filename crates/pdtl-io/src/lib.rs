//! External-memory I/O substrate for PDTL.
//!
//! PDTL ([Giechaskiel, Panagopoulos, Yoneki; ICPP 2015]) is an
//! external-memory algorithm analysed in the Aggarwal–Vitter I/O model: a
//! disk transfers blocks of `B` bytes, a scan of `N` bytes costs
//! `ceil(N / B)` I/Os and an external merge sort of `N` items costs
//! `O((N/B) log_{M/B}(N/B))` I/Os. This crate provides the building blocks
//! the rest of the workspace uses to *implement and account for* that
//! model:
//!
//! * [`IoStats`] — shared atomic counters for bytes/ops/blocks and time
//!   spent blocked on I/O, so the triangle engines can report the CPU vs
//!   I/O breakdowns of the paper's Figures 6–8 and Table IV.
//! * [`U32Reader`] / [`U32Writer`] — buffered little-endian `u32` streams
//!   over files, the unit of every PDTL graph file (`.deg` / `.adj`).
//! * [`PrefetchReader`] / [`ChunkPrefetcher`] — overlapped (read-ahead)
//!   variants that hide disk latency behind compute while counting the
//!   exact same bytes and seeks, so backend ablations compare pure
//!   scheduling, not different I/O plans.
//! * [`MmapSource`] — a zero-copy memory-mapped [`U32Source`] for
//!   page-cache-resident graphs, again with byte-identical accounting.
//! * [`UringSource`] — an `io_uring`-backed [`U32Source`] keeping
//!   several block reads in flight per stream with no prefetch
//!   threads, once more with byte-identical accounting; [`IoBackend`]
//!   selects between the four behind one seam.
//! * [`Codec`] / [`VarintSource`] — the layer *above* the transports:
//!   how byte runs decode into `u32` runs. `Raw` is the identity;
//!   `DeltaVarint` stores each out-list as delta + varint bytes and
//!   decodes above any transport, cutting the real `bytes_read` the
//!   multi-pass `|E|²/(MB)` term pays while the decoded logical volume
//!   is counted separately ([`IoStats::record_decoded`]).
//! * [`external_sort_u64`] — a counted external merge sort used to bring
//!   raw edge lists into the sorted PDTL format.
//! * [`MemoryBudget`] — the per-processor memory parameter `M` (in edges)
//!   from the paper's analysis, enforced by the MGT chunk loader.
//! * [`CostModel`] — converts the counted work (CPU operations, I/O bytes,
//!   network bytes) into deterministic *modeled seconds*, which is how the
//!   scaling experiments reproduce the paper's curves on arbitrary hosts.

#![warn(missing_docs)]

pub mod backend;
pub mod budget;
pub mod checksum;
pub mod codec;
pub mod cost;
pub mod diskfault;
pub mod error;
pub mod extsort;
pub mod fault;
pub mod mmap;
pub mod prefetch;
pub mod stats;
pub mod stream;
pub mod timer;
pub mod uring;

pub use backend::{IoBackend, BACKEND_ENV};
pub use budget::{BudgetLease, BudgetLedger, MemoryBudget};
pub use checksum::{crc32c, crc32c_of_file, Crc32c};
pub use codec::{Codec, VarintAdjWriter, VarintIndex, VarintSource, CODEC_ENV};
pub use cost::{CostModel, ModeledTime};
pub use diskfault::{DiskFaultKind, DiskFaultPlan, DiskFaultSpec, FaultTarget, DISK_FAULT_ENV};
pub use error::{IoError, Result};
pub use extsort::{external_sort_u64, merge_sorted_files};
pub use fault::FaultySource;
pub use mmap::{mmap_supported, MmapSource};
pub use prefetch::{ChunkPrefetcher, PrefetchReader};
pub use stats::IoStats;
pub use stream::{U32Reader, U32Source, U32Writer, BYTES_PER_U32};
pub use timer::{CpuIoTimer, TimeBreakdown};
pub use uring::{uring_supported, UringSource, URING_DISABLE_ENV};
