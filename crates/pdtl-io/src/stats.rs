//! Shared atomic I/O statistics in the Aggarwal–Vitter block model.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Default block size `B` used for block accounting (64 KiB, a typical SSD
/// request size; the paper's analysis is parametric in `B`).
pub const DEFAULT_BLOCK_SIZE: u64 = 64 * 1024;

/// Thread-safe I/O counters.
///
/// One `IoStats` is shared (via `Arc`) by every reader/writer belonging to
/// a logical processor, so per-core and per-node I/O can be reported the
/// way the paper's Table IV and Figures 6–8 do. All counters use relaxed
/// atomics: they are statistics, not synchronisation.
#[derive(Debug, Default)]
pub struct IoStats {
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    read_ops: AtomicU64,
    write_ops: AtomicU64,
    seeks: AtomicU64,
    io_nanos: AtomicU64,
    u32s_decoded: AtomicU64,
}

impl IoStats {
    /// Create a fresh, zeroed counter set behind an `Arc`.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Record a read of `bytes` that took `elapsed` wall time.
    pub fn record_read(&self, bytes: u64, elapsed: Duration) {
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        self.read_ops.fetch_add(1, Ordering::Relaxed);
        self.io_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Record a write of `bytes` that took `elapsed` wall time.
    pub fn record_write(&self, bytes: u64, elapsed: Duration) {
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        self.write_ops.fetch_add(1, Ordering::Relaxed);
        self.io_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Record a seek (random access) without a byte transfer.
    pub fn record_seek(&self) {
        self.seeks.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` logical `u32` values produced by a codec layer.
    ///
    /// This is the second accounting dimension introduced by the
    /// transport × codec split: `bytes_read`/`seeks` keep counting what
    /// the *device* moved (the Aggarwal–Vitter transfers that feed
    /// `theorem_bytes()`), while this counter measures the decoded
    /// logical volume above the codec. Under the `Raw` codec engines
    /// read transports directly (the codec layer is the identity) and
    /// this stays zero; under `DeltaVarint` it counts the `u32`s the
    /// decoder produced, and the gap between `u32s_decoded * 4` and the
    /// adjacency `bytes_read` is exactly the compression win. Only
    /// codec-layer objects call this; transports never do, so the
    /// dimensions cannot double count.
    pub fn record_decoded(&self, n: u64) {
        self.u32s_decoded.fetch_add(n, Ordering::Relaxed);
    }

    /// Total bytes read so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Total bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Number of read operations issued.
    pub fn read_ops(&self) -> u64 {
        self.read_ops.load(Ordering::Relaxed)
    }

    /// Number of write operations issued.
    pub fn write_ops(&self) -> u64 {
        self.write_ops.load(Ordering::Relaxed)
    }

    /// Number of seeks issued.
    pub fn seeks(&self) -> u64 {
        self.seeks.load(Ordering::Relaxed)
    }

    /// Logical `u32` values produced by codec layers so far.
    pub fn u32s_decoded(&self) -> u64 {
        self.u32s_decoded.load(Ordering::Relaxed)
    }

    /// Wall time spent blocked in I/O calls.
    pub fn io_time(&self) -> Duration {
        Duration::from_nanos(self.io_nanos.load(Ordering::Relaxed))
    }

    /// Block transfers in the Aggarwal–Vitter model with block size `b`:
    /// `ceil(bytes / b)` for the sequential byte volume, plus one transfer
    /// per seek (a random access touches at least one block).
    pub fn blocks(&self, b: u64) -> u64 {
        let bytes = self.bytes_read() + self.bytes_written();
        bytes.div_ceil(b.max(1)) + self.seeks()
    }

    /// Total bytes moved in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read() + self.bytes_written()
    }

    /// Fold another counter set into this one (used when aggregating
    /// per-core stats into per-node or cluster totals).
    pub fn merge(&self, other: &IoStats) {
        self.bytes_read
            .fetch_add(other.bytes_read(), Ordering::Relaxed);
        self.bytes_written
            .fetch_add(other.bytes_written(), Ordering::Relaxed);
        self.read_ops.fetch_add(other.read_ops(), Ordering::Relaxed);
        self.write_ops
            .fetch_add(other.write_ops(), Ordering::Relaxed);
        self.seeks.fetch_add(other.seeks(), Ordering::Relaxed);
        self.io_nanos
            .fetch_add(other.io_nanos.load(Ordering::Relaxed), Ordering::Relaxed);
        self.u32s_decoded
            .fetch_add(other.u32s_decoded(), Ordering::Relaxed);
    }

    /// Reset every counter to zero.
    pub fn reset(&self) {
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.read_ops.store(0, Ordering::Relaxed);
        self.write_ops.store(0, Ordering::Relaxed);
        self.seeks.store(0, Ordering::Relaxed);
        self.io_nanos.store(0, Ordering::Relaxed);
        self.u32s_decoded.store(0, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            bytes_read: self.bytes_read(),
            bytes_written: self.bytes_written(),
            read_ops: self.read_ops(),
            write_ops: self.write_ops(),
            seeks: self.seeks(),
            io_time: self.io_time(),
            u32s_decoded: self.u32s_decoded(),
        }
    }
}

/// An immutable copy of [`IoStats`] counters, cheap to move between
/// threads and embed in experiment reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Total bytes read.
    pub bytes_read: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Read operations issued.
    pub read_ops: u64,
    /// Write operations issued.
    pub write_ops: u64,
    /// Seeks issued.
    pub seeks: u64,
    /// Wall time spent blocked in I/O.
    pub io_time: Duration,
    /// Logical `u32` values produced by codec layers (see
    /// [`IoStats::record_decoded`]).
    pub u32s_decoded: u64,
}

impl IoSnapshot {
    /// Total bytes moved in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Block transfers at block size `b` (see [`IoStats::blocks`]).
    pub fn blocks(&self, b: u64) -> u64 {
        self.total_bytes().div_ceil(b.max(1)) + self.seeks
    }
}

/// Number of I/Os a sequential scan of `n` items of `item_bytes` each
/// performs at block size `b`: `scan(N) = ceil(N / B)`.
pub fn scan_ios(n: u64, item_bytes: u64, b: u64) -> u64 {
    (n * item_bytes).div_ceil(b.max(1))
}

/// Number of I/Os an external merge sort of `n` items performs at block
/// size `b` with memory for `m` items: `sort(N) = (N/B) * ceil(log_{M/B}(N/B))`
/// (the textbook bound; one merge pass when `n <= m * (m/B)`).
pub fn sort_ios(n: u64, item_bytes: u64, m_items: u64, b: u64) -> u64 {
    let b = b.max(1);
    let blocks = (n * item_bytes).div_ceil(b);
    let fan_in = ((m_items * item_bytes) / b).max(2);
    let mut passes = 1u64;
    let mut runs = (n * item_bytes).div_ceil(m_items.max(1) * item_bytes);
    while runs > 1 {
        runs = runs.div_ceil(fan_in);
        passes += 1;
    }
    2 * blocks * passes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_read_back() {
        let s = IoStats::new();
        s.record_read(100, Duration::from_millis(2));
        s.record_write(50, Duration::from_millis(1));
        s.record_seek();
        assert_eq!(s.bytes_read(), 100);
        assert_eq!(s.bytes_written(), 50);
        assert_eq!(s.read_ops(), 1);
        assert_eq!(s.write_ops(), 1);
        assert_eq!(s.seeks(), 1);
        assert_eq!(s.io_time(), Duration::from_millis(3));
        assert_eq!(s.total_bytes(), 150);
    }

    #[test]
    fn blocks_round_up_and_count_seeks() {
        let s = IoStats::new();
        s.record_read(1, Duration::ZERO);
        assert_eq!(s.blocks(4096), 1);
        s.record_read(4096, Duration::ZERO);
        assert_eq!(s.blocks(4096), 2); // 4097 bytes -> 2 blocks
        s.record_seek();
        assert_eq!(s.blocks(4096), 3);
    }

    #[test]
    fn merge_accumulates() {
        let a = IoStats::new();
        let b = IoStats::new();
        a.record_read(10, Duration::from_nanos(5));
        b.record_read(20, Duration::from_nanos(7));
        b.record_decoded(9);
        a.merge(&b);
        assert_eq!(a.bytes_read(), 30);
        assert_eq!(a.read_ops(), 2);
        assert_eq!(a.io_time(), Duration::from_nanos(12));
        assert_eq!(a.u32s_decoded(), 9);
    }

    #[test]
    fn decoded_dimension_is_independent_of_byte_counters() {
        let s = IoStats::new();
        s.record_decoded(1000);
        assert_eq!(s.u32s_decoded(), 1000);
        assert_eq!(s.bytes_read(), 0, "decoding moves no device bytes");
        assert_eq!(s.blocks(4096), 0, "A-V transfers see only real I/O");
        assert_eq!(s.snapshot().u32s_decoded, 1000);
        s.reset();
        assert_eq!(s.u32s_decoded(), 0);
    }

    #[test]
    fn reset_zeroes() {
        let s = IoStats::new();
        s.record_write(10, Duration::from_nanos(1));
        s.reset();
        assert_eq!(s.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn snapshot_matches_counters() {
        let s = IoStats::new();
        s.record_read(8, Duration::from_nanos(3));
        let snap = s.snapshot();
        assert_eq!(snap.bytes_read, 8);
        assert_eq!(snap.read_ops, 1);
        assert_eq!(snap.total_bytes(), 8);
        assert_eq!(snap.blocks(4), 2);
    }

    #[test]
    fn scan_formula() {
        assert_eq!(scan_ios(0, 4, 4096), 0);
        assert_eq!(scan_ios(1024, 4, 4096), 1);
        assert_eq!(scan_ios(1025, 4, 4096), 2);
    }

    #[test]
    fn sort_formula_single_pass_when_fits() {
        // n items fit in memory -> one run -> 1 pass over data (2x blocks).
        let ios = sort_ios(1000, 8, 2000, 4096);
        assert_eq!(ios, 2 * (8000u64).div_ceil(4096));
    }

    #[test]
    fn sort_formula_grows_with_passes() {
        let small_mem = sort_ios(1_000_000, 8, 1_000, 4096);
        let big_mem = sort_ios(1_000_000, 8, 1_000_000, 4096);
        assert!(small_mem > big_mem);
    }

    #[test]
    fn zero_block_size_does_not_panic() {
        let s = IoStats::new();
        s.record_read(10, Duration::ZERO);
        assert_eq!(s.blocks(0), 10);
        assert_eq!(scan_ios(10, 1, 0), 10);
    }
}
