//! Deterministic cost model: counted work → modeled seconds.
//!
//! The paper evaluates PDTL on specific hardware (32-vCPU EC2 nodes, SSDs
//! capped at 500 MB/s, 10 GbE). This reproduction runs wherever `cargo`
//! does, so in addition to measured wall time every experiment reports a
//! *modeled* time derived from the exact work counted during execution
//! (CPU operations from the engines' own counters, bytes from
//! [`IoStats`](crate::IoStats), network bytes from the cluster transport).
//! Because the counted work follows the paper's cost analysis
//! (Theorem IV.3), the modeled curves reproduce the *shape* of the paper's
//! figures deterministically — independent of the host's core count or
//! disk cache state.

use std::time::Duration;

/// Throughput parameters converting counted work into seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Elementary CPU operations per second per core (comparisons,
    /// array writes). Default 2e8 — ~5 ns per counted operation,
    /// calibrated so the I/O share of a counting run matches the
    /// paper's Figure 6 on its 2013-era Opteron/Xeon hardware (each
    /// counted "operation" is a cache-unfriendly array access plus
    /// branch, several cycles in practice).
    pub cpu_ops_per_sec: f64,
    /// Sequential disk bandwidth in bytes/second. Default 500 MB/s, the
    /// Samsung 840 SSD cap the paper reports in Figure 2's discussion.
    pub io_bytes_per_sec: f64,
    /// Per-I/O-operation latency in seconds (seek / request overhead).
    pub io_op_latency: f64,
    /// Network bandwidth in bytes/second. Default 1.25e9 (10 GbE).
    pub net_bytes_per_sec: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            cpu_ops_per_sec: 2.0e8,
            io_bytes_per_sec: 500.0e6,
            io_op_latency: 100.0e-6,
            net_bytes_per_sec: 1.25e9,
        }
    }
}

impl CostModel {
    /// A model with an artificially slow disk, for experiments that need
    /// the I/O share to dominate (ratio < 1 slows the disk down).
    pub fn with_disk_scale(mut self, ratio: f64) -> Self {
        self.io_bytes_per_sec *= ratio;
        self
    }

    /// Seconds of compute for `ops` elementary operations.
    pub fn cpu_seconds(&self, ops: u64) -> f64 {
        ops as f64 / self.cpu_ops_per_sec
    }

    /// Seconds of disk time for `bytes` moved in `ops` requests.
    pub fn io_seconds(&self, bytes: u64, ops: u64) -> f64 {
        bytes as f64 / self.io_bytes_per_sec + ops as f64 * self.io_op_latency
    }

    /// Seconds to move `bytes` over the network.
    pub fn net_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / self.net_bytes_per_sec
    }

    /// Full modeled time for a worker that did `cpu_ops` operations and
    /// moved `io_bytes` in `io_ops` requests plus `net_bytes` over the
    /// network.
    pub fn model(&self, cpu_ops: u64, io_bytes: u64, io_ops: u64, net_bytes: u64) -> ModeledTime {
        ModeledTime {
            cpu: self.cpu_seconds(cpu_ops),
            io: self.io_seconds(io_bytes, io_ops),
            net: self.net_seconds(net_bytes),
        }
    }
}

/// Modeled seconds split by resource.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ModeledTime {
    /// Compute seconds.
    pub cpu: f64,
    /// Disk seconds.
    pub io: f64,
    /// Network seconds.
    pub net: f64,
}

impl ModeledTime {
    /// Total under the (pessimistic) assumption that phases serialise.
    pub fn total(&self) -> f64 {
        self.cpu + self.io + self.net
    }

    /// Total assuming compute and I/O overlap perfectly (the paper's
    /// engines overlap them; the truth lies between `total` and this).
    pub fn total_overlapped(&self) -> f64 {
        self.cpu.max(self.io) + self.net
    }

    /// As a `Duration` (serialised total).
    pub fn as_duration(&self) -> Duration {
        Duration::from_secs_f64(self.total().max(0.0))
    }

    /// Component-wise sum.
    pub fn merged(&self, other: &ModeledTime) -> ModeledTime {
        ModeledTime {
            cpu: self.cpu + other.cpu,
            io: self.io + other.io,
            net: self.net + other.net,
        }
    }

    /// Component-wise max (parallel composition: the struggler rules).
    pub fn max(&self, other: &ModeledTime) -> ModeledTime {
        ModeledTime {
            cpu: self.cpu.max(other.cpu),
            io: self.io.max(other.io),
            net: self.net.max(other.net),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_rates_are_sane() {
        let m = CostModel::default();
        // 2e8 ops ~ 1 second
        assert!((m.cpu_seconds(200_000_000) - 1.0).abs() < 1e-9);
        // 500 MB ~ 1 second
        assert!((m.io_seconds(500_000_000, 0) - 1.0).abs() < 1e-9);
        // 1.25 GB ~ 1 second of 10GbE
        assert!((m.net_seconds(1_250_000_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn latency_term_counts_ops() {
        let m = CostModel::default();
        let no_ops = m.io_seconds(1000, 0);
        let ten_ops = m.io_seconds(1000, 10);
        assert!((ten_ops - no_ops - 10.0 * m.io_op_latency).abs() < 1e-12);
    }

    #[test]
    fn disk_scale_slows_io_only() {
        let m = CostModel::default().with_disk_scale(0.5);
        assert!((m.io_seconds(500_000_000, 0) - 2.0).abs() < 1e-9);
        assert!((m.cpu_seconds(200_000_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn modeled_time_totals() {
        let t = ModeledTime {
            cpu: 2.0,
            io: 3.0,
            net: 1.0,
        };
        assert!((t.total() - 6.0).abs() < 1e-12);
        assert!((t.total_overlapped() - 4.0).abs() < 1e-12);
        assert_eq!(t.as_duration(), Duration::from_secs(6));
    }

    #[test]
    fn merged_and_max_compose() {
        let a = ModeledTime {
            cpu: 1.0,
            io: 4.0,
            net: 0.0,
        };
        let b = ModeledTime {
            cpu: 2.0,
            io: 1.0,
            net: 3.0,
        };
        let s = a.merged(&b);
        assert!((s.cpu - 3.0).abs() < 1e-12 && (s.io - 5.0).abs() < 1e-12);
        let m = a.max(&b);
        assert!(
            (m.cpu - 2.0).abs() < 1e-12
                && (m.io - 4.0).abs() < 1e-12
                && (m.net - 3.0).abs() < 1e-12
        );
    }

    #[test]
    fn model_combines_all_resources() {
        let m = CostModel::default();
        let t = m.model(1_000_000_000, 500_000_000, 0, 1_250_000_000);
        assert!((t.total() - 7.0).abs() < 1e-9);
    }
}
