//! Chung–Lu expected-degree power-law generator.
//!
//! Used to build the scaled stand-ins for the paper's real datasets: given
//! a target vertex count, average degree and tail exponent, it samples
//! edges with endpoint probability proportional to per-vertex weights
//! drawn from a truncated power law. Matching the (avg degree, skew) pair
//! is what preserves the datasets' *behavioural* signatures — Twitter's
//! hub-heavy skew versus Yahoo's sparse low-average-degree shape — which
//! is what drives PDTL's scaling behaviour in the evaluation.

use crate::csr::Graph;
use crate::error::Result;
use crate::gen::rng::SplitMix64;

/// Draw `n` expected degrees from a power law with exponent `gamma`,
/// minimum `dmin` and maximum `dmax` (inverse-CDF sampling).
pub fn power_law_weights(
    n: u32,
    gamma: f64,
    dmin: f64,
    dmax: f64,
    rng: &mut SplitMix64,
) -> Vec<f64> {
    assert!(gamma > 1.0, "power-law exponent must exceed 1");
    assert!(dmin > 0.0 && dmax >= dmin);
    let g1 = 1.0 - gamma;
    let a = dmin.powf(g1);
    let b = dmax.powf(g1);
    (0..n)
        .map(|_| {
            let u = rng.next_f64();
            (a + u * (b - a)).powf(1.0 / g1)
        })
        .collect()
}

/// Generate a Chung–Lu graph: `m_samples` edges with endpoints chosen
/// proportionally to `weights`, simplified into a simple undirected
/// [`Graph`].
pub fn chung_lu(weights: &[f64], m_samples: u64, seed: u64) -> Result<Graph> {
    let n = weights.len() as u32;
    let mut rng = SplitMix64::new(seed);
    // Cumulative weight table for O(log n) endpoint sampling.
    let mut cum = Vec::with_capacity(weights.len());
    let mut acc = 0.0f64;
    for &w in weights {
        acc += w.max(0.0);
        cum.push(acc);
    }
    let total = acc;
    assert!(total > 0.0, "total weight must be positive");

    let pick = |rng: &mut SplitMix64| -> u32 {
        let x = rng.next_f64() * total;
        match cum.binary_search_by(|c| c.partial_cmp(&x).unwrap()) {
            Ok(i) | Err(i) => (i as u32).min(n - 1),
        }
    };

    let mut edges = Vec::with_capacity(m_samples as usize);
    for _ in 0..m_samples {
        let u = pick(&mut rng);
        let v = pick(&mut rng);
        edges.push((u, v));
    }
    Graph::from_edges(n, &edges)
}

/// Convenience: power-law graph with `n` vertices, about `m` edges and
/// tail exponent `gamma`, degree range `[dmin, dmax]`.
pub fn power_law_graph(
    n: u32,
    m: u64,
    gamma: f64,
    dmin: f64,
    dmax: f64,
    seed: u64,
) -> Result<Graph> {
    let mut rng = SplitMix64::new(seed ^ 0xC0FFEE);
    let weights = power_law_weights(n, gamma, dmin, dmax, &mut rng);
    // Oversample slightly: simplification removes duplicates/loops.
    chung_lu(&weights, m + m / 8, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_within_bounds() {
        let mut rng = SplitMix64::new(1);
        let w = power_law_weights(1000, 2.5, 2.0, 100.0, &mut rng);
        assert_eq!(w.len(), 1000);
        for &x in &w {
            assert!((2.0..=100.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn lower_gamma_means_heavier_tail() {
        let mut r1 = SplitMix64::new(2);
        let mut r2 = SplitMix64::new(2);
        let light = power_law_weights(5000, 3.0, 1.0, 10_000.0, &mut r1);
        let heavy = power_law_weights(5000, 1.8, 1.0, 10_000.0, &mut r2);
        let max = |v: &[f64]| v.iter().cloned().fold(0.0f64, f64::max);
        assert!(max(&heavy) > max(&light));
    }

    #[test]
    fn graph_size_near_target() {
        let g = power_law_graph(2000, 20_000, 2.2, 2.0, 200.0, 5).unwrap();
        assert_eq!(g.num_vertices(), 2000);
        let m = g.num_edges();
        assert!(m > 12_000 && m < 24_000, "m = {m}");
        g.validate().unwrap();
    }

    #[test]
    fn deterministic_in_seed() {
        let a = power_law_graph(500, 3000, 2.0, 1.0, 50.0, 11).unwrap();
        let b = power_law_graph(500, 3000, 2.0, 1.0, 50.0, 11).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn weighted_sampling_respects_weights() {
        // One vertex with overwhelming weight should dominate adjacency.
        let mut weights = vec![1.0; 100];
        weights[7] = 10_000.0;
        let g = chung_lu(&weights, 2000, 3).unwrap();
        let dmax_v = (0..100u32).max_by_key(|&u| g.degree(u)).unwrap();
        assert_eq!(dmax_v, 7);
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn gamma_must_exceed_one() {
        let mut rng = SplitMix64::new(0);
        let _ = power_law_weights(10, 1.0, 1.0, 5.0, &mut rng);
    }
}
