//! Deterministic graph generators.
//!
//! The paper's synthetic workloads are RMAT graphs ("RMAT-n contains 2^n
//! vertices and 2^(n+4) edges"); its real datasets are power-law social /
//! web graphs. [`rmat::rmat`] implements the recursive matrix model of
//! Chakrabarti et al. \[6\]; [`chunglu`] implements the Chung–Lu expected-
//! degree model used to build scaled stand-ins with a chosen average
//! degree and tail skew; [`classic`] provides structured graphs (complete,
//! cycle, grid, …) whose triangle counts are known in closed form — the
//! workspace's ground-truth fixtures.
//!
//! All generators are deterministic in their seed (they use the crate's
//! own SplitMix64, so outputs are stable across `rand` versions and
//! platforms).

pub mod chunglu;
pub mod classic;
pub mod models;
pub mod rmat;
pub mod rng;

pub use chunglu::{chung_lu, power_law_weights};
pub use classic::{complete, cycle, erdos_renyi, grid, path, star, wheel};
pub use models::{barabasi_albert, watts_strogatz};
pub use rmat::{rmat, RmatParams};
pub use rng::SplitMix64;
