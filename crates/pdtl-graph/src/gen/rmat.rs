//! The RMAT recursive-matrix generator (Chakrabarti, Zhan, Faloutsos \[6\]).
//!
//! The paper's synthetic graphs are "scale-free graphs produced by the
//! RMAT generator, such that RMAT-n contains 2^n vertices and 2^(n+4)
//! edges". Each directed edge sample recursively descends the adjacency
//! matrix, choosing a quadrant with probabilities `(a, b, c, d)` plus a
//! small noise term; the resulting multigraph is simplified into a simple
//! undirected [`Graph`].

use crate::csr::Graph;
use crate::error::Result;
use crate::gen::rng::SplitMix64;

/// RMAT quadrant probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right.
    pub b: f64,
    /// Bottom-left.
    pub c: f64,
    /// Bottom-right (`1 - a - b - c`).
    pub d: f64,
    /// Per-level multiplicative noise amplitude (0 disables).
    pub noise: f64,
}

impl Default for RmatParams {
    /// The Graph500 / common literature parameters, heavy-tailed like the
    /// paper's RMAT family (their Table I shows avg degree ~60-70 with
    /// max degree in the 10^5-10^6 range — a strongly skewed a).
    fn default() -> Self {
        Self {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
            noise: 0.1,
        }
    }
}

/// Generate the paper's `RMAT-k`: `2^k` vertices and `2^(k+4)` directed
/// edge samples, simplified to an undirected simple graph.
pub fn rmat(k: u32, seed: u64) -> Result<Graph> {
    rmat_with(k, 16 * (1u64 << k), RmatParams::default(), seed)
}

/// Generate an RMAT graph with `2^k` vertices and `m_samples` edge
/// samples under explicit parameters.
pub fn rmat_with(k: u32, m_samples: u64, params: RmatParams, seed: u64) -> Result<Graph> {
    assert!(k < 31, "k must keep 2^k within u32");
    let n = 1u32 << k;
    let mut rng = SplitMix64::new(seed);
    let mut edges = Vec::with_capacity(m_samples as usize);
    for _ in 0..m_samples {
        let (u, v) = sample_edge(k, params, &mut rng);
        edges.push((u, v));
    }
    Graph::from_edges(n, &edges)
}

fn sample_edge(k: u32, p: RmatParams, rng: &mut SplitMix64) -> (u32, u32) {
    let mut u = 0u32;
    let mut v = 0u32;
    for _ in 0..k {
        // Noise keeps the generated graphs from having lattice-like
        // artefacts, as recommended by the RMAT authors.
        let jitter = |x: f64, rng: &mut SplitMix64| {
            let f = 1.0 + p.noise * (2.0 * rng.next_f64() - 1.0);
            x * f
        };
        let a = jitter(p.a, rng);
        let b = jitter(p.b, rng);
        let c = jitter(p.c, rng);
        let d = jitter(p.d, rng);
        let total = a + b + c + d;
        let r = rng.next_f64() * total;
        u <<= 1;
        v <<= 1;
        if r < a {
            // top-left: no bits set
        } else if r < a + b {
            v |= 1;
        } else if r < a + b + c {
            u |= 1;
        } else {
            u |= 1;
            v |= 1;
        }
    }
    (u, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_paper_formula() {
        let g = rmat(8, 1).unwrap();
        assert_eq!(g.num_vertices(), 256);
        // 2^(8+4) = 4096 samples; simplification removes loops/dups so
        // the simple edge count is below but near that.
        assert!(g.num_edges() > 1000, "edges = {}", g.num_edges());
        assert!(g.num_edges() <= 4096);
        g.validate().unwrap();
    }

    #[test]
    fn deterministic_in_seed() {
        let a = rmat(6, 7).unwrap();
        let b = rmat(6, 7).unwrap();
        assert_eq!(a, b);
        let c = rmat(6, 8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn skewed_degree_distribution() {
        let g = rmat(10, 3).unwrap();
        let avg = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        let max = g.max_degree() as f64;
        // Scale-free: hubs should far exceed the average degree.
        assert!(
            max > 5.0 * avg,
            "max {max} should dwarf avg {avg} in a scale-free graph"
        );
    }

    #[test]
    fn custom_params_respected() {
        // Uniform quadrants (a=b=c=d) approximate Erdős–Rényi: much less
        // skew than the default.
        let uni = RmatParams {
            a: 0.25,
            b: 0.25,
            c: 0.25,
            d: 0.25,
            noise: 0.0,
        };
        let g_uni = rmat_with(10, 16 << 10, uni, 3).unwrap();
        let g_skew = rmat(10, 3).unwrap();
        assert!(g_uni.max_degree() < g_skew.max_degree());
    }

    #[test]
    fn graphs_have_triangles() {
        let g = rmat(8, 5).unwrap();
        let t = crate::verify::triangle_count(&g);
        assert!(t > 0, "RMAT graphs are triangle-dense");
    }

    #[test]
    #[should_panic(expected = "u32")]
    fn rejects_oversized_scale() {
        let _ = rmat_with(31, 1, RmatParams::default(), 0);
    }
}
