//! Structured graphs with closed-form triangle counts.
//!
//! These are the workspace's ground-truth fixtures: every engine's tests
//! check against `K_n`'s `C(n,3)` triangles, the wheel's `n-1`, the
//! grid's 0, etc. The grid also exercises the paper's arboricity
//! discussion — planar graphs have `α = O(1)`, so MGT's `O(α|E|)` CPU
//! term is linear there.

use crate::csr::Graph;
use crate::error::Result;
use crate::gen::rng::SplitMix64;

/// Complete graph `K_n` (triangles: `C(n, 3)`).
pub fn complete(n: u32) -> Result<Graph> {
    let mut edges = Vec::with_capacity((n as usize * (n as usize - 1)) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, &edges)
}

/// Cycle `C_n` (triangles: 1 if n == 3 else 0).
pub fn cycle(n: u32) -> Result<Graph> {
    assert!(n >= 3, "cycle needs at least 3 vertices");
    let edges: Vec<_> = (0..n).map(|u| (u, (u + 1) % n)).collect();
    Graph::from_edges(n, &edges)
}

/// Path `P_n` (no triangles).
pub fn path(n: u32) -> Result<Graph> {
    let edges: Vec<_> = (1..n).map(|u| (u - 1, u)).collect();
    Graph::from_edges(n, &edges)
}

/// Star `S_n`: vertex 0 joined to all others (no triangles).
pub fn star(n: u32) -> Result<Graph> {
    let edges: Vec<_> = (1..n).map(|u| (0, u)).collect();
    Graph::from_edges(n, &edges)
}

/// Wheel `W_n`: a hub joined to an (n-1)-cycle (triangles: n - 1 for
/// n >= 5; W_4 = K_4 has 4).
pub fn wheel(n: u32) -> Result<Graph> {
    assert!(n >= 4, "wheel needs at least 4 vertices");
    let rim = n - 1;
    let mut edges: Vec<_> = (1..=rim).map(|u| (0, u)).collect();
    for i in 0..rim {
        edges.push((1 + i, 1 + (i + 1) % rim));
    }
    Graph::from_edges(n, &edges)
}

/// `rows x cols` grid (planar, arboricity O(1), no triangles).
pub fn grid(rows: u32, cols: u32) -> Result<Graph> {
    let n = rows * cols;
    let idx = |r: u32, c: u32| r * cols + c;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((idx(r, c), idx(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((idx(r, c), idx(r + 1, c)));
            }
        }
    }
    Graph::from_edges(n, &edges)
}

/// Erdős–Rényi `G(n, m)`: `m` distinct uniform edges.
pub fn erdos_renyi(n: u32, m: u64, seed: u64) -> Result<Graph> {
    assert!(n >= 2);
    let max_m = n as u64 * (n as u64 - 1) / 2;
    assert!(m <= max_m, "requested more edges than C(n,2)");
    let mut rng = SplitMix64::new(seed);
    let mut set = std::collections::HashSet::with_capacity(m as usize * 2);
    let mut edges = Vec::with_capacity(m as usize);
    while (edges.len() as u64) < m {
        let u = rng.next_bounded(n as u64) as u32;
        let v = rng.next_bounded(n as u64) as u32;
        if u == v {
            continue;
        }
        let key = if u < v {
            ((u as u64) << 32) | v as u64
        } else {
            ((v as u64) << 32) | u as u64
        };
        if set.insert(key) {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::triangle_count;

    #[test]
    fn complete_counts() {
        // C(n,3) for n = 3..8
        for n in 3..8u32 {
            let g = complete(n).unwrap();
            let expected = (n as u64) * (n as u64 - 1) * (n as u64 - 2) / 6;
            assert_eq!(triangle_count(&g), expected, "K_{n}");
            g.validate().unwrap();
        }
    }

    #[test]
    fn cycle_counts() {
        assert_eq!(triangle_count(&cycle(3).unwrap()), 1);
        assert_eq!(triangle_count(&cycle(4).unwrap()), 0);
        assert_eq!(triangle_count(&cycle(100).unwrap()), 0);
    }

    #[test]
    fn path_and_star_triangle_free() {
        assert_eq!(triangle_count(&path(50).unwrap()), 0);
        assert_eq!(triangle_count(&star(50).unwrap()), 0);
    }

    #[test]
    fn wheel_counts() {
        assert_eq!(triangle_count(&wheel(4).unwrap()), 4); // K_4
        for n in 5..12u32 {
            assert_eq!(triangle_count(&wheel(n).unwrap()), (n - 1) as u64, "W_{n}");
        }
    }

    #[test]
    fn grid_is_planar_and_triangle_free() {
        let g = grid(6, 7).unwrap();
        assert_eq!(g.num_vertices(), 42);
        assert_eq!(g.num_edges(), (6 * 6 + 5 * 7) as u64);
        assert_eq!(triangle_count(&g), 0);
        g.validate().unwrap();
    }

    #[test]
    fn er_exact_edge_count() {
        let g = erdos_renyi(100, 500, 9).unwrap();
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 500);
        g.validate().unwrap();
    }

    #[test]
    fn er_deterministic() {
        assert_eq!(
            erdos_renyi(50, 100, 4).unwrap(),
            erdos_renyi(50, 100, 4).unwrap()
        );
    }

    #[test]
    fn er_full_density_is_complete() {
        let g = erdos_renyi(10, 45, 1).unwrap();
        assert_eq!(g, complete(10).unwrap());
    }

    #[test]
    #[should_panic(expected = "C(n,2)")]
    fn er_rejects_impossible_m() {
        let _ = erdos_renyi(4, 7, 0);
    }
}
