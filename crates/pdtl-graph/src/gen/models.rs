//! Additional random-graph models: Watts–Strogatz and Barabási–Albert.
//!
//! The Watts–Strogatz small-world model is where the clustering
//! coefficient — the paper's headline application \[24\] — was defined;
//! it generates graphs whose clustering is tunable via the rewiring
//! probability `beta`, which makes it the natural fixture for the
//! analytics crate. Barabási–Albert preferential attachment produces
//! power-law graphs by growth, a useful contrast to Chung–Lu's static
//! weights.

use crate::csr::Graph;
use crate::error::Result;
use crate::gen::rng::SplitMix64;

/// Watts–Strogatz small-world graph: `n` vertices on a ring, each
/// joined to its `k/2` nearest neighbours per side, then each edge
/// rewired with probability `beta`.
pub fn watts_strogatz(n: u32, k: u32, beta: f64, seed: u64) -> Result<Graph> {
    assert!(k >= 2 && k.is_multiple_of(2), "k must be even and >= 2");
    assert!(n > k, "need n > k");
    assert!((0.0..=1.0).contains(&beta));
    let mut rng = SplitMix64::new(seed);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity((n * k / 2) as usize);
    for u in 0..n {
        for j in 1..=(k / 2) {
            let v = (u + j) % n;
            if rng.next_f64() < beta {
                // rewire the far endpoint to a uniform non-neighbour
                // (best-effort: resample a few times, else keep).
                let mut w = v;
                for _ in 0..8 {
                    let cand = rng.next_bounded(n as u64) as u32;
                    if cand != u {
                        w = cand;
                        break;
                    }
                }
                edges.push((u, w));
            } else {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(n, &edges)
}

/// Barabási–Albert preferential attachment: start from a small clique,
/// then each new vertex attaches to `m_attach` existing vertices with
/// probability proportional to degree.
pub fn barabasi_albert(n: u32, m_attach: u32, seed: u64) -> Result<Graph> {
    assert!(m_attach >= 1);
    assert!(n > m_attach, "need n > m_attach");
    let mut rng = SplitMix64::new(seed);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    // endpoint multiset: sampling uniformly from it = degree-proportional
    let mut endpoints: Vec<u32> = Vec::new();
    let seed_size = m_attach + 1;
    for u in 0..seed_size {
        for v in (u + 1)..seed_size {
            edges.push((u, v));
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for u in seed_size..n {
        let mut chosen: Vec<u32> = Vec::with_capacity(m_attach as usize);
        let mut guard = 0;
        while (chosen.len() as u32) < m_attach && guard < 64 {
            let v = endpoints[rng.next_bounded(endpoints.len() as u64) as usize];
            if v != u && !chosen.contains(&v) {
                chosen.push(v);
            }
            guard += 1;
        }
        for &v in &chosen {
            edges.push((u, v));
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    Graph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::triangle_list;

    #[test]
    fn ws_beta_zero_is_a_regular_lattice() {
        let g = watts_strogatz(30, 4, 0.0, 1).unwrap();
        for v in 0..30 {
            assert_eq!(g.degree(v), 4, "ring lattice is 4-regular");
        }
        // each vertex's two nearest neighbours on one side form a
        // triangle with it: n triangles total for k=4
        assert_eq!(triangle_list(&g).len(), 30);
    }

    #[test]
    fn ws_rewiring_lowers_clustering() {
        let lattice = watts_strogatz(200, 6, 0.0, 2).unwrap();
        let random = watts_strogatz(200, 6, 1.0, 2).unwrap();
        let cc = |g: &Graph| {
            let list = triangle_list(g);
            crate::stats::GraphStats::compute("", g); // smoke
            pdtl_cc(g, &list)
        };
        assert!(cc(&lattice) > 2.0 * cc(&random));
    }

    // local helper: average clustering without depending on analytics
    fn pdtl_cc(g: &Graph, list: &[(u32, u32, u32)]) -> f64 {
        let mut per = vec![0u64; g.num_vertices() as usize];
        for &(a, b, c) in list {
            per[a as usize] += 1;
            per[b as usize] += 1;
            per[c as usize] += 1;
        }
        let mut acc = 0.0;
        let mut cnt = 0;
        for v in 0..g.num_vertices() {
            let d = g.degree(v) as u64;
            if d >= 2 {
                acc += 2.0 * per[v as usize] as f64 / (d * (d - 1)) as f64;
                cnt += 1;
            }
        }
        acc / cnt.max(1) as f64
    }

    #[test]
    fn ws_deterministic() {
        assert_eq!(
            watts_strogatz(50, 4, 0.3, 9).unwrap(),
            watts_strogatz(50, 4, 0.3, 9).unwrap()
        );
    }

    #[test]
    fn ba_grows_power_law_hubs() {
        let g = barabasi_albert(2000, 3, 5).unwrap();
        assert_eq!(g.num_vertices(), 2000);
        let avg = 2.0 * g.num_edges() as f64 / 2000.0;
        assert!(
            g.max_degree() as f64 > 8.0 * avg,
            "preferential attachment grows hubs: max {} avg {avg}",
            g.max_degree()
        );
        g.validate().unwrap();
    }

    #[test]
    fn ba_edge_count_near_nm() {
        let g = barabasi_albert(500, 2, 7).unwrap();
        let m = g.num_edges();
        // seed clique C(3,2)=3 + ~2 per subsequent vertex
        assert!(m > 900 && m <= 1003, "m = {m}");
    }

    #[test]
    #[should_panic(expected = "even")]
    fn ws_rejects_odd_k() {
        let _ = watts_strogatz(10, 3, 0.1, 0);
    }
}
