//! A tiny, fast, stable PRNG for the generators.
//!
//! Generators must be reproducible bit-for-bit across platforms, compiler
//! versions and dependency upgrades (the experiment harness caches
//! generated datasets and EXPERIMENTS.md quotes their triangle counts), so
//! they use this self-contained SplitMix64 instead of an external crate.

/// SplitMix64 (Steele, Lea, Flood; used as the seeding PRNG of the
/// xoshiro family). Passes BigCrush when used directly; more than enough
/// statistical quality for graph generation.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the generator.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 top bits -> uniform dyadic rational in [0,1)
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` (Lemire's multiply-shift; slight
    /// modulo bias is irrelevant at graph-generation scale but we avoid
    /// it anyway).
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_first_value() {
        // Reference value from the public-domain SplitMix64 C code with
        // seed 0: first output is 0xE220A8397B1DCDAF.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220A8397B1DCDAF);
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(SplitMix64::new(1).next_u64(), SplitMix64::new(2).next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bounded_in_range_and_covers() {
        let mut r = SplitMix64::new(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.next_bounded(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        SplitMix64::new(0).next_bounded(0);
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = SplitMix64::new(3);
        let mean: f64 = (0..10_000).map(|_| r.next_f64()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
