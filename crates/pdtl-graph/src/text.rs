//! Text edge-list interchange (SNAP format).
//!
//! The paper's real datasets come from the SNAP repository \[16\] as text
//! edge lists — one `u<whitespace>v` pair per line, `#` comments. This
//! module imports that format into [`Graph`]/[`DiskGraph`] (so the repo
//! can ingest the actual soc-LiveJournal1/com-Orkut downloads when
//! available) and exports it back for interop with other tools.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use std::sync::Arc;

use pdtl_io::{IoError, IoStats};

use crate::csr::Graph;
use crate::disk::DiskGraph;
use crate::error::{GraphError, Result};

/// Parse a SNAP-style text edge list. Vertices may be arbitrary u64
/// ids; they are densely re-mapped to `0..n` in first-appearance order
/// (returned alongside the graph).
pub fn read_edge_list(path: impl AsRef<Path>) -> Result<(Graph, Vec<u64>)> {
    let path = path.as_ref();
    let file = std::fs::File::open(path).map_err(|e| IoError::os("open", path, e))?;
    let reader = BufReader::new(file);
    let mut ids: std::collections::HashMap<u64, u32> = Default::default();
    let mut original: Vec<u64> = Vec::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let intern =
        |raw: u64, original: &mut Vec<u64>, ids: &mut std::collections::HashMap<u64, u32>| {
            *ids.entry(raw).or_insert_with(|| {
                original.push(raw);
                (original.len() - 1) as u32
            })
        };
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| IoError::os("read", path, e))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (a, b) = match (parts.next(), parts.next()) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return Err(GraphError::Invalid(format!(
                    "{}:{}: expected two vertex ids",
                    path.display(),
                    lineno + 1
                )))
            }
        };
        let parse = |s: &str| -> Result<u64> {
            s.parse().map_err(|_| {
                GraphError::Invalid(format!(
                    "{}:{}: bad vertex id {s:?}",
                    path.display(),
                    lineno + 1
                ))
            })
        };
        let u = intern(parse(a)?, &mut original, &mut ids);
        let v = intern(parse(b)?, &mut original, &mut ids);
        edges.push((u, v));
    }
    let n = original.len() as u32;
    Ok((Graph::from_edges(n, &edges)?, original))
}

/// Write `g` as a SNAP-style edge list (each undirected edge once,
/// `u < v`, with a provenance header).
pub fn write_edge_list(g: &Graph, path: impl AsRef<Path>) -> Result<()> {
    let path = path.as_ref();
    let file = std::fs::File::create(path).map_err(|e| IoError::os("create", path, e))?;
    let mut w = BufWriter::new(file);
    writeln!(
        w,
        "# Undirected simple graph: {} nodes, {} edges (PDTL export)",
        g.num_vertices(),
        g.num_edges()
    )
    .map_err(|e| IoError::os("write", path, e))?;
    for (u, v) in g.edges() {
        writeln!(w, "{u}\t{v}").map_err(|e| IoError::os("write", path, e))?;
    }
    w.flush().map_err(|e| IoError::os("flush", path, e))?;
    Ok(())
}

/// Full import: text edge list → PDTL binary format on disk.
pub fn import_edge_list(
    text_path: impl AsRef<Path>,
    out_base: impl AsRef<Path>,
    stats: &Arc<IoStats>,
) -> Result<DiskGraph> {
    let (g, _) = read_edge_list(text_path)?;
    DiskGraph::write(&g, out_base, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::classic::wheel;
    use crate::verify::triangle_count;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("pdtl-text-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn round_trip_preserves_graph() {
        let g = wheel(12).unwrap();
        let p = tmp("rt.txt");
        write_edge_list(&g, &p).unwrap();
        let (g2, mapping) = read_edge_list(&p).unwrap();
        // export writes ids in order, so the mapping is identity here
        assert_eq!(mapping, (0..12u64).collect::<Vec<_>>());
        assert_eq!(g, g2);
    }

    #[test]
    fn parses_comments_blanks_and_whitespace() {
        let p = tmp("messy.txt");
        std::fs::write(
            &p,
            "# comment\n\n%matrix-market style comment\n0 1\n1\t2\n  2   0  \n",
        )
        .unwrap();
        let (g, _) = read_edge_list(&p).unwrap();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(triangle_count(&g), 1);
    }

    #[test]
    fn remaps_sparse_ids_densely() {
        let p = tmp("sparse-ids.txt");
        std::fs::write(&p, "1000000 42\n42 777\n777 1000000\n").unwrap();
        let (g, mapping) = read_edge_list(&p).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(triangle_count(&g), 1);
        assert_eq!(mapping, vec![1000000, 42, 777]);
    }

    #[test]
    fn rejects_malformed_lines() {
        let p = tmp("bad.txt");
        std::fs::write(&p, "0 1\nnot-a-vertex 2\n").unwrap();
        let err = read_edge_list(&p).unwrap_err();
        assert!(err.to_string().contains(":2:"), "{err}");

        let p = tmp("short.txt");
        std::fs::write(&p, "3\n").unwrap();
        assert!(read_edge_list(&p).is_err());
    }

    #[test]
    fn import_to_disk_counts_correctly() {
        let g = wheel(9).unwrap();
        let p = tmp("import.txt");
        write_edge_list(&g, &p).unwrap();
        let stats = IoStats::new();
        let dg = import_edge_list(&p, tmp("imported"), &stats).unwrap();
        let g2 = dg.load_csr(&stats).unwrap();
        assert_eq!(triangle_count(&g2), 8);
    }

    #[test]
    fn self_loops_and_duplicates_cleaned() {
        let p = tmp("dirty.txt");
        std::fs::write(&p, "0 0\n0 1\n1 0\n0 1\n").unwrap();
        let (g, _) = read_edge_list(&p).unwrap();
        assert_eq!(g.num_edges(), 1);
    }
}
