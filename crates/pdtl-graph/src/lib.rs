//! Graph substrate for PDTL.
//!
//! Provides everything the triangle engines consume:
//!
//! * [`Graph`] — an in-memory CSR (compressed sparse row) representation of
//!   a simple undirected graph, stored bidirectionally with each adjacency
//!   list sorted ascending. This is the in-memory mirror of PDTL's on-disk
//!   format and the workhorse for generators, verification and baselines.
//! * [`DiskGraph`] — the binary on-disk format of the paper (§V-B): a
//!   `.deg` file of `u32` degrees and an `.adj` file of concatenated sorted
//!   adjacency lists, "sorted by source and destination", compatible in
//!   spirit with the original MGT binary's format.
//! * [`RankMap`] — the degree-rank vertex relabeling orientation applies
//!   so the oriented graph lives in rank space (every out-neighbour of
//!   `v` is numerically greater than `v`), persisted as `base.map`.
//! * [`gen`] — deterministic graph generators: the RMAT recursive model
//!   used for the paper's synthetic graphs and Chung–Lu power-law
//!   generators used as scaled stand-ins for the paper's real datasets
//!   (LiveJournal, Orkut, Twitter, Yahoo).
//! * [`manifest`] — per-graph integrity manifests (`.mft`): CRC32C
//!   digests + lengths of every data file, committed crash-safely and
//!   verified at open / run / replicate time so storage corruption is
//!   detected (or healed) instead of counted.
//! * [`stats`] — the dataset statistics of Table I.
//! * [`verify`] — brute-force triangle counting/listing used as the
//!   correctness oracle for every engine in the workspace.
//! * [`datasets`] — the named, scaled workloads every experiment runs on.

pub mod csr;
pub mod datasets;
pub mod disk;
pub mod error;
pub mod gen;
pub mod manifest;
pub mod rank;
pub mod stats;
pub mod text;
pub mod verify;

pub use csr::Graph;
pub use disk::DiskGraph;
pub use error::{GraphError, Result};
pub use manifest::{Manifest, VerifyReport};
pub use rank::RankMap;
pub use stats::GraphStats;
