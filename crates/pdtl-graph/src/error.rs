//! Error type for the graph substrate.

use std::fmt;

/// Result alias for graph operations.
pub type Result<T> = std::result::Result<T, GraphError>;

/// Errors raised by graph construction, disk (de)serialisation and
/// validation.
#[derive(Debug)]
pub enum GraphError {
    /// An underlying I/O substrate failure.
    Io(pdtl_io::IoError),
    /// An edge referenced a vertex id >= n.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u32,
        /// The graph's vertex count.
        n: u32,
    },
    /// A structural invariant of the PDTL format was violated.
    Invalid(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Io(e) => write!(f, "io: {e}"),
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(f, "vertex {vertex} out of range (n = {n})")
            }
            GraphError::Invalid(msg) => write!(f, "invalid graph: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pdtl_io::IoError> for GraphError {
    fn from(e: pdtl_io::IoError) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_variants() {
        let e = GraphError::VertexOutOfRange { vertex: 9, n: 5 };
        assert!(e.to_string().contains('9'));
        let e = GraphError::Invalid("not sorted".into());
        assert!(e.to_string().contains("not sorted"));
        let e: GraphError = pdtl_io::IoError::malformed("/x", "bad").into();
        assert!(e.to_string().contains("bad"));
    }
}
