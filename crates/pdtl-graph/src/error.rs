//! Error type for the graph substrate.

use std::fmt;
use std::path::PathBuf;

/// Result alias for graph operations.
pub type Result<T> = std::result::Result<T, GraphError>;

/// Errors raised by graph construction, disk (de)serialisation and
/// validation.
#[derive(Debug)]
pub enum GraphError {
    /// An underlying I/O substrate failure.
    Io(pdtl_io::IoError),
    /// An edge referenced a vertex id >= n.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u32,
        /// The graph's vertex count.
        n: u32,
    },
    /// A structural invariant of the PDTL format was violated.
    Invalid(String),
    /// A file's bytes do not match the digest recorded in the graph's
    /// integrity manifest (or the manifest failed its own self-check).
    Corrupt {
        /// The corrupted file.
        path: PathBuf,
        /// What the integrity check found.
        detail: String,
    },
    /// A file is shorter than the length recorded in the graph's
    /// integrity manifest — a lost tail or interrupted write.
    Truncated {
        /// The truncated file.
        path: PathBuf,
        /// Length (bytes) the manifest recorded.
        expected: u64,
        /// Length (bytes) found on disk.
        actual: u64,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Io(e) => write!(f, "io: {e}"),
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(f, "vertex {vertex} out of range (n = {n})")
            }
            GraphError::Invalid(msg) => write!(f, "invalid graph: {msg}"),
            GraphError::Corrupt { path, detail } => {
                write!(f, "corrupt file {}: {detail}", path.display())
            }
            GraphError::Truncated {
                path,
                expected,
                actual,
            } => write!(
                f,
                "truncated file {}: manifest records {expected} bytes, found {actual}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pdtl_io::IoError> for GraphError {
    fn from(e: pdtl_io::IoError) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_variants() {
        let e = GraphError::VertexOutOfRange { vertex: 9, n: 5 };
        assert!(e.to_string().contains('9'));
        let e = GraphError::Invalid("not sorted".into());
        assert!(e.to_string().contains("not sorted"));
        let e: GraphError = pdtl_io::IoError::malformed("/x", "bad").into();
        assert!(e.to_string().contains("bad"));
        let e = GraphError::Corrupt {
            path: "/g.adj".into(),
            detail: "checksum mismatch".into(),
        };
        assert!(e.to_string().contains("/g.adj") && e.to_string().contains("checksum"));
        let e = GraphError::Truncated {
            path: "/g.vix".into(),
            expected: 100,
            actual: 60,
        };
        assert!(e.to_string().contains("100") && e.to_string().contains("60"));
    }
}
