//! Degree-rank vertex relabeling.
//!
//! Orientation relabels vertices into **rank space**: vertex ids become
//! positions in the degree-based total order `≺` (Definition III.2), so
//! `u ≺ v ⟺ rank(u) < rank(v)`. In rank space every oriented
//! out-neighbour of `v` is numerically greater than `v`, which is what
//! lets the MGT inner loop intersect only the admissible suffix of
//! `N(u)` and prune whole out-lists against a chunk's resident window.
//! The map is `Θ(|V|)` memory — the same `|V| < PM` assumption the paper
//! already makes to hold the degree array in memory during orientation.
//!
//! [`RankMap`] carries both directions (`rank → original id` and
//! `original id → rank`) and round-trips through a flat `u32` file
//! (`base.map`, rank order) so a replicated oriented graph ships its
//! mapping alongside `.deg`/`.adj`.

use std::path::Path;
use std::sync::Arc;

use pdtl_io::{IoStats, U32Reader, U32Writer};

use crate::error::Result;

/// A bijection between original vertex ids and degree-order ranks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankMap {
    /// `rank_to_id[r]` = original id of the vertex at rank `r`.
    rank_to_id: Vec<u32>,
    /// `id_to_rank[v]` = rank of original vertex `v`.
    id_to_rank: Vec<u32>,
}

impl RankMap {
    /// Build the rank map of the degree order `≺`: sort vertices by
    /// `(degree, id)` ascending, so `rank(u) < rank(v) ⟺ u ≺ v`.
    ///
    /// Implemented as a counting sort over the degree histogram —
    /// `O(|V| + d_max)` instead of `O(|V| log |V|)`, and ~5× faster in
    /// practice (degrees are small dense integers; `d_max < |V|`).
    /// Scattering ids in ascending order within each degree bucket
    /// reproduces the comparison sort's `(degree, id)` tie-break
    /// exactly.
    pub fn by_degree(degrees: &[u32]) -> Self {
        let n = degrees.len();
        let d_max = degrees.iter().copied().max().unwrap_or(0) as usize;
        // bucket[d + 1] counts vertices of degree d; prefix-summing
        // turns it into each bucket's first rank.
        let mut bucket = vec![0u32; d_max + 2];
        for &d in degrees {
            bucket[d as usize + 1] += 1;
        }
        for i in 1..bucket.len() {
            bucket[i] += bucket[i - 1];
        }
        let mut rank_to_id = vec![0u32; n];
        for (id, &d) in degrees.iter().enumerate() {
            rank_to_id[bucket[d as usize] as usize] = id as u32;
            bucket[d as usize] += 1;
        }
        Self::from_rank_to_id(rank_to_id)
    }

    /// The identity map over `n` vertices (rank = id).
    pub fn identity(n: u32) -> Self {
        Self {
            rank_to_id: (0..n).collect(),
            id_to_rank: (0..n).collect(),
        }
    }

    /// Rebuild from the forward direction (e.g. after reading `.map`).
    pub fn from_rank_to_id(rank_to_id: Vec<u32>) -> Self {
        let mut id_to_rank = vec![0u32; rank_to_id.len()];
        for (r, &v) in rank_to_id.iter().enumerate() {
            id_to_rank[v as usize] = r as u32;
        }
        Self {
            rank_to_id,
            id_to_rank,
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> u32 {
        self.rank_to_id.len() as u32
    }

    /// True when the map covers no vertices.
    pub fn is_empty(&self) -> bool {
        self.rank_to_id.is_empty()
    }

    /// Original id of the vertex at `rank`.
    #[inline]
    pub fn to_id(&self, rank: u32) -> u32 {
        self.rank_to_id[rank as usize]
    }

    /// Rank of original vertex `id`.
    #[inline]
    pub fn to_rank(&self, id: u32) -> u32 {
        self.id_to_rank[id as usize]
    }

    /// The full `rank → id` table (what the sink boundary indexes per
    /// emitted triangle).
    #[inline]
    pub fn ids(&self) -> &[u32] {
        &self.rank_to_id
    }

    /// The full `id → rank` table.
    #[inline]
    pub fn ranks(&self) -> &[u32] {
        &self.id_to_rank
    }

    /// Write the forward table to `path` as flat little-endian `u32`s.
    pub fn write(&self, path: impl AsRef<Path>, stats: &Arc<IoStats>) -> Result<()> {
        let mut w = U32Writer::create(path, stats.clone())?;
        w.write_all(&self.rank_to_id)?;
        w.finish()?;
        Ok(())
    }

    /// Read a map previously written with [`write`](Self::write),
    /// validating that the file holds a permutation of `0..n` (a
    /// truncated or corrupt replica fails with a malformed-file error
    /// instead of panicking later at the sink boundary).
    pub fn read(path: impl AsRef<Path>, stats: &Arc<IoStats>) -> Result<Self> {
        let path = path.as_ref();
        let mut r = U32Reader::open(path, stats.clone())?;
        let rank_to_id = r.read_all()?;
        let n = rank_to_id.len();
        let mut seen = vec![false; n];
        for &v in &rank_to_id {
            if (v as usize) >= n || seen[v as usize] {
                return Err(pdtl_io::IoError::malformed(
                    path,
                    format!("rank map is not a permutation of 0..{n} (entry {v})"),
                )
                .into());
            }
            seen[v as usize] = true;
        }
        Ok(Self::from_rank_to_id(rank_to_id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_degree_orders_by_degree_then_id() {
        // degrees: v0=3, v1=1, v2=1, v3=2
        let m = RankMap::by_degree(&[3, 1, 1, 2]);
        assert_eq!(m.ids(), &[1, 2, 3, 0]);
        assert_eq!(m.to_rank(0), 3);
        assert_eq!(m.to_rank(1), 0);
        assert_eq!(m.to_id(1), 2);
    }

    #[test]
    fn rank_comparison_is_the_degree_order() {
        let degrees = [5u32, 1, 1, 3, 5, 0];
        let m = RankMap::by_degree(&degrees);
        let precedes = |u: u32, v: u32| {
            let (du, dv) = (degrees[u as usize], degrees[v as usize]);
            du < dv || (du == dv && u < v)
        };
        for u in 0..degrees.len() as u32 {
            for v in 0..degrees.len() as u32 {
                if u != v {
                    assert_eq!(m.to_rank(u) < m.to_rank(v), precedes(u, v), "{u} vs {v}");
                }
            }
        }
    }

    #[test]
    fn is_a_bijection() {
        let m = RankMap::by_degree(&[4, 4, 0, 2, 2, 7]);
        assert_eq!(m.len(), 6);
        for v in 0..6 {
            assert_eq!(m.to_id(m.to_rank(v)), v);
            assert_eq!(m.to_rank(m.to_id(v)), v);
        }
    }

    #[test]
    fn identity_maps_to_self() {
        let m = RankMap::identity(4);
        for v in 0..4 {
            assert_eq!(m.to_id(v), v);
            assert_eq!(m.to_rank(v), v);
        }
        assert!(RankMap::identity(0).is_empty());
    }

    #[test]
    fn read_rejects_corrupt_maps() {
        let dir = std::env::temp_dir().join("pdtl-rank-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let stats = IoStats::new();
        // out-of-range entry
        let p = dir.join(format!("bad-range-{}", std::process::id()));
        let mut w = U32Writer::create(&p, stats.clone()).unwrap();
        w.write_all(&[0, 1, 7]).unwrap();
        w.finish().unwrap();
        let err = RankMap::read(&p, &stats).unwrap_err();
        assert!(err.to_string().contains("permutation"), "{err}");
        // duplicate entry (a truncated copy re-padded with zeros)
        let p = dir.join(format!("bad-dup-{}", std::process::id()));
        let mut w = U32Writer::create(&p, stats.clone()).unwrap();
        w.write_all(&[0, 1, 0]).unwrap();
        w.finish().unwrap();
        assert!(RankMap::read(&p, &stats).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("pdtl-rank-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("map-{}", std::process::id()));
        let stats = IoStats::new();
        let m = RankMap::by_degree(&[9, 0, 4, 4, 1]);
        m.write(&path, &stats).unwrap();
        let back = RankMap::read(&path, &stats).unwrap();
        assert_eq!(m, back);
        assert_eq!(stats.bytes_written(), 5 * 4);
    }
}
