//! Per-graph integrity manifests (`.mft`).
//!
//! A graph base is up to six data files (`.deg`/`.adj`/`.hdr`/`.vix`/
//! `.map`/`.bnd`); nothing in the original format verifies their bytes,
//! so a bit-flipped adjacency run or a truncated sidecar either panics
//! or — worse — silently changes the triangle count. The manifest
//! closes that hole: one `.mft` sidecar per base recording each data
//! file's byte length and CRC32C digest, itself protected by a trailing
//! self-checksum and committed crash-safely (temp file → `sync_all` →
//! atomic rename) *after* every data file is durable. The manifest is
//! therefore the write's commit record: a crash mid-write leaves either
//! a complete, verifiable graph or no manifest at all — never an
//! openable half-graph that checks out.
//!
//! Verification runs at two tiers:
//!
//! * **quick** ([`Manifest::verify_quick`], used by `DiskGraph::open`)
//!   — checks every recorded length and fully digests small files
//!   (≤ [`QUICK_DIGEST_MAX`] bytes, which covers every header/sidecar
//!   on real graphs). Catches truncations, torn metadata and missing
//!   files at open time for a few `stat` calls.
//! * **full** ([`Manifest::verify_full`], used by `pdtl verify`, the
//!   runners' input checks and post-copy replica verification) — one
//!   sequential digest pass over every file. Catches single-bit flips
//!   anywhere, including deep inside a multi-gigabyte `.adj`.
//!
//! The manifest is *advisory-absent*: a base without a `.mft` (any
//! graph written before the integrity layer existed) opens and counts
//! exactly as before. All manifest I/O goes through plain `std::fs` —
//! integrity scans are metadata traffic and deliberately invisible to
//! the accounted I/O layer, so the cost model's `bytes_read` keeps
//! measuring the algorithm, not the safety net.
//!
//! On-disk layout (little-endian `u32` words):
//!
//! ```text
//! [ magic "PMFT" | version | entry count k ]
//! k × [ ext code | crc32c | len lo | len hi ]
//! [ crc32c of all preceding bytes ]
//! ```

use std::path::{Path, PathBuf};

use pdtl_io::checksum::{crc32c, crc32c_of_file};
use pdtl_io::IoError;

use crate::disk::suffixed;
use crate::error::{GraphError, Result};

/// Magic word opening a manifest (`"PMFT"` in LE bytes).
const MFT_MAGIC: u32 = u32::from_le_bytes(*b"PMFT");
/// Manifest format version.
const MFT_VERSION: u32 = 1;

/// Extension of the manifest sidecar itself.
pub const MFT_EXT: &str = ".mft";

/// The data files a manifest may cover, in extension-code order. The
/// manifest never lists itself; `DiskGraph::ALL_EXTS` is this list
/// plus [`MFT_EXT`].
pub const DATA_EXTS: [&str; 6] = [".deg", ".adj", ".hdr", ".vix", ".map", ".bnd"];

/// Files at most this many bytes are fully digested by the quick
/// verification tier (so `.hdr`, `.vix`, `.map`, `.bnd` on typical
/// graphs are always covered at open time).
pub const QUICK_DIGEST_MAX: u64 = 4096;

/// One covered file: its extension, byte length and CRC32C digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Extension (from [`DATA_EXTS`]), dot included.
    pub ext: &'static str,
    /// Byte length at capture time.
    pub len: u64,
    /// CRC32C of the whole file at capture time.
    pub crc: u32,
}

/// Outcome of a successful full verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyReport {
    /// Files digested.
    pub files: usize,
    /// Total bytes digested.
    pub bytes: u64,
}

/// The parsed (or freshly captured) integrity manifest of a graph base.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Covered files, in [`DATA_EXTS`] order.
    pub entries: Vec<ManifestEntry>,
}

impl Manifest {
    /// Path of the manifest sidecar for `base`.
    pub fn path_for(base: &Path) -> PathBuf {
        suffixed(base, MFT_EXT)
    }

    /// Digest every data file currently present at `base` into a fresh
    /// manifest (nothing is written; see [`store`](Self::store)).
    pub fn capture(base: &Path) -> Result<Manifest> {
        let mut entries = Vec::new();
        for ext in DATA_EXTS {
            let p = suffixed(base, ext);
            if !p.exists() {
                continue;
            }
            let (len, crc) = crc32c_of_file(&p)?;
            entries.push(ManifestEntry { ext, len, crc });
        }
        Ok(Manifest { entries })
    }

    /// Write this manifest for `base` crash-safely: encode into
    /// `base.mft-tmp`, `sync_all`, then atomically rename over
    /// `base.mft`. Callers must only invoke this after the covered
    /// data files are themselves durable — the rename is the commit
    /// point of the whole graph write.
    pub fn store(&self, base: &Path) -> Result<()> {
        let final_p = Self::path_for(base);
        let tmp_p = suffixed(base, ".mft-tmp");
        let bytes = self.encode();
        std::fs::write(&tmp_p, &bytes).map_err(|e| IoError::os("write", &tmp_p, e))?;
        let f = std::fs::File::open(&tmp_p).map_err(|e| IoError::os("open", &tmp_p, e))?;
        f.sync_all().map_err(|e| IoError::os("sync", &tmp_p, e))?;
        std::fs::rename(&tmp_p, &final_p).map_err(|e| IoError::os("rename", &tmp_p, e))?;
        Ok(())
    }

    /// [`capture`](Self::capture) then [`store`](Self::store).
    pub fn capture_and_store(base: &Path) -> Result<Manifest> {
        let m = Self::capture(base)?;
        m.store(base)?;
        Ok(m)
    }

    /// Load the manifest for `base`. `Ok(None)` when the sidecar does
    /// not exist (a pre-integrity graph — advisory-absent); a typed
    /// [`GraphError::Corrupt`] when it exists but fails its own
    /// structural checks or trailing self-checksum.
    pub fn load(base: &Path) -> Result<Option<Manifest>> {
        let p = Self::path_for(base);
        let bytes = match std::fs::read(&p) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(IoError::os("read", &p, e).into()),
        };
        let corrupt = |detail: &str| GraphError::Corrupt {
            path: p.clone(),
            detail: detail.to_string(),
        };
        if bytes.len() < 16 || bytes.len() % 4 != 0 {
            return Err(corrupt("manifest too short or misaligned"));
        }
        let words: Vec<u32> = bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        let self_crc = *words.last().unwrap();
        if crc32c(&bytes[..bytes.len() - 4]) != self_crc {
            return Err(corrupt("manifest self-checksum mismatch"));
        }
        if words[0] != MFT_MAGIC {
            return Err(corrupt("not a PDTL manifest"));
        }
        if words[1] != MFT_VERSION {
            return Err(corrupt("unknown manifest version"));
        }
        let k = words[2] as usize;
        if words.len() != 3 + 4 * k + 1 {
            return Err(corrupt("manifest entry count disagrees with length"));
        }
        let mut entries = Vec::with_capacity(k);
        for chunk in words[3..3 + 4 * k].chunks_exact(4) {
            let ext = DATA_EXTS
                .get(chunk[0] as usize)
                .copied()
                .ok_or_else(|| corrupt("manifest names an unknown file extension"))?;
            entries.push(ManifestEntry {
                ext,
                len: u64::from(chunk[2]) | (u64::from(chunk[3]) << 32),
                crc: chunk[1],
            });
        }
        Ok(Some(Manifest { entries }))
    }

    /// Quick tier: verify every recorded length and fully digest files
    /// of at most [`QUICK_DIGEST_MAX`] bytes. Cheap enough for every
    /// `DiskGraph::open`.
    pub fn verify_quick(&self, base: &Path) -> Result<()> {
        for e in &self.entries {
            let p = suffixed(base, e.ext);
            let actual = match std::fs::metadata(&p) {
                Ok(md) => md.len(),
                Err(_) => {
                    return Err(GraphError::Truncated {
                        path: p,
                        expected: e.len,
                        actual: 0,
                    })
                }
            };
            if actual < e.len {
                return Err(GraphError::Truncated {
                    path: p,
                    expected: e.len,
                    actual,
                });
            }
            if actual > e.len {
                return Err(GraphError::Corrupt {
                    path: p,
                    detail: format!(
                        "file grew past the manifest ({} bytes recorded, {actual} found)",
                        e.len
                    ),
                });
            }
            if e.len <= QUICK_DIGEST_MAX {
                self.check_digest(&p, e)?;
            }
        }
        Ok(())
    }

    /// Full tier: one digest pass over every covered file. Catches
    /// anything quick verification can — plus bit flips in large
    /// payloads.
    pub fn verify_full(&self, base: &Path) -> Result<VerifyReport> {
        self.verify_quick(base)?;
        let mut bytes = 0u64;
        for e in &self.entries {
            let p = suffixed(base, e.ext);
            self.check_digest(&p, e)?;
            bytes += e.len;
        }
        Ok(VerifyReport {
            files: self.entries.len(),
            bytes,
        })
    }

    fn check_digest(&self, p: &Path, e: &ManifestEntry) -> Result<()> {
        let (_, crc) = crc32c_of_file(p)?;
        if crc != e.crc {
            return Err(GraphError::Corrupt {
                path: p.to_path_buf(),
                detail: format!(
                    "checksum mismatch (manifest {:#010x}, disk {crc:#010x})",
                    e.crc
                ),
            });
        }
        Ok(())
    }

    fn encode(&self) -> Vec<u8> {
        let mut words: Vec<u32> = vec![MFT_MAGIC, MFT_VERSION, self.entries.len() as u32];
        for e in &self.entries {
            let code = DATA_EXTS
                .iter()
                .position(|x| *x == e.ext)
                .expect("manifest entries only ever name DATA_EXTS members by construction")
                as u32;
            words.extend([code, e.crc, e.len as u32, (e.len >> 32) as u32]);
        }
        let mut bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let self_crc = crc32c(&bytes);
        bytes.extend(self_crc.to_le_bytes());
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpbase(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("pdtl-mft-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    fn fake_graph(base: &Path) {
        std::fs::write(suffixed(base, ".deg"), vec![1u8; 40]).unwrap();
        std::fs::write(suffixed(base, ".adj"), vec![2u8; 8000]).unwrap();
        std::fs::write(suffixed(base, ".bnd"), vec![3u8; 80]).unwrap();
    }

    #[test]
    fn capture_store_load_round_trip() {
        let base = tmpbase("rt");
        fake_graph(&base);
        let m = Manifest::capture_and_store(&base).unwrap();
        assert_eq!(m.entries.len(), 3);
        assert_eq!(m.entries[0].ext, ".deg");
        assert_eq!(m.entries[1].len, 8000);
        let loaded = Manifest::load(&base).unwrap().expect("manifest present");
        assert_eq!(loaded, m);
        assert!(
            !suffixed(&base, ".mft-tmp").exists(),
            "tmp file renamed away"
        );
    }

    #[test]
    fn absent_manifest_is_none() {
        assert!(Manifest::load(&tmpbase("absent")).unwrap().is_none());
    }

    #[test]
    fn quick_catches_truncation_and_small_file_corruption() {
        let base = tmpbase("quick");
        fake_graph(&base);
        let m = Manifest::capture_and_store(&base).unwrap();
        m.verify_quick(&base).unwrap();

        // Truncate the big file: caught by the length check alone.
        let adj = suffixed(&base, ".adj");
        let keep = std::fs::read(&adj).unwrap();
        std::fs::write(&adj, &keep[..4000]).unwrap();
        match m.verify_quick(&base).unwrap_err() {
            GraphError::Truncated {
                expected, actual, ..
            } => {
                assert_eq!((expected, actual), (8000, 4000));
            }
            other => panic!("expected Truncated, got {other}"),
        }
        std::fs::write(&adj, &keep).unwrap();

        // Flip a bit in a small file: caught by the quick digest.
        let bnd = suffixed(&base, ".bnd");
        let mut b = std::fs::read(&bnd).unwrap();
        b[10] ^= 0x40;
        std::fs::write(&bnd, &b).unwrap();
        assert!(matches!(
            m.verify_quick(&base).unwrap_err(),
            GraphError::Corrupt { .. }
        ));
    }

    #[test]
    fn full_catches_bitflip_quick_misses() {
        let base = tmpbase("full");
        fake_graph(&base);
        let m = Manifest::capture_and_store(&base).unwrap();

        // Flip one bit deep inside the 8000-byte .adj (> QUICK_DIGEST_MAX).
        let adj = suffixed(&base, ".adj");
        let mut b = std::fs::read(&adj).unwrap();
        b[7000] ^= 0x01;
        std::fs::write(&adj, &b).unwrap();

        m.verify_quick(&base).unwrap(); // length unchanged: quick passes
        let err = m.verify_full(&base).unwrap_err();
        assert!(matches!(err, GraphError::Corrupt { .. }), "{err}");

        b[7000] ^= 0x01;
        std::fs::write(&adj, &b).unwrap();
        let report = m.verify_full(&base).unwrap();
        assert_eq!(report.files, 3);
        assert_eq!(report.bytes, 40 + 8000 + 80);
    }

    #[test]
    fn manifest_self_check_detects_its_own_corruption() {
        let base = tmpbase("selfcheck");
        fake_graph(&base);
        Manifest::capture_and_store(&base).unwrap();
        let p = Manifest::path_for(&base);
        let mut b = std::fs::read(&p).unwrap();
        b[6] ^= 0xFF;
        std::fs::write(&p, &b).unwrap();
        assert!(matches!(
            Manifest::load(&base).unwrap_err(),
            GraphError::Corrupt { .. }
        ));
        // Garbage and truncated manifests are typed errors, not panics.
        std::fs::write(&p, b"junk").unwrap();
        assert!(Manifest::load(&base).is_err());
        std::fs::write(&p, [0u8; 17]).unwrap();
        assert!(Manifest::load(&base).is_err());
    }

    #[test]
    fn missing_covered_file_is_truncated_to_zero() {
        let base = tmpbase("missing");
        fake_graph(&base);
        let m = Manifest::capture_and_store(&base).unwrap();
        std::fs::remove_file(suffixed(&base, ".bnd")).unwrap();
        assert!(matches!(
            m.verify_quick(&base).unwrap_err(),
            GraphError::Truncated { actual: 0, .. }
        ));
    }
}
