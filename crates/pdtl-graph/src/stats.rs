//! Dataset statistics (the paper's Table I).
//!
//! Table I reports, per graph: nodes, edges, triangles, on-disk size,
//! average degree, degree standard deviation, and max degree.
//! [`GraphStats::compute`] derives all of these from a [`Graph`]
//! (triangles are filled in by whichever engine the caller trusts).

use crate::csr::Graph;

/// Summary statistics of one dataset, one row of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Dataset name.
    pub name: String,
    /// `|V|`.
    pub nodes: u64,
    /// `|E|` (undirected).
    pub edges: u64,
    /// Exact triangle count, if computed.
    pub triangles: Option<u64>,
    /// On-disk size in bytes of the PDTL binary format.
    pub size_bytes: u64,
    /// Average degree `2|E| / |V|`.
    pub avg_degree: f64,
    /// Standard deviation of the degree distribution.
    pub std_degree: f64,
    /// Maximum degree.
    pub max_degree: u32,
}

impl GraphStats {
    /// Compute the statistics of `g` (without triangles).
    pub fn compute(name: impl Into<String>, g: &Graph) -> Self {
        let n = g.num_vertices() as u64;
        let m = g.num_edges();
        let avg = if n == 0 {
            0.0
        } else {
            2.0 * m as f64 / n as f64
        };
        let mut var_acc = 0.0f64;
        let mut max_deg = 0u32;
        for u in 0..g.num_vertices() {
            let d = g.degree(u);
            max_deg = max_deg.max(d);
            let diff = d as f64 - avg;
            var_acc += diff * diff;
        }
        let std = if n == 0 {
            0.0
        } else {
            (var_acc / n as f64).sqrt()
        };
        Self {
            name: name.into(),
            nodes: n,
            edges: m,
            triangles: None,
            // .deg holds n u32s; .adj holds 2m u32s.
            size_bytes: (n + 2 * m) * 4,
            avg_degree: avg,
            std_degree: std,
            max_degree: max_deg,
        }
    }

    /// Attach a triangle count.
    pub fn with_triangles(mut self, t: u64) -> Self {
        self.triangles = Some(t);
        self
    }

    /// Format as a Table I-style row.
    pub fn row(&self) -> String {
        format!(
            "{:<16} {:>10} {:>12} {:>14} {:>10} {:>8.1} {:>8.1} {:>9}",
            self.name,
            self.nodes,
            self.edges,
            self.triangles
                .map(|t| t.to_string())
                .unwrap_or_else(|| "-".into()),
            human_bytes(self.size_bytes),
            self.avg_degree,
            self.std_degree,
            self.max_degree
        )
    }

    /// The header matching [`row`](Self::row).
    pub fn header() -> String {
        format!(
            "{:<16} {:>10} {:>12} {:>14} {:>10} {:>8} {:>8} {:>9}",
            "Graph", "Nodes", "Edges", "Triangles", "Size", "AvDeg", "STD", "MaxDeg"
        )
    }
}

/// Render a byte count with a binary-prefix unit.
pub fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0usize;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes}B")
    } else {
        format!("{value:.1}{}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::classic::{complete, star};

    #[test]
    fn complete_graph_stats() {
        let g = complete(10).unwrap();
        let s = GraphStats::compute("K10", &g);
        assert_eq!(s.nodes, 10);
        assert_eq!(s.edges, 45);
        assert!((s.avg_degree - 9.0).abs() < 1e-12);
        assert!(s.std_degree.abs() < 1e-12, "regular graph has zero std");
        assert_eq!(s.max_degree, 9);
        assert_eq!(s.size_bytes, (10 + 90) * 4);
    }

    #[test]
    fn star_has_high_std() {
        let g = star(101).unwrap();
        let s = GraphStats::compute("star", &g);
        assert_eq!(s.max_degree, 100);
        assert!((s.avg_degree - (2.0 * 100.0 / 101.0)).abs() < 1e-9);
        assert!(s.std_degree > 9.0);
    }

    #[test]
    fn empty_graph_stats_are_zero() {
        let g = Graph::empty(0);
        let s = GraphStats::compute("empty", &g);
        assert_eq!(s.avg_degree, 0.0);
        assert_eq!(s.std_degree, 0.0);
    }

    #[test]
    fn with_triangles_and_row() {
        let g = complete(4).unwrap();
        let s = GraphStats::compute("K4", &g).with_triangles(4);
        let row = s.row();
        assert!(row.contains("K4"));
        assert!(row.contains('4'));
        assert!(GraphStats::header().contains("Triangles"));
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(12), "12B");
        assert_eq!(human_bytes(2048), "2.0KiB");
        assert_eq!(human_bytes(3 * 1024 * 1024), "3.0MiB");
        assert!(human_bytes(5 * 1024 * 1024 * 1024).contains("GiB"));
    }
}
