//! In-memory CSR representation of simple undirected graphs.
//!
//! A [`Graph`] stores the *bidirectional* adjacency of a simple undirected
//! graph: every edge `{u, v}` appears both in `N(u)` and `N(v)`, each list
//! sorted ascending — exactly the layout of PDTL's on-disk format, so a
//! `Graph` round-trips losslessly through [`DiskGraph`](crate::DiskGraph).

use crate::error::{GraphError, Result};

/// A simple undirected graph in CSR form.
///
/// Invariants (established by all constructors, checked by
/// [`validate`](Graph::validate)):
/// * no self-loops, no parallel edges;
/// * each adjacency list sorted strictly ascending;
/// * symmetry: `v ∈ N(u)` iff `u ∈ N(v)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[u] .. offsets[u + 1]` indexes `adj` for vertex `u`;
    /// `offsets.len() == n + 1`.
    offsets: Vec<u64>,
    /// Concatenated sorted adjacency lists (length `2|E|`).
    adj: Vec<u32>,
}

impl Graph {
    /// The empty graph on `n` isolated vertices.
    pub fn empty(n: u32) -> Self {
        Self {
            offsets: vec![0; n as usize + 1],
            adj: Vec::new(),
        }
    }

    /// Build from an arbitrary list of undirected edges on vertices
    /// `0..n`. Self-loops are dropped, duplicates (in either direction)
    /// are merged, and adjacency is sorted — i.e. the input is
    /// "simplified" per the paper's assumption that graphs are simple.
    pub fn from_edges(n: u32, edges: &[(u32, u32)]) -> Result<Self> {
        for &(u, v) in edges {
            let bad = if u >= n {
                Some(u)
            } else if v >= n {
                Some(v)
            } else {
                None
            };
            if let Some(vertex) = bad {
                return Err(GraphError::VertexOutOfRange { vertex, n });
            }
        }
        // Symmetrize then sort+dedup per list via a global sort of
        // (src, dst) pairs.
        let mut dir: Vec<(u32, u32)> = Vec::with_capacity(edges.len() * 2);
        for &(u, v) in edges {
            if u != v {
                dir.push((u, v));
                dir.push((v, u));
            }
        }
        dir.sort_unstable();
        dir.dedup();

        let mut offsets = vec![0u64; n as usize + 1];
        for &(u, _) in &dir {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n as usize {
            offsets[i + 1] += offsets[i];
        }
        let adj = dir.into_iter().map(|(_, v)| v).collect();
        Ok(Self { offsets, adj })
    }

    /// Build directly from CSR parts. The parts must already satisfy the
    /// `Graph` invariants; use [`validate`](Graph::validate) if unsure.
    pub fn from_parts(offsets: Vec<u64>, adj: Vec<u32>) -> Result<Self> {
        if offsets.is_empty() {
            return Err(GraphError::Invalid(
                "offsets must have length n+1 >= 1".into(),
            ));
        }
        if *offsets.last().unwrap() != adj.len() as u64 {
            return Err(GraphError::Invalid(format!(
                "last offset {} != adjacency length {}",
                offsets.last().unwrap(),
                adj.len()
            )));
        }
        let g = Self { offsets, adj };
        Ok(g)
    }

    /// Number of vertices `n = |V|`.
    pub fn num_vertices(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Number of undirected edges `m = |E|`.
    pub fn num_edges(&self) -> u64 {
        self.adj.len() as u64 / 2
    }

    /// Length of the bidirectional adjacency array (`2|E|`).
    pub fn adj_len(&self) -> u64 {
        self.adj.len() as u64
    }

    /// Degree of `u`.
    pub fn degree(&self, u: u32) -> u32 {
        (self.offsets[u as usize + 1] - self.offsets[u as usize]) as u32
    }

    /// Sorted neighbours of `u`.
    pub fn neighbors(&self, u: u32) -> &[u32] {
        &self.adj[self.offsets[u as usize] as usize..self.offsets[u as usize + 1] as usize]
    }

    /// The CSR offset array (`n + 1` entries).
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The raw adjacency array.
    pub fn adjacency(&self) -> &[u32] {
        &self.adj
    }

    /// All degrees as a vector (the content of the `.deg` file).
    pub fn degrees(&self) -> Vec<u32> {
        (0..self.num_vertices()).map(|u| self.degree(u)).collect()
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> u32 {
        (0..self.num_vertices())
            .map(|u| self.degree(u))
            .max()
            .unwrap_or(0)
    }

    /// True if `{u, v}` is an edge (binary search in the shorter list).
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        if u >= self.num_vertices() || v >= self.num_vertices() {
            return false;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterate each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.num_vertices()).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Check every structural invariant; returns a description of the
    /// first violation.
    pub fn validate(&self) -> Result<()> {
        let n = self.num_vertices();
        if self.offsets[0] != 0 {
            return Err(GraphError::Invalid("offsets[0] != 0".into()));
        }
        for u in 0..n as usize {
            if self.offsets[u] > self.offsets[u + 1] {
                return Err(GraphError::Invalid(format!("offsets decrease at {u}")));
            }
        }
        for u in 0..n {
            let ns = self.neighbors(u);
            for w in ns.windows(2) {
                if w[0] >= w[1] {
                    return Err(GraphError::Invalid(format!(
                        "adjacency of {u} not strictly ascending"
                    )));
                }
            }
            for &v in ns {
                if v >= n {
                    return Err(GraphError::VertexOutOfRange { vertex: v, n });
                }
                if v == u {
                    return Err(GraphError::Invalid(format!("self-loop at {u}")));
                }
                if self.neighbors(v).binary_search(&u).is_err() {
                    return Err(GraphError::Invalid(format!("asymmetric edge ({u}, {v})")));
                }
            }
        }
        Ok(())
    }

    /// Sum over edges of `min(d(u), d(v))` — the arboricity-related bound
    /// of Theorem III.4(3); `T <= bound / 3`.
    pub fn min_degree_sum(&self) -> u64 {
        self.edges()
            .map(|(u, v)| self.degree(u).min(self.degree(v)) as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap()
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        g.validate().unwrap();
    }

    #[test]
    fn builds_triangle() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[0, 1]);
        g.validate().unwrap();
    }

    #[test]
    fn drops_self_loops_and_duplicates() {
        let g = Graph::from_edges(3, &[(0, 0), (0, 1), (1, 0), (0, 1), (1, 2)]).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1]);
        g.validate().unwrap();
    }

    #[test]
    fn rejects_out_of_range() {
        let err = Graph::from_edges(2, &[(0, 5)]).unwrap_err();
        assert!(matches!(
            err,
            GraphError::VertexOutOfRange { vertex: 5, n: 2 }
        ));
    }

    #[test]
    fn has_edge_both_directions() {
        let g = triangle();
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(0, 0));
        assert!(!g.has_edge(0, 99));
    }

    #[test]
    fn edges_iterates_each_once() {
        let g = triangle();
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn degrees_and_max() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        assert_eq!(g.degrees(), vec![3, 1, 1, 1]);
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.adj_len(), 6);
    }

    #[test]
    fn from_parts_validates_lengths() {
        assert!(Graph::from_parts(vec![], vec![]).is_err());
        assert!(Graph::from_parts(vec![0, 2], vec![1]).is_err());
        let g = Graph::from_parts(vec![0, 1, 2], vec![1, 0]).unwrap();
        g.validate().unwrap();
    }

    #[test]
    fn validate_catches_asymmetry() {
        let g = Graph {
            offsets: vec![0, 1, 1],
            adj: vec![1],
        };
        assert!(g.validate().is_err());
    }

    #[test]
    fn validate_catches_unsorted() {
        let g = Graph {
            offsets: vec![0, 2, 3, 4],
            adj: vec![2, 1, 0, 0],
        };
        assert!(g.validate().is_err());
    }

    #[test]
    fn min_degree_sum_triangle() {
        // every edge has min-degree 2 -> sum 6; T=1 <= 6/3
        assert_eq!(triangle().min_degree_sum(), 6);
    }

    #[test]
    fn clone_and_eq() {
        let g = triangle();
        assert_eq!(g.clone(), g);
    }
}
