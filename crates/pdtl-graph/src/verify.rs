//! Brute-force triangle oracles.
//!
//! Every engine in the workspace — the MGT core, the distributed runner,
//! each baseline — is tested against these reference implementations.
//! [`triangle_count`] / [`triangle_list`] use the standard edge-iterator
//! with sorted-intersection (`O(Σ_e min(d(u), d(v)))`, fine up to millions
//! of edges); [`triangle_count_cubic`] is an independent `O(n³)`
//! implementation used to cross-check the oracle itself on tiny graphs.

use crate::csr::Graph;

/// Count triangles by intersecting neighbour lists along each edge
/// `(u, v)` with `u < v`, counting common neighbours `w > v`. Each
/// triangle `{u, v, w}` with `u < v < w` is found exactly once, at its
/// smallest edge.
pub fn triangle_count(g: &Graph) -> u64 {
    let mut count = 0u64;
    for (u, v) in g.edges() {
        count += intersect_above(g.neighbors(u), g.neighbors(v), v);
    }
    count
}

/// List all triangles as id-ordered triples `(u, v, w)`, `u < v < w`.
pub fn triangle_list(g: &Graph) -> Vec<(u32, u32, u32)> {
    let mut out = Vec::new();
    for (u, v) in g.edges() {
        let (mut i, mut j) = (0usize, 0usize);
        let (a, b) = (g.neighbors(u), g.neighbors(v));
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if a[i] > v {
                        out.push((u, v, a[i]));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    out
}

/// Count common elements of two sorted slices that exceed `floor`.
fn intersect_above(a: &[u32], b: &[u32], floor: u32) -> u64 {
    let (mut i, mut j) = (0usize, 0usize);
    let mut count = 0u64;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                if a[i] > floor {
                    count += 1;
                }
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Independent `O(n³)` counter for cross-checking on tiny graphs.
pub fn triangle_count_cubic(g: &Graph) -> u64 {
    let n = g.num_vertices();
    let mut count = 0u64;
    for u in 0..n {
        for v in (u + 1)..n {
            if !g.has_edge(u, v) {
                continue;
            }
            for w in (v + 1)..n {
                if g.has_edge(u, w) && g.has_edge(v, w) {
                    count += 1;
                }
            }
        }
    }
    count
}

/// Per-vertex triangle counts (each triangle contributes 1 to each of its
/// three corners) — the quantity clustering coefficients are built from.
pub fn per_vertex_triangles(g: &Graph) -> Vec<u64> {
    let mut counts = vec![0u64; g.num_vertices() as usize];
    for (u, v, w) in triangle_list(g) {
        counts[u as usize] += 1;
        counts[v as usize] += 1;
        counts[w as usize] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::classic::{complete, cycle, grid, wheel};
    use crate::gen::rmat::rmat;

    #[test]
    fn oracle_matches_cubic_on_fixtures() {
        for g in [
            complete(7).unwrap(),
            cycle(9).unwrap(),
            wheel(8).unwrap(),
            grid(4, 5).unwrap(),
        ] {
            assert_eq!(triangle_count(&g), triangle_count_cubic(&g));
        }
    }

    #[test]
    fn oracle_matches_cubic_on_random() {
        for seed in 0..5 {
            let g = crate::gen::classic::erdos_renyi(30, 120, seed).unwrap();
            assert_eq!(triangle_count(&g), triangle_count_cubic(&g), "seed {seed}");
        }
    }

    #[test]
    fn list_is_consistent_with_count() {
        let g = rmat(7, 2).unwrap();
        let list = triangle_list(&g);
        assert_eq!(list.len() as u64, triangle_count(&g));
    }

    #[test]
    fn list_triples_are_ordered_unique_triangles() {
        let g = complete(6).unwrap();
        let list = triangle_list(&g);
        assert_eq!(list.len(), 20); // C(6,3)
        let mut seen = std::collections::HashSet::new();
        for &(u, v, w) in &list {
            assert!(u < v && v < w);
            assert!(g.has_edge(u, v) && g.has_edge(v, w) && g.has_edge(u, w));
            assert!(seen.insert((u, v, w)), "duplicate {u},{v},{w}");
        }
    }

    #[test]
    fn per_vertex_sums_to_three_t() {
        let g = wheel(10).unwrap();
        let pv = per_vertex_triangles(&g);
        let total: u64 = pv.iter().sum();
        assert_eq!(total, 3 * triangle_count(&g));
        // the hub participates in all 9 rim triangles
        assert_eq!(pv[0], 9);
    }

    #[test]
    fn arboricity_bound_holds() {
        // T <= (1/3) * Σ min(d(u), d(v)) — Theorem III.4 discussion.
        for seed in 0..3 {
            let g = rmat(7, seed).unwrap();
            assert!(3 * triangle_count(&g) <= g.min_degree_sum());
        }
    }
}
