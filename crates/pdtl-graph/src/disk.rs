//! The PDTL binary on-disk graph format.
//!
//! Per the paper (§V-B): *"graphs are in binary, bi-directional format,
//! with degrees of vertices and their out-edges in separate files"* and
//! *"edges are sorted by source and destination"*. Concretely, a graph
//! named `base` is the file pair:
//!
//! * `base.deg` — `n` little-endian `u32` degrees, vertex order;
//! * `base.adj` — the concatenated adjacency lists in vertex order, each
//!   sorted ascending (`sum(deg)` values; `2|E|` for an undirected graph,
//!   `|E*|` for an oriented one).
//!
//! The same pair of files stores both undirected inputs and oriented
//! outputs (orientation just changes which neighbours are present), so the
//! whole pipeline — orientation, replication, per-core MGT — moves these
//! two files around.
//!
//! Since the transport × codec split the adjacency may instead be stored
//! under [`Codec::DeltaVarint`]: `base.adj` then holds the per-vertex
//! delta + varint byte runs (zero-padded to a word boundary so every
//! block transport opens it), flanked by two sidecars —
//!
//! * `base.hdr` — 5 words: magic, format version, codec discriminant,
//!   and the *decoded* adjacency length as a `(lo, hi)` pair;
//! * `base.vix` — the `n + 1` per-vertex byte fenceposts
//!   ([`VarintIndex`]'s sidecar) that make `seek_to`/`skip` work in
//!   decoded index space.
//!
//! A graph without a header is a legacy raw pair; raw writes leave the
//! PR 2 `.deg`/`.adj` bytes identical. [`adj_len`] always reports the
//! decoded length, and [`file_set`] is the single enumeration of which
//! files a base carries (replication, cleanup and tests all go through
//! it).
//!
//! Every write additionally commits a `base.mft` integrity manifest
//! ([`Manifest`]): lengths + CRC32C digests
//! of the data files, written crash-safely after they are durable.
//! `open` runs the quick verification tier against it (lengths +
//! small-file digests); [`verify_full`] digests everything. A base
//! without a manifest (written pre-integrity) still opens — the
//! manifest is advisory-absent.
//!
//! [`adj_len`]: DiskGraph::adj_len
//! [`file_set`]: DiskGraph::file_set
//! [`verify_full`]: DiskGraph::verify_full

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use pdtl_io::{
    Codec, IoError, IoStats, U32Reader, U32Source, U32Writer, VarintAdjWriter, VarintIndex,
    BYTES_PER_U32,
};

use crate::csr::Graph;
use crate::error::Result;
use crate::manifest::{Manifest, VerifyReport, MFT_EXT};

/// Magic word opening a `.hdr` sidecar (`"PDTL"` in LE bytes).
const HDR_MAGIC: u32 = u32::from_le_bytes(*b"PDTL");
/// On-disk format version the header declares.
const HDR_VERSION: u32 = 1;
/// Header length in words: magic, version, codec, adj_len lo, adj_len hi.
const HDR_WORDS: usize = 5;

/// Handle to a graph stored in PDTL binary format.
#[derive(Debug, Clone)]
pub struct DiskGraph {
    base: PathBuf,
    n: u32,
    /// Decoded adjacency length in `u32`s (codec-independent).
    adj_len: u64,
    codec: Codec,
    /// On-disk bytes of the core file set (`.deg`/`.adj` + sidecars).
    disk_bytes: u64,
}

impl DiskGraph {
    /// Write `graph` to `base{.deg,.adj}` in raw (PR 2) format.
    pub fn write(graph: &Graph, base: impl AsRef<Path>, stats: &Arc<IoStats>) -> Result<Self> {
        Self::write_with(graph, base, Codec::Raw, stats)
    }

    /// Write `graph` to `base` under `codec`: `.deg` is always raw;
    /// under [`Codec::DeltaVarint`] the adjacency is stored compressed
    /// with the `.vix`/`.hdr` sidecars, under [`Codec::Raw`] no
    /// sidecars are produced and the files are byte-identical to the
    /// legacy format.
    pub fn write_with(
        graph: &Graph,
        base: impl AsRef<Path>,
        codec: Codec,
        stats: &Arc<IoStats>,
    ) -> Result<Self> {
        let base = base.as_ref().to_path_buf();
        if let Some(parent) = base.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| IoError::os("mkdir", parent, e))?;
            }
        }
        let mut degw = U32Writer::create(deg_path(&base), stats.clone())?;
        for u in 0..graph.num_vertices() {
            degw.write(graph.degree(u))?;
        }
        degw.finish()?;
        match codec {
            Codec::Raw => {
                let mut adjw = U32Writer::create(adj_path(&base), stats.clone())?;
                adjw.write_all(graph.adjacency())?;
                adjw.finish()?;
            }
            Codec::DeltaVarint => {
                let mut adjw = VarintAdjWriter::create(adj_path(&base), stats.clone())?;
                for u in 0..graph.num_vertices() {
                    adjw.write_run(graph.neighbors(u))?;
                }
                let fenceposts = adjw.finish()?;
                VarintIndex::store(suffixed(&base, ".vix"), &fenceposts, stats.clone())?;
                write_graph_header(&base, codec, graph.adj_len(), stats)?;
            }
        }
        // Every data file is flushed + synced by its writer; committing
        // the manifest last makes it the write's durable commit record.
        Manifest::capture_and_store(&base)?;
        Self::open(&base, stats)
    }

    /// Open an existing graph at `base`, validating sizes.
    ///
    /// When an integrity manifest is present, its quick verification
    /// tier runs first (every recorded length plus full digests of
    /// small files), turning truncations and sidecar corruption into
    /// typed [`Corrupt`](crate::GraphError::Corrupt) /
    /// [`Truncated`](crate::GraphError::Truncated) errors at open time.
    /// The codec is then taken from the `.hdr` sidecar (read through an
    /// accounted reader, so open-time I/O shows up in [`IoStats`]); a
    /// base without a header is a legacy raw pair.
    pub fn open(base: impl AsRef<Path>, stats: &Arc<IoStats>) -> Result<Self> {
        let base = base.as_ref().to_path_buf();
        if let Some(manifest) = Manifest::load(&base)? {
            manifest.verify_quick(&base)?;
        }
        let deg = deg_path(&base);
        let adj = adj_path(&base);
        let deg_meta = std::fs::metadata(&deg).map_err(|e| IoError::os("stat", &deg, e))?;
        let adj_meta = std::fs::metadata(&adj).map_err(|e| IoError::os("stat", &adj, e))?;
        if deg_meta.len() % BYTES_PER_U32 != 0 {
            return Err(IoError::malformed(&deg, "degree file not u32-aligned").into());
        }
        if adj_meta.len() % BYTES_PER_U32 != 0 {
            return Err(IoError::malformed(&adj, "adjacency file not u32-aligned").into());
        }
        let (codec, adj_len) = match read_graph_header(&base, stats)? {
            Some((codec, adj_len)) => (codec, adj_len),
            None => (Codec::Raw, adj_meta.len() / BYTES_PER_U32),
        };
        let mut disk_bytes = deg_meta.len() + adj_meta.len();
        for ext in [".hdr", ".vix"] {
            if let Ok(m) = std::fs::metadata(suffixed(&base, ext)) {
                disk_bytes += m.len();
            }
        }
        Ok(Self {
            base,
            n: (deg_meta.len() / BYTES_PER_U32) as u32,
            adj_len,
            codec,
            disk_bytes,
        })
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u32 {
        self.n
    }

    /// Total *decoded* adjacency entries (`2|E|` undirected, `|E*|`
    /// oriented), regardless of how they are encoded on disk.
    pub fn adj_len(&self) -> u64 {
        self.adj_len
    }

    /// How the adjacency file is encoded.
    pub fn codec(&self) -> Codec {
        self.codec
    }

    /// The base path (without extension).
    pub fn base(&self) -> &Path {
        &self.base
    }

    /// Path of the degree file.
    pub fn deg_path(&self) -> PathBuf {
        deg_path(&self.base)
    }

    /// Path of the adjacency file.
    pub fn adj_path(&self) -> PathBuf {
        adj_path(&self.base)
    }

    /// Path of the format-header sidecar (present iff compressed).
    pub fn hdr_path(&self) -> PathBuf {
        suffixed(&self.base, ".hdr")
    }

    /// Path of the varint byte-offset index sidecar (present iff
    /// compressed).
    pub fn vix_path(&self) -> PathBuf {
        suffixed(&self.base, ".vix")
    }

    /// Path of the integrity manifest sidecar (absent on pre-integrity
    /// graphs).
    pub fn mft_path(&self) -> PathBuf {
        suffixed(&self.base, MFT_EXT)
    }

    /// Every file extension a graph base may carry: the core pair, the
    /// compressed-format sidecars, the orientation sidecars (rank map
    /// and suffix bounds) that `OrientedGraph` adds, and the integrity
    /// manifest — which sorts last so replication copies it after the
    /// data it covers.
    pub const ALL_EXTS: [&'static str; 7] =
        [".deg", ".adj", ".hdr", ".vix", ".map", ".bnd", MFT_EXT];

    /// The files that actually exist for this base, in [`ALL_EXTS`]
    /// order — the single enumeration replication, cleanup and tests
    /// use, so a new sidecar extension cannot silently be left behind.
    ///
    /// [`ALL_EXTS`]: Self::ALL_EXTS
    pub fn file_set(&self) -> Vec<PathBuf> {
        Self::ALL_EXTS
            .iter()
            .map(|ext| suffixed(&self.base, ext))
            .filter(|p| p.exists())
            .collect()
    }

    /// On-disk bytes of the core file set (`.deg`/`.adj` plus the
    /// compressed-format sidecars) — for a raw graph exactly
    /// `(n + adj_len) * 4`, for a compressed one what the device
    /// actually stores.
    pub fn size_bytes(&self) -> u64 {
        self.disk_bytes
    }

    /// Read the whole degree file.
    pub fn load_degrees(&self, stats: &Arc<IoStats>) -> Result<Vec<u32>> {
        let mut r = U32Reader::open(self.deg_path(), stats.clone())?;
        Ok(r.read_all()?)
    }

    /// Open a counted reader positioned at the start of the adjacency
    /// file, in *transport* (word) space: for a compressed graph these
    /// are encoded words, to be wrapped in a
    /// [`VarintSource`](pdtl_io::VarintSource) built from
    /// [`varint_index`](Self::varint_index).
    pub fn open_adj(&self, stats: &Arc<IoStats>) -> Result<U32Reader> {
        Ok(U32Reader::open(self.adj_path(), stats.clone())?)
    }

    /// Load the varint index for a compressed graph, pairing the given
    /// decoded fenceposts (prefix sums of `.deg`, `n + 1` entries) with
    /// the `.vix` byte fenceposts. Errors on a raw graph.
    pub fn varint_index(
        &self,
        decoded_offsets: Vec<u64>,
        stats: &Arc<IoStats>,
    ) -> Result<Arc<VarintIndex>> {
        if self.codec != Codec::DeltaVarint {
            return Err(IoError::malformed(
                self.adj_path(),
                "varint index requested for a raw graph".to_string(),
            )
            .into());
        }
        Ok(Arc::new(VarintIndex::load(
            self.vix_path(),
            decoded_offsets,
            stats.clone(),
        )?))
    }

    /// Load the full graph back into CSR form.
    ///
    /// Note: for an *oriented* graph the result is a directed adjacency
    /// structure and will not pass `Graph::validate`'s symmetry check;
    /// use [`load_parts`](Self::load_parts) in that case.
    pub fn load_csr(&self, stats: &Arc<IoStats>) -> Result<Graph> {
        let (offsets, adj) = self.load_parts(stats)?;
        Graph::from_parts(offsets, adj)
    }

    /// Load offsets (prefix sums of degrees) and raw adjacency.
    pub fn load_parts(&self, stats: &Arc<IoStats>) -> Result<(Vec<u64>, Vec<u32>)> {
        let degrees = self.load_degrees(stats)?;
        let offsets = offsets_from_degrees(&degrees);
        let degree_sum = offsets.last().copied().unwrap_or(0);
        if degree_sum != self.adj_len {
            return Err(IoError::malformed(
                self.adj_path(),
                format!(
                    "degree sum {degree_sum} != adjacency length {}",
                    self.adj_len
                ),
            )
            .into());
        }
        let adj = match self.codec {
            Codec::Raw => self.open_adj(stats)?.read_all()?,
            Codec::DeltaVarint => {
                let index = self.varint_index(offsets.clone(), stats)?;
                let mut src =
                    pdtl_io::VarintSource::new(self.open_adj(stats)?, index, stats.clone())?;
                let mut adj = Vec::with_capacity(self.adj_len as usize);
                src.read_into(&mut adj, self.adj_len as usize)?;
                adj
            }
        };
        Ok((offsets, adj))
    }

    /// Copy the whole [`file_set`](Self::file_set) — core pair plus
    /// every sidecar present — to a new base (replication to a node's
    /// local disk). Returns the new handle and the bytes copied.
    pub fn copy_to(&self, new_base: impl AsRef<Path>, stats: &Arc<IoStats>) -> Result<(Self, u64)> {
        let new_base = new_base.as_ref().to_path_buf();
        if let Some(parent) = new_base.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| IoError::os("mkdir", parent, e))?;
            }
        }
        let mut total = 0u64;
        // ALL_EXTS order puts the manifest last, so a replica that
        // loses the copy mid-way has no manifest rather than a
        // manifest covering files that never arrived.
        for ext in Self::ALL_EXTS {
            let src = suffixed(&self.base, ext);
            if !src.exists() {
                continue;
            }
            let dst = suffixed(&new_base, ext);
            let start = Instant::now();
            let bytes = std::fs::copy(&src, &dst).map_err(|e| IoError::os("copy", &src, e))?;
            let elapsed = start.elapsed();
            stats.record_read(bytes, elapsed / 2);
            stats.record_write(bytes, elapsed / 2);
            total += bytes;
        }
        Ok((
            Self {
                base: new_base,
                ..self.clone()
            },
            total,
        ))
    }

    /// Full-tier integrity verification: digest every file the
    /// manifest covers. `Ok(None)` when the base carries no manifest
    /// (pre-integrity graph — nothing to verify against); a typed
    /// [`Corrupt`](crate::GraphError::Corrupt) /
    /// [`Truncated`](crate::GraphError::Truncated) error on any
    /// mismatch. This is the tier behind `pdtl verify`, the runners'
    /// input checks and post-copy replica verification — unlike the
    /// quick tier in [`open`](Self::open) it catches bit flips deep
    /// inside large adjacency files.
    pub fn verify_full(&self) -> Result<Option<VerifyReport>> {
        match Manifest::load(&self.base)? {
            Some(m) => Ok(Some(m.verify_full(&self.base)?)),
            None => Ok(None),
        }
    }

    /// Delete every file in the [`file_set`](Self::file_set) (cleanup
    /// of replicas and temporaries).
    pub fn remove(&self) -> Result<()> {
        for p in self.file_set() {
            std::fs::remove_file(&p).map_err(|e| IoError::os("remove", &p, e))?;
        }
        Ok(())
    }
}

/// Write the `.hdr` sidecar declaring `codec` and the decoded
/// adjacency length for the graph at `base`. Called by compressed
/// writers (including the orientation recompress pass); raw graphs
/// carry no header.
pub fn write_graph_header(
    base: &Path,
    codec: Codec,
    adj_len: u64,
    stats: &Arc<IoStats>,
) -> Result<()> {
    let mut w = U32Writer::create(suffixed(base, ".hdr"), stats.clone())?;
    w.write_all(&[
        HDR_MAGIC,
        HDR_VERSION,
        u32::from(codec.discriminant()),
        adj_len as u32,
        (adj_len >> 32) as u32,
    ])?;
    w.finish()?;
    Ok(())
}

/// Read the `.hdr` sidecar for `base` through an accounted reader.
/// `None` if the base carries no header (a legacy raw graph).
fn read_graph_header(base: &Path, stats: &Arc<IoStats>) -> Result<Option<(Codec, u64)>> {
    let hdr = suffixed(base, ".hdr");
    if !hdr.exists() {
        return Ok(None);
    }
    let mut r = U32Reader::open(&hdr, stats.clone())?;
    let words = r.read_all()?;
    if words.len() != HDR_WORDS || words[0] != HDR_MAGIC {
        return Err(IoError::malformed(&hdr, "not a PDTL graph header").into());
    }
    if words[1] != HDR_VERSION {
        return Err(
            IoError::malformed(&hdr, format!("unknown format version {}", words[1])).into(),
        );
    }
    let codec = Codec::from_discriminant(words[2] as u8)
        .ok_or_else(|| IoError::malformed(&hdr, format!("unknown codec {}", words[2])))?;
    let adj_len = u64::from(words[3]) | (u64::from(words[4]) << 32);
    Ok(Some((codec, adj_len)))
}

/// Streaming import: build a `DiskGraph` from a file of *sorted* packed
/// directed edges (`(u << 32) | v`, both directions present), as produced
/// by [`pdtl_io::external_sort_u64`]. This is the tail of the
/// edge-list → PDTL-format pipeline and never materialises the graph in
/// memory.
pub fn from_sorted_packed_edges(
    edge_file: &Path,
    n: u32,
    base: impl AsRef<Path>,
    stats: &Arc<IoStats>,
) -> Result<DiskGraph> {
    let base = base.as_ref().to_path_buf();
    if let Some(parent) = base.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| IoError::os("mkdir", parent, e))?;
        }
    }
    let records = pdtl_io::extsort::read_u64_records(edge_file, stats)?;
    let mut degw = U32Writer::create(deg_path(&base), stats.clone())?;
    let mut adjw = U32Writer::create(adj_path(&base), stats.clone())?;
    let mut current = 0u32;
    let mut deg = 0u32;
    let mut prev: Option<u64> = None;
    let mut adj_len = 0u64;
    for &rec in &records {
        if prev == Some(rec) {
            continue; // merged duplicate
        }
        prev = Some(rec);
        let (u, v) = ((rec >> 32) as u32, rec as u32);
        if u == v {
            continue;
        }
        if u >= n || v >= n {
            return Err(crate::GraphError::VertexOutOfRange {
                vertex: u.max(v),
                n,
            });
        }
        while current < u {
            degw.write(deg)?;
            deg = 0;
            current += 1;
        }
        adjw.write(v)?;
        deg += 1;
        adj_len += 1;
    }
    while current < n {
        degw.write(deg)?;
        deg = 0;
        current += 1;
    }
    degw.finish()?;
    adjw.finish()?;
    Manifest::capture_and_store(&base)?;
    Ok(DiskGraph {
        base,
        n,
        adj_len,
        codec: Codec::Raw,
        disk_bytes: (n as u64 + adj_len) * BYTES_PER_U32,
    })
}

/// Prefix-sum degrees into CSR offsets (`n + 1` entries).
pub fn offsets_from_degrees(degrees: &[u32]) -> Vec<u64> {
    let mut offsets = Vec::with_capacity(degrees.len() + 1);
    offsets.push(0u64);
    let mut acc = 0u64;
    for &d in degrees {
        acc += d as u64;
        offsets.push(acc);
    }
    offsets
}

/// `base` with `ext` (including the dot) appended.
pub fn suffixed(base: &Path, ext: &str) -> PathBuf {
    let mut os = base.as_os_str().to_os_string();
    os.push(ext);
    PathBuf::from(os)
}

fn deg_path(base: &Path) -> PathBuf {
    suffixed(base, ".deg")
}

fn adj_path(base: &Path) -> PathBuf {
    suffixed(base, ".adj")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpbase(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("pdtl-disk-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    fn sample() -> Graph {
        Graph::from_edges(5, &[(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)]).unwrap()
    }

    #[test]
    fn write_open_round_trip() {
        let stats = IoStats::new();
        let g = sample();
        let base = tmpbase("rt");
        let dg = DiskGraph::write(&g, &base, &stats).unwrap();
        assert_eq!(dg.num_vertices(), 5);
        assert_eq!(dg.adj_len(), g.adj_len());

        let dg2 = DiskGraph::open(&base, &stats).unwrap();
        assert_eq!(dg2.num_vertices(), 5);
        assert_eq!(dg2.adj_len(), g.adj_len());
        let g2 = dg2.load_csr(&stats).unwrap();
        assert_eq!(g, g2);
        g2.validate().unwrap();
    }

    #[test]
    fn size_bytes_counts_both_files() {
        let stats = IoStats::new();
        let g = sample();
        let dg = DiskGraph::write(&g, tmpbase("size"), &stats).unwrap();
        assert_eq!(dg.size_bytes(), (5 + g.adj_len()) * 4);
        let on_disk = std::fs::metadata(dg.deg_path()).unwrap().len()
            + std::fs::metadata(dg.adj_path()).unwrap().len();
        assert_eq!(dg.size_bytes(), on_disk);
    }

    #[test]
    fn load_degrees_matches() {
        let stats = IoStats::new();
        let g = sample();
        let dg = DiskGraph::write(&g, tmpbase("deg"), &stats).unwrap();
        assert_eq!(dg.load_degrees(&stats).unwrap(), g.degrees());
    }

    #[test]
    fn copy_to_replicates() {
        let stats = IoStats::new();
        let g = sample();
        let dg = DiskGraph::write(&g, tmpbase("cp-src"), &stats).unwrap();
        let (dup, bytes) = dg.copy_to(tmpbase("cp-dst"), &stats).unwrap();
        let mft_len = std::fs::metadata(dg.mft_path()).unwrap().len();
        assert_eq!(bytes, dg.size_bytes() + mft_len);
        assert_eq!(dup.load_csr(&stats).unwrap(), g);
        // The replica carries its manifest and passes full verification.
        dup.verify_full().unwrap().expect("replica has a manifest");
        dup.remove().unwrap();
        assert!(!dup.deg_path().exists());
        assert!(!dup.mft_path().exists());
    }

    #[test]
    fn open_missing_fails_with_path() {
        let err = DiskGraph::open(tmpbase("nope"), &IoStats::new()).unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn detects_degree_adjacency_mismatch() {
        let stats = IoStats::new();
        let g = sample();
        let base = tmpbase("mismatch");
        let dg = DiskGraph::write(&g, &base, &stats).unwrap();
        // Truncate the adjacency file behind the handle's back: the
        // manifest's quick tier rejects it at open time.
        std::fs::write(dg.adj_path(), [0u8; 4]).unwrap();
        let err = DiskGraph::open(&base, &stats).unwrap_err();
        assert!(matches!(err, crate::GraphError::Truncated { .. }), "{err}");
        // Without a manifest (pre-integrity base) the structural
        // degree-sum check still catches it at load time.
        std::fs::remove_file(dg.mft_path()).unwrap();
        let dg = DiskGraph::open(&base, &stats).unwrap();
        assert!(dg.load_parts(&stats).is_err());
    }

    #[test]
    fn offsets_from_degrees_prefix_sums() {
        assert_eq!(offsets_from_degrees(&[]), vec![0]);
        assert_eq!(offsets_from_degrees(&[2, 0, 3]), vec![0, 2, 2, 5]);
    }

    #[test]
    fn import_from_sorted_packed_edges() {
        let stats = IoStats::new();
        let g = sample();
        // produce the packed bidirectional edge stream, sorted
        let mut packed: Vec<u64> = Vec::new();
        for (u, v) in g.edges() {
            packed.push(((u as u64) << 32) | v as u64);
            packed.push(((v as u64) << 32) | u as u64);
        }
        // include a duplicate and a self loop to exercise cleaning
        packed.push(packed[0]);
        packed.push((2u64 << 32) | 2);
        packed.sort_unstable();
        let ef = tmpbase("packed-edges");
        pdtl_io::extsort::write_u64_records(&ef, &packed, &stats).unwrap();
        let dg = from_sorted_packed_edges(&ef, 5, tmpbase("imported"), &stats).unwrap();
        let g2 = dg.load_csr(&stats).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn import_rejects_out_of_range() {
        let stats = IoStats::new();
        let ef = tmpbase("bad-edges");
        pdtl_io::extsort::write_u64_records(&ef, &[(9u64 << 32) | 1], &stats).unwrap();
        assert!(from_sorted_packed_edges(&ef, 5, tmpbase("bad-import"), &stats).is_err());
    }

    #[test]
    fn io_accounting_on_write_and_load() {
        let stats = IoStats::new();
        let g = sample();
        let dg = DiskGraph::write(&g, tmpbase("acct"), &stats).unwrap();
        let written = stats.bytes_written();
        assert_eq!(written, dg.size_bytes());
        dg.load_csr(&stats).unwrap();
        assert_eq!(stats.bytes_read(), dg.size_bytes());
    }

    #[test]
    fn raw_write_emits_no_codec_sidecars() {
        let stats = IoStats::new();
        let g = sample();
        let dg = DiskGraph::write(&g, tmpbase("nosidecar"), &stats).unwrap();
        assert_eq!(dg.codec(), Codec::Raw);
        assert!(!dg.hdr_path().exists());
        assert!(!dg.vix_path().exists());
        // The data pair stays byte-identical to the PR 2 format; the
        // only addition is the advisory integrity manifest.
        assert_eq!(
            dg.file_set(),
            vec![dg.deg_path(), dg.adj_path(), dg.mft_path()]
        );
    }

    #[test]
    fn compressed_write_open_round_trip() {
        let stats = IoStats::new();
        let g = sample();
        let base = tmpbase("vrt");
        let dg = DiskGraph::write_with(&g, &base, Codec::DeltaVarint, &stats).unwrap();
        assert_eq!(dg.codec(), Codec::DeltaVarint);
        assert_eq!(dg.adj_len(), g.adj_len(), "adj_len is decoded length");
        assert!(dg.hdr_path().exists() && dg.vix_path().exists());
        assert_eq!(
            dg.file_set(),
            vec![
                dg.deg_path(),
                dg.adj_path(),
                dg.hdr_path(),
                dg.vix_path(),
                dg.mft_path()
            ]
        );

        // Reopening recovers the codec and decoded length from the
        // header — through an accounted reader.
        let before = stats.bytes_read();
        let dg2 = DiskGraph::open(&base, &stats).unwrap();
        assert!(stats.bytes_read() > before, "header read is accounted");
        assert_eq!(dg2.codec(), Codec::DeltaVarint);
        assert_eq!(dg2.adj_len(), g.adj_len());
        assert_eq!(dg2.load_csr(&stats).unwrap(), g);
    }

    #[test]
    fn compressed_copy_ships_the_whole_file_set() {
        let stats = IoStats::new();
        let g = sample();
        let dg = DiskGraph::write_with(&g, tmpbase("vcp-src"), Codec::DeltaVarint, &stats).unwrap();
        let (dup, bytes) = dg.copy_to(tmpbase("vcp-dst"), &stats).unwrap();
        let mft_len = std::fs::metadata(dg.mft_path()).unwrap().len();
        assert_eq!(
            bytes,
            dg.size_bytes() + mft_len,
            "all data files plus the manifest copied"
        );
        assert_eq!(dup.codec(), Codec::DeltaVarint);
        assert_eq!(dup.load_csr(&stats).unwrap(), g);
        dup.remove().unwrap();
        assert!(dup.file_set().is_empty(), "remove clears every sidecar");
    }

    #[test]
    fn corrupt_header_is_rejected() {
        let stats = IoStats::new();
        let g = sample();
        let base = tmpbase("badhdr");
        let dg = DiskGraph::write_with(&g, &base, Codec::DeltaVarint, &stats).unwrap();
        std::fs::write(dg.hdr_path(), 0xdeadbeefu32.to_le_bytes()).unwrap();
        // With the manifest present the garbage header is caught by the
        // quick integrity tier at open.
        let err = DiskGraph::open(&base, &stats).unwrap_err();
        assert!(matches!(err, crate::GraphError::Truncated { .. }), "{err}");
        // Without the manifest the structural header parse still
        // rejects it with a typed error.
        std::fs::remove_file(dg.mft_path()).unwrap();
        let err = DiskGraph::open(&base, &stats).unwrap_err();
        assert!(err.to_string().contains("header"), "{err}");
    }

    #[test]
    fn write_commits_a_manifest_and_full_verify_passes() {
        let stats = IoStats::new();
        let g = sample();
        for codec in Codec::ALL {
            let base = tmpbase(&format!("mft-{}", codec.name()));
            let dg = DiskGraph::write_with(&g, &base, codec, &stats).unwrap();
            assert!(dg.mft_path().exists());
            let report = dg.verify_full().unwrap().expect("manifest present");
            assert_eq!(
                report.files,
                dg.file_set().len() - 1,
                "covers all data files"
            );
        }
    }

    #[test]
    fn pre_integrity_graph_without_manifest_still_opens() {
        let stats = IoStats::new();
        let g = sample();
        let base = tmpbase("legacy");
        let dg = DiskGraph::write(&g, &base, &stats).unwrap();
        std::fs::remove_file(dg.mft_path()).unwrap();
        let dg = DiskGraph::open(&base, &stats).unwrap();
        assert_eq!(dg.load_csr(&stats).unwrap(), g);
        assert!(
            dg.verify_full().unwrap().is_none(),
            "nothing to verify against"
        );
    }

    #[test]
    fn deep_bitflip_passes_open_but_fails_full_verify() {
        let stats = IoStats::new();
        // Big enough that .adj exceeds the quick-digest cutoff.
        let edges: Vec<(u32, u32)> = (0u32..1500).map(|i| (i, (i + 7) % 1500)).collect();
        let g = Graph::from_edges(1500, &edges).unwrap();
        let base = tmpbase("deepflip");
        let dg = DiskGraph::write(&g, &base, &stats).unwrap();
        assert!(
            std::fs::metadata(dg.adj_path()).unwrap().len() > crate::manifest::QUICK_DIGEST_MAX
        );
        let mut bytes = std::fs::read(dg.adj_path()).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(dg.adj_path(), &bytes).unwrap();
        // Length unchanged, file too big for the quick digest: open
        // succeeds — the full tier is what catches it.
        let dg = DiskGraph::open(&base, &stats).unwrap();
        let err = dg.verify_full().unwrap_err();
        assert!(matches!(err, crate::GraphError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn all_exts_agrees_with_manifest_data_exts() {
        assert_eq!(DiskGraph::ALL_EXTS[..6], crate::manifest::DATA_EXTS);
        assert_eq!(DiskGraph::ALL_EXTS[6], MFT_EXT);
    }
}
