//! The PDTL binary on-disk graph format.
//!
//! Per the paper (§V-B): *"graphs are in binary, bi-directional format,
//! with degrees of vertices and their out-edges in separate files"* and
//! *"edges are sorted by source and destination"*. Concretely, a graph
//! named `base` is the file pair:
//!
//! * `base.deg` — `n` little-endian `u32` degrees, vertex order;
//! * `base.adj` — the concatenated adjacency lists in vertex order, each
//!   sorted ascending (`sum(deg)` values; `2|E|` for an undirected graph,
//!   `|E*|` for an oriented one).
//!
//! The same pair of files stores both undirected inputs and oriented
//! outputs (orientation just changes which neighbours are present), so the
//! whole pipeline — orientation, replication, per-core MGT — moves these
//! two files around.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use pdtl_io::{IoError, IoStats, U32Reader, U32Writer, BYTES_PER_U32};

use crate::csr::Graph;
use crate::error::Result;

/// Handle to a graph stored in PDTL binary format.
#[derive(Debug, Clone)]
pub struct DiskGraph {
    base: PathBuf,
    n: u32,
    adj_len: u64,
}

impl DiskGraph {
    /// Write `graph` to `base{.deg,.adj}`.
    pub fn write(graph: &Graph, base: impl AsRef<Path>, stats: &Arc<IoStats>) -> Result<Self> {
        let base = base.as_ref().to_path_buf();
        if let Some(parent) = base.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| IoError::os("mkdir", parent, e))?;
            }
        }
        let mut degw = U32Writer::create(deg_path(&base), stats.clone())?;
        for u in 0..graph.num_vertices() {
            degw.write(graph.degree(u))?;
        }
        degw.finish()?;
        let mut adjw = U32Writer::create(adj_path(&base), stats.clone())?;
        adjw.write_all(graph.adjacency())?;
        adjw.finish()?;
        Ok(Self {
            base,
            n: graph.num_vertices(),
            adj_len: graph.adj_len(),
        })
    }

    /// Open an existing `base{.deg,.adj}` pair, validating sizes.
    pub fn open(base: impl AsRef<Path>, stats: &Arc<IoStats>) -> Result<Self> {
        let base = base.as_ref().to_path_buf();
        let deg = deg_path(&base);
        let adj = adj_path(&base);
        let deg_meta = std::fs::metadata(&deg).map_err(|e| IoError::os("stat", &deg, e))?;
        let adj_meta = std::fs::metadata(&adj).map_err(|e| IoError::os("stat", &adj, e))?;
        if deg_meta.len() % BYTES_PER_U32 != 0 {
            return Err(IoError::malformed(&deg, "degree file not u32-aligned").into());
        }
        if adj_meta.len() % BYTES_PER_U32 != 0 {
            return Err(IoError::malformed(&adj, "adjacency file not u32-aligned").into());
        }
        let _ = stats; // sizes come from metadata, no data I/O yet
        Ok(Self {
            base,
            n: (deg_meta.len() / BYTES_PER_U32) as u32,
            adj_len: adj_meta.len() / BYTES_PER_U32,
        })
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u32 {
        self.n
    }

    /// Total adjacency entries (`2|E|` undirected, `|E*|` oriented).
    pub fn adj_len(&self) -> u64 {
        self.adj_len
    }

    /// The base path (without extension).
    pub fn base(&self) -> &Path {
        &self.base
    }

    /// Path of the degree file.
    pub fn deg_path(&self) -> PathBuf {
        deg_path(&self.base)
    }

    /// Path of the adjacency file.
    pub fn adj_path(&self) -> PathBuf {
        adj_path(&self.base)
    }

    /// Combined size of both files in bytes (what replication copies).
    pub fn size_bytes(&self) -> u64 {
        (self.n as u64 + self.adj_len) * BYTES_PER_U32
    }

    /// Read the whole degree file.
    pub fn load_degrees(&self, stats: &Arc<IoStats>) -> Result<Vec<u32>> {
        let mut r = U32Reader::open(self.deg_path(), stats.clone())?;
        Ok(r.read_all()?)
    }

    /// Open a counted reader positioned at the start of the adjacency
    /// file.
    pub fn open_adj(&self, stats: &Arc<IoStats>) -> Result<U32Reader> {
        Ok(U32Reader::open(self.adj_path(), stats.clone())?)
    }

    /// Load the full graph back into CSR form.
    ///
    /// Note: for an *oriented* graph the result is a directed adjacency
    /// structure and will not pass `Graph::validate`'s symmetry check;
    /// use [`load_parts`](Self::load_parts) in that case.
    pub fn load_csr(&self, stats: &Arc<IoStats>) -> Result<Graph> {
        let (offsets, adj) = self.load_parts(stats)?;
        Graph::from_parts(offsets, adj)
    }

    /// Load offsets (prefix sums of degrees) and raw adjacency.
    pub fn load_parts(&self, stats: &Arc<IoStats>) -> Result<(Vec<u64>, Vec<u32>)> {
        let degrees = self.load_degrees(stats)?;
        let offsets = offsets_from_degrees(&degrees);
        if *offsets.last().unwrap() != self.adj_len {
            return Err(IoError::malformed(
                self.adj_path(),
                format!(
                    "degree sum {} != adjacency length {}",
                    offsets.last().unwrap(),
                    self.adj_len
                ),
            )
            .into());
        }
        let mut r = self.open_adj(stats)?;
        let adj = r.read_all()?;
        Ok((offsets, adj))
    }

    /// Copy both files to a new base (replication to a node's local
    /// disk). Returns the new handle and the bytes copied.
    pub fn copy_to(&self, new_base: impl AsRef<Path>, stats: &Arc<IoStats>) -> Result<(Self, u64)> {
        let new_base = new_base.as_ref().to_path_buf();
        if let Some(parent) = new_base.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| IoError::os("mkdir", parent, e))?;
            }
        }
        let mut total = 0u64;
        for (src, dst) in [
            (self.deg_path(), deg_path(&new_base)),
            (self.adj_path(), adj_path(&new_base)),
        ] {
            let start = Instant::now();
            let bytes = std::fs::copy(&src, &dst).map_err(|e| IoError::os("copy", &src, e))?;
            let elapsed = start.elapsed();
            stats.record_read(bytes, elapsed / 2);
            stats.record_write(bytes, elapsed / 2);
            total += bytes;
        }
        Ok((
            Self {
                base: new_base,
                n: self.n,
                adj_len: self.adj_len,
            },
            total,
        ))
    }

    /// Delete both files (cleanup of replicas and temporaries).
    pub fn remove(&self) -> Result<()> {
        for p in [self.deg_path(), self.adj_path()] {
            std::fs::remove_file(&p).map_err(|e| IoError::os("remove", &p, e))?;
        }
        Ok(())
    }
}

/// Streaming import: build a `DiskGraph` from a file of *sorted* packed
/// directed edges (`(u << 32) | v`, both directions present), as produced
/// by [`pdtl_io::external_sort_u64`]. This is the tail of the
/// edge-list → PDTL-format pipeline and never materialises the graph in
/// memory.
pub fn from_sorted_packed_edges(
    edge_file: &Path,
    n: u32,
    base: impl AsRef<Path>,
    stats: &Arc<IoStats>,
) -> Result<DiskGraph> {
    let base = base.as_ref().to_path_buf();
    if let Some(parent) = base.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| IoError::os("mkdir", parent, e))?;
        }
    }
    let records = pdtl_io::extsort::read_u64_records(edge_file, stats)?;
    let mut degw = U32Writer::create(deg_path(&base), stats.clone())?;
    let mut adjw = U32Writer::create(adj_path(&base), stats.clone())?;
    let mut current = 0u32;
    let mut deg = 0u32;
    let mut prev: Option<u64> = None;
    let mut adj_len = 0u64;
    for &rec in &records {
        if prev == Some(rec) {
            continue; // merged duplicate
        }
        prev = Some(rec);
        let (u, v) = ((rec >> 32) as u32, rec as u32);
        if u == v {
            continue;
        }
        if u >= n || v >= n {
            return Err(crate::GraphError::VertexOutOfRange {
                vertex: u.max(v),
                n,
            });
        }
        while current < u {
            degw.write(deg)?;
            deg = 0;
            current += 1;
        }
        adjw.write(v)?;
        deg += 1;
        adj_len += 1;
    }
    while current < n {
        degw.write(deg)?;
        deg = 0;
        current += 1;
    }
    degw.finish()?;
    adjw.finish()?;
    Ok(DiskGraph { base, n, adj_len })
}

/// Prefix-sum degrees into CSR offsets (`n + 1` entries).
pub fn offsets_from_degrees(degrees: &[u32]) -> Vec<u64> {
    let mut offsets = Vec::with_capacity(degrees.len() + 1);
    offsets.push(0u64);
    let mut acc = 0u64;
    for &d in degrees {
        acc += d as u64;
        offsets.push(acc);
    }
    offsets
}

fn deg_path(base: &Path) -> PathBuf {
    let mut os = base.as_os_str().to_os_string();
    os.push(".deg");
    PathBuf::from(os)
}

fn adj_path(base: &Path) -> PathBuf {
    let mut os = base.as_os_str().to_os_string();
    os.push(".adj");
    PathBuf::from(os)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpbase(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("pdtl-disk-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    fn sample() -> Graph {
        Graph::from_edges(5, &[(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)]).unwrap()
    }

    #[test]
    fn write_open_round_trip() {
        let stats = IoStats::new();
        let g = sample();
        let base = tmpbase("rt");
        let dg = DiskGraph::write(&g, &base, &stats).unwrap();
        assert_eq!(dg.num_vertices(), 5);
        assert_eq!(dg.adj_len(), g.adj_len());

        let dg2 = DiskGraph::open(&base, &stats).unwrap();
        assert_eq!(dg2.num_vertices(), 5);
        assert_eq!(dg2.adj_len(), g.adj_len());
        let g2 = dg2.load_csr(&stats).unwrap();
        assert_eq!(g, g2);
        g2.validate().unwrap();
    }

    #[test]
    fn size_bytes_counts_both_files() {
        let stats = IoStats::new();
        let g = sample();
        let dg = DiskGraph::write(&g, tmpbase("size"), &stats).unwrap();
        assert_eq!(dg.size_bytes(), (5 + g.adj_len()) * 4);
        let on_disk = std::fs::metadata(dg.deg_path()).unwrap().len()
            + std::fs::metadata(dg.adj_path()).unwrap().len();
        assert_eq!(dg.size_bytes(), on_disk);
    }

    #[test]
    fn load_degrees_matches() {
        let stats = IoStats::new();
        let g = sample();
        let dg = DiskGraph::write(&g, tmpbase("deg"), &stats).unwrap();
        assert_eq!(dg.load_degrees(&stats).unwrap(), g.degrees());
    }

    #[test]
    fn copy_to_replicates() {
        let stats = IoStats::new();
        let g = sample();
        let dg = DiskGraph::write(&g, tmpbase("cp-src"), &stats).unwrap();
        let (dup, bytes) = dg.copy_to(tmpbase("cp-dst"), &stats).unwrap();
        assert_eq!(bytes, dg.size_bytes());
        assert_eq!(dup.load_csr(&stats).unwrap(), g);
        dup.remove().unwrap();
        assert!(!dup.deg_path().exists());
    }

    #[test]
    fn open_missing_fails_with_path() {
        let err = DiskGraph::open(tmpbase("nope"), &IoStats::new()).unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn detects_degree_adjacency_mismatch() {
        let stats = IoStats::new();
        let g = sample();
        let base = tmpbase("mismatch");
        let dg = DiskGraph::write(&g, &base, &stats).unwrap();
        // Truncate the adjacency file behind the handle's back.
        std::fs::write(dg.adj_path(), [0u8; 4]).unwrap();
        let dg = DiskGraph::open(&base, &stats).unwrap();
        assert!(dg.load_parts(&stats).is_err());
    }

    #[test]
    fn offsets_from_degrees_prefix_sums() {
        assert_eq!(offsets_from_degrees(&[]), vec![0]);
        assert_eq!(offsets_from_degrees(&[2, 0, 3]), vec![0, 2, 2, 5]);
    }

    #[test]
    fn import_from_sorted_packed_edges() {
        let stats = IoStats::new();
        let g = sample();
        // produce the packed bidirectional edge stream, sorted
        let mut packed: Vec<u64> = Vec::new();
        for (u, v) in g.edges() {
            packed.push(((u as u64) << 32) | v as u64);
            packed.push(((v as u64) << 32) | u as u64);
        }
        // include a duplicate and a self loop to exercise cleaning
        packed.push(packed[0]);
        packed.push((2u64 << 32) | 2);
        packed.sort_unstable();
        let ef = tmpbase("packed-edges");
        pdtl_io::extsort::write_u64_records(&ef, &packed, &stats).unwrap();
        let dg = from_sorted_packed_edges(&ef, 5, tmpbase("imported"), &stats).unwrap();
        let g2 = dg.load_csr(&stats).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn import_rejects_out_of_range() {
        let stats = IoStats::new();
        let ef = tmpbase("bad-edges");
        pdtl_io::extsort::write_u64_records(&ef, &[(9u64 << 32) | 1], &stats).unwrap();
        assert!(from_sorted_packed_edges(&ef, 5, tmpbase("bad-import"), &stats).is_err());
    }

    #[test]
    fn io_accounting_on_write_and_load() {
        let stats = IoStats::new();
        let g = sample();
        let dg = DiskGraph::write(&g, tmpbase("acct"), &stats).unwrap();
        let written = stats.bytes_written();
        assert_eq!(written, dg.size_bytes());
        dg.load_csr(&stats).unwrap();
        assert_eq!(stats.bytes_read(), dg.size_bytes());
    }
}
