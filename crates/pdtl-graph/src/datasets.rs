//! Named, scaled stand-ins for the paper's evaluation datasets.
//!
//! The paper evaluates on four real graphs (soc-LiveJournal1, com-Orkut,
//! Twitter \[15\], Yahoo \[1\]) and the RMAT-26..29 family. The real graphs
//! are 0.3–59 GB downloads that cannot ship with a reproduction, so each
//! gets a Chung–Lu stand-in tuned to the *shape* Table I reports —
//! average degree and tail skew — at roughly 1/1000 scale:
//!
//! | Stand-in      | paper avg deg | paper skew signature                    |
//! |---------------|---------------|-----------------------------------------|
//! | `LiveJournal` | 17.8          | moderate tail (max/avg ≈ 1100×)          |
//! | `Orkut`       | 76.0          | dense, mild tail (max/avg ≈ 440×)        |
//! | `Twitter`     | 57.7          | extreme hubs (max/avg ≈ 52 000×)         |
//! | `Yahoo`       | 17.9          | sparse *and* extreme hubs (≈ 427 000×)   |
//!
//! Yahoo's combination — low average degree with colossal hubs — is what
//! makes it the paper's pathological case (poor scaling past 16 cores,
//! copy-time anomalies); the stand-in preserves exactly that combination.
//! RMAT-k uses the paper's own generator at smaller k (the harness maps
//! paper RMAT-26..29 to RMAT-11..14 by default).

use crate::csr::Graph;
use crate::error::Result;
use crate::gen::chunglu::power_law_graph;
use crate::gen::rmat;

/// The evaluation datasets (scaled stand-ins).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// soc-LiveJournal1 stand-in.
    LiveJournal,
    /// com-Orkut stand-in.
    Orkut,
    /// Twitter (Kwak et al.) stand-in.
    Twitter,
    /// Yahoo webgraph stand-in.
    Yahoo,
    /// RMAT-k with the paper's 2^k vertices / 2^(k+4) edge samples.
    Rmat(u32),
}

impl Dataset {
    /// Display name (matches the paper's tables, with scale suffix for
    /// RMAT).
    pub fn name(&self) -> String {
        match self {
            Dataset::LiveJournal => "LiveJ1".into(),
            Dataset::Orkut => "Orkut".into(),
            Dataset::Twitter => "Twitter".into(),
            Dataset::Yahoo => "Yahoo".into(),
            Dataset::Rmat(k) => format!("RMAT-{k}"),
        }
    }

    /// The four real-graph stand-ins.
    pub fn real_graphs() -> [Dataset; 4] {
        [
            Dataset::LiveJournal,
            Dataset::Orkut,
            Dataset::Twitter,
            Dataset::Yahoo,
        ]
    }

    /// Deterministic generation seed (fixed per dataset so cached
    /// datasets and recorded triangle counts stay valid).
    pub fn seed(&self) -> u64 {
        match self {
            Dataset::LiveJournal => 0x11A5,
            Dataset::Orkut => 0x0247,
            Dataset::Twitter => 0x7217,
            Dataset::Yahoo => 0x1AB0,
            Dataset::Rmat(k) => 0x4A17 + *k as u64,
        }
    }

    /// Build the stand-in at unit scale.
    pub fn build(&self) -> Result<Graph> {
        self.build_scaled(1.0)
    }

    /// Build with vertex/edge counts multiplied by `factor` (>= 1/64).
    pub fn build_scaled(&self, factor: f64) -> Result<Graph> {
        let f = factor.max(1.0 / 64.0);
        let scale_n = |n: u32| ((n as f64 * f) as u32).max(16);
        let scale_m = |m: u64| ((m as f64 * f) as u64).max(32);
        match self {
            // n, m, gamma, dmin, dmax chosen per the table above.
            Dataset::LiveJournal => power_law_graph(
                scale_n(20_000),
                scale_m(178_000),
                2.6,
                4.0,
                700.0 * f.sqrt(),
                self.seed(),
            ),
            Dataset::Orkut => power_law_graph(
                scale_n(12_000),
                scale_m(456_000),
                2.4,
                24.0,
                1_400.0 * f.sqrt(),
                self.seed(),
            ),
            Dataset::Twitter => power_law_graph(
                scale_n(24_000),
                scale_m(692_000),
                1.9,
                4.0,
                11_000.0 * f.sqrt(),
                self.seed(),
            ),
            // Yahoo is the paper's largest graph (6.6B edges, 4.4x
            // Twitter) — the stand-in preserves that ordering as well
            // as the sparse + extreme-hub shape.
            Dataset::Yahoo => power_law_graph(
                scale_n(172_000),
                scale_m(1_540_000),
                1.72,
                1.0,
                24_000.0 * f.sqrt(),
                self.seed(),
            ),
            Dataset::Rmat(k) => rmat::rmat(*k, self.seed()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;

    #[test]
    fn names_match_paper() {
        assert_eq!(Dataset::LiveJournal.name(), "LiveJ1");
        assert_eq!(Dataset::Rmat(14).name(), "RMAT-14");
    }

    #[test]
    fn builds_are_deterministic() {
        let a = Dataset::LiveJournal.build_scaled(0.05).unwrap();
        let b = Dataset::LiveJournal.build_scaled(0.05).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn average_degrees_track_paper() {
        // At 1/10 scale the average degree should stay near the paper's
        // value: the generators hold m/n constant.
        let lj = Dataset::LiveJournal.build_scaled(0.1).unwrap();
        let s = GraphStats::compute("lj", &lj);
        assert!(
            (10.0..26.0).contains(&s.avg_degree),
            "LiveJournal avg {}",
            s.avg_degree
        );

        let orkut = Dataset::Orkut.build_scaled(0.1).unwrap();
        let s = GraphStats::compute("orkut", &orkut);
        assert!(
            (45.0..90.0).contains(&s.avg_degree),
            "Orkut avg {}",
            s.avg_degree
        );
    }

    #[test]
    fn twitter_is_more_skewed_than_livejournal() {
        let tw = Dataset::Twitter.build_scaled(0.1).unwrap();
        let lj = Dataset::LiveJournal.build_scaled(0.1).unwrap();
        let skew = |g: &Graph| {
            let s = GraphStats::compute("", g);
            s.max_degree as f64 / s.avg_degree
        };
        assert!(
            skew(&tw) > 1.3 * skew(&lj),
            "twitter skew {} vs lj skew {}",
            skew(&tw),
            skew(&lj)
        );
    }

    #[test]
    fn yahoo_is_sparse_with_huge_hubs() {
        let y = Dataset::Yahoo.build_scaled(0.1).unwrap();
        let s = GraphStats::compute("yahoo", &y);
        assert!(
            s.avg_degree < 30.0,
            "yahoo must stay sparse: {}",
            s.avg_degree
        );
        assert!(
            s.max_degree as f64 > 40.0 * s.avg_degree,
            "yahoo hubs: max {} avg {}",
            s.max_degree,
            s.avg_degree
        );
    }

    #[test]
    fn rmat_variant_uses_paper_sizes() {
        let g = Dataset::Rmat(8).build().unwrap();
        assert_eq!(g.num_vertices(), 256);
    }

    #[test]
    fn tiny_scale_clamps() {
        let g = Dataset::Orkut.build_scaled(1e-9).unwrap();
        assert!(g.num_vertices() >= 16);
    }
}
