//! Reimplementations of the systems PDTL is evaluated against.
//!
//! The paper compares PDTL with MGT (single-core; our engine at
//! `N = P = 1`), OPT \[14\], PATRIC \[3\], PowerGraph \[10\] and CTTP \[20\].
//! None of those systems is available as portable open source, so this
//! crate rebuilds each one's *resource signature* — the properties the
//! paper's comparisons actually measure:
//!
//! * [`inmem`] — textbook in-memory counters (node-iterator,
//!   edge-iterator, compact-forward) used as correctness anchors and
//!   micro-benchmark baselines.
//! * [`optlike`] — OPT: a disk-based single-machine system with an
//!   expensive multi-pass "database creation" preprocessing step and a
//!   fast multicore counting phase that pays random I/O when the graph
//!   exceeds memory (Table V, Figure 12).
//! * [`patric`] — PATRIC: MPI-style vertex partitioning where each
//!   partition plus its one-hop halo *must fit in memory* (§V-E4).
//! * [`powergraph`] — a miniature GAS (gather/apply/scatter) framework
//!   with vertex-cut partitioning and per-replica memory accounting;
//!   the replicated neighbour sets of its triangle-count program are why
//!   it runs out of memory on large graphs (Table VI's `F` entries).
//! * [`cttp`] — a round-based MapReduce emulation whose intermediate
//!   shuffle volume demonstrates why MapReduce counters are
//!   uncompetitive (§V-E4).

pub mod cttp;
pub mod error;
pub mod inmem;
pub mod optlike;
pub mod patric;
pub mod powergraph;

pub use error::{BaselineError, Result};
