//! A miniature PowerGraph: vertex-cut GAS framework (Gonzalez et al.,
//! OSDI'12) with the triangle-counting program the paper benchmarks.
//!
//! PowerGraph distributes *edges* across machines (a vertex-cut); a
//! vertex spanned by several machines gets one master replica and
//! mirrors, and computation follows Gather → Apply → Scatter supersteps
//! with mirror↔master synchronisation. Its triangle-count program
//! gathers every vertex's full neighbour set and replicates it to all
//! mirrors — which is why the paper's Table VI shows `F` (out of
//! memory) on Yahoo and RMAT-28/29 even with 244 GB/node, while PDTL
//! finishes in 1 GB/core. This module reproduces:
//!
//! * a real (if small) GAS engine: the [`VertexProgram`] trait, vertex
//!   masters/mirrors, counted mirror↔master network traffic;
//! * random and greedy vertex-cut partitioners with replication-factor
//!   reporting;
//! * per-machine memory accounting with hard OOM — the `F` entries;
//! * the setup-heavy profile (partitioning + neighbour-set replication)
//!   that makes PowerGraph's total time ~2× its calc time (Figure 13).

use pdtl_core::intersect::intersect_count;
use pdtl_graph::gen::rng::SplitMix64;
use pdtl_graph::Graph;
use rayon::prelude::*;

use crate::error::{BaselineError, Result};

/// Vertex-cut partitioning heuristics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VertexCut {
    /// Edges assigned uniformly at random.
    Random,
    /// PowerGraph's greedy heuristic: prefer machines already hosting
    /// an endpoint, break ties by load.
    #[default]
    Greedy,
}

/// Configuration of a PowerGraph-like run.
#[derive(Debug, Clone, Copy)]
pub struct PowerGraphConfig {
    /// Number of machines.
    pub machines: usize,
    /// Memory budget per machine, in bytes.
    pub memory_bytes: u64,
    /// Edge partitioning heuristic.
    pub cut: VertexCut,
    /// Seed for the random cut.
    pub seed: u64,
}

/// An edge-partitioned graph with replica metadata.
#[derive(Debug)]
pub struct DistributedGraph {
    n: u32,
    /// Per-machine edge lists (each undirected edge on exactly one
    /// machine).
    pub machine_edges: Vec<Vec<(u32, u32)>>,
    /// Per-vertex list of machines hosting a replica.
    pub replicas: Vec<Vec<u16>>,
}

impl DistributedGraph {
    /// Partition `g` over `machines` machines.
    pub fn partition(g: &Graph, machines: usize, cut: VertexCut, seed: u64) -> Result<Self> {
        if machines == 0 {
            return Err(BaselineError::Config("machines must be >= 1".into()));
        }
        let n = g.num_vertices();
        let mut machine_edges: Vec<Vec<(u32, u32)>> = vec![Vec::new(); machines];
        let mut hosts: Vec<Vec<u16>> = vec![Vec::new(); n as usize];
        let mut loads = vec![0u64; machines];
        let mut rng = SplitMix64::new(seed);

        for (u, v) in g.edges() {
            let m = match cut {
                VertexCut::Random => rng.next_bounded(machines as u64) as usize,
                VertexCut::Greedy => {
                    greedy_choice(&hosts[u as usize], &hosts[v as usize], &loads, &mut rng)
                }
            };
            machine_edges[m].push((u, v));
            loads[m] += 1;
            for x in [u, v] {
                if !hosts[x as usize].contains(&(m as u16)) {
                    hosts[x as usize].push(m as u16);
                }
            }
        }
        Ok(Self {
            n,
            machine_edges,
            replicas: hosts,
        })
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u32 {
        self.n
    }

    /// Average replicas per non-isolated vertex — PowerGraph's key
    /// partition-quality metric.
    pub fn replication_factor(&self) -> f64 {
        let (sum, cnt) = self
            .replicas
            .iter()
            .filter(|r| !r.is_empty())
            .fold((0usize, 0usize), |(s, c), r| (s + r.len(), c + 1));
        if cnt == 0 {
            0.0
        } else {
            sum as f64 / cnt as f64
        }
    }
}

fn greedy_choice(hu: &[u16], hv: &[u16], loads: &[u64], rng: &mut SplitMix64) -> usize {
    // Case 1: a machine hosts both endpoints.
    let both: Vec<u16> = hu.iter().copied().filter(|m| hv.contains(m)).collect();
    let candidates: &[u16] = if !both.is_empty() {
        &both
    } else if !hu.is_empty() || !hv.is_empty() {
        // Case 2: machines hosting either endpoint — prefer the
        // endpoint with the shorter (non-empty) replica list.
        match (hu.is_empty(), hv.is_empty()) {
            (true, _) => hv,
            (_, true) => hu,
            _ if hu.len() <= hv.len() => hu,
            _ => hv,
        }
    } else {
        // Case 3: fresh edge — any machine; pick least loaded globally.
        let min = loads
            .iter()
            .enumerate()
            .min_by_key(|&(_, l)| l)
            .map(|(i, _)| i)
            .unwrap_or(0);
        let _ = rng;
        return min;
    };
    let best = *candidates
        .iter()
        .min_by_key(|&&m| loads[m as usize])
        .unwrap() as usize;
    // Balance constraint: when every candidate is far above the global
    // minimum load, spill to the least-loaded machine instead (this is
    // what keeps the real greedy heuristic from collapsing the whole
    // graph onto one machine).
    let (global_min, min_load) = loads
        .iter()
        .enumerate()
        .min_by_key(|&(_, l)| l)
        .map(|(i, &l)| (i, l))
        .unwrap_or((best, 0));
    if loads[best] > 2 * (min_load + 1) {
        global_min
    } else {
        best
    }
}

/// A GAS vertex program: gather over edges, merge, apply into vertex
/// data that is then replicated to every mirror.
pub trait VertexProgram: Sync {
    /// Gather accumulator.
    type Acc: Clone + Send;
    /// Final vertex data (replicated to mirrors).
    type Data: Clone + Send + Sync + Default;

    /// Fresh accumulator.
    fn init(&self) -> Self::Acc;
    /// Gather along one incident edge: `other` is the far endpoint.
    fn gather(&self, v: u32, other: u32, acc: &mut Self::Acc);
    /// Merge two partial accumulators (mirror → master sync).
    fn merge(&self, into: &mut Self::Acc, from: Self::Acc);
    /// Apply: accumulator → vertex data.
    fn apply(&self, v: u32, acc: Self::Acc) -> Self::Data;
    /// Serialised size of the data (for memory and network accounting).
    fn data_bytes(&self, data: &Self::Data) -> u64;
}

/// Outcome of one GAS superstep.
#[derive(Debug)]
pub struct GasOutcome<D> {
    /// Per-vertex data after apply (master copies).
    pub data: Vec<D>,
    /// Mirror↔master network bytes (gather sync + apply broadcast).
    pub network_bytes: u64,
    /// Per-machine resident bytes after replication.
    pub machine_bytes: Vec<u64>,
}

/// Run one Gather → Apply → (replicate) superstep, enforcing the
/// per-machine memory budget.
pub fn run_gas<P: VertexProgram>(
    dg: &DistributedGraph,
    prog: &P,
    memory_bytes: u64,
) -> Result<GasOutcome<P::Data>> {
    let n = dg.n as usize;
    // Gather phase: per machine, local partial accumulators.
    let partials: Vec<std::collections::HashMap<u32, P::Acc>> = dg
        .machine_edges
        .par_iter()
        .map(|edges| {
            let mut local: std::collections::HashMap<u32, P::Acc> = Default::default();
            for &(u, v) in edges {
                prog.gather(u, v, local.entry(u).or_insert_with(|| prog.init()));
                prog.gather(v, u, local.entry(v).or_insert_with(|| prog.init()));
            }
            local
        })
        .collect();

    // Mirror → master merge (network traffic: one partial per mirror).
    let mut network_bytes = 0u64;
    let mut acc: Vec<Option<P::Acc>> = vec![None; n];
    for (machine, local) in partials.into_iter().enumerate() {
        for (v, partial) in local {
            let master = dg.replicas[v as usize].first().copied().unwrap_or(0) as usize;
            if machine != master {
                // approximate partial size by its applied data size
                network_bytes += 16;
            }
            match &mut acc[v as usize] {
                Some(a) => prog.merge(a, partial),
                slot @ None => *slot = Some(partial),
            }
        }
    }

    // Apply + broadcast to mirrors.
    let data: Vec<P::Data> = acc
        .into_iter()
        .enumerate()
        .map(|(v, a)| match a {
            Some(a) => prog.apply(v as u32, a),
            None => P::Data::default(),
        })
        .collect();
    for (v, d) in data.iter().enumerate() {
        let mirrors = dg.replicas[v].len().saturating_sub(1) as u64;
        network_bytes += mirrors * prog.data_bytes(d);
    }

    // Memory accounting: edges + replicated vertex data per machine.
    let mut machine_bytes = vec![0u64; dg.machine_edges.len()];
    for (m, edges) in dg.machine_edges.iter().enumerate() {
        machine_bytes[m] += edges.len() as u64 * 8;
    }
    for (v, d) in data.iter().enumerate() {
        let bytes = 16 + prog.data_bytes(d);
        for &m in &dg.replicas[v] {
            machine_bytes[m as usize] += bytes;
        }
    }
    if let Some((m, &bytes)) = machine_bytes.iter().enumerate().max_by_key(|&(_, b)| *b) {
        if bytes > memory_bytes {
            let _ = m;
            return Err(BaselineError::OutOfMemory {
                system: "powergraph",
                needed: bytes,
                budget: memory_bytes,
            });
        }
    }

    Ok(GasOutcome {
        data,
        network_bytes,
        machine_bytes,
    })
}

/// The neighbour-set program of PowerGraph's triangle counter: gather
/// collects each vertex's full neighbour id set.
pub struct NeighborSetProgram;

impl VertexProgram for NeighborSetProgram {
    type Acc = Vec<u32>;
    type Data = Vec<u32>;

    fn init(&self) -> Vec<u32> {
        Vec::new()
    }
    fn gather(&self, _v: u32, other: u32, acc: &mut Vec<u32>) {
        acc.push(other);
    }
    fn merge(&self, into: &mut Vec<u32>, from: Vec<u32>) {
        into.extend(from);
    }
    fn apply(&self, _v: u32, mut acc: Vec<u32>) -> Vec<u32> {
        acc.sort_unstable();
        acc.dedup();
        acc
    }
    fn data_bytes(&self, data: &Vec<u32>) -> u64 {
        4 * data.len() as u64
    }
}

/// A trivial degree program — demonstrates the engine is generic.
pub struct DegreeProgram;

impl VertexProgram for DegreeProgram {
    type Acc = u64;
    type Data = u64;

    fn init(&self) -> u64 {
        0
    }
    fn gather(&self, _v: u32, _other: u32, acc: &mut u64) {
        *acc += 1;
    }
    fn merge(&self, into: &mut u64, from: u64) {
        *into += from;
    }
    fn apply(&self, _v: u32, acc: u64) -> u64 {
        acc
    }
    fn data_bytes(&self, _data: &u64) -> u64 {
        8
    }
}

/// Outcome of the full PowerGraph-like triangle count.
#[derive(Debug)]
pub struct PowerGraphReport {
    /// Exact triangle count.
    pub triangles: u64,
    /// Average replicas per vertex.
    pub replication_factor: f64,
    /// Per-machine resident bytes.
    pub machine_bytes: Vec<u64>,
    /// Total mirror↔master network bytes.
    pub network_bytes: u64,
    /// Wall time of the setup phase (partition + gather/apply).
    pub setup: std::time::Duration,
    /// Wall time of the counting phase.
    pub calc: std::time::Duration,
}

/// Run PowerGraph-like triangle counting.
pub fn triangle_count(g: &Graph, config: PowerGraphConfig) -> Result<PowerGraphReport> {
    let setup_start = std::time::Instant::now();
    let dg = DistributedGraph::partition(g, config.machines, config.cut, config.seed)?;
    let outcome = run_gas(&dg, &NeighborSetProgram, config.memory_bytes)?;
    let setup = setup_start.elapsed();

    // Counting superstep: each machine intersects the replicated
    // neighbour sets along its local edges; every triangle appears on
    // exactly 3 edges.
    let calc_start = std::time::Instant::now();
    let data = &outcome.data;
    let triple: u64 = dg
        .machine_edges
        .par_iter()
        .map(|edges| {
            edges
                .iter()
                .map(|&(u, v)| intersect_count(&data[u as usize], &data[v as usize]))
                .sum::<u64>()
        })
        .sum();
    debug_assert_eq!(triple % 3, 0);
    let calc = calc_start.elapsed();

    Ok(PowerGraphReport {
        triangles: triple / 3,
        replication_factor: dg.replication_factor(),
        machine_bytes: outcome.machine_bytes,
        network_bytes: outcome.network_bytes,
        setup,
        calc,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdtl_graph::gen::classic::{complete, grid, wheel};
    use pdtl_graph::gen::rmat::rmat;
    use pdtl_graph::verify;

    fn cfg(machines: usize, mem: u64) -> PowerGraphConfig {
        PowerGraphConfig {
            machines,
            memory_bytes: mem,
            cut: VertexCut::Greedy,
            seed: 7,
        }
    }

    #[test]
    fn counts_match_oracle() {
        for seed in [91, 92] {
            let g = rmat(7, seed).unwrap();
            let expected = verify::triangle_count(&g);
            for machines in [1usize, 2, 4] {
                let r = triangle_count(&g, cfg(machines, u64::MAX)).unwrap();
                assert_eq!(r.triangles, expected, "machines={machines} seed={seed}");
            }
        }
    }

    #[test]
    fn both_cuts_correct() {
        let g = wheel(30).unwrap();
        for cut in [VertexCut::Random, VertexCut::Greedy] {
            let r = triangle_count(
                &g,
                PowerGraphConfig {
                    machines: 3,
                    memory_bytes: u64::MAX,
                    cut,
                    seed: 9,
                },
            )
            .unwrap();
            assert_eq!(r.triangles, 29, "{cut:?}");
        }
    }

    #[test]
    fn partition_covers_every_edge_once() {
        let g = rmat(7, 93).unwrap();
        let dg = DistributedGraph::partition(&g, 4, VertexCut::Greedy, 1).unwrap();
        let total: usize = dg.machine_edges.iter().map(|e| e.len()).sum();
        assert_eq!(total as u64, g.num_edges());
        let mut seen = std::collections::HashSet::new();
        for edges in &dg.machine_edges {
            for &e in edges {
                assert!(seen.insert(e), "edge {e:?} duplicated");
            }
        }
    }

    #[test]
    fn greedy_cut_replicates_less_than_random() {
        let g = rmat(9, 94).unwrap();
        let greedy = DistributedGraph::partition(&g, 8, VertexCut::Greedy, 1).unwrap();
        let random = DistributedGraph::partition(&g, 8, VertexCut::Random, 1).unwrap();
        assert!(
            greedy.replication_factor() < random.replication_factor(),
            "greedy {} vs random {}",
            greedy.replication_factor(),
            random.replication_factor()
        );
    }

    #[test]
    fn memory_grows_with_replication_and_ooms() {
        // Dense graph + several machines: replicated neighbour sets far
        // exceed the raw graph, and a tight budget fails with OOM — the
        // Table VI `F` behaviour.
        let g = complete(60).unwrap();
        let ok = triangle_count(&g, cfg(4, u64::MAX)).unwrap();
        let graph_bytes = g.adj_len() * 4;
        let total: u64 = ok.machine_bytes.iter().sum();
        assert!(
            total > 2 * graph_bytes,
            "replicated memory {total} vs graph {graph_bytes}"
        );

        let err = triangle_count(&g, cfg(4, graph_bytes / 4)).unwrap_err();
        assert!(matches!(
            err,
            BaselineError::OutOfMemory {
                system: "powergraph",
                ..
            }
        ));
    }

    #[test]
    fn pdtl_budget_is_enough_where_powergraph_ooms() {
        // The paper's headline: PDTL finishes in budgets where
        // PowerGraph fails. Verify on a dense graph with a budget that
        // holds the oriented graph but not the replicated sets.
        let g = complete(60).unwrap();
        let budget_bytes = g.adj_len() * 2; // half the raw graph
        assert!(triangle_count(&g, cfg(4, budget_bytes)).is_err());

        let report = pdtl_core::runner::count_triangles_with(
            &g,
            pdtl_core::LocalConfig {
                cores: 4,
                budget: pdtl_io::MemoryBudget::bytes(budget_bytes / 4),
                balance: Default::default(),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.triangles, verify::triangle_count(&g));
    }

    #[test]
    fn gas_engine_is_generic() {
        let g = wheel(12).unwrap();
        let dg = DistributedGraph::partition(&g, 3, VertexCut::Greedy, 2).unwrap();
        let out = run_gas(&dg, &DegreeProgram, u64::MAX).unwrap();
        for v in 0..g.num_vertices() {
            assert_eq!(out.data[v as usize], g.degree(v) as u64, "degree of {v}");
        }
    }

    #[test]
    fn network_traffic_counted() {
        let g = rmat(7, 95).unwrap();
        let r = triangle_count(&g, cfg(4, u64::MAX)).unwrap();
        assert!(r.network_bytes > 0);
        assert!(r.replication_factor >= 1.0);
    }

    #[test]
    fn triangle_free_graph() {
        let g = grid(10, 10).unwrap();
        let r = triangle_count(&g, cfg(3, u64::MAX)).unwrap();
        assert_eq!(r.triangles, 0);
    }

    #[test]
    fn zero_machines_rejected() {
        let g = wheel(5).unwrap();
        assert!(triangle_count(&g, cfg(0, 100)).is_err());
    }
}
