//! An OPT-like disk-based multicore counter (Kim et al., SIGMOD'14).
//!
//! OPT's signature in the paper's evaluation:
//!
//! * a *slow* preprocessing step ("database creation" — Table II shows it
//!   12×–75× slower than PDTL's orientation) that relabels vertices by
//!   degree and rewrites the graph in multiple passes;
//! * a *fast* multicore calculation phase, competitive with PDTL when
//!   the graph fits in memory, but paying random I/O when it does not —
//!   which is why OPT loses on the largest graphs (Figure 12, Table V).
//!
//! This reimplementation reproduces exactly those properties:
//! [`create_database`] performs the degree-rank relabeling with three
//! full passes over the edge set (scan → external sort → rewrite), and
//! [`count`] runs compact-forward either fully in memory or, when the
//! budget is too small, in cone-vertex batches with per-list random
//! reads from disk.

use std::path::Path;
use std::sync::Arc;

use pdtl_core::intersect::intersect_count;
use pdtl_core::orient::orient_csr;
use pdtl_graph::disk::offsets_from_degrees;
use pdtl_graph::{DiskGraph, Graph};
use pdtl_io::{external_sort_u64, IoStats, MemoryBudget, TimeBreakdown, U32Reader};
use rayon::prelude::*;

use crate::error::Result;

/// The OPT-like on-disk database: a degree-relabeled oriented graph.
#[derive(Debug, Clone)]
pub struct OptDatabase {
    /// The oriented, relabeled graph on disk.
    pub disk: DiskGraph,
    /// Oriented offsets of the relabeled graph.
    pub offsets: Vec<u64>,
    /// Time spent creating the database.
    pub creation: TimeBreakdown,
    /// Bytes of I/O the creation performed.
    pub creation_bytes: u64,
}

/// Build the OPT database from an undirected PDTL-format graph: relabel
/// vertices by ascending degree (OPT "requires that the input be sorted
/// by vertex degree"), orient, and write — with the multi-pass I/O
/// profile of a real database build.
pub fn create_database(
    input: &DiskGraph,
    out_base: &Path,
    stats: &Arc<IoStats>,
) -> Result<OptDatabase> {
    let timer = pdtl_io::CpuIoTimer::start(stats.clone());
    let before = stats.total_bytes();

    // Pass 1: scan degrees, compute the degree-rank permutation.
    let degrees = input.load_degrees(stats)?;
    let n = degrees.len() as u32;
    let mut order: Vec<u32> = (0..n).collect();
    order.sort_by_key(|&v| (degrees[v as usize], v));
    let mut rank = vec![0u32; n as usize];
    for (r, &v) in order.iter().enumerate() {
        rank[v as usize] = r as u32;
    }

    // Pass 2: rewrite every edge under the new labels into a packed
    // file, then externally sort it (two more passes over the data —
    // the expensive part of database creation).
    let offsets = offsets_from_degrees(&degrees);
    let mut reader = input.open_adj(stats)?;
    let packed_path = out_base.with_extension("packed");
    {
        let mut packed: Vec<u64> = Vec::with_capacity(*offsets.last().unwrap() as usize);
        let mut nbuf = Vec::new();
        for u in 0..n {
            let du = (offsets[u as usize + 1] - offsets[u as usize]) as usize;
            nbuf.clear();
            reader.read_into(&mut nbuf, du)?;
            let ru = rank[u as usize] as u64;
            for &v in &nbuf {
                packed.push((ru << 32) | rank[v as usize] as u64);
            }
        }
        pdtl_io::extsort::write_u64_records(&packed_path, &packed, stats)?;
    }
    let sorted_path = out_base.with_extension("sorted");
    external_sort_u64(&packed_path, &sorted_path, 1 << 20, stats)?;

    // Pass 3: materialise the relabeled graph, then orient it.
    let relabeled_base = out_base.with_extension("relabel");
    let relabeled =
        pdtl_graph::disk::from_sorted_packed_edges(&sorted_path, n, &relabeled_base, stats)?;
    let g = relabeled.load_csr(stats)?;
    let oriented = orient_csr(&g);
    let mut deg_out = Vec::with_capacity(n as usize);
    for v in 0..n {
        deg_out.push(oriented.d_star(v));
    }
    let disk = {
        // write oriented graph as the database
        let og = Graph::from_parts(oriented.offsets.clone(), oriented.adj.clone())?;
        // from_parts only checks lengths; the oriented structure is
        // directed, which DiskGraph stores verbatim.
        DiskGraph::write(&og, out_base, stats)?
    };
    for p in [packed_path, sorted_path] {
        let _ = std::fs::remove_file(p);
    }
    let _ = std::fs::remove_file(relabeled.deg_path());
    let _ = std::fs::remove_file(relabeled.adj_path());

    Ok(OptDatabase {
        disk,
        offsets: oriented.offsets,
        creation: timer.finish(),
        creation_bytes: stats.total_bytes() - before,
    })
}

/// Result of an OPT-like counting run.
#[derive(Debug, Clone, Copy)]
pub struct OptReport {
    /// Exact triangle count.
    pub triangles: u64,
    /// Calculation time breakdown.
    pub calc: TimeBreakdown,
    /// Bytes of I/O during calculation.
    pub calc_bytes: u64,
    /// True when the whole database fit in the memory budget.
    pub in_memory: bool,
}

/// Count triangles from the database with `threads` cores under
/// `budget` bytes of memory.
pub fn count(
    db: &OptDatabase,
    threads: usize,
    budget: MemoryBudget,
    stats: &Arc<IoStats>,
) -> Result<OptReport> {
    let timer = pdtl_io::CpuIoTimer::start(stats.clone());
    let before = stats.total_bytes();
    let m_star = *db.offsets.last().unwrap();
    let fits = (m_star as usize) <= budget.edges;

    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads.max(1))
        .build()
        .map_err(|e| crate::BaselineError::Config(e.to_string()))?;

    let triangles = if fits {
        // Whole oriented graph in memory: parallel compact-forward.
        let (offsets, adj) = db.disk.load_parts(stats)?;
        let out = |u: u32| &adj[offsets[u as usize] as usize..offsets[u as usize + 1] as usize];
        pool.install(|| {
            (0..(offsets.len() - 1) as u32)
                .into_par_iter()
                .map(|u| {
                    out(u)
                        .iter()
                        .map(|&v| intersect_count(out(u), out(v)))
                        .sum::<u64>()
                })
                .sum()
        })
    } else {
        // Out-of-core: batches of cone vertices; each pivot list fetched
        // with a positioned read — OPT's random-I/O penalty.
        out_of_core_count(db, budget, stats)?
    };

    Ok(OptReport {
        triangles,
        calc: timer.finish(),
        calc_bytes: stats.total_bytes() - before,
        in_memory: fits,
    })
}

fn out_of_core_count(db: &OptDatabase, budget: MemoryBudget, stats: &Arc<IoStats>) -> Result<u64> {
    let offsets = &db.offsets;
    let n = (offsets.len() - 1) as u32;
    let batch_edges = budget.chunk_edges().max(1) as u64;
    let mut seq = U32Reader::open(db.disk.adj_path(), stats.clone())?;
    let mut rand = U32Reader::open(db.disk.adj_path(), stats.clone())?;
    let mut triangles = 0u64;
    let mut nu: Vec<u32> = Vec::new();
    let mut nv: Vec<u32> = Vec::new();
    let mut u = 0u32;
    while u < n {
        // batch of cone vertices whose lists fit in the budget
        let start_off = offsets[u as usize];
        let mut end = u;
        while end < n && offsets[end as usize + 1] - start_off <= batch_edges {
            end += 1;
        }
        let end = end.max(u + 1);
        for cone in u..end {
            let du = (offsets[cone as usize + 1] - offsets[cone as usize]) as usize;
            nu.clear();
            seq.read_into(&mut nu, du)?;
            for &v in nu.iter() {
                let dv = (offsets[v as usize + 1] - offsets[v as usize]) as usize;
                if dv == 0 {
                    continue;
                }
                nv.clear();
                rand.seek_to(offsets[v as usize])?;
                rand.read_into(&mut nv, dv)?;
                triangles += intersect_count(&nu, &nv);
            }
        }
        u = end;
    }
    Ok(triangles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdtl_graph::gen::classic::complete;
    use pdtl_graph::gen::rmat::rmat;
    use pdtl_graph::verify::triangle_count;
    use std::path::PathBuf;

    fn tmpbase(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("pdtl-opt-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    fn build_db(tag: &str, g: &Graph) -> (OptDatabase, Arc<IoStats>) {
        let stats = IoStats::new();
        let input = DiskGraph::write(g, tmpbase(&format!("{tag}-in")), &stats).unwrap();
        let db = create_database(&input, &tmpbase(&format!("{tag}-db")), &stats).unwrap();
        (db, stats)
    }

    #[test]
    fn in_memory_count_matches_oracle() {
        let g = rmat(7, 71).unwrap();
        let expected = triangle_count(&g);
        let (db, stats) = build_db("mem", &g);
        let r = count(&db, 2, MemoryBudget::edges(1 << 22), &stats).unwrap();
        assert!(r.in_memory);
        assert_eq!(r.triangles, expected);
    }

    #[test]
    fn out_of_core_count_matches_oracle() {
        let g = rmat(7, 72).unwrap();
        let expected = triangle_count(&g);
        let (db, stats) = build_db("ooc", &g);
        let r = count(&db, 2, MemoryBudget::edges(64), &stats).unwrap();
        assert!(!r.in_memory);
        assert_eq!(r.triangles, expected);
    }

    #[test]
    fn out_of_core_pays_more_io() {
        let g = rmat(7, 73).unwrap();
        let (db, stats) = build_db("ioprofile", &g);
        let in_mem = count(&db, 1, MemoryBudget::edges(1 << 22), &stats).unwrap();
        let out_core = count(&db, 1, MemoryBudget::edges(64), &stats).unwrap();
        assert!(
            out_core.calc_bytes > 2 * in_mem.calc_bytes,
            "random I/O penalty: {} vs {}",
            out_core.calc_bytes,
            in_mem.calc_bytes
        );
    }

    #[test]
    fn database_creation_is_heavier_than_orientation() {
        // OPT's db creation moves several times the bytes of PDTL's
        // one-pass orientation (Table II's shape).
        let g = rmat(7, 74).unwrap();
        let stats = IoStats::new();
        let input = DiskGraph::write(&g, tmpbase("heavy-in"), &stats).unwrap();
        stats.reset();
        let db = create_database(&input, &tmpbase("heavy-db"), &stats).unwrap();

        let ostats = IoStats::new();
        let input2 = DiskGraph::open(tmpbase("heavy-in"), &ostats).unwrap();
        pdtl_core::orient::orient_to_disk(&input2, tmpbase("heavy-orient"), 1, &ostats).unwrap();
        assert!(
            db.creation_bytes > 2 * ostats.total_bytes(),
            "db creation {} should dwarf orientation {}",
            db.creation_bytes,
            ostats.total_bytes()
        );
    }

    #[test]
    fn relabeling_preserves_triangles() {
        let g = complete(8).unwrap();
        let (db, stats) = build_db("relabel", &g);
        let r = count(&db, 1, MemoryBudget::edges(1 << 20), &stats).unwrap();
        assert_eq!(r.triangles, 56); // C(8,3)
    }
}
