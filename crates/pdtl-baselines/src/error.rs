//! Error type for the baselines.

use std::fmt;

/// Result alias for baseline operations.
pub type Result<T> = std::result::Result<T, BaselineError>;

/// Errors raised by the baseline systems.
#[derive(Debug)]
pub enum BaselineError {
    /// Underlying I/O substrate failure.
    Io(pdtl_io::IoError),
    /// Underlying graph substrate failure.
    Graph(pdtl_graph::GraphError),
    /// A memory-constrained system exceeded its budget — the `F`
    /// (failure) entries of the paper's Table VI.
    OutOfMemory {
        /// Which system failed.
        system: &'static str,
        /// Bytes the system needed.
        needed: u64,
        /// Bytes the budget allowed.
        budget: u64,
    },
    /// An invalid configuration.
    Config(String),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Io(e) => write!(f, "io: {e}"),
            BaselineError::Graph(e) => write!(f, "graph: {e}"),
            BaselineError::OutOfMemory {
                system,
                needed,
                budget,
            } => write!(
                f,
                "{system}: out of memory (needs {needed} bytes, budget {budget})"
            ),
            BaselineError::Config(msg) => write!(f, "configuration: {msg}"),
        }
    }
}

impl std::error::Error for BaselineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BaselineError::Io(e) => Some(e),
            BaselineError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pdtl_io::IoError> for BaselineError {
    fn from(e: pdtl_io::IoError) -> Self {
        BaselineError::Io(e)
    }
}

impl From<pdtl_graph::GraphError> for BaselineError {
    fn from(e: pdtl_graph::GraphError) -> Self {
        BaselineError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oom_display_names_system() {
        let e = BaselineError::OutOfMemory {
            system: "powergraph",
            needed: 100,
            budget: 10,
        };
        let s = e.to_string();
        assert!(s.contains("powergraph") && s.contains("100") && s.contains("10"));
    }
}
