//! A PATRIC-like partitioned message-passing counter (Arifuzzaman et
//! al., CIKM'13).
//!
//! PATRIC partitions the vertex set across processors; each processor
//! stores its *core* vertices' adjacency **plus the adjacency of every
//! neighbour** (the one-hop halo needed to test pivot edges locally).
//! That overlap is PATRIC's defining cost: the paper notes it "requires
//! that each partition fits in memory" and "the total amount of memory
//! needed … can exceed |E|" — exactly what makes partitioning-based
//! frameworks fail on dense graphs while PDTL keeps running.
//!
//! This reimplementation reproduces the memory model faithfully (halo
//! accounting, hard OOM under a per-processor budget, aggregate memory
//! exceeding `|E|`), the degree-ordered surface counting (each triangle
//! counted at its cone vertex's owner), and PATRIC's two load-balancing
//! schemes (by vertex count, by degree sum).

use pdtl_core::intersect::intersect_visit;
use pdtl_core::order::DegreeOrder;
use pdtl_graph::Graph;

use crate::error::{BaselineError, Result};

/// How PATRIC assigns core vertices to processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PatricBalance {
    /// Contiguous ranges with equal vertex counts.
    ByVertices,
    /// Contiguous ranges with roughly equal degree sums (the scheme the
    /// PATRIC paper recommends).
    #[default]
    ByDegreeSum,
}

/// Configuration of a PATRIC-like run.
#[derive(Debug, Clone, Copy)]
pub struct PatricConfig {
    /// Number of processors (partitions).
    pub processors: usize,
    /// Memory budget per processor, in bytes.
    pub memory_bytes: u64,
    /// Core-vertex assignment scheme.
    pub balance: PatricBalance,
}

/// Outcome of a PATRIC-like run.
#[derive(Debug, Clone)]
pub struct PatricReport {
    /// Exact triangle count.
    pub triangles: u64,
    /// Bytes resident per partition (core + halo adjacency).
    pub partition_bytes: Vec<u64>,
    /// Total bytes sent to distribute the overlapping partitions.
    pub distribution_bytes: u64,
    /// Per-partition triangle counts.
    pub partition_triangles: Vec<u64>,
}

impl PatricReport {
    /// Aggregate memory across processors — exceeds `4·2|E|` whenever
    /// halos overlap, the effect Section IV-B2 calls out.
    pub fn total_memory(&self) -> u64 {
        self.partition_bytes.iter().sum()
    }
}

/// Run the PATRIC-like counter on an in-memory graph.
///
/// Fails with [`BaselineError::OutOfMemory`] if any partition (core +
/// halo) exceeds the per-processor budget — PATRIC has no out-of-core
/// fallback.
pub fn run(g: &Graph, config: PatricConfig) -> Result<PatricReport> {
    if config.processors == 0 {
        return Err(BaselineError::Config("processors must be >= 1".into()));
    }
    let n = g.num_vertices();
    let degrees = g.degrees();
    let ord = DegreeOrder::new(&degrees);
    let bounds = partition_bounds(g, config);

    let mut partition_bytes = Vec::with_capacity(bounds.len());
    let mut partition_triangles = Vec::with_capacity(bounds.len());
    let mut distribution_bytes = 0u64;

    for &(lo, hi) in &bounds {
        // Memory: core adjacency + halo adjacency (each distinct
        // neighbour's full list), 4 bytes per entry + 8 per offset.
        let mut resident = vec![false; n as usize];
        let mut bytes = 0u64;
        for v in lo..hi {
            if !resident[v as usize] {
                resident[v as usize] = true;
                bytes += 8 + 4 * degrees[v as usize] as u64;
            }
            for &w in g.neighbors(v) {
                if !resident[w as usize] {
                    resident[w as usize] = true;
                    bytes += 8 + 4 * degrees[w as usize] as u64;
                }
            }
        }
        distribution_bytes += bytes;
        if bytes > config.memory_bytes {
            return Err(BaselineError::OutOfMemory {
                system: "patric",
                needed: bytes,
                budget: config.memory_bytes,
            });
        }
        partition_bytes.push(bytes);

        // Surface counting: a triangle is counted by the owner of its
        // cone vertex (its ≺-minimum), using only resident lists.
        let mut local = 0u64;
        for u in lo..hi {
            let nu = g.neighbors(u);
            for &v in nu {
                if !ord.precedes(u, v) {
                    continue;
                }
                // count w ∈ N(u) ∩ N(v) with u ≺ v ≺ w
                let nv = g.neighbors(v);
                let mut cnt = 0u64;
                intersect_visit(nu, nv, |w| {
                    if ord.precedes(v, w) {
                        cnt += 1;
                    }
                });
                local += cnt;
            }
        }
        partition_triangles.push(local);
    }

    Ok(PatricReport {
        triangles: partition_triangles.iter().sum(),
        partition_bytes,
        distribution_bytes,
        partition_triangles,
    })
}

/// Contiguous core-vertex ranges under the chosen balance scheme.
pub fn partition_bounds(g: &Graph, config: PatricConfig) -> Vec<(u32, u32)> {
    let n = g.num_vertices();
    let p = config.processors as u64;
    match config.balance {
        PatricBalance::ByVertices => (0..p)
            .map(|i| ((n as u64 * i / p) as u32, (n as u64 * (i + 1) / p) as u32))
            .collect(),
        PatricBalance::ByDegreeSum => {
            let offsets = pdtl_graph::disk::offsets_from_degrees(&g.degrees());
            pdtl_core::orient::vertex_partition(&offsets, config.processors)
        }
    }
}

/// Pure memory estimate per partition without running the counter —
/// lets experiments probe OOM boundaries cheaply.
pub fn partition_memory(g: &Graph, config: PatricConfig) -> Vec<u64> {
    let n = g.num_vertices();
    let degrees = g.degrees();
    partition_bounds(g, config)
        .iter()
        .map(|&(lo, hi)| {
            let mut resident = vec![false; n as usize];
            let mut bytes = 0u64;
            for v in lo..hi {
                if !resident[v as usize] {
                    resident[v as usize] = true;
                    bytes += 8 + 4 * degrees[v as usize] as u64;
                }
                for &w in g.neighbors(v) {
                    if !resident[w as usize] {
                        resident[w as usize] = true;
                        bytes += 8 + 4 * degrees[w as usize] as u64;
                    }
                }
            }
            bytes
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdtl_graph::gen::classic::{complete, grid};
    use pdtl_graph::gen::rmat::rmat;
    use pdtl_graph::verify::triangle_count;

    fn cfg(p: usize, mem: u64) -> PatricConfig {
        PatricConfig {
            processors: p,
            memory_bytes: mem,
            balance: PatricBalance::ByDegreeSum,
        }
    }

    #[test]
    fn counts_match_oracle() {
        for seed in [81, 82] {
            let g = rmat(7, seed).unwrap();
            let expected = triangle_count(&g);
            for p in [1usize, 2, 4, 7] {
                let r = run(&g, cfg(p, u64::MAX)).unwrap();
                assert_eq!(r.triangles, expected, "p={p} seed={seed}");
            }
        }
    }

    #[test]
    fn both_balance_schemes_correct() {
        let g = rmat(7, 83).unwrap();
        let expected = triangle_count(&g);
        for balance in [PatricBalance::ByVertices, PatricBalance::ByDegreeSum] {
            let r = run(
                &g,
                PatricConfig {
                    processors: 4,
                    memory_bytes: u64::MAX,
                    balance,
                },
            )
            .unwrap();
            assert_eq!(r.triangles, expected, "{balance:?}");
        }
    }

    #[test]
    fn dense_graph_memory_exceeds_edge_total() {
        // On K_n with several partitions, halos replicate almost the
        // whole graph per partition: Σ memory >> graph size.
        let g = complete(60).unwrap();
        let r = run(&g, cfg(4, u64::MAX)).unwrap();
        let graph_bytes = g.adj_len() * 4;
        assert!(
            r.total_memory() > 3 * graph_bytes,
            "overlap: {} vs graph {}",
            r.total_memory(),
            graph_bytes
        );
    }

    #[test]
    fn ooms_when_partition_exceeds_budget() {
        let g = complete(60).unwrap();
        let err = run(&g, cfg(4, 1000)).unwrap_err();
        assert!(matches!(
            err,
            BaselineError::OutOfMemory {
                system: "patric",
                ..
            }
        ));
    }

    #[test]
    fn sparse_graph_fits_where_dense_fails() {
        let g = grid(30, 30).unwrap();
        let budget = g.adj_len() * 4; // roughly graph-sized budget
        let r = run(&g, cfg(4, budget)).unwrap();
        assert_eq!(r.triangles, 0);
    }

    #[test]
    fn degree_sum_balance_is_no_worse_on_skewed_graph() {
        let g = rmat(9, 84).unwrap();
        let spread = |balance| {
            let bytes = partition_memory(
                &g,
                PatricConfig {
                    processors: 8,
                    memory_bytes: u64::MAX,
                    balance,
                },
            );
            let max = *bytes.iter().max().unwrap() as f64;
            let avg = bytes.iter().sum::<u64>() as f64 / bytes.len() as f64;
            max / avg
        };
        assert!(spread(PatricBalance::ByDegreeSum) <= spread(PatricBalance::ByVertices) * 1.25);
    }

    #[test]
    fn zero_processors_rejected() {
        let g = complete(4).unwrap();
        assert!(run(&g, cfg(0, 100)).is_err());
    }
}
