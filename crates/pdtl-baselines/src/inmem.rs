//! Textbook in-memory triangle counters.
//!
//! Three classical algorithms, sequential and rayon-parallel, used as
//! correctness anchors and as the compute kernel of the OPT-like and
//! PowerGraph-like systems:
//!
//! * **node-iterator** — per vertex, test every neighbour pair; counts
//!   each triangle three times.
//! * **edge-iterator** — per edge, intersect endpoint lists; also 3×.
//! * **compact-forward** — intersect *oriented* out-lists along oriented
//!   edges; finds each triangle exactly once and is the asymptotically
//!   optimal `O(α|E|)` in-memory method (the same ordering idea MGT
//!   externalises).

use pdtl_core::intersect::intersect_count;
use pdtl_core::orient::{orient_csr, OrientedCsr};
use pdtl_graph::Graph;
use rayon::prelude::*;

/// Node-iterator: for each vertex `v` and each neighbour pair
/// `u < w ∈ N(v)`, test edge `{u, w}`. Every triangle is seen from each
/// of its three corners.
pub fn node_iterator(g: &Graph) -> u64 {
    let mut triple_counted = 0u64;
    for v in 0..g.num_vertices() {
        let ns = g.neighbors(v);
        for (i, &u) in ns.iter().enumerate() {
            for &w in &ns[i + 1..] {
                if g.has_edge(u, w) {
                    triple_counted += 1;
                }
            }
        }
    }
    debug_assert_eq!(triple_counted % 3, 0);
    triple_counted / 3
}

/// Edge-iterator: `Σ_{(u,v) ∈ E} |N(u) ∩ N(v)| / 3`.
pub fn edge_iterator(g: &Graph) -> u64 {
    let mut triple_counted = 0u64;
    for (u, v) in g.edges() {
        triple_counted += intersect_count(g.neighbors(u), g.neighbors(v));
    }
    debug_assert_eq!(triple_counted % 3, 0);
    triple_counted / 3
}

/// Compact-forward over a prebuilt orientation: exact, each triangle
/// once.
pub fn forward_oriented(o: &OrientedCsr) -> u64 {
    let mut count = 0u64;
    for u in 0..o.num_vertices() {
        for &v in o.out(u) {
            count += intersect_count(o.out(u), o.out(v));
        }
    }
    count
}

/// Compact-forward from an undirected graph (orients internally).
pub fn forward(g: &Graph) -> u64 {
    forward_oriented(&orient_csr(g))
}

/// Rayon-parallel compact-forward: vertices processed in parallel, the
/// per-vertex work reduced with a sum. Deterministic result.
pub fn forward_parallel(o: &OrientedCsr) -> u64 {
    (0..o.num_vertices())
        .into_par_iter()
        .map(|u| {
            o.out(u)
                .iter()
                .map(|&v| intersect_count(o.out(u), o.out(v)))
                .sum::<u64>()
        })
        .sum()
}

/// Rayon-parallel edge-iterator (3× counting, divided once).
pub fn edge_iterator_parallel(g: &Graph) -> u64 {
    let triple: u64 = (0..g.num_vertices())
        .into_par_iter()
        .map(|u| {
            g.neighbors(u)
                .iter()
                .filter(|&&v| u < v)
                .map(|&v| intersect_count(g.neighbors(u), g.neighbors(v)))
                .sum::<u64>()
        })
        .sum();
    debug_assert_eq!(triple % 3, 0);
    triple / 3
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdtl_graph::gen::classic::{complete, cycle, grid, wheel};
    use pdtl_graph::gen::rmat::rmat;
    use pdtl_graph::verify::triangle_count;

    fn all_counters(g: &Graph) -> Vec<(&'static str, u64)> {
        let o = orient_csr(g);
        vec![
            ("node_iterator", node_iterator(g)),
            ("edge_iterator", edge_iterator(g)),
            ("forward", forward(g)),
            ("forward_parallel", forward_parallel(&o)),
            ("edge_iterator_parallel", edge_iterator_parallel(g)),
        ]
    }

    #[test]
    fn all_agree_on_fixtures() {
        for g in [
            complete(9).unwrap(),
            cycle(10).unwrap(),
            wheel(11).unwrap(),
            grid(4, 7).unwrap(),
        ] {
            let expected = triangle_count(&g);
            for (name, got) in all_counters(&g) {
                assert_eq!(got, expected, "{name}");
            }
        }
    }

    #[test]
    fn all_agree_on_rmat() {
        for seed in [61, 62, 63] {
            let g = rmat(7, seed).unwrap();
            let expected = triangle_count(&g);
            for (name, got) in all_counters(&g) {
                assert_eq!(got, expected, "{name} seed {seed}");
            }
        }
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let g = Graph::empty(5);
        for (name, got) in all_counters(&g) {
            assert_eq!(got, 0, "{name}");
        }
        let g = complete(3).unwrap();
        for (name, got) in all_counters(&g) {
            assert_eq!(got, 1, "{name}");
        }
    }
}
