//! A CTTP-like round-based MapReduce triangle counter (Park et al.,
//! CIKM'14).
//!
//! CTTP partitions vertices into `ρ` colour classes and, over a series
//! of rounds, ships to each reducer the edges induced by one *triple* of
//! classes; the reducer counts the triangles whose colour-triple it
//! owns. Every edge is replicated to `O(ρ)` triples, which is the
//! "too much intermediate networking data" the paper cites: CTTP takes
//! 2× longer on Twitter with 40 nodes than a single-core MGT. This
//! implementation counts exactly and reports the shuffle volume so
//! experiments can show that blow-up.

use pdtl_graph::Graph;

use crate::error::{BaselineError, Result};

/// Configuration of a CTTP-like run.
#[derive(Debug, Clone, Copy)]
pub struct CttpConfig {
    /// Number of vertex colour classes `ρ` (>= 1).
    pub rho: usize,
    /// Reducers available per round (bounds parallelism; the number of
    /// rounds is `ceil(#triples / reducers)`).
    pub reducers: usize,
}

/// Outcome of a CTTP-like run.
#[derive(Debug, Clone)]
pub struct CttpReport {
    /// Exact triangle count.
    pub triangles: u64,
    /// Total intermediate (shuffle) records: edge copies shipped to
    /// reducers.
    pub shuffle_records: u64,
    /// Intermediate bytes (8 bytes per shipped edge copy).
    pub shuffle_bytes: u64,
    /// MapReduce rounds executed.
    pub rounds: u64,
    /// Number of colour triples (= reduce tasks).
    pub triples: u64,
}

/// Colour of a vertex: contiguous classes.
fn color(v: u32, n: u32, rho: usize) -> usize {
    ((v as u64 * rho as u64) / n.max(1) as u64) as usize
}

/// Run the CTTP-like counter.
pub fn run(g: &Graph, config: CttpConfig) -> Result<CttpReport> {
    if config.rho == 0 || config.reducers == 0 {
        return Err(BaselineError::Config(
            "rho and reducers must be >= 1".into(),
        ));
    }
    let n = g.num_vertices();
    let rho = config.rho;

    // Enumerate colour triples (i <= j <= k).
    let mut triples: Vec<(usize, usize, usize)> = Vec::new();
    for i in 0..rho {
        for j in i..rho {
            for k in j..rho {
                triples.push((i, j, k));
            }
        }
    }

    // Shuffle: each edge is shipped to every triple containing both
    // endpoint colours.
    let mut shuffle_records = 0u64;
    let mut triangles = 0u64;
    for &(a, b, c) in &triples {
        // Reduce task for (a, b, c): collect the induced edges, count
        // triangles whose sorted colour triple equals (a, b, c).
        let in_triple = |v: u32| {
            let cv = color(v, n, rho);
            cv == a || cv == b || cv == c
        };
        let mut adj: std::collections::HashMap<u32, Vec<u32>> = Default::default();
        for (u, v) in g.edges() {
            if in_triple(u) && in_triple(v) {
                shuffle_records += 1;
                adj.entry(u).or_default().push(v);
                adj.entry(v).or_default().push(u);
            }
        }
        for list in adj.values_mut() {
            list.sort_unstable();
        }
        // count triangles with ownership check
        for (&u, nu) in &adj {
            for &v in nu.iter().filter(|&&v| v > u) {
                let nv = &adj[&v];
                let (mut i, mut j) = (0usize, 0usize);
                while i < nu.len() && j < nv.len() {
                    match nu[i].cmp(&nv[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            let w = nu[i];
                            if w > v {
                                let mut cols =
                                    [color(u, n, rho), color(v, n, rho), color(w, n, rho)];
                                cols.sort_unstable();
                                if cols == [a, b, c] {
                                    triangles += 1;
                                }
                            }
                            i += 1;
                            j += 1;
                        }
                    }
                }
            }
        }
    }

    let rounds = (triples.len() as u64).div_ceil(config.reducers as u64);
    Ok(CttpReport {
        triangles,
        shuffle_records,
        shuffle_bytes: shuffle_records * 8,
        rounds,
        triples: triples.len() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdtl_graph::gen::classic::{complete, wheel};
    use pdtl_graph::gen::rmat::rmat;
    use pdtl_graph::verify::triangle_count;

    #[test]
    fn counts_match_oracle_across_rho() {
        let g = rmat(7, 101).unwrap();
        let expected = triangle_count(&g);
        for rho in [1usize, 2, 3, 5] {
            let r = run(&g, CttpConfig { rho, reducers: 4 }).unwrap();
            assert_eq!(r.triangles, expected, "rho={rho}");
        }
    }

    #[test]
    fn fixture_counts() {
        let g = complete(10).unwrap();
        let r = run(
            &g,
            CttpConfig {
                rho: 3,
                reducers: 2,
            },
        )
        .unwrap();
        assert_eq!(r.triangles, 120);
        let g = wheel(9).unwrap();
        let r = run(
            &g,
            CttpConfig {
                rho: 2,
                reducers: 1,
            },
        )
        .unwrap();
        assert_eq!(r.triangles, 8);
    }

    #[test]
    fn shuffle_volume_blows_up_with_rho() {
        // Each edge replicated to O(rho) triples: the MapReduce
        // intermediate-data problem the paper cites.
        let g = rmat(7, 102).unwrap();
        let m = g.num_edges();
        let r1 = run(
            &g,
            CttpConfig {
                rho: 1,
                reducers: 1,
            },
        )
        .unwrap();
        let r5 = run(
            &g,
            CttpConfig {
                rho: 5,
                reducers: 4,
            },
        )
        .unwrap();
        assert_eq!(r1.shuffle_records, m, "rho=1 ships each edge once");
        assert!(
            r5.shuffle_records > 3 * m,
            "rho=5 replication: {} vs m={}",
            r5.shuffle_records,
            m
        );
    }

    #[test]
    fn rounds_depend_on_reducers() {
        let g = wheel(10).unwrap();
        let r = run(
            &g,
            CttpConfig {
                rho: 4,
                reducers: 5,
            },
        )
        .unwrap();
        // C(4+2,3) = 20 triples over 5 reducers = 4 rounds
        assert_eq!(r.triples, 20);
        assert_eq!(r.rounds, 4);
    }

    #[test]
    fn invalid_config_rejected() {
        let g = wheel(5).unwrap();
        assert!(run(
            &g,
            CttpConfig {
                rho: 0,
                reducers: 1
            }
        )
        .is_err());
        assert!(run(
            &g,
            CttpConfig {
                rho: 1,
                reducers: 0
            }
        )
        .is_err());
    }
}
