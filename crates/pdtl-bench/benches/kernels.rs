//! Micro-benchmarks of PDTL's hot kernels: sorted-array intersection,
//! the in-memory MGT chunk loop, orientation, and load-balance
//! computation.
//!
//! The workload (sizes, seeds, budgets, names) is defined once in
//! [`pdtl_bench::kernelbench::workload`] and shared with the `exp
//! kernels --json` snapshot runner, so the criterion numbers and
//! `BENCH_kernels.json` always measure the same thing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pdtl_bench::kernelbench::workload;
use pdtl_core::intersect::{
    intersect_gallop_visit, intersect_visit, intersect_visit_counted_with, SimdLevel,
};
use pdtl_core::mgt::{mgt_count_range_opt, mgt_in_memory, MgtOptions};
use pdtl_core::orient::{orient_csr, orient_csr_threads, orient_to_disk_with};
use pdtl_core::sink::CountSink;
use pdtl_core::{split_ranges, BalanceStrategy, EdgeRange};
use pdtl_graph::gen::rmat::rmat;
use pdtl_graph::DiskGraph;
use pdtl_io::{Codec, IoBackend, IoStats, MemoryBudget, U32Writer};

fn bench_intersection(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersect");
    for &(a_len, b_len) in &workload::INTERSECT_PAIRS {
        let (a, b) = workload::intersect_inputs(a_len, b_len);
        group.bench_with_input(
            BenchmarkId::new("linear", format!("{a_len}x{b_len}")),
            &(&a, &b),
            |bencher, (a, b)| bencher.iter(|| intersect_visit(black_box(a), black_box(b), |_| {})),
        );
        group.bench_with_input(
            BenchmarkId::new("gallop", format!("{a_len}x{b_len}")),
            &(&a, &b),
            |bencher, (a, b)| {
                bencher.iter(|| intersect_gallop_visit(black_box(a), black_box(b), |_| {}))
            },
        );
        // Forced-scalar ablation row, mirrored in the JSON snapshot
        // runner: the vectorization speedup on the same shape.
        group.bench_with_input(
            BenchmarkId::new("linear_scalar", format!("{a_len}x{b_len}")),
            &(&a, &b),
            |bencher, (a, b)| {
                bencher.iter(|| {
                    intersect_visit_counted_with(SimdLevel::Off, black_box(a), black_box(b), |_| {})
                        .0
                })
            },
        );
    }
    group.finish();
}

fn bench_mgt_chunks(c: &mut Criterion) {
    let g = rmat(workload::MGT_RMAT.0, workload::MGT_RMAT.1).unwrap();
    let o = orient_csr(&g);
    let mut group = c.benchmark_group("mgt_in_memory");
    for &budget in &workload::MGT_BUDGETS {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("budget_{budget}")),
            &budget,
            |bencher, &budget| {
                bencher.iter(|| {
                    let (t, _) =
                        mgt_in_memory(black_box(&o), MemoryBudget::edges(budget), &mut CountSink);
                    t
                })
            },
        );
    }
    group.finish();
}

fn bench_orientation(c: &mut Criterion) {
    let g = rmat(workload::ORIENT_RMAT.0, workload::ORIENT_RMAT.1).unwrap();
    c.bench_function("orient_csr_rmat10", |b| {
        b.iter(|| orient_csr(black_box(&g)))
    });
    for &cores in &workload::ORIENT_CORES {
        c.bench_function(&format!("orient_csr_rmat10/cores_{cores}"), |b| {
            b.iter(|| orient_csr_threads(black_box(&g), cores))
        });
    }
}

fn bench_balance(c: &mut Criterion) {
    let g = rmat(workload::BALANCE_RMAT.0, workload::BALANCE_RMAT.1).unwrap();
    let o = orient_csr(&g);
    let ins = o.in_degrees();
    let mut group = c.benchmark_group("split_ranges");
    for strategy in [BalanceStrategy::EqualEdges, BalanceStrategy::InDegree] {
        group.bench_function(format!("{strategy:?}_x64"), |b| {
            b.iter(|| split_ranges(black_box(&o.offsets), black_box(&ins), 64, strategy))
        });
    }
    group.finish();
}

fn bench_generators(c: &mut Criterion) {
    c.bench_function("rmat_k8", |b| {
        b.iter(|| rmat(workload::GEN_RMAT.0, black_box(workload::GEN_RMAT.1)).unwrap())
    });
}

fn bench_mgt_disk_backends(c: &mut Criterion) {
    let g = rmat(workload::DISK_RMAT.0, workload::DISK_RMAT.1).unwrap();
    let dir = std::env::temp_dir().join(format!("pdtl-kernels-backends-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let stats = IoStats::new();
    let input = DiskGraph::write(&g, dir.join("g"), &stats).unwrap();
    // Backend rows are pinned to the raw codec so numbers stay
    // comparable whatever PDTL_CODEC the run inherits; the codec rows
    // in `bench_mgt_disk_codecs` measure the encoding choice.
    let (og, _) = orient_to_disk_with(&input, dir.join("oriented"), 2, Codec::Raw, &stats).unwrap();
    let full = EdgeRange {
        start: 0,
        end: og.m_star(),
    };
    let budget = MemoryBudget::edges(workload::DISK_BUDGET);
    for (latency_us, tag) in [
        (0, "mgt_disk"),
        (workload::DISK_SIM_LATENCY_US, "mgt_disk_simlat50us"),
    ] {
        let mut group = c.benchmark_group(tag);
        for backend in IoBackend::ALL {
            let opts = MgtOptions {
                backend,
                io_latency: std::time::Duration::from_micros(latency_us),
                ..MgtOptions::default()
            };
            group.bench_function(format!("backend_{backend}"), |b| {
                b.iter(|| {
                    mgt_count_range_opt(
                        black_box(&og),
                        full,
                        budget,
                        &mut CountSink,
                        IoStats::new(),
                        opts,
                    )
                    .unwrap()
                    .triangles
                })
            });
        }
        group.finish();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_mgt_disk_codecs(c: &mut Criterion) {
    let g = rmat(workload::DISK_RMAT.0, workload::DISK_RMAT.1).unwrap();
    let dir = std::env::temp_dir().join(format!("pdtl-kernels-codecs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let stats = IoStats::new();
    let input = DiskGraph::write(&g, dir.join("g"), &stats).unwrap();
    let budget = MemoryBudget::edges(workload::DISK_BUDGET);
    let mut group = c.benchmark_group("mgt_disk");
    for codec in Codec::ALL {
        let (og, _) = orient_to_disk_with(
            &input,
            dir.join(format!("oriented-{codec}")),
            2,
            codec,
            &stats,
        )
        .unwrap();
        let full = EdgeRange {
            start: 0,
            end: og.m_star(),
        };
        group.bench_function(format!("codec_{codec}"), |b| {
            b.iter(|| {
                mgt_count_range_opt(
                    black_box(&og),
                    full,
                    budget,
                    &mut CountSink,
                    IoStats::new(),
                    MgtOptions::default(),
                )
                .unwrap()
                .triangles
            })
        });
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_varint_decode(c: &mut Criterion) {
    let bytes = workload::varint_decode_input();
    let mut group = c.benchmark_group("varint_decode");
    group.bench_function("1m", |b| {
        b.iter(|| {
            let mut pos = 0usize;
            let mut acc = 0u64;
            while let Some(v) = pdtl_io::codec::decode_varint_u32(black_box(&bytes), &mut pos) {
                acc += u64::from(v);
            }
            acc
        })
    });
    group.finish();
}

fn bench_writer(c: &mut Criterion) {
    let vals: Vec<u32> = (0..workload::WRITER_N as u32).collect();
    let dir = std::env::temp_dir().join(format!("pdtl-kernels-writer-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("writer-throughput");
    let mut group = c.benchmark_group("u32_writer");
    group.bench_function("write_all_1m", |b| {
        b.iter(|| {
            let mut w = U32Writer::create(&path, IoStats::new()).unwrap();
            w.write_all(black_box(&vals)).unwrap();
            w.finish().unwrap()
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(
    benches,
    bench_intersection,
    bench_mgt_chunks,
    bench_orientation,
    bench_balance,
    bench_generators,
    bench_mgt_disk_backends,
    bench_mgt_disk_codecs,
    bench_varint_decode,
    bench_writer
);
criterion_main!(benches);
