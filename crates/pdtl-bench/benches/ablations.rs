//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **sorted arrays vs hash sets** in the MGT inner loop — the paper's
//!   §IV-A1 reports >10× slowdown with any set/map structure; this bench
//!   reproduces the comparison directly;
//! * **balanced vs naive ranges** — the struggler's work under each
//!   strategy (Figure 9's mechanism);
//! * **galloping crossover** — where the adaptive intersection should
//!   switch strategies;
//! * **scan pruning** — the rank-space `(min, max)` bounds skip plus the
//!   `vhigh` scan cap, against the PR 1 full-scan behaviour, on both the
//!   disk and in-memory engines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::HashSet;
use std::hint::black_box;

use pdtl_core::intersect::{
    intersect_count, intersect_gallop_visit, intersect_gallop_visit_counted_with, intersect_visit,
    intersect_visit_counted_with, SimdLevel,
};
use pdtl_core::orient::{orient_csr, orient_to_disk};
use pdtl_core::sink::CountSink;
use pdtl_core::{mgt_count_range_opt, mgt_in_memory_opt, BalanceStrategy, EdgeRange, MgtOptions};
use pdtl_graph::gen::rmat::rmat;
use pdtl_graph::DiskGraph;
use pdtl_io::{IoStats, MemoryBudget};

/// Hash-set inner loop: what the paper measured and rejected.
fn forward_with_hashsets(o: &pdtl_core::orient::OrientedCsr) -> u64 {
    let sets: Vec<HashSet<u32>> = (0..o.num_vertices())
        .map(|u| o.out(u).iter().copied().collect())
        .collect();
    let mut count = 0u64;
    for u in 0..o.num_vertices() {
        for &v in o.out(u) {
            let (small, large) = if sets[u as usize].len() <= sets[v as usize].len() {
                (&sets[u as usize], &sets[v as usize])
            } else {
                (&sets[v as usize], &sets[u as usize])
            };
            count += small.iter().filter(|w| large.contains(w)).count() as u64;
        }
    }
    count
}

fn forward_with_arrays(o: &pdtl_core::orient::OrientedCsr) -> u64 {
    let mut count = 0u64;
    for u in 0..o.num_vertices() {
        for &v in o.out(u) {
            count += intersect_count(o.out(u), o.out(v));
        }
    }
    count
}

fn bench_arrays_vs_sets(c: &mut Criterion) {
    let g = rmat(9, 11).unwrap();
    let o = orient_csr(&g);
    let expected = forward_with_arrays(&o);
    assert_eq!(forward_with_hashsets(&o), expected);

    let mut group = c.benchmark_group("inner_loop");
    group.bench_function("sorted_arrays", |b| {
        b.iter(|| forward_with_arrays(black_box(&o)))
    });
    group.bench_function("hash_sets", |b| {
        b.iter(|| forward_with_hashsets(black_box(&o)))
    });
    group.finish();
}

fn bench_balance_struggler(c: &mut Criterion) {
    // Measures the *struggler's* actual MGT work under each split: run
    // only the heaviest range.
    let g = rmat(10, 12).unwrap();
    let o = orient_csr(&g);
    let ins = o.in_degrees();
    let mut group = c.benchmark_group("struggler_range");
    for strategy in [BalanceStrategy::EqualEdges, BalanceStrategy::InDegree] {
        let (ranges, _) = pdtl_core::split_ranges(&o.offsets, &ins, 8, strategy);
        // heaviest by modeled weight
        let heaviest = ranges
            .iter()
            .copied()
            .max_by(|a, b| {
                pdtl_core::balance::range_weight(&o.offsets, &ins, *a)
                    .partial_cmp(&pdtl_core::balance::range_weight(&o.offsets, &ins, *b))
                    .unwrap()
            })
            .unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{strategy:?}")),
            &heaviest,
            |b, &range| {
                b.iter(|| {
                    // in-memory emulation of the range's intersection work
                    let mut work = 0u64;
                    for u in 0..o.num_vertices() {
                        for &v in o.out(u) {
                            let pos = o.offsets[v as usize];
                            if pos >= range.start && pos < range.end {
                                work += intersect_count(o.out(u), o.out(v));
                            }
                        }
                    }
                    black_box(work)
                })
            },
        );
    }
    group.finish();
}

fn bench_gallop_crossover(c: &mut Criterion) {
    let large: Vec<u32> = (0..100_000u32).collect();
    let mut group = c.benchmark_group("gallop_crossover");
    for &small_len in &[10usize, 100, 1000, 10_000] {
        // spread the small set across the whole id range (as real
        // adjacency lists are), so the linear merge cannot early-exit
        let stride = (100_000 / small_len) as u32;
        let small: Vec<u32> = (0..small_len as u32).map(|i| i * stride + 1).collect();
        group.bench_with_input(BenchmarkId::new("linear", small_len), &small, |b, small| {
            b.iter(|| intersect_visit(black_box(small), black_box(&large), |_| {}))
        });
        group.bench_with_input(BenchmarkId::new("gallop", small_len), &small, |b, small| {
            b.iter(|| intersect_gallop_visit(black_box(small), black_box(&large), |_| {}))
        });
        // The same sweep with the SIMD tier forced off: `GALLOP_RATIO`
        // must be justified at *every* `PDTL_SIMD` level, since the
        // ratio boundaries are shared across levels (that sharing is
        // what keeps `cpu_ops` level-invariant).
        group.bench_with_input(
            BenchmarkId::new("linear_scalar", small_len),
            &small,
            |b, small| {
                b.iter(|| {
                    intersect_visit_counted_with(
                        SimdLevel::Off,
                        black_box(small),
                        black_box(&large),
                        |_| {},
                    )
                    .0
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("gallop_scalar", small_len),
            &small,
            |b, small| {
                b.iter(|| {
                    intersect_gallop_visit_counted_with(
                        SimdLevel::Off,
                        black_box(small),
                        black_box(&large),
                        |_| {},
                    )
                    .0
                })
            },
        );
    }
    // The three kernel-bench shapes, so `GALLOP_RATIO` (and the
    // linear merge's own interleaved/advance dispatch) is justified by
    // data on the exact inputs the perf snapshot tracks: ratios 1, 100
    // and 10⁴.
    for &(a_len, b_len) in &pdtl_bench::kernelbench::workload::INTERSECT_PAIRS {
        let (a, b) = pdtl_bench::kernelbench::workload::intersect_inputs(a_len, b_len);
        let shape = format!("shape_{a_len}x{b_len}");
        group.bench_with_input(
            BenchmarkId::new("linear", &shape),
            &(&a, &b),
            |be, (a, b)| be.iter(|| intersect_visit(black_box(a), black_box(b), |_| {})),
        );
        group.bench_with_input(
            BenchmarkId::new("gallop", &shape),
            &(&a, &b),
            |be, (a, b)| be.iter(|| intersect_gallop_visit(black_box(a), black_box(b), |_| {})),
        );
    }
    group.finish();
}

fn bench_scan_pruning(c: &mut Criterion) {
    // Multi-pass regime (budget far below |E*|): pruning caps each
    // chunk's scan at vhigh and seeks past non-overlapping out-lists.
    let g = rmat(10, 13).unwrap();
    let dir = std::env::temp_dir().join(format!("pdtl-ablate-prune-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let stats = IoStats::new();
    let input = DiskGraph::write(&g, dir.join("g"), &stats).unwrap();
    let (og, _) = orient_to_disk(&input, dir.join("oriented"), 2, &stats).unwrap();
    let o = orient_csr(&g);
    let budget = MemoryBudget::edges(512);
    let full = EdgeRange {
        start: 0,
        end: og.m_star(),
    };

    let mut group = c.benchmark_group("scan_pruning");
    for (name, prune) in [("pruned", true), ("full_scan", false)] {
        let opts = MgtOptions {
            scan_pruning: prune,
            ..MgtOptions::default()
        };
        group.bench_function(format!("disk/{name}"), |b| {
            b.iter(|| {
                mgt_count_range_opt(
                    black_box(&og),
                    full,
                    budget,
                    &mut CountSink,
                    IoStats::new(),
                    opts,
                )
                .unwrap()
                .triangles
            })
        });
        group.bench_function(format!("in_memory/{name}"), |b| {
            b.iter(|| {
                let (t, _) = mgt_in_memory_opt(black_box(&o), budget, &mut CountSink, opts);
                t
            })
        });
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_io_backend(c: &mut Criterion) {
    // Multi-pass regime again: with the budget far below |E*| the
    // engine re-scans the graph once per chunk, which is exactly where
    // the I/O backend choice matters — prefetch hides device waits,
    // mmap removes the read(2) copies entirely on a warm page cache.
    let g = rmat(10, 13).unwrap();
    let dir = std::env::temp_dir().join(format!("pdtl-ablate-backend-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let stats = IoStats::new();
    let input = DiskGraph::write(&g, dir.join("g"), &stats).unwrap();
    let (og, _) = orient_to_disk(&input, dir.join("oriented"), 2, &stats).unwrap();
    let budget = MemoryBudget::edges(512);
    let full = EdgeRange {
        start: 0,
        end: og.m_star(),
    };

    let mut group = c.benchmark_group("io_backend");
    for backend in pdtl_io::IoBackend::ALL {
        let opts = MgtOptions {
            backend,
            ..MgtOptions::default()
        };
        group.bench_function(backend.name(), |b| {
            b.iter(|| {
                mgt_count_range_opt(
                    black_box(&og),
                    full,
                    budget,
                    &mut CountSink,
                    IoStats::new(),
                    opts,
                )
                .unwrap()
                .triangles
            })
        });
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(
    benches,
    bench_arrays_vs_sets,
    bench_balance_struggler,
    bench_gallop_crossover,
    bench_scan_pruning,
    bench_io_backend
);
criterion_main!(benches);
