//! End-to-end engine comparison on a common workload: PDTL/MGT versus
//! every baseline, all counting the same RMAT graph.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pdtl_baselines::{cttp, inmem, patric, powergraph};
use pdtl_core::mgt::mgt_in_memory;
use pdtl_core::orient::orient_csr;
use pdtl_core::sink::CountSink;
use pdtl_graph::gen::rmat::rmat;
use pdtl_io::MemoryBudget;

fn bench_engines(c: &mut Criterion) {
    let g = rmat(9, 7).unwrap();
    let o = orient_csr(&g);
    let expected = pdtl_graph::verify::triangle_count(&g);

    let mut group = c.benchmark_group("engines_rmat9");

    group.bench_function("mgt_in_memory", |b| {
        b.iter(|| {
            let (t, _) = mgt_in_memory(black_box(&o), MemoryBudget::edges(1 << 16), &mut CountSink);
            assert_eq!(t, expected);
            t
        })
    });

    group.bench_function("forward", |b| {
        b.iter(|| {
            let t = inmem::forward_oriented(black_box(&o));
            assert_eq!(t, expected);
            t
        })
    });

    group.bench_function("edge_iterator", |b| {
        b.iter(|| inmem::edge_iterator(black_box(&g)))
    });

    group.bench_function("node_iterator", |b| {
        b.iter(|| inmem::node_iterator(black_box(&g)))
    });

    group.bench_function("powergraph_4m", |b| {
        b.iter(|| {
            powergraph::triangle_count(
                black_box(&g),
                powergraph::PowerGraphConfig {
                    machines: 4,
                    memory_bytes: u64::MAX,
                    cut: powergraph::VertexCut::Greedy,
                    seed: 1,
                },
            )
            .unwrap()
            .triangles
        })
    });

    group.bench_function("patric_4p", |b| {
        b.iter(|| {
            patric::run(
                black_box(&g),
                patric::PatricConfig {
                    processors: 4,
                    memory_bytes: u64::MAX,
                    balance: patric::PatricBalance::ByDegreeSum,
                },
            )
            .unwrap()
            .triangles
        })
    });

    group.bench_function("cttp_rho3", |b| {
        b.iter(|| {
            cttp::run(
                black_box(&g),
                cttp::CttpConfig {
                    rho: 3,
                    reducers: 4,
                },
            )
            .unwrap()
            .triangles
        })
    });

    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
