//! Experiment harness reproducing the PDTL paper's evaluation.
//!
//! Every table and figure of the paper maps to one experiment id (see
//! DESIGN.md §6); `cargo run -p pdtl-bench --release --bin exp -- all`
//! regenerates them all. Experiments run on scaled stand-ins of the
//! paper's datasets (see [`pdtl_graph::datasets`]) and report, for each
//! configuration, both the **measured** wall time on the current host
//! and the **modeled** time derived from counted work under the paper's
//! cost analysis (CPU operations, I/O bytes, network bytes through
//! [`pdtl_io::CostModel`] / [`pdtl_cluster::NetModel`]). The modeled
//! columns are what reproduce the paper's *scaling shapes*
//! deterministically — independent of the host's core count, disk cache
//! or CPU frequency.

pub mod experiments;
pub mod kernelbench;
pub mod servebench;
pub mod workbench;

pub use workbench::{fmt_duration, fmt_secs, Workbench};
