//! One experiment per table/figure of the paper.
//!
//! Each function renders a text table mirroring its paper artifact. The
//! `modeled` columns come from counted work under the default
//! [`CostModel`](pdtl_io::CostModel)/[`NetModel`](pdtl_cluster::NetModel)
//! and carry the scaling *shape*; `wall` columns are the host's measured
//! times. EXPERIMENTS.md records paper-vs-measured per artifact.

use std::fmt::Write as _;

use pdtl_baselines::{cttp, optlike, patric, powergraph};
use pdtl_core::balance::BalanceStrategy;
use pdtl_graph::datasets::Dataset;
use pdtl_graph::GraphStats;
use pdtl_io::{IoStats, MemoryBudget};

use crate::workbench::{fmt_duration, fmt_secs, Workbench};

/// All experiment ids in paper order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "table1", "table2", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "table3",
    "table4", "fig10", "fig11", "fig12", "fig13", "table5", "table6", "table7", "table8", "table9",
    "table10", "table11", "table12", "table13", "table14",
];

/// Run one experiment by id.
pub fn run_experiment(id: &str, wb: &mut Workbench) -> Option<String> {
    let out = match id {
        "table1" => table1(wb),
        "table2" => table2(wb),
        "fig2" => fig2(wb),
        "fig3" => fig3(wb),
        "fig4" => fig4(wb),
        "fig5" => fig5(wb),
        "fig6" => fig6(wb),
        "fig7" => fig7_8(wb, Dataset::Twitter, "Figure 7"),
        "fig8" => fig7_8(wb, Dataset::Yahoo, "Figure 8"),
        "fig9" => fig9(wb),
        "table3" => table3(wb),
        "table4" => table4(wb),
        "fig10" => fig10(wb),
        "fig11" => fig11(wb),
        "fig12" => fig12(wb),
        "fig13" => fig13(wb),
        "table5" => table5(wb),
        "table6" => table6(wb),
        "table7" => table7(wb),
        "table8" => table8(wb),
        "table9" => table9(wb),
        "table10" => table10(wb),
        "table11" => table11(wb),
        "table12" => table12_13(wb, true),
        "table13" => table12_13(wb, false),
        "table14" => table14(wb),
        _ => return None,
    };
    Some(out)
}

fn header(title: &str, note: &str) -> String {
    format!("\n=== {title} ===\n{note}\n\n")
}

/// Modeled (calc, total) seconds for a successful PowerGraph-like run.
///
/// Calc: each machine intersects replicated neighbour sets along its
/// local edges (every triangle touched on 3 edges → ~6T merge steps).
/// Setup: load the graph from disk, partition it (hashing, replica
/// bookkeeping — ~30 counted ops/edge of allocation-heavy work), build
/// and replicate the neighbour sets over the interconnect.
fn pg_modeled(
    wb: &Workbench,
    m: u64,
    report: &powergraph::PowerGraphReport,
    machines: f64,
) -> (f64, f64) {
    let calc = wb.cost.cpu_seconds(6 * report.triangles + m) / machines;
    let setup = wb.cost.io_seconds(8 * m, 0)
        + wb.cost.cpu_seconds(30 * m) / machines
        + wb.net.transfer_secs(report.network_bytes);
    (calc, calc + setup)
}

/// Table I: dataset statistics.
fn table1(wb: &mut Workbench) -> String {
    let mut s = header(
        "Table I — datasets",
        "Scaled stand-ins for the paper's graphs (triangles are exact, via PDTL).",
    );
    let _ = writeln!(s, "{}", GraphStats::header());
    for ds in wb.all_datasets() {
        let budget = wb.profile.budget();
        let report = wb.run_local(ds, 2, budget, BalanceStrategy::InDegree);
        let g = wb.graph(ds).0;
        let stats = GraphStats::compute(ds.name(), g).with_triangles(report.triangles);
        let _ = writeln!(s, "{}", stats.row());
    }
    s
}

/// Table II: preprocessing — PDTL orientation vs PowerGraph setup vs
/// OPT database creation.
fn table2(wb: &mut Workbench) -> String {
    let mut s = header(
        "Table II — preprocessing time",
        "Paper shape: PDTL orientation is 7x-75x faster than OPT db creation and \
         faster than PowerGraph setup on every graph.",
    );
    let _ = writeln!(
        s,
        "{:<16} {:>8} {:>14} {:>16} {:>12} {:>14}",
        "Graph", "d*max", "PDTL orient", "PDTL modeled", "PG setup", "OPT db"
    );
    let mut datasets = wb.real_datasets();
    datasets.push(Dataset::Rmat(wb.profile.rmat_base()));
    for ds in datasets {
        let budget = wb.profile.budget();
        let local = wb.run_local(ds, 4, budget, BalanceStrategy::InDegree);
        let d_star_max: u64 = local
            .workers
            .iter()
            .map(|w| w.range.len())
            .max()
            .unwrap_or(0); // placeholder replaced below
        let _ = d_star_max;
        let g = wb.graph(ds).0.clone();
        let oriented = pdtl_core::orient::orient_csr(&g);

        let pg = powergraph::triangle_count(
            &g,
            powergraph::PowerGraphConfig {
                machines: 4,
                memory_bytes: u64::MAX,
                cut: powergraph::VertexCut::Greedy,
                seed: 1,
            },
        )
        .expect("pg");

        let stats = IoStats::new();
        let (input, dir) = (
            wb.graph(ds).1.clone(),
            wb.data_dir.join("optdb").join(ds.name()),
        );
        std::fs::create_dir_all(&dir).unwrap();
        let db = optlike::create_database(&input, &dir.join("db"), &stats).expect("opt db");

        let _ = writeln!(
            s,
            "{:<16} {:>8} {:>14} {:>16} {:>12} {:>14}",
            ds.name(),
            oriented.d_star_max,
            fmt_duration(local.orientation.breakdown.wall),
            fmt_secs(local.orientation.modeled(&wb.cost).total_overlapped()),
            fmt_duration(pg.setup),
            fmt_duration(db.creation.wall),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    s
}

/// Figure 2: multicore orientation scaling.
fn fig2(wb: &mut Workbench) -> String {
    let mut s = header(
        "Figure 2 — PDTL orientation scaling (modeled seconds per core count)",
        "Paper shape: near-linear speedup flattening past the disk's bandwidth cap \
         (the paper's SSD saturates at 16 threads).",
    );
    let cores = wb.profile.core_sweep();
    let _ = write!(s, "{:<16}", "Graph");
    for &c in &cores {
        let _ = write!(s, " {:>10}", format!("{c} cores"));
    }
    let _ = writeln!(s);
    let mut datasets = vec![Dataset::Twitter, Dataset::Yahoo];
    datasets.extend(wb.rmat_datasets());
    for ds in datasets {
        let _ = write!(s, "{:<16}", ds.name());
        for &c in &cores {
            let budget = wb.profile.budget();
            let r = wb.run_local(ds, c, budget, BalanceStrategy::InDegree);
            let _ = write!(
                s,
                " {:>10}",
                fmt_secs(r.orientation.modeled(&wb.cost).total_overlapped())
            );
        }
        let _ = writeln!(s);
    }
    s
}

/// Figure 3: local multicore total time.
fn fig3(wb: &mut Workbench) -> String {
    let mut s = header(
        "Figure 3 — PDTL local multicore total time (modeled)",
        "Paper shape: 2 cores halve the time; scale-free graphs keep scaling to \
         ~13x at 24 cores while Yahoo saturates around 5x.",
    );
    let cores = wb.profile.core_sweep();
    let _ = write!(s, "{:<16}", "Graph");
    for &c in &cores {
        let _ = write!(s, " {:>10}", format!("{c} cores"));
    }
    let _ = writeln!(s, " {:>8}", "speedup");
    let mut datasets = vec![Dataset::Twitter, Dataset::Yahoo];
    datasets.extend(wb.rmat_datasets());
    for ds in datasets {
        let budget = wb.profile.budget();
        let _ = write!(s, "{:<16}", ds.name());
        let mut first = 0.0f64;
        let mut last = 0.0f64;
        for (i, &c) in cores.iter().enumerate() {
            let r = wb.run_local(ds, c, budget, BalanceStrategy::InDegree);
            let t = r.modeled_total(&wb.cost);
            if i == 0 {
                first = t;
            }
            last = t;
            let _ = write!(s, " {:>10}", fmt_secs(t));
        }
        let _ = writeln!(s, " {:>7.1}x", first / last.max(1e-12));
    }
    s
}

/// Figure 4: distributed total time.
fn fig4(wb: &mut Workbench) -> String {
    let mut s = header(
        "Figure 4 — PDTL in the cluster: total time (modeled) vs cores and nodes",
        "Paper shape: Twitter scales well; Yahoo stops benefiting past ~16 cores; \
         RMAT graphs keep scaling to 4 nodes with negligible copy overhead.",
    );
    let nodes = wb.profile.node_sweep();
    let p = 4usize;
    let _ = write!(s, "{:<16}", "Graph");
    for &n in &nodes {
        let _ = write!(s, " {:>12}", format!("{n}N x {p}P"));
    }
    let _ = writeln!(s);
    let mut datasets = vec![Dataset::Twitter, Dataset::Yahoo];
    datasets.extend(wb.rmat_datasets());
    for ds in datasets {
        let _ = write!(s, "{:<16}", ds.name());
        for &n in &nodes {
            let budget = wb.profile.budget();
            let r = wb.run_cluster(ds, n, p, budget);
            let _ = write!(s, " {:>12}", fmt_secs(r.modeled_total(&wb.cost, &wb.net)));
        }
        let _ = writeln!(s);
    }
    s
}

/// Figure 5: memory budget vs calculation time.
fn fig5(wb: &mut Workbench) -> String {
    let mut s = header(
        "Figure 5 — memory vs calc time (modeled)",
        "Paper shape: limiting memory has negligible effect on calculation time — \
         the point of an external-memory engine.",
    );
    let _ = writeln!(
        s,
        "{:<16} {:>16} {:>16} {:>9}",
        "Graph", "high-mem calc", "low-mem calc", "ratio"
    );
    // The paper's sweep is 32GB vs 8GB per node — a 4x budget cut, with
    // the smaller budget still holding a worker's range in a few chunks.
    let hi_budget = wb.profile.budget();
    let lo_budget = MemoryBudget::edges(hi_budget.edges / 4);
    for ds in wb.all_datasets() {
        let hi = wb.run_cluster(ds, 2, 4, hi_budget);
        let lo = wb.run_cluster(ds, 2, 4, lo_budget);
        let (thi, tlo) = (hi.modeled_calc(&wb.cost), lo.modeled_calc(&wb.cost));
        let _ = writeln!(
            s,
            "{:<16} {:>16} {:>16} {:>8.2}x",
            ds.name(),
            fmt_secs(thi),
            fmt_secs(tlo),
            tlo / thi.max(1e-12)
        );
    }
    s
}

/// Figure 6: total CPU vs I/O breakdown.
fn fig6(wb: &mut Workbench) -> String {
    let mut s = header(
        "Figure 6 — total CPU vs I/O (modeled seconds summed over workers)",
        "Paper shape: PDTL is not I/O-bound — I/O is a small share of compute, \
         growing with core count and worse for Yahoo than Twitter.",
    );
    let _ = writeln!(
        s,
        "{:<10} {:>8} {:>12} {:>12} {:>8}",
        "Graph", "config", "CPU", "I/O", "IO/CPU"
    );
    for ds in [Dataset::Twitter, Dataset::Yahoo] {
        for &n in &wb.profile.node_sweep() {
            let r = wb.run_cluster(ds, n, 4, wb.profile.budget());
            let cpu: f64 = r
                .nodes
                .iter()
                .map(|nd| wb.cost.cpu_seconds(nd.cpu_ops()))
                .sum();
            let io: f64 = r
                .nodes
                .iter()
                .map(|nd| wb.cost.io_seconds(nd.io_bytes(), 0))
                .sum();
            let _ = writeln!(
                s,
                "{:<10} {:>8} {:>12} {:>12} {:>7.1}%",
                ds.name(),
                format!("{n}N"),
                fmt_secs(cpu),
                fmt_secs(io),
                100.0 * io / cpu.max(1e-12)
            );
        }
    }
    s
}

/// Figures 7/8: per-node CPU and I/O breakdown.
fn fig7_8(wb: &mut Workbench, ds: Dataset, title: &str) -> String {
    let mut s = header(
        &format!("{title} — per-node CPU and I/O, {}", ds.name()),
        "Paper shape: Twitter is well balanced across nodes; Yahoo is skewed, with \
         the high-I/O node also the high-CPU node.",
    );
    for &n in &[2usize, 4] {
        let r = wb.run_cluster(ds, n, 4, wb.profile.budget());
        let _ = writeln!(s, "{n} nodes:");
        for node in &r.nodes {
            let cpu = wb.cost.cpu_seconds(node.cpu_ops());
            let io = wb.cost.io_seconds(node.io_bytes(), 0);
            let _ = writeln!(
                s,
                "  node {:<2} CPU {:>12}  I/O {:>12}",
                node.node,
                fmt_secs(cpu),
                fmt_secs(io)
            );
        }
    }
    s
}

/// Figure 9 (and Table X): load balancing on vs off.
fn fig9(wb: &mut Workbench) -> String {
    let mut s = header(
        "Figure 9 — load balancing (modeled struggler calc time)",
        "Paper shape: in-degree balancing improves calculation time, most on \
         skewed graphs (the paper reports up to 3x).",
    );
    let _ = writeln!(
        s,
        "{:<16} {:>6} {:>14} {:>14} {:>9}",
        "Graph", "cores", "w/ LB", "w/o LB", "gain"
    );
    let mut datasets = vec![Dataset::Twitter, Dataset::Yahoo];
    datasets.push(Dataset::Rmat(wb.profile.rmat_base()));
    for ds in datasets {
        for &cores in &[8usize, 16] {
            let budget = wb.profile.budget();
            let with = wb.run_local(ds, cores, budget, BalanceStrategy::InDegree);
            let without = wb.run_local(ds, cores, budget, BalanceStrategy::EqualEdges);
            let (tw, to) = (with.modeled_calc(&wb.cost), without.modeled_calc(&wb.cost));
            let _ = writeln!(
                s,
                "{:<16} {:>6} {:>14} {:>14} {:>8.2}x",
                ds.name(),
                cores,
                fmt_secs(tw),
                fmt_secs(to),
                to / tw.max(1e-12)
            );
        }
    }
    s
}

/// Table III: total time and average copy time per node count.
fn table3(wb: &mut Workbench) -> String {
    let mut s = header(
        "Table III — total time and avg copy time per remote node (modeled)",
        "Paper shape: total time falls with nodes while avg copy time rises \
         (shared master uplink); Yahoo's copy anomaly at 4 nodes.",
    );
    let nodes = wb.profile.node_sweep();
    let _ = write!(s, "{:<16}", "Graph");
    for &n in &nodes {
        let _ = write!(s, " {:>12} {:>10}", format!("{n}N total"), "avg copy");
    }
    let _ = writeln!(s);
    let mut datasets = vec![Dataset::Twitter, Dataset::Yahoo];
    datasets.extend(wb.rmat_datasets());
    for ds in datasets {
        let _ = write!(s, "{:<16}", ds.name());
        for &n in &nodes {
            let r = wb.run_cluster(ds, n, 4, wb.profile.budget());
            let _ = write!(
                s,
                " {:>12} {:>10}",
                fmt_secs(r.modeled_total(&wb.cost, &wb.net)),
                if n == 1 {
                    "-".into()
                } else {
                    fmt_secs(r.modeled_avg_copy(&wb.net))
                }
            );
        }
        let _ = writeln!(s);
    }
    s
}

/// Table IV: per-node CPU and I/O totals — balance drift with N.
fn table4(wb: &mut Workbench) -> String {
    let mut s = header(
        "Table IV — per node total CPU and I/O (modeled)",
        "Paper shape: node-to-node CPU discrepancies grow as nodes are added \
         (1%→13% on Twitter, 87%→130% on Yahoo).",
    );
    let mut datasets = vec![Dataset::Twitter, Dataset::Yahoo];
    datasets.push(Dataset::Rmat(wb.profile.rmat_base()));
    for ds in datasets {
        let _ = writeln!(s, "{}:", ds.name());
        for &n in &[2usize, 3, 4] {
            let r = wb.run_cluster(ds, n, 4, wb.profile.budget());
            let cpus: Vec<f64> = r
                .nodes
                .iter()
                .map(|nd| wb.cost.cpu_seconds(nd.cpu_ops()))
                .collect();
            let ios: Vec<f64> = r
                .nodes
                .iter()
                .map(|nd| wb.cost.io_seconds(nd.io_bytes(), 0))
                .collect();
            let spread = (cpus.iter().cloned().fold(0.0, f64::max)
                / cpus.iter().cloned().fold(f64::MAX, f64::min).max(1e-12)
                - 1.0)
                * 100.0;
            let _ = write!(s, "  {n}N  CPU:");
            for c in &cpus {
                let _ = write!(s, " {:>10}", fmt_secs(*c));
            }
            let _ = write!(s, "  (spread {spread:.0}%)  I/O:");
            for i in &ios {
                let _ = write!(s, " {:>9}", fmt_secs(*i));
            }
            let _ = writeln!(s);
        }
    }
    s
}

/// Figure 10: single-node performance across cores.
fn fig10(wb: &mut Workbench) -> String {
    let mut s = header(
        "Figure 10 — single node, calc time across cores (modeled)",
        "Paper shape: 2 cores halve the time for all real graphs.",
    );
    let cores = wb.profile.core_sweep();
    let _ = write!(s, "{:<16}", "Graph");
    for &c in &cores {
        let _ = write!(s, " {:>10}", format!("{c} cores"));
    }
    let _ = writeln!(s);
    for ds in wb.real_datasets() {
        let _ = write!(s, "{:<16}", ds.name());
        for &c in &cores {
            let r = wb.run_local(ds, c, wb.profile.budget(), BalanceStrategy::InDegree);
            let _ = write!(s, " {:>10}", fmt_secs(r.modeled_calc(&wb.cost)));
        }
        let _ = writeln!(s);
    }
    s
}

/// Figure 11: speedup over single-core MGT.
fn fig11(wb: &mut Workbench) -> String {
    let mut s = header(
        "Figure 11 — speedup of distributed PDTL over single-core MGT (modeled calc)",
        "Paper shape: up to 55x at 4 nodes for RMAT graphs, ~30x for Twitter, \
         only ~4x for Yahoo.",
    );
    let nodes = wb.profile.node_sweep();
    let p = 4usize;
    let _ = write!(s, "{:<16} {:>10}", "Graph", "1 core");
    for &n in &nodes {
        let _ = write!(s, " {:>10}", format!("{n}N x {p}P"));
    }
    let _ = writeln!(s);
    let mut datasets = vec![Dataset::Twitter, Dataset::Yahoo];
    datasets.extend(wb.rmat_datasets());
    for ds in datasets {
        let base = wb
            .run_local(ds, 1, wb.profile.budget(), BalanceStrategy::InDegree)
            .modeled_calc(&wb.cost);
        let _ = write!(s, "{:<16} {:>10}", ds.name(), fmt_secs(base));
        for &n in &nodes {
            let r = wb.run_cluster(ds, n, p, wb.profile.budget());
            let speedup = base / r.modeled_calc(&wb.cost).max(1e-12);
            let _ = write!(s, " {:>9.1}x", speedup);
        }
        let _ = writeln!(s);
    }
    s
}

/// Figure 12: PDTL vs OPT across cores on RMAT.
fn fig12(wb: &mut Workbench) -> String {
    let ds = Dataset::Rmat(wb.profile.rmat_base());
    let mut s = header(
        &format!("Figure 12 — PDTL vs OPT on {} across cores", ds.name()),
        "Paper shape: PDTL setup (orientation) is far below OPT setup (db \
         creation); calc times comparable, PDTL ahead.",
    );
    let (input, dir) = (wb.graph(ds).1.clone(), wb.data_dir.join("fig12-optdb"));
    std::fs::create_dir_all(&dir).unwrap();
    let stats = IoStats::new();
    let db = optlike::create_database(&input, &dir.join("db"), &stats).expect("opt db");

    let _ = writeln!(
        s,
        "{:>6} {:>14} {:>14} {:>14} {:>14}",
        "cores", "PDTL setup", "PDTL calc", "OPT setup", "OPT calc"
    );
    for &c in &wb.profile.core_sweep() {
        let r = wb.run_local(ds, c, wb.profile.budget(), BalanceStrategy::InDegree);
        let ostats = IoStats::new();
        let opt = optlike::count(&db, c, MemoryBudget::edges(1 << 22), &ostats).expect("opt");
        // OPT's calc is in-memory parallel: model its CPU as ops/c.
        let opt_calc_modeled = wb.cost.cpu_seconds(3 * opt.triangles + 1) / c as f64
            + wb.cost.io_seconds(opt.calc_bytes, 0);
        let _ = writeln!(
            s,
            "{:>6} {:>14} {:>14} {:>14} {:>14}",
            c,
            fmt_secs(r.orientation.modeled(&wb.cost).total_overlapped()),
            fmt_secs(r.modeled_calc(&wb.cost)),
            fmt_secs(wb.cost.io_seconds(db.creation_bytes, 0)),
            fmt_secs(opt_calc_modeled),
        );
        assert_eq!(opt.triangles, r.triangles, "OPT must agree with PDTL");
    }
    let _ = std::fs::remove_dir_all(&dir);
    s
}

/// Figure 13: PDTL vs PowerGraph breakdown.
fn fig13(wb: &mut Workbench) -> String {
    let mut s = header(
        "Figure 13 — PDTL vs PowerGraph: calc vs total",
        "Paper shape: calc times are comparable; PowerGraph's setup makes its \
         total >2x PDTL's.",
    );
    let _ = writeln!(
        s,
        "{:<16} {:>14} {:>14} {:>14} {:>14}",
        "Graph", "PDTL calc", "PDTL total", "PG calc", "PG total"
    );
    for ds in [Dataset::Twitter, Dataset::Rmat(wb.profile.rmat_base() + 1)] {
        let r = wb.run_cluster(ds, 4, 4, wb.profile.budget());
        let g = wb.graph(ds).0.clone();
        let pg = powergraph::triangle_count(
            &g,
            powergraph::PowerGraphConfig {
                machines: 4,
                memory_bytes: u64::MAX,
                cut: powergraph::VertexCut::Greedy,
                seed: 3,
            },
        )
        .expect("pg");
        assert_eq!(pg.triangles, r.triangles);
        let (pg_calc, pg_total) = pg_modeled(wb, g.num_edges(), &pg, 4.0);
        let _ = writeln!(
            s,
            "{:<16} {:>14} {:>14} {:>14} {:>14}",
            ds.name(),
            fmt_secs(r.modeled_calc(&wb.cost)),
            fmt_secs(r.modeled_total(&wb.cost, &wb.net)),
            fmt_secs(pg_calc),
            fmt_secs(pg_total),
        );
    }
    s
}

/// Table V: PDTL vs OPT per graph.
fn table5(wb: &mut Workbench) -> String {
    let mut s = header(
        "Table V — PDTL and OPT (24-core analogue)",
        "Paper shape: PDTL orientation beats OPT db creation by 7x-75x; calc \
         within 2x either way; totals favour PDTL up to 7.8x.",
    );
    let _ = writeln!(
        s,
        "{:<16} {:>14} {:>12} {:>14} {:>12}",
        "Graph", "PDTL orient", "PDTL calc", "OPT db", "OPT calc"
    );
    let mut datasets = wb.real_datasets();
    datasets.push(Dataset::Rmat(wb.profile.rmat_base()));
    for ds in datasets {
        let cores = 8usize;
        let r = wb.run_local(ds, cores, wb.profile.budget(), BalanceStrategy::InDegree);
        let input = wb.graph(ds).1.clone();
        let dir = wb.data_dir.join("table5-optdb").join(ds.name());
        std::fs::create_dir_all(&dir).unwrap();
        let stats = IoStats::new();
        let db = optlike::create_database(&input, &dir.join("db"), &stats).expect("opt db");
        let ostats = IoStats::new();
        let opt = optlike::count(&db, cores, MemoryBudget::edges(1 << 22), &ostats).expect("opt");
        assert_eq!(opt.triangles, r.triangles);
        let _ = writeln!(
            s,
            "{:<16} {:>14} {:>12} {:>14} {:>12}",
            ds.name(),
            fmt_secs(r.orientation.modeled(&wb.cost).total_overlapped()),
            fmt_secs(r.modeled_calc(&wb.cost)),
            fmt_secs(wb.cost.io_seconds(db.creation_bytes, 0)),
            fmt_secs(
                wb.cost.cpu_seconds(6 * opt.triangles + 1) / cores as f64
                    + wb.cost.io_seconds(opt.calc_bytes, 0)
            ),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    s
}

/// Table VI: PDTL vs PowerGraph with OOM failures.
fn table6(wb: &mut Workbench) -> String {
    let mut s = header(
        "Table VI — PDTL vs PowerGraph in the cluster (F = out of memory)",
        "Paper shape: PowerGraph fails on the largest graphs even with far more \
         memory than PDTL uses; PDTL completes everywhere.",
    );
    let _ = writeln!(
        s,
        "{:<16} {:>12} {:>12} {:>12} {:>12}",
        "Graph", "PDTL calc", "PDTL total", "PG calc", "PG total"
    );
    for ds in wb.all_datasets() {
        let budget = wb.profile.low_budget();
        let r = wb.run_cluster(ds, 4, 4, budget);
        // PowerGraph gets ~7x PDTL's *total* memory (the paper gave it
        // 244GB/node vs PDTL's 1GB/core) and still fails on the graphs
        // whose replicated neighbour sets exceed it.
        let g = wb.graph(ds).0.clone();
        let pg_budget = 7 * 16 * (budget.edges as u64) * 4;
        let pg = powergraph::triangle_count(
            &g,
            powergraph::PowerGraphConfig {
                machines: 4,
                memory_bytes: pg_budget,
                cut: powergraph::VertexCut::Greedy,
                seed: 5,
            },
        );
        let (pg_calc, pg_total) = match pg {
            Ok(rep) => {
                assert_eq!(rep.triangles, r.triangles);
                let (calc, total) = pg_modeled(wb, g.num_edges(), &rep, 4.0);
                (fmt_secs(calc), fmt_secs(total))
            }
            Err(pdtl_baselines::BaselineError::OutOfMemory { .. }) => ("F".into(), "F".into()),
            Err(e) => panic!("unexpected powergraph error: {e}"),
        };
        let _ = writeln!(
            s,
            "{:<16} {:>12} {:>12} {:>12} {:>12}",
            ds.name(),
            fmt_secs(r.modeled_calc(&wb.cost)),
            fmt_secs(r.modeled_total(&wb.cost, &wb.net)),
            pg_calc,
            pg_total
        );
    }
    s
}

/// Table VII: total CPU and I/O across cores and nodes.
fn table7(wb: &mut Workbench) -> String {
    let mut s = header(
        "Table VII — total CPU and I/O vs cores and nodes (modeled)",
        "Paper shape: total CPU grows slowly with parallelism (repeated scans); \
         total I/O grows with cores (more passes over the graph).",
    );
    for ds in [Dataset::Twitter, Dataset::Yahoo] {
        let _ = writeln!(s, "{}:", ds.name());
        for &c in &wb.profile.core_sweep() {
            let r = wb.run_local(ds, c, wb.profile.budget(), BalanceStrategy::InDegree);
            let cpu = wb.cost.cpu_seconds(r.total_cpu_ops());
            let io = wb.cost.io_seconds(r.total_worker_io().total_bytes(), 0);
            let _ = writeln!(
                s,
                "  {:>2} cores   CPU {:>12}   I/O {:>12}",
                c,
                fmt_secs(cpu),
                fmt_secs(io)
            );
        }
        for &n in &wb.profile.node_sweep()[1..] {
            let r = wb.run_cluster(ds, n, 4, wb.profile.budget());
            let cpu: f64 = r
                .nodes
                .iter()
                .map(|nd| wb.cost.cpu_seconds(nd.cpu_ops()))
                .sum();
            let io: f64 = r
                .nodes
                .iter()
                .map(|nd| wb.cost.io_seconds(nd.io_bytes(), 0))
                .sum();
            let _ = writeln!(
                s,
                "  {:>2} nodes   CPU {:>12}   I/O {:>12}",
                n,
                fmt_secs(cpu),
                fmt_secs(io)
            );
        }
    }
    s
}

/// Table VIII: full runtime grid (and the OPT row).
fn table8(wb: &mut Workbench) -> String {
    let mut s = header(
        "Table VIII — PDTL total time across cores and nodes (modeled)",
        "Paper shape: monotone improvement with cores; remote nodes keep helping \
         on compute-heavy graphs.",
    );
    let cores = wb.profile.core_sweep();
    let nodes = wb.profile.node_sweep();
    let _ = write!(s, "{:<16}", "Graph");
    for &c in &cores {
        let _ = write!(s, " {:>10}", format!("{c}c"));
    }
    for &n in &nodes[1..] {
        let _ = write!(s, " {:>10}", format!("{n}N"));
    }
    let _ = writeln!(s);
    for ds in wb.all_datasets() {
        let _ = write!(s, "{:<16}", ds.name());
        for &c in &cores {
            let r = wb.run_local(ds, c, wb.profile.budget(), BalanceStrategy::InDegree);
            let _ = write!(s, " {:>10}", fmt_secs(r.modeled_total(&wb.cost)));
        }
        for &n in &nodes[1..] {
            let r = wb.run_cluster(ds, n, 4, wb.profile.budget());
            let _ = write!(s, " {:>10}", fmt_secs(r.modeled_total(&wb.cost, &wb.net)));
        }
        let _ = writeln!(s);
    }
    s
}

/// Table IX: orientation time and d*_max per graph across cores.
fn table9(wb: &mut Workbench) -> String {
    let mut s = header(
        "Table IX — orientation across cores, with d*max",
        "Paper shape: d*max is orders of magnitude below max degree (the point of \
         the degree order); orientation scales with cores.",
    );
    let cores = wb.profile.core_sweep();
    let _ = write!(s, "{:<16} {:>8}", "Graph", "d*max");
    for &c in &cores {
        let _ = write!(s, " {:>10}", format!("{c} cores"));
    }
    let _ = writeln!(s);
    for ds in wb.all_datasets() {
        let g = wb.graph(ds).0.clone();
        let o = pdtl_core::orient::orient_csr(&g);
        let _ = write!(s, "{:<16} {:>8}", ds.name(), o.d_star_max);
        for &c in &cores {
            let r = wb.run_local(ds, c, wb.profile.budget(), BalanceStrategy::InDegree);
            let _ = write!(
                s,
                " {:>10}",
                fmt_secs(r.orientation.modeled(&wb.cost).total_overlapped())
            );
        }
        let _ = writeln!(s);
    }
    s
}

/// Table X: runtime with and without load balancing.
fn table10(wb: &mut Workbench) -> String {
    let mut s = header(
        "Table X — total runtime with and without load balancing (modeled)",
        "Note: the paper's Table X column labels appear swapped relative to the \
         Figure 9 text ('up to 3x improvement'); we report balanced as faster, \
         matching the text.",
    );
    let _ = writeln!(
        s,
        "{:<16} {:>6} {:>14} {:>14}",
        "Graph", "cores", "w/ LB", "w/o LB"
    );
    let mut datasets = vec![Dataset::Twitter, Dataset::Yahoo];
    datasets.push(Dataset::Rmat(wb.profile.rmat_base()));
    for ds in datasets {
        for &cores in &[8usize, 16] {
            let with = wb.run_local(ds, cores, wb.profile.budget(), BalanceStrategy::InDegree);
            let without = wb.run_local(ds, cores, wb.profile.budget(), BalanceStrategy::EqualEdges);
            let _ = writeln!(
                s,
                "{:<16} {:>6} {:>14} {:>14}",
                ds.name(),
                cores,
                fmt_secs(with.modeled_total(&wb.cost)),
                fmt_secs(without.modeled_total(&wb.cost)),
            );
        }
    }
    s
}

/// Table XI: local multicore runtimes.
fn table11(wb: &mut Workbench) -> String {
    let mut s = header(
        "Table XI — local multicore total runtime (modeled)",
        "Paper shape: near-halving per doubling of cores, with diminishing \
         returns on Yahoo.",
    );
    let cores = wb.profile.core_sweep();
    let _ = write!(s, "{:<16}", "Graph");
    for &c in &cores {
        let _ = write!(s, " {:>10}", format!("{c} cores"));
    }
    let _ = writeln!(s);
    for ds in wb.all_datasets() {
        let _ = write!(s, "{:<16}", ds.name());
        for &c in &cores {
            let r = wb.run_local(ds, c, wb.profile.budget(), BalanceStrategy::InDegree);
            let _ = write!(s, " {:>10}", fmt_secs(r.modeled_total(&wb.cost)));
        }
        let _ = writeln!(s);
    }
    s
}

/// Tables XII/XIII: local cluster with low vs high memory per node.
fn table12_13(wb: &mut Workbench, low_memory: bool) -> String {
    let (label, budget) = if low_memory {
        (
            "Table XII — local cluster, 8GB/node analogue (modeled)",
            MemoryBudget::edges(wb.profile.budget().edges / 4),
        )
    } else {
        (
            "Table XIII — local cluster, 32GB/node analogue (modeled)",
            wb.profile.budget(),
        )
    };
    let mut s = header(
        label,
        "Paper shape: low memory changes totals only marginally — external \
         memory does its job.",
    );
    let nodes = wb.profile.node_sweep();
    let _ = write!(s, "{:<16}", "Graph");
    for &n in &nodes {
        let _ = write!(s, " {:>10}", format!("{n}N"));
    }
    let _ = writeln!(s);
    for ds in wb.all_datasets() {
        let _ = write!(s, "{:<16}", ds.name());
        for &n in &nodes {
            let r = wb.run_cluster(ds, n, 4, budget);
            let _ = write!(s, " {:>10}", fmt_secs(r.modeled_total(&wb.cost, &wb.net)));
        }
        let _ = writeln!(s);
    }
    s
}

/// Table XIV: many-node PDTL vs PowerGraph with OOM.
fn table14(wb: &mut Workbench) -> String {
    let mut s = header(
        "Table XIV — 7-node analogue: PDTL vs PowerGraph (F = out of memory)",
        "Paper shape: with 7 nodes PowerGraph fails on everything beyond the two \
         small graphs; PDTL completes all datasets.",
    );
    let _ = writeln!(
        s,
        "{:<16} {:>12} {:>12} {:>10} {:>12}",
        "Graph", "PDTL orient", "PDTL total", "PG calc", "PG total"
    );
    for ds in wb.all_datasets() {
        let budget = wb.profile.low_budget();
        let r = wb.run_cluster(ds, 4, 2, budget);
        let g = wb.graph(ds).0.clone();
        // Per the paper's Table XIV, PowerGraph gets much more memory
        // (40GB/node vs PDTL's 32GB total) and still fails beyond the
        // two small graphs; the scaled threshold sits just above the
        // small stand-ins' per-machine replicated footprint.
        let pg_budget = 64 * (budget.edges as u64) * 4;
        let pg = powergraph::triangle_count(
            &g,
            powergraph::PowerGraphConfig {
                machines: 7,
                memory_bytes: pg_budget,
                cut: powergraph::VertexCut::Greedy,
                seed: 9,
            },
        );
        let (pg_calc, pg_total) = match pg {
            Ok(rep) => {
                let (calc, total) = pg_modeled(wb, g.num_edges(), &rep, 7.0);
                (fmt_secs(calc), fmt_secs(total))
            }
            Err(pdtl_baselines::BaselineError::OutOfMemory { .. }) => ("F".into(), "F".into()),
            Err(e) => panic!("unexpected powergraph error: {e}"),
        };
        let _ = writeln!(
            s,
            "{:<16} {:>12} {:>12} {:>10} {:>12}",
            ds.name(),
            fmt_secs(r.orientation.modeled(&wb.cost).total_overlapped()),
            fmt_secs(r.modeled_total(&wb.cost, &wb.net)),
            pg_calc,
            pg_total
        );
    }
    // CTTP sidebar (Section V-E4): shuffle blow-up.
    let g = wb.graph(Dataset::Twitter).0.clone();
    let ct = cttp::run(
        &g,
        cttp::CttpConfig {
            rho: 4,
            reducers: 8,
        },
    )
    .expect("cttp");
    let _ = writeln!(
        s,
        "\nCTTP sidebar: shuffle ships {} edge copies for |E| = {} ({}x blow-up) over {} rounds",
        ct.shuffle_records,
        g.num_edges(),
        ct.shuffle_records / g.num_edges().max(1),
        ct.rounds
    );
    // PATRIC sidebar: aggregate partition memory vs graph size.
    let pr = patric::partition_memory(
        &g,
        patric::PatricConfig {
            processors: 8,
            memory_bytes: u64::MAX,
            balance: patric::PatricBalance::ByDegreeSum,
        },
    );
    let _ = writeln!(
        s,
        "PATRIC sidebar: 8 overlapping partitions hold {} bytes vs {} graph bytes ({:.1}x)",
        pr.iter().sum::<u64>(),
        g.adj_len() * 4,
        pr.iter().sum::<u64>() as f64 / (g.adj_len() * 4) as f64
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workbench::Profile;

    /// Smoke-run every experiment at the Quick profile; this is the
    /// end-to-end test of the whole harness.
    #[test]
    fn all_experiments_run_quick() {
        let mut wb = Workbench::temp(Profile::Quick);
        for id in ALL_EXPERIMENTS {
            let out = run_experiment(id, &mut wb).unwrap_or_else(|| panic!("unknown id {id}"));
            assert!(out.contains("==="), "{id} produced no table");
            assert!(out.len() > 100, "{id} output suspiciously short");
        }
    }

    #[test]
    fn unknown_experiment_is_none() {
        let mut wb = Workbench::temp(Profile::Quick);
        assert!(run_experiment("tableXL", &mut wb).is_none());
    }
}
