//! Shared experiment machinery: dataset cache, runner wrappers,
//! formatting.

use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Duration;

use pdtl_cluster::{ClusterConfig, ClusterReport, ClusterRunner, NetModel};
use pdtl_core::balance::BalanceStrategy;
use pdtl_core::{LocalConfig, LocalRunner, RunReport};
use pdtl_graph::datasets::Dataset;
use pdtl_graph::{DiskGraph, Graph};
use pdtl_io::{CostModel, IoStats, MemoryBudget};

/// Scale profile of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Tiny graphs, for CI and smoke tests (~seconds total).
    Quick,
    /// The default scaled reproduction (~minutes total).
    Full,
}

impl Profile {
    /// Scale factor applied to the real-graph stand-ins.
    pub fn real_scale(&self) -> f64 {
        match self {
            Profile::Quick => 0.06,
            Profile::Full => 0.35,
        }
    }

    /// RMAT scales standing in for the paper's RMAT-26..29.
    pub fn rmat_scales(&self) -> Vec<u32> {
        match self {
            Profile::Quick => vec![9, 10],
            Profile::Full => vec![11, 12, 13, 14],
        }
    }

    /// The first RMAT scale (stand-in for the paper's RMAT-26).
    pub fn rmat_base(&self) -> u32 {
        self.rmat_scales()[0]
    }

    /// Default per-core memory budget in edges ("1 GB/core" scaled).
    pub fn budget(&self) -> MemoryBudget {
        match self {
            Profile::Quick => MemoryBudget::edges(4 << 10),
            Profile::Full => MemoryBudget::edges(64 << 10),
        }
    }

    /// A deliberately tight budget ("8 GB/node" scaled).
    pub fn low_budget(&self) -> MemoryBudget {
        match self {
            Profile::Quick => MemoryBudget::edges(512),
            Profile::Full => MemoryBudget::edges(4 << 10),
        }
    }

    /// Core counts swept by local experiments (paper: 1..24/32).
    pub fn core_sweep(&self) -> Vec<usize> {
        match self {
            Profile::Quick => vec![1, 2, 4],
            Profile::Full => vec![1, 2, 4, 8, 16],
        }
    }

    /// Node counts swept by distributed experiments (paper: 1..4/8).
    pub fn node_sweep(&self) -> Vec<usize> {
        match self {
            Profile::Quick => vec![1, 2],
            Profile::Full => vec![1, 2, 3, 4],
        }
    }
}

/// Dataset cache + runner wrappers for the experiments.
pub struct Workbench {
    /// Scale profile.
    pub profile: Profile,
    /// Directory holding generated graphs and run scratch space.
    pub data_dir: PathBuf,
    /// Cost model for modeled times.
    pub cost: CostModel,
    /// Network model for modeled copy times.
    pub net: NetModel,
    graphs: HashMap<String, (Graph, DiskGraph)>,
    run_id: u64,
}

impl Workbench {
    /// Create a workbench rooted at `data_dir` (usually
    /// `target/pdtl-data`).
    pub fn new(profile: Profile, data_dir: impl Into<PathBuf>) -> Self {
        let data_dir = data_dir.into();
        std::fs::create_dir_all(&data_dir).expect("create data dir");
        Self {
            profile,
            data_dir,
            cost: CostModel::default(),
            net: NetModel::default(),
            graphs: HashMap::new(),
            run_id: 0,
        }
    }

    /// A workbench in a fresh temporary directory.
    pub fn temp(profile: Profile) -> Self {
        static UNIQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let id = UNIQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Self::new(
            profile,
            std::env::temp_dir().join(format!("pdtl-bench-{}-{id}", std::process::id())),
        )
    }

    /// The four real-graph stand-ins at the profile's scale.
    pub fn real_datasets(&self) -> Vec<Dataset> {
        Dataset::real_graphs().to_vec()
    }

    /// RMAT datasets at the profile's scales.
    pub fn rmat_datasets(&self) -> Vec<Dataset> {
        self.profile
            .rmat_scales()
            .into_iter()
            .map(Dataset::Rmat)
            .collect()
    }

    /// All datasets most experiments sweep.
    pub fn all_datasets(&self) -> Vec<Dataset> {
        let mut v = self.real_datasets();
        v.extend(self.rmat_datasets());
        v
    }

    /// Build (or fetch from cache) a dataset's in-memory graph and its
    /// on-disk PDTL-format copy.
    pub fn graph(&mut self, ds: Dataset) -> (&Graph, &DiskGraph) {
        let name = ds.name();
        if !self.graphs.contains_key(&name) {
            let scale = match ds {
                Dataset::Rmat(_) => 1.0,
                _ => self.profile.real_scale(),
            };
            let g = ds.build_scaled(scale).expect("dataset generation");
            let stats = IoStats::new();
            let base = self.data_dir.join(&name).join("input");
            let dg = DiskGraph::write(&g, &base, &stats).expect("dataset write");
            self.graphs.insert(name.clone(), (g, dg));
        }
        let (g, dg) = self.graphs.get(&name).unwrap();
        (g, dg)
    }

    fn scratch(&mut self, tag: &str) -> PathBuf {
        self.run_id += 1;
        let dir = self
            .data_dir
            .join("runs")
            .join(format!("{tag}-{}", self.run_id));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    /// Run the single-machine PDTL pipeline.
    pub fn run_local(
        &mut self,
        ds: Dataset,
        cores: usize,
        budget: MemoryBudget,
        balance: BalanceStrategy,
    ) -> RunReport {
        let input = self.graph(ds).1.clone();
        let dir = self.scratch("local");
        let runner = LocalRunner::new(LocalConfig {
            cores,
            budget,
            balance,
            ..Default::default()
        })
        .expect("local config");
        let report = runner.run(&input, &dir).expect("local run");
        let _ = std::fs::remove_dir_all(&dir);
        report
    }

    /// Run the distributed PDTL pipeline.
    pub fn run_cluster(
        &mut self,
        ds: Dataset,
        nodes: usize,
        cores_per_node: usize,
        budget: MemoryBudget,
    ) -> ClusterReport {
        let input = self.graph(ds).1.clone();
        let dir = self.scratch("cluster");
        let runner = ClusterRunner::new(ClusterConfig {
            nodes,
            cores_per_node,
            budget,
            balance: BalanceStrategy::InDegree,
            listing: false,
            net: self.net,
            transport: pdtl_cluster::TransportKind::InProc,
            ..Default::default()
        })
        .expect("cluster config");
        let report = runner.run(&input, &dir).expect("cluster run");
        let _ = std::fs::remove_dir_all(&dir);
        report
    }
}

/// Format a duration the way the paper's tables do (`2m44.2s`,
/// `1h17m24.5s`, `32.8s`).
pub fn fmt_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    fmt_secs(secs)
}

/// Format seconds paper-style.
pub fn fmt_secs(secs: f64) -> String {
    if !secs.is_finite() {
        return "-".into();
    }
    if secs < 0.0005 {
        return format!("{:.1}ms", secs * 1e3);
    }
    if secs < 1.0 {
        return format!("{:.0}ms", secs * 1e3);
    }
    let total = secs;
    let h = (total / 3600.0).floor() as u64;
    let m = ((total - h as f64 * 3600.0) / 60.0).floor() as u64;
    let s = total - h as f64 * 3600.0 - m as f64 * 60.0;
    if h > 0 {
        format!("{h}h{m:02}m{s:04.1}s")
    } else if m > 0 {
        format!("{m}m{s:04.1}s")
    } else {
        format!("{s:.1}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_secs_paper_style() {
        assert_eq!(fmt_secs(32.8), "32.8s");
        assert_eq!(fmt_secs(164.2), "2m44.2s");
        assert_eq!(fmt_secs(4644.5), "1h17m24.5s");
        assert_eq!(fmt_secs(0.25), "250ms");
        assert_eq!(fmt_secs(0.0001), "0.1ms");
        assert_eq!(fmt_secs(f64::NAN), "-");
    }

    #[test]
    fn fmt_duration_wraps() {
        assert_eq!(fmt_duration(Duration::from_millis(1500)), "1.5s");
    }

    #[test]
    fn workbench_caches_datasets() {
        let mut wb = Workbench::temp(Profile::Quick);
        let n1 = wb.graph(Dataset::Rmat(6)).0.num_vertices();
        let n2 = wb.graph(Dataset::Rmat(6)).0.num_vertices();
        assert_eq!(n1, n2);
        assert_eq!(wb.graphs.len(), 1);
    }

    #[test]
    fn local_and_cluster_agree() {
        let mut wb = Workbench::temp(Profile::Quick);
        let budget = wb.profile.budget();
        let local = wb.run_local(Dataset::Rmat(7), 2, budget, BalanceStrategy::InDegree);
        let cluster = wb.run_cluster(Dataset::Rmat(7), 2, 1, budget);
        assert_eq!(local.triangles, cluster.triangles);
        let oracle = pdtl_graph::verify::triangle_count(wb.graph(Dataset::Rmat(7)).0);
        assert_eq!(local.triangles, oracle);
    }

    #[test]
    fn profile_knobs_are_ordered() {
        assert!(Profile::Quick.real_scale() < Profile::Full.real_scale());
        assert!(Profile::Quick.budget().edges < Profile::Full.budget().edges);
        assert!(Profile::Quick.low_budget().edges < Profile::Quick.budget().edges);
    }
}
