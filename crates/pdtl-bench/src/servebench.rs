//! Serve-mode throughput benchmark with a JSON emitter.
//!
//! `exp serve [--json]` boots a catalog daemon over a warm RMAT-12
//! graph (both codecs pre-oriented, so queries measure steady-state
//! serving, not preprocessing), then drives a sustained mixed workload
//! — exact count on both codecs, listing, clustering — from several
//! concurrent clients for a measurement window (`PDTL_BENCH_MS × 10`,
//! so the default is a 2 s soak). The emitted `BENCH_serve.json` maps:
//!
//! * `serve/qps` — sustained queries per second over the window;
//! * `serve/p50_us` / `serve/p99_us` — latency quantiles from the
//!   daemon's fixed-bucket histogram (bucket upper bounds);
//! * `serve/queries` — total queries answered.
//!
//! Any failed query is a hard error: the benchmark doubles as a soak
//! test of the daemon under concurrent load.

use std::fmt::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pdtl_cluster::{Catalog, QueryOperation, QueryOptions, ServeClient, ServeConfig, Server};
use pdtl_graph::gen::rmat::rmat;
use pdtl_graph::DiskGraph;
use pdtl_io::{Codec, IoStats};

/// The serve workload, pinned so reruns are comparable.
pub mod workload {
    /// `(scale, seed)` of the catalog graph (warm RMAT-12, the fixture
    /// of the engine-level accounting tests).
    pub const SERVE_RMAT: (u32, u64) = (12, 18);
    /// Concurrent client connections driving the load.
    pub const CLIENTS: usize = 4;
    /// Daemon worker-pool size.
    pub const WORKERS: usize = 4;
    /// Per-query memory budget in edges.
    pub const BUDGET_EDGES: u64 = 1 << 16;
}

/// Aggregated result of the soak.
#[derive(Debug, Clone)]
pub struct ServeBenchResult {
    /// Metric name (`serve/...`).
    pub name: String,
    /// Metric value (unit in the name).
    pub value: f64,
}

fn window() -> Duration {
    let ms = std::env::var("PDTL_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(200);
    Duration::from_millis(ms * 10)
}

/// Boot the daemon, soak it, and return the throughput metrics.
///
/// Panics on any failed query — a daemon that drops queries under load
/// has no meaningful throughput number.
pub fn run_serve_bench() -> Vec<ServeBenchResult> {
    let dir = std::env::temp_dir().join(format!("pdtl-servebench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cat_dir = dir.join("catalog");
    std::fs::create_dir_all(&cat_dir).expect("create catalog dir");
    let (scale, seed) = workload::SERVE_RMAT;
    let g = rmat(scale, seed).expect("generate RMAT");
    DiskGraph::write(&g, cat_dir.join("rmat"), &IoStats::new()).expect("write catalog graph");

    let catalog = Catalog::open(
        &cat_dir,
        &dir.join("work"),
        &[Codec::Raw, Codec::DeltaVarint],
        workload::WORKERS,
    )
    .expect("open catalog");
    let server = Server::spawn(
        catalog,
        ServeConfig {
            workers: workload::WORKERS,
            ..Default::default()
        },
    )
    .expect("spawn server");
    let addr = server.addr();

    // The mixed workload each client cycles through.
    let mix: Vec<QueryOperation> = vec![
        QueryOperation::Count,
        QueryOperation::Count, // second slot runs delta-varint
        QueryOperation::List { limit: 0 },
        QueryOperation::Clustering,
    ];
    let stop = Arc::new(AtomicBool::new(false));
    let soak = window();
    let start = Instant::now();
    let clients: Vec<_> = (0..workload::CLIENTS)
        .map(|c| {
            let addr = addr.clone();
            let stop = stop.clone();
            let mix = mix.clone();
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(&addr).expect("connect");
                let mut i = c; // de-phase the clients
                while !stop.load(Ordering::Relaxed) {
                    let op = mix[i % mix.len()];
                    let codec = if i % mix.len() == 1 {
                        Codec::DeltaVarint
                    } else {
                        Codec::Raw
                    };
                    let options = QueryOptions {
                        cores: 2,
                        budget_edges: workload::BUDGET_EDGES,
                        codec,
                        ..Default::default()
                    };
                    client
                        .query("rmat", op, options)
                        .expect("query failed under soak");
                    i += 1;
                }
            })
        })
        .collect();
    std::thread::sleep(soak);
    stop.store(true, Ordering::Relaxed);
    for c in clients {
        c.join().expect("client thread");
    }
    let elapsed = start.elapsed();
    let stats = server.shutdown();
    assert_eq!(stats.failed, 0, "soak must not fail queries");
    let _ = std::fs::remove_dir_all(&dir);

    let qps = stats.served as f64 / elapsed.as_secs_f64();
    vec![
        ServeBenchResult {
            name: "serve/qps".into(),
            value: qps,
        },
        ServeBenchResult {
            name: "serve/p50_us".into(),
            value: stats.quantile_micros(0.5) as f64,
        },
        ServeBenchResult {
            name: "serve/p99_us".into(),
            value: stats.quantile_micros(0.99) as f64,
        },
        ServeBenchResult {
            name: "serve/queries".into(),
            value: stats.served as f64,
        },
    ]
}

/// Render results as a JSON object: `{"serve/qps": value, ...}`.
pub fn to_json(results: &[ServeBenchResult]) -> String {
    let mut s = String::from("{\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(s, "  \"{}\": {:.1}{comma}", r.name, r.value);
    }
    s.push_str("}\n");
    s
}

/// Write the JSON snapshot to `path`.
pub fn write_json(path: impl AsRef<Path>, results: &[ServeBenchResult]) -> std::io::Result<()> {
    std::fs::write(path, to_json(results))
}

/// Human-readable table (what `exp serve` prints).
pub fn to_table(results: &[ServeBenchResult]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{:<24} {:>14}", "metric", "value");
    for r in results {
        let _ = writeln!(s, "{:<24} {:>14.1}", r.name, r.value);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soak_produces_sane_metrics_and_json() {
        std::env::set_var("PDTL_BENCH_MS", "20");
        let results = run_serve_bench();
        let names: Vec<&str> = results.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            ["serve/qps", "serve/p50_us", "serve/p99_us", "serve/queries"]
        );
        assert!(results.iter().all(|r| r.value > 0.0), "{results:?}");
        let json = to_json(&results);
        assert!(json.starts_with("{\n") && json.ends_with("}\n"), "{json}");
        assert!(json.contains("\"serve/qps\""), "{json}");
    }
}
