//! Programmatic kernel benchmarks with a JSON emitter.
//!
//! `exp kernels [--json]` runs the same hot-kernel set as the
//! `kernels` criterion bench target — sorted-array intersection, the
//! in-memory MGT chunk loop, orientation, load balancing, generation —
//! under the same names, and (with `--json`) writes
//! `BENCH_kernels.json` mapping bench name → mean ns/iter. CI runs this
//! once per push and uploads the file, so every PR leaves a comparable
//! perf data point; the committed snapshot at the repo root is the
//! current baseline.
//!
//! The timing loop mirrors the criterion shim: one warmup run, then
//! repeat for a measurement window (`PDTL_BENCH_MS`, default 200 ms per
//! bench) recording per-iteration wall times.

use std::fmt::Write as _;
use std::path::Path;
use std::time::{Duration, Instant};

use pdtl_core::intersect::{
    intersect_gallop_visit, intersect_visit, intersect_visit_counted_with, SimdLevel,
};
use pdtl_core::mgt::{mgt_count_range_opt, mgt_in_memory, MgtOptions};
use pdtl_core::orient::{orient_csr, orient_csr_threads, orient_to_disk_with};
use pdtl_core::sink::CountSink;
use pdtl_core::{split_ranges, BalanceStrategy, EdgeRange};
use pdtl_graph::gen::rmat::rmat;
use pdtl_graph::DiskGraph;
use pdtl_io::{Codec, IoBackend, IoStats, MemoryBudget, U32Writer};

/// The kernel workload, defined once so the criterion target
/// (`benches/kernels.rs`) and this JSON runner measure the *same*
/// inputs under the same names and cannot drift apart.
pub mod workload {
    /// `(|a|, |b|)` size pairs for the intersection kernels.
    pub const INTERSECT_PAIRS: [(usize, usize); 3] = [(1000, 1000), (100, 10_000), (10, 100_000)];
    /// Memory budgets (edges) for the in-memory MGT sweep.
    pub const MGT_BUDGETS: [usize; 3] = [1 << 20, 1 << 14, 1 << 11];
    /// `(scale, seed)` of the RMAT graph the MGT sweep runs on.
    pub const MGT_RMAT: (u32, u64) = (10, 1);
    /// `(scale, seed)` of the orientation bench's graph.
    pub const ORIENT_RMAT: (u32, u64) = (10, 2);
    /// Core counts of the orientation ablation rows.
    pub const ORIENT_CORES: [usize; 3] = [1, 2, 4];
    /// `(scale, seed)` of the load-balancing bench's graph.
    pub const BALANCE_RMAT: (u32, u64) = (12, 3);
    /// `(scale, seed)` of the generator bench (`rmat_k8`).
    pub const GEN_RMAT: (u32, u64) = (8, 4);
    /// `(scale, seed)` of the disk-MGT backend ablation's graph
    /// (RMAT-12, the fixture of the engine-level accounting tests).
    pub const DISK_RMAT: (u32, u64) = (12, 18);
    /// Memory budget (edges) of the disk-MGT backend ablation — far
    /// below `|E*|`, the multi-pass regime where the backend choice
    /// matters.
    pub const DISK_BUDGET: usize = 4096;
    /// Emulated per-block device latency (µs) of the `simlat` backend
    /// rows; the zero-latency rows measure the warm page cache.
    pub const DISK_SIM_LATENCY_US: u64 = 50;
    /// Values written by the `u32_writer/write_all_1m` throughput case.
    pub const WRITER_N: usize = 1 << 20;
    /// Values decoded by the `varint_decode/1m` hot-loop row.
    pub const VARINT_DECODE_N: usize = 1 << 20;

    /// The delta+varint byte stream of the `varint_decode` row: one
    /// strictly-increasing run with mixed 1–2 byte gap encodings, the
    /// shape rank-space out-lists produce.
    pub fn varint_decode_input() -> Vec<u8> {
        let mut vals = Vec::with_capacity(VARINT_DECODE_N);
        let mut v = 0u32;
        for i in 0..VARINT_DECODE_N as u32 {
            v += 1 + (i % 13) * 11;
            vals.push(v);
        }
        let mut bytes = Vec::new();
        pdtl_io::codec::encode_run(&vals, &mut bytes).expect("encode varint fixture");
        bytes
    }

    /// A sorted id set of `n` values with the given stride/offset.
    pub fn sorted_set(n: usize, stride: u32, offset: u32) -> Vec<u32> {
        (0..n as u32).map(|i| i * stride + offset).collect()
    }

    /// The two sorted inputs for an intersection size pair — both span
    /// the same id range so neither side can early-exit.
    pub fn intersect_inputs(a_len: usize, b_len: usize) -> (Vec<u32>, Vec<u32>) {
        let span = (a_len.max(b_len) * 5) as u32;
        (
            sorted_set(a_len, span / a_len as u32, 3),
            sorted_set(b_len, span / b_len as u32, 0),
        )
    }
}

/// One benchmark's aggregated timing.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name (`group/bench/param`), matching the criterion
    /// target's naming.
    pub name: String,
    /// Mean wall time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Minimum observed iteration, nanoseconds.
    pub min_ns: f64,
    /// Measured iterations.
    pub iters: u64,
}

fn measurement_window() -> Duration {
    let ms = std::env::var("PDTL_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(200);
    Duration::from_millis(ms)
}

fn time_one<O>(name: &str, window: Duration, mut f: impl FnMut() -> O) -> BenchResult {
    std::hint::black_box(f());
    let (mut iters, mut total) = (0u64, Duration::ZERO);
    let mut min = Duration::MAX;
    while total < window {
        let t = Instant::now();
        std::hint::black_box(f());
        let dt = t.elapsed();
        iters += 1;
        total += dt;
        min = min.min(dt);
    }
    BenchResult {
        name: name.to_string(),
        mean_ns: total.as_nanos() as f64 / iters.max(1) as f64,
        min_ns: min.as_nanos() as f64,
        iters,
    }
}

/// Run the kernel benchmark suite, returning one result per bench.
pub fn run_kernel_benches() -> Vec<BenchResult> {
    let window = measurement_window();
    let mut out = Vec::new();

    // intersection kernels
    for &(a_len, b_len) in &workload::INTERSECT_PAIRS {
        let (a, b) = workload::intersect_inputs(a_len, b_len);
        out.push(time_one(
            &format!("intersect/linear/{a_len}x{b_len}"),
            window,
            || intersect_visit(&a, &b, |_| {}),
        ));
        out.push(time_one(
            &format!("intersect/gallop/{a_len}x{b_len}"),
            window,
            || intersect_gallop_visit(&a, &b, |_| {}),
        ));
        // Forced-scalar ablation row: the same shape through the same
        // ratio dispatch with the SIMD tier off, so every snapshot
        // carries its own vectorization speedup measurement.
        out.push(time_one(
            &format!("intersect/linear_scalar/{a_len}x{b_len}"),
            window,
            || intersect_visit_counted_with(SimdLevel::Off, &a, &b, |_| {}).0,
        ));
    }

    // in-memory MGT across budgets
    let g = rmat(workload::MGT_RMAT.0, workload::MGT_RMAT.1).expect("rmat");
    let o = orient_csr(&g);
    for &budget in &workload::MGT_BUDGETS {
        out.push(time_one(
            &format!("mgt_in_memory/budget_{budget}"),
            window,
            || mgt_in_memory(&o, MemoryBudget::edges(budget), &mut CountSink).0,
        ));
    }

    // orientation, plus the cores ablation over the sharded gather
    let g2 = rmat(workload::ORIENT_RMAT.0, workload::ORIENT_RMAT.1).expect("rmat");
    out.push(time_one("orient_csr_rmat10", window, || orient_csr(&g2)));
    for &cores in &workload::ORIENT_CORES {
        out.push(time_one(
            &format!("orient_csr_rmat10/cores_{cores}"),
            window,
            || orient_csr_threads(&g2, cores),
        ));
    }

    // load balancing
    let g3 = rmat(workload::BALANCE_RMAT.0, workload::BALANCE_RMAT.1).expect("rmat");
    let o3 = orient_csr(&g3);
    let ins = o3.in_degrees();
    for strategy in [BalanceStrategy::EqualEdges, BalanceStrategy::InDegree] {
        out.push(time_one(
            &format!("split_ranges/{strategy:?}_x64"),
            window,
            || split_ranges(&o3.offsets, &ins, 64, strategy),
        ));
    }

    // generator
    out.push(time_one("rmat_k8", window, || {
        rmat(workload::GEN_RMAT.0, workload::GEN_RMAT.1).unwrap()
    }));

    // disk-MGT backend ablation (RMAT-12, multi-pass budget): warm page
    // cache and emulated-latency device, one row per I/O backend
    // (including uring, which degrades to prefetch where unavailable —
    // the row then measures the fallback, like production would).
    let dir = std::env::temp_dir().join(format!("pdtl-kernelbench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench scratch dir");
    {
        let g = rmat(workload::DISK_RMAT.0, workload::DISK_RMAT.1).expect("rmat");
        let stats = IoStats::new();
        let input = DiskGraph::write(&g, dir.join("g"), &stats).expect("write");
        // The backend rows are pinned to the raw codec so snapshots
        // stay comparable whatever PDTL_CODEC the run inherits; the
        // codec rows below measure the encoding choice explicitly.
        let (og, _) = orient_to_disk_with(&input, dir.join("oriented"), 2, Codec::Raw, &stats)
            .expect("orient");
        let full = EdgeRange {
            start: 0,
            end: og.m_star(),
        };
        let budget = MemoryBudget::edges(workload::DISK_BUDGET);
        for (latency_us, tag) in [
            (0, "mgt_disk"),
            (workload::DISK_SIM_LATENCY_US, "mgt_disk_simlat50us"),
        ] {
            for backend in IoBackend::ALL {
                let opts = MgtOptions {
                    backend,
                    io_latency: Duration::from_micros(latency_us),
                    ..MgtOptions::default()
                };
                out.push(time_one(
                    &format!("{tag}/backend_{backend}"),
                    window,
                    || {
                        mgt_count_range_opt(&og, full, budget, &mut CountSink, IoStats::new(), opts)
                            .expect("mgt run")
                            .triangles
                    },
                ));
            }
        }

        // codec ablation: the same multi-pass run (default backend)
        // over each on-disk encoding — the delta-varint row's smaller
        // bytes_read is the Theorem IV.2 win the snapshot tracks.
        for codec in Codec::ALL {
            let (og_c, _) = orient_to_disk_with(
                &input,
                dir.join(format!("oriented-{codec}")),
                2,
                codec,
                &stats,
            )
            .expect("orient");
            let full_c = EdgeRange {
                start: 0,
                end: og_c.m_star(),
            };
            out.push(time_one(&format!("mgt_disk/codec_{codec}"), window, || {
                mgt_count_range_opt(
                    &og_c,
                    full_c,
                    budget,
                    &mut CountSink,
                    IoStats::new(),
                    MgtOptions::default(),
                )
                .expect("mgt run")
                .triangles
            }));
        }
    }

    // varint decode throughput: the codec layer's hot loop on its own
    {
        let bytes = workload::varint_decode_input();
        out.push(time_one("varint_decode/1m", window, || {
            let mut pos = 0usize;
            let mut acc = 0u64;
            while let Some(v) = pdtl_io::codec::decode_varint_u32(&bytes, &mut pos) {
                acc += u64::from(v);
            }
            acc
        }));
    }

    // stream-writer throughput (the bulk `write_all` fast path)
    {
        let vals: Vec<u32> = (0..workload::WRITER_N as u32).collect();
        let path = dir.join("writer-throughput");
        out.push(time_one("u32_writer/write_all_1m", window, || {
            let mut w = U32Writer::create(&path, IoStats::new()).expect("create");
            w.write_all(&vals).expect("write");
            w.finish().expect("finish")
        }));
    }
    let _ = std::fs::remove_dir_all(&dir);

    out
}

/// Render results as a JSON object: `{"bench name": mean_ns, ...}`.
pub fn to_json(results: &[BenchResult]) -> String {
    let mut s = String::from("{\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(s, "  \"{}\": {:.1}{comma}", r.name, r.mean_ns);
    }
    s.push_str("}\n");
    s
}

/// Write the JSON snapshot to `path`.
pub fn write_json(path: impl AsRef<Path>, results: &[BenchResult]) -> std::io::Result<()> {
    std::fs::write(path, to_json(results))
}

/// Human-readable table (what `exp kernels` prints).
pub fn to_table(results: &[BenchResult]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<44} {:>12} {:>12} {:>8}",
        "kernel", "mean/iter", "min/iter", "iters"
    );
    for r in results {
        let _ = writeln!(
            s,
            "{:<44} {:>12} {:>12} {:>8}",
            r.name,
            fmt_ns(r.mean_ns),
            fmt_ns(r.min_ns),
            r.iters
        );
    }
    s
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_runs_and_serialises() {
        std::env::set_var("PDTL_BENCH_MS", "1");
        let results = run_kernel_benches();
        assert!(results.len() >= 25, "expected the full kernel set");
        assert!(results.iter().all(|r| r.mean_ns > 0.0 && r.iters > 0));
        let json = to_json(&results);
        assert!(json.starts_with('{') && json.ends_with("}\n"));
        assert!(json.contains("\"mgt_in_memory/budget_2048\""));
        for backend in ["blocking", "prefetch", "mmap", "uring"] {
            assert!(json.contains(&format!("\"mgt_disk/backend_{backend}\"")));
            assert!(json.contains(&format!("\"mgt_disk_simlat50us/backend_{backend}\"")));
        }
        assert!(json.contains("\"orient_csr_rmat10/cores_2\""));
        for codec in ["raw", "delta-varint"] {
            assert!(json.contains(&format!("\"mgt_disk/codec_{codec}\"")));
        }
        assert!(json.contains("\"varint_decode/1m\""));
        assert!(json.contains("\"intersect/linear_scalar/1000x1000\""));
        assert!(json.contains("\"u32_writer/write_all_1m\""));
        // one "name": value line per bench, no trailing comma
        assert_eq!(json.matches(':').count(), results.len());
        assert!(!json.contains(",\n}"));
        let table = to_table(&results);
        assert!(table.contains("orient_csr_rmat10"));
    }
}
