//! Experiment runner: regenerates the paper's tables and figures.
//!
//! ```text
//! exp all            # every experiment, Full profile
//! exp table6 fig9    # selected experiments
//! exp all --quick    # tiny graphs (CI / smoke test)
//! ```

use pdtl_bench::experiments::{run_experiment, ALL_EXPERIMENTS};
use pdtl_bench::workbench::{Profile, Workbench};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let ids: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with('-'))
        .cloned()
        .collect();
    if ids.is_empty() {
        eprintln!("usage: exp <all | id...> [--quick]");
        eprintln!("experiment ids: {}", ALL_EXPERIMENTS.join(" "));
        std::process::exit(2);
    }

    let profile = if quick { Profile::Quick } else { Profile::Full };
    let data_dir = std::path::Path::new("target").join("pdtl-data");
    let mut wb = Workbench::new(profile, data_dir);

    let selected: Vec<&str> = if ids.iter().any(|i| i == "all") {
        ALL_EXPERIMENTS.to_vec()
    } else {
        ids.iter().map(|s| s.as_str()).collect()
    };

    println!(
        "PDTL experiment harness — profile: {:?} (modeled times use the paper's \
         500 MB/s SSD / 10 GbE cost model)",
        profile
    );
    for id in selected {
        let start = std::time::Instant::now();
        match run_experiment(id, &mut wb) {
            Some(out) => {
                print!("{out}");
                println!("[{id} regenerated in {:.1?}]", start.elapsed());
            }
            None => {
                eprintln!("unknown experiment id: {id}");
                std::process::exit(2);
            }
        }
    }
}
