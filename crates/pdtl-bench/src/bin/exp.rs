//! Experiment runner: regenerates the paper's tables and figures.
//!
//! ```text
//! exp all                  # every experiment, Full profile
//! exp table6 fig9          # selected experiments
//! exp all --quick          # tiny graphs (CI / smoke test)
//! exp kernels --json       # kernel micro-benches -> BENCH_kernels.json
//! exp all --backend mmap   # force one I/O backend for every engine run
//! exp all --codec delta-varint  # force one on-disk codec likewise
//! ```

use pdtl_bench::experiments::{run_experiment, ALL_EXPERIMENTS};
use pdtl_bench::workbench::{Profile, Workbench};
use pdtl_bench::{kernelbench, servebench};
use pdtl_io::{Codec, IoBackend};

/// Where `exp kernels --json` writes its snapshot (the repo root when
/// run via `cargo run`).
const BENCH_JSON: &str = "BENCH_kernels.json";

/// Where `exp serve --json` writes the serve-mode throughput snapshot.
const SERVE_JSON: &str = "BENCH_serve.json";

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--backend <b>` pins the default I/O backend for every engine run
    // in this process via the same env override the CI matrix uses
    // (consumed by `MgtOptions::default`). The dedicated kernel-bench
    // backend rows still measure all four explicitly.
    if let Some(i) = args.iter().position(|a| a == "--backend") {
        let Some(value) = args.get(i + 1) else {
            eprintln!("--backend needs a value (blocking|prefetch|mmap|uring)");
            std::process::exit(2);
        };
        if IoBackend::parse(value).is_none() {
            eprintln!("bad --backend {value:?} (blocking|prefetch|mmap|uring)");
            std::process::exit(2);
        }
        std::env::set_var(pdtl_io::BACKEND_ENV, value);
        args.drain(i..=i + 1);
    }
    // `--codec <c>` likewise pins the on-disk graph codec via the
    // PDTL_CODEC env override (consumed by `MgtOptions::default`). The
    // dedicated `mgt_disk/codec_*` rows still measure both explicitly.
    if let Some(i) = args.iter().position(|a| a == "--codec") {
        let Some(value) = args.get(i + 1) else {
            eprintln!("--codec needs a value (raw|delta-varint)");
            std::process::exit(2);
        };
        if Codec::parse(value).is_none() {
            eprintln!("bad --codec {value:?} (raw|delta-varint)");
            std::process::exit(2);
        }
        std::env::set_var(pdtl_io::CODEC_ENV, value);
        args.drain(i..=i + 1);
    }
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let json = args.iter().any(|a| a == "--json");
    let ids: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with('-'))
        .cloned()
        .collect();
    if ids.is_empty() {
        eprintln!(
            "usage: exp <all | kernels | serve | id...> [--quick] [--json] [--backend b] [--codec c]"
        );
        eprintln!("experiment ids: {}", ALL_EXPERIMENTS.join(" "));
        std::process::exit(2);
    }

    if ids.iter().any(|i| i == "kernels") {
        // The SIMD feature level, resolved I/O backend, and resolved
        // codec go into the regeneration log so a BENCH_kernels.json
        // diff is attributable to the environment (a snapshot from an
        // SSE2-only runner is not comparable to an AVX2 one, and a
        // delta-varint default shifts every engine row).
        println!(
            "[simd: {} (host supports {})] [backend: {}] [codec: {}]",
            pdtl_core::intersect::simd_level(),
            pdtl_core::intersect::SimdLevel::detect(),
            IoBackend::default_from_env().resolve(),
            Codec::default_from_env(),
        );
        let start = std::time::Instant::now();
        let results = kernelbench::run_kernel_benches();
        print!("{}", kernelbench::to_table(&results));
        if json {
            kernelbench::write_json(BENCH_JSON, &results).expect("write bench json");
            println!("[wrote {BENCH_JSON}]");
        }
        println!("[kernels measured in {:.1?}]", start.elapsed());
        if ids.len() == 1 {
            return;
        }
    }

    if ids.iter().any(|i| i == "serve") {
        let start = std::time::Instant::now();
        let results = servebench::run_serve_bench();
        print!("{}", servebench::to_table(&results));
        if json {
            servebench::write_json(SERVE_JSON, &results).expect("write serve json");
            println!("[wrote {SERVE_JSON}]");
        }
        println!("[serve soaked in {:.1?}]", start.elapsed());
        if ids.iter().all(|i| i == "serve" || i == "kernels") {
            return;
        }
    }

    let profile = if quick { Profile::Quick } else { Profile::Full };
    let data_dir = std::path::Path::new("target").join("pdtl-data");
    let mut wb = Workbench::new(profile, data_dir);

    let selected: Vec<&str> = if ids.iter().any(|i| i == "all") {
        ALL_EXPERIMENTS.to_vec()
    } else {
        ids.iter()
            .map(|s| s.as_str())
            .filter(|&s| s != "kernels" && s != "serve")
            .collect()
    };

    println!(
        "PDTL experiment harness — profile: {:?} (modeled times use the paper's \
         500 MB/s SSD / 10 GbE cost model)",
        profile
    );
    for id in selected {
        let start = std::time::Instant::now();
        match run_experiment(id, &mut wb) {
            Some(out) => {
                print!("{out}");
                println!("[{id} regenerated in {:.1?}]", start.elapsed());
            }
            None => {
                eprintln!("unknown experiment id: {id}");
                std::process::exit(2);
            }
        }
    }
}
