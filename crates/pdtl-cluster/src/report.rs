//! Cluster-level result records.
//!
//! These aggregate the wire-level [`WorkerSummary`] records into the
//! per-node and cluster-wide quantities the paper's evaluation reports:
//! per-node CPU/I-O totals (Table IV, Figures 7/8), average copy times
//! (Table III), calculation time as the struggler node's wall time
//! (Section V-E3), and total network traffic (Theorem IV.3).

use std::time::Duration;

use pdtl_core::PhaseReport;
use pdtl_io::{CostModel, ModeledTime};

use crate::message::WorkerSummary;
use crate::netmodel::NetModel;

/// Per-node outcome.
#[derive(Debug, Clone)]
pub struct NodeReport {
    /// Node id (0 = master).
    pub node: usize,
    /// Wall time spent copying this node's replica (zero for the
    /// master, which owns the original).
    pub copy: Duration,
    /// Bytes replicated to this node.
    pub copy_bytes: u64,
    /// Per-worker summaries.
    pub workers: Vec<WorkerSummary>,
    /// Node wall time from config receipt to results sent.
    pub wall: Duration,
    /// Ranges this node absorbed from failed peers.
    pub reassigned_ranges: u64,
}

impl NodeReport {
    /// Triangles found on this node.
    pub fn triangles(&self) -> u64 {
        self.workers.iter().map(|w| w.triangles).sum()
    }

    /// Total CPU time proxy: counted operations summed over workers.
    pub fn cpu_ops(&self) -> u64 {
        self.workers.iter().map(|w| w.cpu_ops).sum()
    }

    /// Total bytes of disk I/O over the node's workers.
    pub fn io_bytes(&self) -> u64 {
        self.workers
            .iter()
            .map(|w| w.bytes_read + w.bytes_written)
            .sum()
    }

    /// Total wall nanoseconds workers spent blocked on I/O.
    pub fn io_nanos(&self) -> u64 {
        self.workers.iter().map(|w| w.io_nanos).sum()
    }

    /// The node's calculation wall time: its slowest worker.
    pub fn calc_wall(&self) -> Duration {
        Duration::from_nanos(self.workers.iter().map(|w| w.wall_nanos).max().unwrap_or(0))
    }

    /// Modeled calculation time of the node: max over its workers,
    /// compute/I-O overlapped.
    pub fn modeled_calc(&self, cm: &CostModel) -> f64 {
        self.workers
            .iter()
            .map(|w| {
                ModeledTime {
                    cpu: cm.cpu_seconds(w.cpu_ops),
                    io: cm.io_seconds(w.bytes_read + w.bytes_written, w.io_ops),
                    net: 0.0,
                }
                .total_overlapped()
            })
            .fold(0.0, f64::max)
    }

    /// Modeled replication time of this node's copy under `nm`, given
    /// `remote_nodes` receivers sharing the master uplink.
    pub fn modeled_copy(&self, nm: &NetModel, remote_nodes: usize) -> f64 {
        if self.copy_bytes == 0 {
            0.0
        } else {
            nm.replication_secs(self.copy_bytes, remote_nodes)
        }
    }
}

/// A snapshot of the five network traffic classes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetSnapshot {
    /// Configuration bytes (`Θ(NP)`).
    pub config: u64,
    /// Graph replication bytes (`Θ(N|E|)`).
    pub graph: u64,
    /// Result bytes.
    pub result: u64,
    /// Triangle-list bytes (`Θ(T)`).
    pub triangles: u64,
    /// Control-plane bytes (heartbeats, shutdowns) — liveness overhead
    /// outside Theorem IV.3's three terms.
    pub control: u64,
}

impl NetSnapshot {
    /// All traffic.
    pub fn total(&self) -> u64 {
        self.config + self.graph + self.result + self.triangles + self.control
    }

    /// The traffic Theorem IV.3 bounds: everything except the
    /// control plane, whose heartbeat volume is a function of wall
    /// time, not of `N`, `P` or `T`.
    pub fn theorem_bytes(&self) -> u64 {
        self.config + self.graph + self.result + self.triangles
    }
}

/// The outcome of a distributed run.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Exact triangle count.
    pub triangles: u64,
    /// Master's orientation phase.
    pub orientation: PhaseReport,
    /// Master's load-balancing phase.
    pub balancing: PhaseReport,
    /// Per-node reports, index = node id.
    pub nodes: Vec<NodeReport>,
    /// Network traffic by class.
    pub network: NetSnapshot,
    /// End-to-end wall time.
    pub wall: Duration,
    /// Collected triangles (listing mode only).
    pub listed: Option<Vec<(u32, u32, u32)>>,
    /// Node dispatch retries performed (respawns after a failure).
    pub retries: u64,
    /// Worker ranges re-dispatched away from failed nodes.
    pub reassigned_ranges: u64,
    /// Nodes given up on after exhausting their retry budget.
    pub failed_nodes: Vec<usize>,
}

impl ClusterReport {
    /// Cluster calculation time: the struggler node.
    pub fn calc_wall(&self) -> Duration {
        self.nodes
            .iter()
            .map(|n| n.calc_wall())
            .max()
            .unwrap_or_default()
    }

    /// Average copy wall time over remote (non-master) nodes — the
    /// "Avg copy time" column of Table III.
    pub fn avg_copy(&self) -> Duration {
        let remote: Vec<_> = self.nodes.iter().filter(|n| n.copy_bytes > 0).collect();
        if remote.is_empty() {
            return Duration::ZERO;
        }
        let total: Duration = remote.iter().map(|n| n.copy).sum();
        total / remote.len() as u32
    }

    /// Modeled calculation time: struggler node under the cost model.
    pub fn modeled_calc(&self, cm: &CostModel) -> f64 {
        self.nodes
            .iter()
            .map(|n| n.modeled_calc(cm))
            .fold(0.0, f64::max)
    }

    /// Modeled average copy time under the network model.
    pub fn modeled_avg_copy(&self, nm: &NetModel) -> f64 {
        let remotes = self.nodes.iter().filter(|n| n.copy_bytes > 0).count();
        if remotes == 0 {
            return 0.0;
        }
        let total: f64 = self.nodes.iter().map(|n| n.modeled_copy(nm, remotes)).sum();
        total / remotes as f64
    }

    /// Modeled total: orientation + struggler(copy + calc).
    pub fn modeled_total(&self, cm: &CostModel, nm: &NetModel) -> f64 {
        let remotes = self.nodes.iter().filter(|n| n.copy_bytes > 0).count();
        let struggle = self
            .nodes
            .iter()
            .map(|n| n.modeled_copy(nm, remotes) + n.modeled_calc(cm))
            .fold(0.0, f64::max);
        self.orientation.modeled(cm).total_overlapped()
            + self.balancing.modeled(cm).total_overlapped()
            + struggle
    }

    /// Sum of per-node triangle counts (must equal `triangles`).
    pub fn node_triangle_sum(&self) -> u64 {
        self.nodes.iter().map(|n| n.triangles()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(w: u32, tri: u64, wall_ms: u64) -> WorkerSummary {
        WorkerSummary {
            worker: w,
            start: 0,
            end: 10,
            triangles: tri,
            iterations: 1,
            cpu_ops: 1_000_000 * (w as u64 + 1),
            bytes_read: 5000,
            bytes_written: 0,
            seeks: 1,
            io_ops: 3,
            io_nanos: 1000,
            wall_nanos: wall_ms * 1_000_000,
        }
    }

    fn node(id: usize, copy_ms: u64, walls: &[u64]) -> NodeReport {
        NodeReport {
            node: id,
            copy: Duration::from_millis(copy_ms),
            copy_bytes: if copy_ms == 0 { 0 } else { copy_ms * 1000 },
            workers: walls
                .iter()
                .enumerate()
                .map(|(i, &w)| summary(i as u32, 5, w))
                .collect(),
            wall: Duration::from_millis(*walls.iter().max().unwrap_or(&0)),
            reassigned_ranges: 0,
        }
    }

    fn report() -> ClusterReport {
        ClusterReport {
            triangles: 20,
            orientation: PhaseReport::default(),
            balancing: PhaseReport::default(),
            nodes: vec![node(0, 0, &[10, 20]), node(1, 7, &[30, 5])],
            network: NetSnapshot {
                config: 100,
                graph: 10_000,
                result: 200,
                triangles: 0,
                control: 50,
            },
            wall: Duration::from_millis(60),
            listed: None,
            retries: 0,
            reassigned_ranges: 0,
            failed_nodes: vec![],
        }
    }

    #[test]
    fn calc_wall_is_struggler_node() {
        assert_eq!(report().calc_wall(), Duration::from_millis(30));
    }

    #[test]
    fn avg_copy_ignores_master() {
        assert_eq!(report().avg_copy(), Duration::from_millis(7));
    }

    #[test]
    fn node_aggregates() {
        let r = report();
        assert_eq!(r.nodes[0].triangles(), 10);
        assert_eq!(r.node_triangle_sum(), 20);
        assert_eq!(r.nodes[0].io_bytes(), 10_000);
        assert_eq!(r.nodes[0].cpu_ops(), 3_000_000);
    }

    #[test]
    fn net_snapshot_totals() {
        assert_eq!(report().network.total(), 10_350);
        // heartbeat overhead stays out of the theorem-bound classes
        assert_eq!(report().network.theorem_bytes(), 10_300);
    }

    #[test]
    fn modeled_times_positive_and_ordered() {
        let r = report();
        let cm = CostModel::default();
        let nm = NetModel::default();
        let calc = r.modeled_calc(&cm);
        assert!(calc > 0.0);
        assert!(r.modeled_total(&cm, &nm) >= calc);
        assert!(r.modeled_avg_copy(&nm) > 0.0);
    }

    #[test]
    fn empty_cluster_degenerates() {
        let r = ClusterReport {
            triangles: 0,
            orientation: PhaseReport::default(),
            balancing: PhaseReport::default(),
            nodes: vec![],
            network: NetSnapshot::default(),
            wall: Duration::ZERO,
            listed: None,
            retries: 0,
            reassigned_ranges: 0,
            failed_nodes: vec![],
        };
        assert_eq!(r.calc_wall(), Duration::ZERO);
        assert_eq!(r.avg_copy(), Duration::ZERO);
        assert_eq!(r.modeled_avg_copy(&NetModel::default()), 0.0);
    }
}
