//! TCP node service: run a PDTL worker node behind a real socket.
//!
//! The in-process transport is the default simulated cluster; this
//! module lets the same node logic serve over TCP, so a cluster can be
//! assembled from actual processes (or machines) — each node binds a
//! loopback/LAN port, the master connects and speaks the exact same
//! protocol. Used by the runner's `TransportKind::Tcp` mode and
//! available standalone for multi-process deployments.

use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use crate::error::{ClusterError, Result};
use crate::netmodel::NetTraffic;
use crate::node::serve_node;
use crate::transport::TcpTransport;

/// A node served over TCP in a background thread.
pub struct TcpNode {
    /// Address the node is listening on (connect the master here).
    pub addr: String,
    /// Cluster id of the node, carried into panic errors.
    pub id: usize,
    handle: std::thread::JoinHandle<Result<()>>,
}

impl TcpNode {
    /// Bind a fresh loopback port and serve counting requests on the
    /// first accepted connection until the master shuts the node down.
    /// `id` is the cluster node id, used for error attribution.
    pub fn spawn(id: usize, traffic: Arc<NetTraffic>) -> Result<TcpNode> {
        let listener = TcpListener::bind("127.0.0.1:0")
            .map_err(|e| ClusterError::Io(pdtl_io::IoError::os("bind", "127.0.0.1:0", e)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ClusterError::Io(pdtl_io::IoError::os("addr", "tcp", e)))?
            .to_string();
        let handle = std::thread::spawn(move || serve_one(listener, traffic));
        Ok(TcpNode { addr, id, handle })
    }

    /// Wait for the node to finish serving. A panicking node thread
    /// surfaces as [`ClusterError::NodePanic`] with this node's id and
    /// the panic payload.
    pub fn join(self) -> Result<()> {
        self.handle
            .join()
            .map_err(|payload| ClusterError::node_panic(self.id, payload))?
    }
}

/// Accept one connection on `listener` and serve it until shutdown.
pub fn serve_one(listener: TcpListener, traffic: Arc<NetTraffic>) -> Result<()> {
    let (stream, _) = listener
        .accept()
        .map_err(|e| ClusterError::Io(pdtl_io::IoError::os("accept", "tcp", e)))?;
    serve_stream(stream, traffic)
}

/// Serve requests on an established stream until shutdown.
pub fn serve_stream(stream: TcpStream, traffic: Arc<NetTraffic>) -> Result<()> {
    let transport = TcpTransport::from_stream(stream, traffic)?;
    serve_node(&transport)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Message, NodeDirectives, NodeFault, WorkerConfig};
    use crate::transport::Transport;
    use pdtl_core::orient::orient_to_disk;
    use pdtl_graph::gen::rmat::rmat;
    use pdtl_graph::verify::triangle_count;
    use pdtl_graph::DiskGraph;
    use pdtl_io::IoStats;

    #[test]
    fn tcp_node_counts_over_a_real_socket() {
        let g = rmat(7, 77).unwrap();
        let expected = triangle_count(&g);
        let stats = IoStats::new();
        let dir = std::env::temp_dir().join(format!("pdtl-tcpnode-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let input = DiskGraph::write(&g, dir.join("g"), &stats).unwrap();
        let (og, _) = orient_to_disk(&input, dir.join("oriented"), 2, &stats).unwrap();

        let traffic = NetTraffic::new();
        let node = TcpNode::spawn(1, traffic.clone()).unwrap();
        let master = TcpTransport::connect(&node.addr, traffic.clone()).unwrap();
        master
            .send(&Message::Config {
                node: 1,
                graph_base: og.disk.base().to_string_lossy().into_owned(),
                workers: vec![WorkerConfig {
                    start: 0,
                    end: og.m_star(),
                    budget_edges: 512,
                    scan_pruning: true,
                    backend: pdtl_io::IoBackend::default(),
                    io_latency_us: 0,
                    read_fault: None,
                    codec: pdtl_io::Codec::Raw,
                }],
                listing: false,
                directives: NodeDirectives::default(),
            })
            .unwrap();
        let reply = master.recv().unwrap();
        master.send(&Message::Shutdown).unwrap();
        node.join().unwrap();
        let Message::Results { workers, .. } = reply else {
            panic!("expected Results, got {reply:?}");
        };
        assert_eq!(workers[0].triangles, expected);
        assert!(traffic.config_bytes() > 0 && traffic.result_bytes() > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tcp_node_join_carries_id_and_panic_payload() {
        let traffic = NetTraffic::new();
        let node = TcpNode::spawn(7, traffic.clone()).unwrap();
        let master = TcpTransport::connect(&node.addr, traffic).unwrap();
        master
            .send(&Message::Config {
                node: 7,
                graph_base: "/g".into(),
                workers: vec![],
                listing: false,
                directives: NodeDirectives {
                    heartbeat_ms: 0,
                    fault: NodeFault::Panic,
                },
            })
            .unwrap();
        let err = node.join().unwrap_err();
        let ClusterError::NodePanic { node: id, detail } = err else {
            panic!("expected NodePanic, got {err}");
        };
        assert_eq!(id, 7);
        assert!(detail.contains("injected fault"), "{detail}");
    }

    #[test]
    fn tcp_node_reports_error_end_to_end() {
        // The NodeError path over a real socket: a bad replica path
        // comes back as a protocol-level NodeError message, not a hang
        // or a dropped connection.
        let traffic = NetTraffic::new();
        let node = TcpNode::spawn(3, traffic.clone()).unwrap();
        let master = TcpTransport::connect(&node.addr, traffic.clone()).unwrap();
        master
            .send(&Message::Config {
                node: 3,
                graph_base: "/nonexistent/replica".into(),
                workers: vec![],
                listing: false,
                directives: NodeDirectives::default(),
            })
            .unwrap();
        let reply = master.recv().unwrap();
        master.send(&Message::Shutdown).unwrap();
        node.join().unwrap();
        let Message::NodeError { node: id, detail } = reply else {
            panic!("expected NodeError, got {reply:?}");
        };
        assert_eq!(id, 3);
        assert!(!detail.is_empty());
        assert!(
            traffic.result_bytes() > 0,
            "NodeError counts as result traffic"
        );
    }
}
