//! Deterministic fault injection for the cluster runtime.
//!
//! A [`FaultPlan`] describes which nodes misbehave and how, either
//! programmatically (the `ClusterConfig::fault` field) or through the
//! `PDTL_FAULT` environment variable — the same override pattern as
//! `PDTL_IO_BACKEND`/`PDTL_SIMD`, which is how the CI fault matrix runs
//! the whole suite under injected failures.
//!
//! # Grammar
//!
//! `PDTL_FAULT` holds `;`-separated directives:
//!
//! * `<kind>@<node>[x<times>][:<arg>]` — inject `kind` on node `node`.
//!   `times` bounds how many dispatch attempts observe the fault
//!   (default: every attempt — a host that stays down); `x1` models a
//!   transient crash whose respawn succeeds. Kinds:
//!   - `panic` — the node thread panics (a crashed process),
//!   - `drop` — the node closes its connection,
//!   - `stall` — the node goes silent mid-run (wedged; found by the
//!     heartbeat deadline),
//!   - `delay:<ms>` — the node sleeps before working, heartbeating all
//!     the while (slow, not dead),
//!   - `shortread:<u32s>` — every worker's scan source fails after
//!     delivering that many values (a truncated/dying replica),
//!   - `copyfail` — the master's replica copy to that node fails,
//!   - `corrupt:<ext>` — the replica file `<ext>` (`deg`/`adj`/`hdr`/
//!     `vix`/`map`/`bnd`/`mft`, no dot) is bit-flipped *after* a
//!     successful copy; post-copy digest verification detects it, so
//!     `x1` models a transient medium error healed by the re-copy and
//!     a persistent spec exhausts the retry budget into reassignment.
//! * `seed=<u64>` / `kill=<k>` — kill `k` nodes chosen
//!   deterministically from the seed once the node count is known
//!   (expanded by [`FaultPlan::resolve`]); the chosen victims panic on
//!   every attempt.
//!
//! Example: `panic@1x1;delay@2:50` — node 1 crashes once (recovers on
//! respawn), node 2 is slow. `seed=42;kill=2` — two seeded victims stay
//! down.
//!
//! The plan is interpreted by the master: node-level faults ship to
//! nodes inside the Config message's directives tail, short reads ride
//! the per-worker record tail, and `copyfail` never leaves the master.
//! Recovery dispatches (range reassignment, the master-local fallback)
//! deliberately ship no faults — the plan models hosts failing, not the
//! master's own process.

use pdtl_io::diskfault::FaultTarget;

use crate::error::{ClusterError, Result};
use crate::message::NodeFault;

/// Environment variable consulted by `ClusterConfig::default()` for a
/// fault plan, mirroring `PDTL_IO_BACKEND`.
pub const FAULT_ENV: &str = "PDTL_FAULT";

/// `times` value meaning "every dispatch attempt": the host stays down.
const PERSISTENT: u32 = u32::MAX;

/// What a [`FaultSpec`] injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Node thread panics on dispatch.
    Panic,
    /// Node drops its connection on dispatch.
    Drop,
    /// Node goes silent on dispatch (no heartbeats, no results).
    Stall,
    /// Node sleeps this many milliseconds before working (heartbeats
    /// keep flowing).
    Delay(u32),
    /// Every worker's scan source fails after delivering this many
    /// `u32`s.
    ShortRead(u64),
    /// The master's replica copy to the node fails.
    CopyFail,
    /// The named replica file is silently corrupted after a successful
    /// copy (caught by post-copy digest verification).
    CorruptReplica(FaultTarget),
}

/// One fault directive: a kind, a target node, and how many dispatch
/// attempts observe it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Target node id.
    pub node: u32,
    /// What to inject.
    pub kind: FaultKind,
    /// How many dispatch attempts observe the fault ([`u32::MAX`] =
    /// all of them).
    pub times: u32,
}

/// A deterministic fault-injection plan (see the module docs for the
/// `PDTL_FAULT` grammar).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Explicit fault directives.
    pub specs: Vec<FaultSpec>,
    /// Seeded kill set: `(seed, k)` picks `k` distinct victims once the
    /// node count is known.
    pub seeded_kills: Option<(u64, u32)>,
}

impl FaultPlan {
    /// An empty plan: no injected faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty() && self.seeded_kills.is_none()
    }

    /// Parse the `PDTL_FAULT` grammar.
    pub fn parse(s: &str) -> Result<Self> {
        let mut plan = FaultPlan::default();
        let (mut seed, mut kill) = (None, None);
        for part in s.split(';').map(str::trim).filter(|p| !p.is_empty()) {
            if let Some(v) = part.strip_prefix("seed=") {
                seed = Some(parse_num::<u64>(v, part)?);
            } else if let Some(v) = part.strip_prefix("kill=") {
                kill = Some(parse_num::<u32>(v, part)?);
            } else {
                plan.specs.push(parse_spec(part)?);
            }
        }
        match (seed, kill) {
            (Some(s), Some(k)) => plan.seeded_kills = Some((s, k)),
            (None, None) => {}
            _ => {
                return Err(ClusterError::Config(
                    "PDTL_FAULT: seed= and kill= must appear together".into(),
                ))
            }
        }
        Ok(plan)
    }

    /// Read the plan from [`FAULT_ENV`]; unset or empty means no
    /// faults. An unparsable value is a configuration error surfaced at
    /// run time, not silently ignored.
    pub fn from_env() -> Result<Self> {
        match std::env::var(FAULT_ENV) {
            Ok(v) if !v.trim().is_empty() => Self::parse(&v),
            _ => Ok(Self::default()),
        }
    }

    /// Like [`from_env`](Self::from_env) but panicking on a malformed
    /// value, for use in `Default` impls (same contract as
    /// `IoBackend::default_from_env`: a bad env var fails loudly).
    pub fn default_from_env() -> Self {
        Self::from_env().unwrap_or_else(|e| panic!("{FAULT_ENV}: {e}"))
    }

    /// Expand the plan against a concrete node count: seeded kills
    /// become persistent `Panic` specs on `k` distinct victims (`k`
    /// clamps to the node count), chosen by a seeded LCG so the same
    /// `(seed, k, nodes)` always selects the same victims.
    pub fn resolve(&self, nodes: usize) -> ResolvedFaults {
        let mut specs: Vec<(FaultSpec, u32)> = self.specs.iter().map(|&s| (s, s.times)).collect();
        if let Some((seed, k)) = self.seeded_kills {
            for victim in seeded_victims(seed, k, nodes) {
                let spec = FaultSpec {
                    node: victim,
                    kind: FaultKind::Panic,
                    times: PERSISTENT,
                };
                specs.push((spec, PERSISTENT));
            }
        }
        ResolvedFaults { specs }
    }
}

/// Pick `k` distinct victims in `0..nodes` from `seed` (deterministic).
fn seeded_victims(seed: u64, k: u32, nodes: usize) -> Vec<u32> {
    let mut victims = Vec::new();
    if nodes == 0 {
        return victims;
    }
    let k = (k as usize).min(nodes);
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    while victims.len() < k {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let candidate = ((state >> 33) % nodes as u64) as u32;
        if !victims.contains(&candidate) {
            victims.push(candidate);
        }
    }
    victims
}

fn parse_num<T: std::str::FromStr>(v: &str, ctx: &str) -> Result<T> {
    v.parse()
        .map_err(|_| ClusterError::Config(format!("PDTL_FAULT: bad number in `{ctx}`")))
}

/// Parse one `<kind>@<node>[x<times>][:<arg>]` directive.
fn parse_spec(part: &str) -> Result<FaultSpec> {
    let bad = |why: &str| ClusterError::Config(format!("PDTL_FAULT: {why} in `{part}`"));
    let (kind_s, rest) = part.split_once('@').ok_or_else(|| bad("missing `@node`"))?;
    let (target, arg) = match rest.split_once(':') {
        Some((t, a)) => (t, Some(a)),
        None => (rest, None),
    };
    let (node_s, times_s) = match target.split_once('x') {
        Some((n, t)) => (n, Some(t)),
        None => (target, None),
    };
    let node = parse_num::<u32>(node_s, part)?;
    let times = match times_s {
        Some(t) => {
            let t = parse_num::<u32>(t, part)?;
            if t == 0 {
                return Err(bad("x0 would never fire"));
            }
            t
        }
        None => PERSISTENT,
    };
    let need_arg = || arg.ok_or_else(|| bad("missing `:arg`"));
    let kind = match kind_s {
        "panic" => FaultKind::Panic,
        "drop" => FaultKind::Drop,
        "stall" => FaultKind::Stall,
        "delay" => FaultKind::Delay(parse_num(need_arg()?, part)?),
        "shortread" => FaultKind::ShortRead(parse_num(need_arg()?, part)?),
        "copyfail" => FaultKind::CopyFail,
        "corrupt" => FaultKind::CorruptReplica(
            FaultTarget::parse(need_arg()?).ok_or_else(|| bad("unknown replica file extension"))?,
        ),
        other => return Err(bad(&format!("unknown fault kind `{other}`"))),
    };
    if arg.is_some()
        && !matches!(
            kind,
            FaultKind::Delay(_) | FaultKind::ShortRead(_) | FaultKind::CorruptReplica(_)
        )
    {
        return Err(bad("kind takes no `:arg`"));
    }
    Ok(FaultSpec { node, kind, times })
}

/// A [`FaultPlan`] expanded against a node count, with per-spec
/// remaining-charge counters the runner consumes as it dispatches.
#[derive(Debug, Clone)]
pub struct ResolvedFaults {
    /// `(spec, remaining charges)`; [`PERSISTENT`] never decrements.
    specs: Vec<(FaultSpec, u32)>,
}

impl ResolvedFaults {
    /// Faults to ship with a dispatch to `node`, consuming one charge
    /// of each matching spec: the node-level fault for the Config
    /// directives tail plus the per-worker short-read budget.
    pub fn dispatch_faults(&mut self, node: usize) -> (NodeFault, Option<u64>) {
        let mut node_fault = NodeFault::None;
        let mut read_fault = None;
        for (spec, remaining) in &mut self.specs {
            if spec.node as usize != node || *remaining == 0 {
                continue;
            }
            let fault = match spec.kind {
                FaultKind::Panic => NodeFault::Panic,
                FaultKind::Drop => NodeFault::Drop,
                FaultKind::Stall => NodeFault::Stall,
                FaultKind::Delay(ms) => NodeFault::Delay(ms),
                FaultKind::ShortRead(n) => {
                    if read_fault.is_none() {
                        read_fault = Some(n);
                        consume(remaining);
                    }
                    continue;
                }
                FaultKind::CopyFail | FaultKind::CorruptReplica(_) => continue,
            };
            if node_fault == NodeFault::None {
                node_fault = fault;
                consume(remaining);
            }
        }
        (node_fault, read_fault)
    }

    /// Whether the replica copy to `node` should fail this attempt,
    /// consuming one charge.
    pub fn copy_fail(&mut self, node: usize) -> bool {
        for (spec, remaining) in &mut self.specs {
            if spec.node as usize == node && *remaining > 0 && spec.kind == FaultKind::CopyFail {
                consume(remaining);
                return true;
            }
        }
        false
    }

    /// The replica file to corrupt after this attempt's copy to `node`
    /// lands (if any), consuming one charge.
    pub fn corrupt_replica(&mut self, node: usize) -> Option<FaultTarget> {
        for (spec, remaining) in &mut self.specs {
            if spec.node as usize != node || *remaining == 0 {
                continue;
            }
            if let FaultKind::CorruptReplica(target) = spec.kind {
                consume(remaining);
                return Some(target);
            }
        }
        None
    }
}

fn consume(remaining: &mut u32) {
    if *remaining != PERSISTENT {
        *remaining -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_grammar() {
        let plan =
            FaultPlan::parse("panic@1x1; delay@2:50 ;shortread@0x2:1000;copyfail@3").unwrap();
        assert_eq!(
            plan.specs,
            vec![
                FaultSpec {
                    node: 1,
                    kind: FaultKind::Panic,
                    times: 1
                },
                FaultSpec {
                    node: 2,
                    kind: FaultKind::Delay(50),
                    times: PERSISTENT
                },
                FaultSpec {
                    node: 0,
                    kind: FaultKind::ShortRead(1000),
                    times: 2
                },
                FaultSpec {
                    node: 3,
                    kind: FaultKind::CopyFail,
                    times: PERSISTENT
                },
            ]
        );
        assert_eq!(plan.seeded_kills, None);

        let seeded = FaultPlan::parse("seed=42;kill=2").unwrap();
        assert!(seeded.specs.is_empty());
        assert_eq!(seeded.seeded_kills, Some((42, 2)));

        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn rejects_malformed_directives() {
        for bad in [
            "panic",          // no @node
            "panic@x",        // no node id
            "explode@1",      // unknown kind
            "delay@1",        // missing arg
            "panic@1:5",      // arg on argless kind
            "panic@1x0",      // zero times
            "seed=7",         // seed without kill
            "kill=2",         // kill without seed
            "shortread@1:js", // non-numeric arg
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn seeded_kill_is_deterministic_and_distinct() {
        let a = seeded_victims(42, 3, 8);
        let b = seeded_victims(42, 3, 8);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 3, "victims are distinct: {a:?}");
        assert!(a.iter().all(|&v| v < 8));
        // a different seed picks a different set at least sometimes
        let other: Vec<_> = (0..16).map(|s| seeded_victims(s, 3, 8)).collect();
        assert!(other.iter().any(|v| *v != a));
        // kill count clamps to the node count
        assert_eq!(seeded_victims(7, 100, 4).len(), 4);
    }

    #[test]
    fn charges_are_consumed_per_dispatch() {
        let plan = FaultPlan::parse("panic@1x1;shortread@2:64").unwrap();
        let mut r = plan.resolve(4);
        assert_eq!(r.dispatch_faults(1), (NodeFault::Panic, None));
        // the single charge is spent: the respawn dispatch is clean
        assert_eq!(r.dispatch_faults(1), (NodeFault::None, None));
        // persistent faults never run out
        assert_eq!(r.dispatch_faults(2), (NodeFault::None, Some(64)));
        assert_eq!(r.dispatch_faults(2), (NodeFault::None, Some(64)));
        assert_eq!(r.dispatch_faults(0), (NodeFault::None, None));
    }

    #[test]
    fn copy_fail_consumes_independently() {
        let plan = FaultPlan::parse("copyfail@1x2").unwrap();
        let mut r = plan.resolve(2);
        assert!(r.copy_fail(1));
        assert!(r.copy_fail(1));
        assert!(!r.copy_fail(1));
        assert!(!r.copy_fail(0));
        // copyfail never leaks into dispatch faults
        let mut r = plan.resolve(2);
        assert_eq!(r.dispatch_faults(1), (NodeFault::None, None));
        assert!(r.copy_fail(1));
    }

    #[test]
    fn corrupt_parses_and_consumes_independently() {
        let plan = FaultPlan::parse("corrupt@1x1:adj").unwrap();
        assert_eq!(
            plan.specs,
            vec![FaultSpec {
                node: 1,
                kind: FaultKind::CorruptReplica(FaultTarget::Adj),
                times: 1
            }]
        );
        let mut r = plan.resolve(3);
        // Never leaks into dispatch faults, fires once, then is spent.
        assert_eq!(r.dispatch_faults(1), (NodeFault::None, None));
        assert_eq!(r.corrupt_replica(1), Some(FaultTarget::Adj));
        assert_eq!(r.corrupt_replica(1), None);
        assert_eq!(r.corrupt_replica(0), None);
        // Persistent corruption keeps firing on every re-copy.
        let mut r = FaultPlan::parse("corrupt@0:mft").unwrap().resolve(2);
        assert_eq!(r.corrupt_replica(0), Some(FaultTarget::Mft));
        assert_eq!(r.corrupt_replica(0), Some(FaultTarget::Mft));
        // Bad targets are rejected at parse time.
        assert!(FaultPlan::parse("corrupt@1").is_err());
        assert!(FaultPlan::parse("corrupt@1:exe").is_err());
    }

    #[test]
    fn resolve_expands_seeded_kills_to_panics() {
        let plan = FaultPlan::parse("seed=9;kill=2").unwrap();
        let mut r = plan.resolve(4);
        let victims = seeded_victims(9, 2, 4);
        for &v in &victims {
            assert_eq!(r.dispatch_faults(v as usize).0, NodeFault::Panic);
            // persistent: still down on respawn
            assert_eq!(r.dispatch_faults(v as usize).0, NodeFault::Panic);
        }
        for node in 0..4u32 {
            if !victims.contains(&node) {
                assert_eq!(r.dispatch_faults(node as usize).0, NodeFault::None);
            }
        }
    }

    #[test]
    fn env_round_trip() {
        // Not parallel-safe with other env tests in this process; use a
        // dedicated var guard by running through the public API only
        // when unset.
        if std::env::var(FAULT_ENV).is_err() {
            assert!(FaultPlan::from_env().unwrap().is_empty());
        }
        assert!(FaultPlan::parse("seed=1;kill=1").unwrap().seeded_kills == Some((1, 1)));
    }
}
