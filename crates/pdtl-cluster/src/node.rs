//! Worker-node logic.
//!
//! A node receives one [`Message::Config`], opens its local replica of
//! the oriented graph, runs one MGT worker thread per configured core,
//! and sends the results (and triangle batches, when listing) back to
//! the master. Nodes are transport-agnostic: the same function serves an
//! in-process simulated node and a TCP-connected remote process.

use pdtl_core::balance::EdgeRange;
use pdtl_core::mgt::{mgt_count_range_opt, MgtOptions};
use pdtl_core::orient::OrientedGraph;
use pdtl_core::sink::{CollectSink, CountSink, TriangleSink};
use pdtl_core::WorkerReport;
use pdtl_io::{IoStats, MemoryBudget};

use crate::error::{ClusterError, Result};
use crate::message::{Message, WorkerConfig, WorkerSummary};
use crate::transport::Transport;

/// Serve exactly one counting request arriving on `transport`.
///
/// Protocol: recv `Config` → (optionally send `Triangles`) → send
/// `Results`, or send `NodeError` on failure.
pub fn serve_node<T: Transport>(transport: &T) -> Result<()> {
    let msg = transport.recv()?;
    let Message::Config {
        node,
        graph_base,
        workers,
        listing,
    } = msg
    else {
        return Err(ClusterError::Protocol(
            "node expected a Config message".into(),
        ));
    };

    match run_workers(&graph_base, &workers, listing) {
        Ok((summaries, triples)) => {
            if listing {
                transport.send(&Message::Triangles { node, triples })?;
            }
            transport.send(&Message::Results {
                node,
                workers: summaries,
            })?;
            Ok(())
        }
        Err(e) => {
            transport.send(&Message::NodeError {
                node,
                detail: e.to_string(),
            })?;
            Ok(())
        }
    }
}

/// Run the node's worker threads; returns per-worker summaries and (when
/// listing) all collected triangles.
#[allow(clippy::type_complexity)]
pub fn run_workers(
    graph_base: &str,
    configs: &[WorkerConfig],
    listing: bool,
) -> Result<(Vec<WorkerSummary>, Vec<(u32, u32, u32)>)> {
    let stats = IoStats::new();
    let og = OrientedGraph::open(graph_base, &stats)?;
    let og_ref = &og;

    type WorkerOut = (WorkerReport, Vec<(u32, u32, u32)>);
    let mut slots: Vec<Option<pdtl_core::Result<WorkerOut>>> =
        (0..configs.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, cfg) in configs.iter().enumerate() {
            handles.push(scope.spawn(move || -> pdtl_core::Result<WorkerOut> {
                let stats = IoStats::new();
                let range = EdgeRange {
                    start: cfg.start,
                    end: cfg.end,
                };
                let budget = MemoryBudget::edges(cfg.budget_edges as usize);
                let opts = MgtOptions {
                    scan_pruning: cfg.scan_pruning,
                    backend: cfg.backend,
                    io_latency: std::time::Duration::from_micros(cfg.io_latency_us as u64),
                };
                if listing {
                    let mut sink = CollectSink::default();
                    let mut r = mgt_count_range_opt(og_ref, range, budget, &mut sink, stats, opts)?;
                    r.worker = i;
                    Ok((r, sink.triangles))
                } else {
                    let mut sink = CountSink;
                    sink.flush().ok();
                    let mut r = mgt_count_range_opt(og_ref, range, budget, &mut sink, stats, opts)?;
                    r.worker = i;
                    Ok((r, Vec::new()))
                }
            }));
        }
        for (i, h) in handles.into_iter().enumerate() {
            slots[i] =
                Some(h.join().unwrap_or_else(|_| {
                    Err(pdtl_core::CoreError::WorkerPanic(format!("worker {i}")))
                }));
        }
    });

    let mut summaries = Vec::with_capacity(configs.len());
    let mut triples = Vec::new();
    for slot in slots.into_iter().flatten() {
        let (r, t) = slot?;
        summaries.push(summarize(&r));
        triples.extend(t);
    }
    Ok((summaries, triples))
}

/// Convert a core [`WorkerReport`] into its wire summary.
pub fn summarize(r: &WorkerReport) -> WorkerSummary {
    WorkerSummary {
        worker: r.worker as u32,
        start: r.range.start,
        end: r.range.end,
        triangles: r.triangles,
        iterations: r.iterations,
        cpu_ops: r.cpu_ops,
        bytes_read: r.io.bytes_read,
        bytes_written: r.io.bytes_written,
        seeks: r.io.seeks,
        io_ops: r.io.read_ops + r.io.write_ops,
        io_nanos: r.io.io_time.as_nanos() as u64,
        wall_nanos: r.breakdown.wall.as_nanos() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netmodel::NetTraffic;
    use crate::transport::in_proc_pair;
    use pdtl_core::orient::orient_to_disk;
    use pdtl_graph::gen::rmat::rmat;
    use pdtl_graph::verify::triangle_count;
    use pdtl_graph::DiskGraph;
    use std::path::PathBuf;

    fn tmpbase(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("pdtl-node-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    fn oriented_base(tag: &str) -> (String, u64, u64) {
        let g = rmat(7, 41).unwrap();
        let stats = IoStats::new();
        let dg = DiskGraph::write(&g, tmpbase(&format!("{tag}-in")), &stats).unwrap();
        let base = tmpbase(&format!("{tag}-or"));
        let (og, _) = orient_to_disk(&dg, &base, 2, &stats).unwrap();
        (
            base.to_string_lossy().into_owned(),
            og.m_star(),
            triangle_count(&g),
        )
    }

    #[test]
    fn node_serves_counting_request() {
        let (base, m_star, expected) = oriented_base("count");
        let traffic = NetTraffic::new();
        let (master, remote) = in_proc_pair(traffic.clone());
        let handle = std::thread::spawn(move || serve_node(&remote));

        let half = m_star / 2;
        master
            .send(&Message::Config {
                node: 1,
                graph_base: base,
                workers: vec![
                    WorkerConfig {
                        start: 0,
                        end: half,
                        budget_edges: 256,
                        scan_pruning: true,
                        backend: pdtl_io::IoBackend::default(),
                        io_latency_us: 0,
                    },
                    WorkerConfig {
                        start: half,
                        end: m_star,
                        budget_edges: 256,
                        scan_pruning: true,
                        backend: pdtl_io::IoBackend::default(),
                        io_latency_us: 0,
                    },
                ],
                listing: false,
            })
            .unwrap();
        let reply = master.recv().unwrap();
        handle.join().unwrap().unwrap();

        let Message::Results { node, workers } = reply else {
            panic!("expected Results, got {reply:?}");
        };
        assert_eq!(node, 1);
        assert_eq!(workers.len(), 2);
        let total: u64 = workers.iter().map(|w| w.triangles).sum();
        assert_eq!(total, expected);
        assert!(workers.iter().all(|w| w.bytes_read > 0));
        assert!(traffic.result_bytes() > 0);
    }

    #[test]
    fn node_serves_listing_request() {
        let (base, m_star, expected) = oriented_base("list");
        let traffic = NetTraffic::new();
        let (master, remote) = in_proc_pair(traffic.clone());
        let handle = std::thread::spawn(move || serve_node(&remote));

        master
            .send(&Message::Config {
                node: 2,
                graph_base: base,
                workers: vec![WorkerConfig {
                    start: 0,
                    end: m_star,
                    budget_edges: 128,
                    scan_pruning: true,
                    backend: pdtl_io::IoBackend::default(),
                    io_latency_us: 0,
                }],
                listing: true,
            })
            .unwrap();
        let first = master.recv().unwrap();
        let second = master.recv().unwrap();
        handle.join().unwrap().unwrap();

        let Message::Triangles { triples, .. } = first else {
            panic!("expected Triangles first, got {first:?}");
        };
        let Message::Results { workers, .. } = second else {
            panic!("expected Results second, got {second:?}");
        };
        assert_eq!(triples.len() as u64, expected);
        assert_eq!(workers[0].triangles, expected);
        // the Θ(T) term is real traffic
        assert!(traffic.triangle_bytes() >= expected * 12);
    }

    #[test]
    fn node_reports_errors_as_message() {
        let traffic = NetTraffic::new();
        let (master, remote) = in_proc_pair(traffic);
        let handle = std::thread::spawn(move || serve_node(&remote));
        master
            .send(&Message::Config {
                node: 3,
                graph_base: "/nonexistent/graph".into(),
                workers: vec![],
                listing: false,
            })
            .unwrap();
        let reply = master.recv().unwrap();
        handle.join().unwrap().unwrap();
        assert!(matches!(reply, Message::NodeError { node: 3, .. }));
    }

    #[test]
    fn node_rejects_wrong_first_message() {
        let traffic = NetTraffic::new();
        let (master, remote) = in_proc_pair(traffic);
        let handle = std::thread::spawn(move || serve_node(&remote));
        master
            .send(&Message::Results {
                node: 0,
                workers: vec![],
            })
            .unwrap();
        let res = handle.join().unwrap();
        assert!(matches!(res, Err(ClusterError::Protocol(_))));
    }
}
