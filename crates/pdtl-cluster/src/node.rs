//! Worker-node logic.
//!
//! A node serves a loop of [`Message::Config`] requests: for each one it
//! opens its local replica of the oriented graph, runs one MGT worker
//! thread per configured core, and sends the results (and triangle
//! batches, when listing) back to the master — with periodic
//! [`Message::Progress`] heartbeats while the workers run, so the master
//! can tell a slow node from a wedged one. The loop ends on
//! [`Message::Shutdown`] or when the master's endpoint goes away. Nodes
//! are transport-agnostic: the same function serves an in-process
//! simulated node and a TCP-connected remote process.
//!
//! Config messages may carry an injected [`NodeFault`] from the
//! master's fault plan; the node executes it faithfully (panic, drop,
//! stall, delay) so fault-tolerance tests exercise the real failure
//! paths rather than mocks.

use std::sync::{Condvar, Mutex};
use std::time::Duration;

use pdtl_core::balance::EdgeRange;
use pdtl_core::mgt::{mgt_count_range_opt, MgtOptions};
use pdtl_core::orient::OrientedGraph;
use pdtl_core::sink::{CollectSink, CountSink, TriangleSink};
use pdtl_core::WorkerReport;
use pdtl_io::{IoStats, MemoryBudget};

use crate::error::{ClusterError, Result};
use crate::message::{Message, NodeDirectives, NodeFault, WorkerConfig, WorkerSummary};
use crate::transport::Transport;

/// A raisable flag worker loops can wait on with a timeout, so the
/// heartbeat thread both paces itself and wakes immediately on stop.
struct StopFlag {
    stopped: Mutex<bool>,
    cv: Condvar,
}

impl StopFlag {
    fn new() -> Self {
        StopFlag {
            stopped: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    /// Wait up to `d`; returns true once the flag is raised.
    fn wait_for(&self, d: Duration) -> bool {
        let guard = self.stopped.lock().unwrap_or_else(|e| e.into_inner());
        let (guard, _) = self
            .cv
            .wait_timeout_while(guard, d, |stopped| !*stopped)
            .unwrap_or_else(|e| e.into_inner());
        *guard
    }

    fn raise(&self) {
        *self.stopped.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.cv.notify_all();
    }
}

/// Serve counting requests arriving on `transport` until the master
/// sends [`Message::Shutdown`] or disconnects.
///
/// Per request: recv `Config` → (optionally send `Triangles`) → send
/// `Results`, or send `NodeError` on failure — with `Progress`
/// heartbeats in between when the config asks for them.
pub fn serve_node<T: Transport>(transport: &T) -> Result<()> {
    loop {
        let msg = match transport.recv() {
            Ok(m) => m,
            // An idle node whose master went away shut down cleanly.
            Err(ClusterError::Disconnected(_)) => return Ok(()),
            Err(e) => return Err(e),
        };
        match msg {
            Message::Shutdown => return Ok(()),
            Message::Config {
                node,
                graph_base,
                workers,
                listing,
                directives,
            } => match directives.fault {
                NodeFault::Panic => {
                    panic!("injected fault: node {node} panic")
                }
                NodeFault::Drop => return Ok(()),
                // Wedged: no reply, no heartbeats; only Shutdown or a
                // dropped endpoint ends the silence.
                NodeFault::Stall => continue,
                NodeFault::None | NodeFault::Delay(_) => {
                    serve_one(transport, node, &graph_base, &workers, listing, directives)?;
                }
            },
            other => {
                return Err(ClusterError::Protocol(format!(
                    "node expected Config or Shutdown, got {other:?}"
                )))
            }
        }
    }
}

/// Run one dispatch: heartbeats + (optional injected delay) + workers,
/// then the reply messages. Heartbeats are fully joined before any
/// reply is sent, so the master never sees `Progress` after `Results`.
fn serve_one<T: Transport>(
    transport: &T,
    node: u32,
    graph_base: &str,
    workers: &[WorkerConfig],
    listing: bool,
    directives: NodeDirectives,
) -> Result<()> {
    let stop = StopFlag::new();
    let outcome = std::thread::scope(|scope| {
        if directives.heartbeat_ms > 0 {
            let interval = Duration::from_millis(directives.heartbeat_ms as u64);
            let (stop, transport) = (&stop, &transport);
            scope.spawn(move || {
                let mut seq = 0u32;
                while !stop.wait_for(interval) {
                    if transport.send(&Message::Progress { node, seq }).is_err() {
                        break; // master gone; workers will notice too
                    }
                    seq = seq.wrapping_add(1);
                }
            });
        }
        if let NodeFault::Delay(ms) = directives.fault {
            // A slow node, not a dead one: heartbeats keep flowing
            // through the sleep.
            stop.wait_for(Duration::from_millis(ms as u64));
        }
        let outcome = run_workers(graph_base, workers, listing);
        // Raise before the scope joins the heartbeat thread, so the
        // reply below is strictly after the last Progress.
        stop.raise();
        outcome
    });
    match outcome {
        Ok((summaries, triples)) => {
            if listing {
                transport.send(&Message::Triangles { node, triples })?;
            }
            transport.send(&Message::Results {
                node,
                workers: summaries,
            })?;
        }
        Err(e) => {
            transport.send(&Message::NodeError {
                node,
                detail: e.to_string(),
            })?;
        }
    }
    Ok(())
}

/// Run the node's worker threads; returns per-worker summaries and (when
/// listing) all collected triangles.
#[allow(clippy::type_complexity)]
pub fn run_workers(
    graph_base: &str,
    configs: &[WorkerConfig],
    listing: bool,
) -> Result<(Vec<WorkerSummary>, Vec<(u32, u32, u32)>)> {
    let stats = IoStats::new();
    let og = OrientedGraph::open(graph_base, &stats)?;
    let og_ref = &og;

    type WorkerOut = (WorkerReport, Vec<(u32, u32, u32)>);
    let mut slots: Vec<Option<pdtl_core::Result<WorkerOut>>> =
        (0..configs.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, cfg) in configs.iter().enumerate() {
            handles.push(scope.spawn(move || -> pdtl_core::Result<WorkerOut> {
                let stats = IoStats::new();
                let range = EdgeRange {
                    start: cfg.start,
                    end: cfg.end,
                };
                let budget = MemoryBudget::edges(cfg.budget_edges as usize);
                let opts = MgtOptions {
                    scan_pruning: cfg.scan_pruning,
                    backend: cfg.backend,
                    io_latency: std::time::Duration::from_micros(cfg.io_latency_us as u64),
                    read_fault: cfg.read_fault,
                    codec: cfg.codec,
                };
                if listing {
                    let mut sink = CollectSink::default();
                    let mut r = mgt_count_range_opt(og_ref, range, budget, &mut sink, stats, opts)?;
                    r.worker = i;
                    Ok((r, sink.triangles))
                } else {
                    let mut sink = CountSink;
                    sink.flush().ok();
                    let mut r = mgt_count_range_opt(og_ref, range, budget, &mut sink, stats, opts)?;
                    r.worker = i;
                    Ok((r, Vec::new()))
                }
            }));
        }
        for (i, h) in handles.into_iter().enumerate() {
            slots[i] =
                Some(h.join().unwrap_or_else(|_| {
                    Err(pdtl_core::CoreError::WorkerPanic(format!("worker {i}")))
                }));
        }
    });

    let mut summaries = Vec::with_capacity(configs.len());
    let mut triples = Vec::new();
    for slot in slots.into_iter().flatten() {
        let (r, t) = slot?;
        summaries.push(summarize(&r));
        triples.extend(t);
    }
    Ok((summaries, triples))
}

/// Convert a core [`WorkerReport`] into its wire summary.
pub fn summarize(r: &WorkerReport) -> WorkerSummary {
    WorkerSummary {
        worker: r.worker as u32,
        start: r.range.start,
        end: r.range.end,
        triangles: r.triangles,
        iterations: r.iterations,
        cpu_ops: r.cpu_ops,
        bytes_read: r.io.bytes_read,
        bytes_written: r.io.bytes_written,
        seeks: r.io.seeks,
        io_ops: r.io.read_ops + r.io.write_ops,
        io_nanos: r.io.io_time.as_nanos() as u64,
        wall_nanos: r.breakdown.wall.as_nanos() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netmodel::NetTraffic;
    use crate::transport::in_proc_pair;
    use pdtl_core::orient::orient_to_disk;
    use pdtl_graph::gen::rmat::rmat;
    use pdtl_graph::verify::triangle_count;
    use pdtl_graph::DiskGraph;
    use std::path::{Path, PathBuf};

    fn tmpbase(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("pdtl-node-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    fn oriented_base(tag: &str) -> (String, u64, u64) {
        let g = rmat(7, 41).unwrap();
        let stats = IoStats::new();
        let dg = DiskGraph::write(&g, tmpbase(&format!("{tag}-in")), &stats).unwrap();
        let base = tmpbase(&format!("{tag}-or"));
        let (og, _) = orient_to_disk(&dg, &base, 2, &stats).unwrap();
        (
            base.to_string_lossy().into_owned(),
            og.m_star(),
            triangle_count(&g),
        )
    }

    fn worker(start: u64, end: u64) -> WorkerConfig {
        WorkerConfig {
            start,
            end,
            budget_edges: 256,
            scan_pruning: true,
            backend: pdtl_io::IoBackend::default(),
            io_latency_us: 0,
            read_fault: None,
            codec: pdtl_io::Codec::Raw,
        }
    }

    #[test]
    fn node_serves_counting_request() {
        let (base, m_star, expected) = oriented_base("count");
        let traffic = NetTraffic::new();
        let (master, remote) = in_proc_pair(traffic.clone());
        let handle = std::thread::spawn(move || serve_node(&remote));

        let half = m_star / 2;
        master
            .send(&Message::Config {
                node: 1,
                graph_base: base,
                workers: vec![worker(0, half), worker(half, m_star)],
                listing: false,
                directives: NodeDirectives::default(),
            })
            .unwrap();
        let reply = master.recv().unwrap();
        master.send(&Message::Shutdown).unwrap();
        handle.join().unwrap().unwrap();

        let Message::Results { node, workers } = reply else {
            panic!("expected Results, got {reply:?}");
        };
        assert_eq!(node, 1);
        assert_eq!(workers.len(), 2);
        let total: u64 = workers.iter().map(|w| w.triangles).sum();
        assert_eq!(total, expected);
        assert!(workers.iter().all(|w| w.bytes_read > 0));
        assert!(traffic.result_bytes() > 0);
    }

    #[test]
    fn node_serves_listing_request() {
        let (base, m_star, expected) = oriented_base("list");
        let traffic = NetTraffic::new();
        let (master, remote) = in_proc_pair(traffic.clone());
        let handle = std::thread::spawn(move || serve_node(&remote));

        master
            .send(&Message::Config {
                node: 2,
                graph_base: base,
                workers: vec![{
                    let mut w = worker(0, m_star);
                    w.budget_edges = 128;
                    w
                }],
                listing: true,
                directives: NodeDirectives::default(),
            })
            .unwrap();
        let first = master.recv().unwrap();
        let second = master.recv().unwrap();
        master.send(&Message::Shutdown).unwrap();
        handle.join().unwrap().unwrap();

        let Message::Triangles { triples, .. } = first else {
            panic!("expected Triangles first, got {first:?}");
        };
        let Message::Results { workers, .. } = second else {
            panic!("expected Results second, got {second:?}");
        };
        assert_eq!(triples.len() as u64, expected);
        assert_eq!(workers[0].triangles, expected);
        // the Θ(T) term is real traffic
        assert!(traffic.triangle_bytes() >= expected * 12);
    }

    #[test]
    fn node_serves_multiple_dispatches_until_shutdown() {
        // The serve loop handles several Configs over one connection —
        // the mechanism range reassignment rides on.
        let (base, m_star, expected) = oriented_base("multi");
        let traffic = NetTraffic::new();
        let (master, remote) = in_proc_pair(traffic);
        let handle = std::thread::spawn(move || serve_node(&remote));

        let mut total = 0u64;
        let half = m_star / 2;
        for (start, end) in [(0, half), (half, m_star)] {
            master
                .send(&Message::Config {
                    node: 1,
                    graph_base: base.clone(),
                    workers: vec![worker(start, end)],
                    listing: false,
                    directives: NodeDirectives::default(),
                })
                .unwrap();
            let Message::Results { workers, .. } = master.recv().unwrap() else {
                panic!("expected Results");
            };
            total += workers.iter().map(|w| w.triangles).sum::<u64>();
        }
        master.send(&Message::Shutdown).unwrap();
        handle.join().unwrap().unwrap();
        assert_eq!(total, expected);
    }

    #[test]
    fn node_exits_cleanly_when_master_endpoint_drops() {
        let traffic = NetTraffic::new();
        let (master, remote) = in_proc_pair(traffic);
        let handle = std::thread::spawn(move || serve_node(&remote));
        drop(master);
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn node_heartbeats_while_working_and_stops_after_results() {
        let (base, m_star, expected) = oriented_base("hb");
        let traffic = NetTraffic::new();
        let (master, remote) = in_proc_pair(traffic.clone());
        let handle = std::thread::spawn(move || serve_node(&remote));

        master
            .send(&Message::Config {
                node: 4,
                graph_base: base,
                workers: vec![worker(0, m_star)],
                listing: false,
                directives: NodeDirectives {
                    heartbeat_ms: 1,
                    // the injected delay guarantees at least one beat
                    // fires before the workers finish
                    fault: NodeFault::Delay(10),
                },
            })
            .unwrap();
        let mut beats = 0u32;
        let total = loop {
            match master.recv().unwrap() {
                Message::Progress { node: 4, .. } => beats += 1,
                Message::Results { workers, .. } => {
                    break workers.iter().map(|w| w.triangles).sum::<u64>()
                }
                other => panic!("unexpected {other:?}"),
            }
        };
        master.send(&Message::Shutdown).unwrap();
        handle.join().unwrap().unwrap();
        assert_eq!(total, expected);
        assert!(beats >= 1, "delayed node should heartbeat, got {beats}");
        assert!(traffic.control_bytes() > 0);
    }

    #[test]
    fn node_executes_injected_faults() {
        let (base, m_star, _) = oriented_base("flt");
        // Drop: the serve loop returns Ok and the connection closes.
        let (master, remote) = in_proc_pair(NetTraffic::new());
        let handle = std::thread::spawn(move || serve_node(&remote));
        master
            .send(&Message::Config {
                node: 1,
                graph_base: base.clone(),
                workers: vec![worker(0, m_star)],
                listing: false,
                directives: NodeDirectives {
                    heartbeat_ms: 0,
                    fault: NodeFault::Drop,
                },
            })
            .unwrap();
        handle.join().unwrap().unwrap();
        assert!(matches!(master.recv(), Err(ClusterError::Disconnected(_))));

        // Panic: the node thread dies with the injected message.
        let (master, remote) = in_proc_pair(NetTraffic::new());
        let handle = std::thread::spawn(move || serve_node(&remote));
        master
            .send(&Message::Config {
                node: 2,
                graph_base: base.clone(),
                workers: vec![],
                listing: false,
                directives: NodeDirectives {
                    heartbeat_ms: 0,
                    fault: NodeFault::Panic,
                },
            })
            .unwrap();
        let err = ClusterError::node_panic(2, handle.join().unwrap_err());
        assert!(err.to_string().contains("injected fault"), "{err}");

        // Stall: silent until Shutdown.
        let (master, remote) = in_proc_pair(NetTraffic::new());
        let handle = std::thread::spawn(move || serve_node(&remote));
        master
            .send(&Message::Config {
                node: 3,
                graph_base: base,
                workers: vec![worker(0, m_star)],
                listing: false,
                directives: NodeDirectives {
                    heartbeat_ms: 1,
                    fault: NodeFault::Stall,
                },
            })
            .unwrap();
        assert!(matches!(
            master.recv_deadline(std::time::Duration::from_millis(40)),
            Err(ClusterError::Timeout { .. })
        ));
        master.send(&Message::Shutdown).unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn node_reports_worker_read_fault_as_node_error() {
        let (base, m_star, _) = oriented_base("sr");
        let (master, remote) = in_proc_pair(NetTraffic::new());
        let handle = std::thread::spawn(move || serve_node(&remote));
        master
            .send(&Message::Config {
                node: 5,
                graph_base: base,
                workers: vec![{
                    let mut w = worker(0, m_star);
                    w.read_fault = Some(8);
                    w
                }],
                listing: false,
                directives: NodeDirectives::default(),
            })
            .unwrap();
        let reply = master.recv().unwrap();
        master.send(&Message::Shutdown).unwrap();
        handle.join().unwrap().unwrap();
        let Message::NodeError { node, detail } = reply else {
            panic!("expected NodeError, got {reply:?}");
        };
        assert_eq!(node, 5);
        assert!(detail.contains("injected short read"), "{detail}");
    }

    #[test]
    fn node_reports_corrupt_replica_as_node_error() {
        let (base, m_star, _) = oriented_base("corrupt");
        // Silently flip a bit in the replica's bounds sidecar: the
        // quick integrity tier inside `OrientedGraph::open` digests
        // small files, so the node detects it before computing
        // anything and the master gets a typed NodeError (feeding
        // PR 7's range reassignment instead of a wrong count).
        pdtl_io::diskfault::DiskFaultSpec {
            kind: pdtl_io::diskfault::DiskFaultKind::BitFlip,
            target: pdtl_io::diskfault::FaultTarget::Bnd,
            seed: 77,
        }
        .apply(Path::new(&base))
        .unwrap()
        .expect("bounds file exists");
        let (master, remote) = in_proc_pair(NetTraffic::new());
        let handle = std::thread::spawn(move || serve_node(&remote));
        master
            .send(&Message::Config {
                node: 2,
                graph_base: base,
                workers: vec![worker(0, m_star)],
                listing: false,
                directives: NodeDirectives::default(),
            })
            .unwrap();
        let reply = master.recv().unwrap();
        master.send(&Message::Shutdown).unwrap();
        handle.join().unwrap().unwrap();
        let Message::NodeError { node, detail } = reply else {
            panic!("expected NodeError, got {reply:?}");
        };
        assert_eq!(node, 2);
        assert!(detail.contains("corrupt"), "{detail}");
    }

    #[test]
    fn node_reports_errors_as_message() {
        let traffic = NetTraffic::new();
        let (master, remote) = in_proc_pair(traffic);
        let handle = std::thread::spawn(move || serve_node(&remote));
        master
            .send(&Message::Config {
                node: 3,
                graph_base: "/nonexistent/graph".into(),
                workers: vec![],
                listing: false,
                directives: NodeDirectives::default(),
            })
            .unwrap();
        let reply = master.recv().unwrap();
        master.send(&Message::Shutdown).unwrap();
        handle.join().unwrap().unwrap();
        assert!(matches!(reply, Message::NodeError { node: 3, .. }));
    }

    #[test]
    fn node_rejects_wrong_first_message() {
        let traffic = NetTraffic::new();
        let (master, remote) = in_proc_pair(traffic);
        let handle = std::thread::spawn(move || serve_node(&remote));
        master
            .send(&Message::Results {
                node: 0,
                workers: vec![],
            })
            .unwrap();
        let res = handle.join().unwrap();
        assert!(matches!(res, Err(ClusterError::Protocol(_))));
    }
}
