//! Network traffic accounting and the bandwidth model.
//!
//! [`NetTraffic`] counts every byte the protocol moves, split by purpose,
//! so experiments can verify Theorem IV.3's `Θ(NP + N|E| + T)` bound
//! directly. [`NetModel`] converts those bytes into modeled transfer
//! times, including the master-uplink contention that makes the paper's
//! per-node copy times grow with the node count (Table III).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Byte counters for the five traffic classes of the protocol.
#[derive(Debug, Default)]
pub struct NetTraffic {
    config_bytes: AtomicU64,
    graph_bytes: AtomicU64,
    result_bytes: AtomicU64,
    triangle_bytes: AtomicU64,
    control_bytes: AtomicU64,
}

impl NetTraffic {
    /// Fresh counters behind an `Arc`.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Record configuration traffic (the `Θ(NP)` term).
    pub fn add_config(&self, bytes: u64) {
        self.config_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record graph replication traffic (the `Θ(N|E|)` term).
    pub fn add_graph(&self, bytes: u64) {
        self.graph_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record result traffic.
    pub fn add_result(&self, bytes: u64) {
        self.result_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record triangle-list traffic (the `Θ(T)` term).
    pub fn add_triangles(&self, bytes: u64) {
        self.triangle_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record control-plane traffic (heartbeats, shutdowns) — liveness
    /// overhead outside Theorem IV.3's three terms, counted separately
    /// so the bound checks stay exact.
    pub fn add_control(&self, bytes: u64) {
        self.control_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Configuration bytes so far.
    pub fn config_bytes(&self) -> u64 {
        self.config_bytes.load(Ordering::Relaxed)
    }

    /// Graph replication bytes so far.
    pub fn graph_bytes(&self) -> u64 {
        self.graph_bytes.load(Ordering::Relaxed)
    }

    /// Result bytes so far.
    pub fn result_bytes(&self) -> u64 {
        self.result_bytes.load(Ordering::Relaxed)
    }

    /// Triangle-list bytes so far.
    pub fn triangle_bytes(&self) -> u64 {
        self.triangle_bytes.load(Ordering::Relaxed)
    }

    /// Control-plane bytes so far.
    pub fn control_bytes(&self) -> u64 {
        self.control_bytes.load(Ordering::Relaxed)
    }

    /// All traffic.
    pub fn total_bytes(&self) -> u64 {
        self.config_bytes()
            + self.graph_bytes()
            + self.result_bytes()
            + self.triangle_bytes()
            + self.control_bytes()
    }
}

/// Bandwidth/latency model of the cluster interconnect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetModel {
    /// Point-to-point bandwidth in bytes/second (default 1.25e9: 10 GbE,
    /// the paper's EC2 interconnect).
    pub bytes_per_sec: f64,
    /// Per-message latency in seconds.
    pub latency: f64,
}

impl Default for NetModel {
    fn default() -> Self {
        Self {
            bytes_per_sec: 1.25e9,
            latency: 100e-6,
        }
    }
}

impl NetModel {
    /// Modeled seconds to move `bytes` over one uncontended link.
    pub fn transfer_secs(&self, bytes: u64) -> f64 {
        self.latency + bytes as f64 / self.bytes_per_sec
    }

    /// Modeled seconds for the master to replicate `bytes` to one of
    /// `remote_nodes` receivers: the master's uplink is shared, so each
    /// concurrent stream sees `1/remote_nodes` of the bandwidth. This is
    /// the effect behind Table III's copy times growing with node count.
    pub fn replication_secs(&self, bytes: u64, remote_nodes: usize) -> f64 {
        let share = self.bytes_per_sec / remote_nodes.max(1) as f64;
        self.latency + bytes as f64 / share
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_classes_accumulate_independently() {
        let t = NetTraffic::new();
        t.add_config(10);
        t.add_graph(1000);
        t.add_result(20);
        t.add_triangles(300);
        t.add_control(7);
        assert_eq!(t.config_bytes(), 10);
        assert_eq!(t.graph_bytes(), 1000);
        assert_eq!(t.result_bytes(), 20);
        assert_eq!(t.triangle_bytes(), 300);
        assert_eq!(t.control_bytes(), 7);
        assert_eq!(t.total_bytes(), 1337);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let m = NetModel::default();
        let t1 = m.transfer_secs(1_250_000_000);
        assert!((t1 - 1.0).abs() < 1e-3);
        assert!(m.transfer_secs(100) < t1);
    }

    #[test]
    fn replication_slows_with_more_receivers() {
        let m = NetModel::default();
        let one = m.replication_secs(1_000_000_000, 1);
        let three = m.replication_secs(1_000_000_000, 3);
        assert!(three > 2.5 * one, "shared uplink: {three} vs {one}");
    }

    #[test]
    fn zero_receivers_degenerates_to_one() {
        let m = NetModel::default();
        assert_eq!(m.replication_secs(100, 0), m.replication_secs(100, 1));
    }
}
