//! The wire protocol between master and nodes.
//!
//! Messages use a compact hand-rolled little-endian binary encoding (tag
//! byte + fields) so their exact byte sizes are meaningful for the
//! network accounting: the `Θ(NP)` configuration term and the `Θ(T)`
//! listing term of Theorem IV.3 are measured from these encodings.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::{ClusterError, Result};

/// One logical processor's configuration `C_{i,j}` (Figure 1): its
/// memory budget, pivot-edge range and MGT engine flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerConfig {
    /// Range start (oriented adjacency position).
    pub start: u64,
    /// Range end (exclusive).
    pub end: u64,
    /// Memory budget in edges.
    pub budget_edges: u64,
    /// Enable the rank-space scan pruning (bound skips + `vhigh` cap).
    pub scan_pruning: bool,
    /// Overlap chunk/scan I/O with intersection work.
    pub overlap_io: bool,
    /// Emulated per-block device latency in microseconds (0 = real
    /// hardware) — see `MgtOptions::io_latency`.
    pub io_latency_us: u32,
}

/// Wire flag bits of [`WorkerConfig`].
const FLAG_SCAN_PRUNING: u8 = 1;
const FLAG_OVERLAP_IO: u8 = 2;

impl WorkerConfig {
    /// Pack the engine flags into the wire byte.
    fn flags(&self) -> u8 {
        u8::from(self.scan_pruning) * FLAG_SCAN_PRUNING
            + u8::from(self.overlap_io) * FLAG_OVERLAP_IO
    }
}

/// One worker's result summary sent back to the master.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Worker index within the node.
    pub worker: u32,
    /// Range start.
    pub start: u64,
    /// Range end.
    pub end: u64,
    /// Triangles found.
    pub triangles: u64,
    /// MGT chunk iterations.
    pub iterations: u64,
    /// Counted CPU operations.
    pub cpu_ops: u64,
    /// Bytes read from disk.
    pub bytes_read: u64,
    /// Bytes written to disk.
    pub bytes_written: u64,
    /// Disk seeks.
    pub seeks: u64,
    /// Read + write operations.
    pub io_ops: u64,
    /// Nanoseconds of I/O activity. With `overlap_io` this runs
    /// concurrently with compute (device time, not stall time), so it
    /// may approach or exceed `wall_nanos`.
    pub io_nanos: u64,
    /// Worker wall time in nanoseconds.
    pub wall_nanos: u64,
}

/// Protocol messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Master → node: the node's id, graph replica base path, and one
    /// config per local core.
    Config {
        /// Node id (0 = master's own node).
        node: u32,
        /// Base path of the node's local oriented-graph replica.
        graph_base: String,
        /// Per-core configurations.
        workers: Vec<WorkerConfig>,
        /// Whether to stream triangle lists back.
        listing: bool,
    },
    /// Node → master: per-worker summaries.
    Results {
        /// Node id.
        node: u32,
        /// Per-worker results.
        workers: Vec<WorkerSummary>,
    },
    /// Node → master: a batch of listed triangles (cone first).
    Triangles {
        /// Node id.
        node: u32,
        /// Triples `(u, v, w)`.
        triples: Vec<(u32, u32, u32)>,
    },
    /// Node → master: node failed with an error message.
    NodeError {
        /// Node id.
        node: u32,
        /// Human-readable failure description.
        detail: String,
    },
}

const TAG_CONFIG: u8 = 1;
const TAG_RESULTS: u8 = 2;
const TAG_TRIANGLES: u8 = 3;
const TAG_NODE_ERROR: u8 = 4;

impl Message {
    /// Encode into a byte buffer.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::new();
        match self {
            Message::Config {
                node,
                graph_base,
                workers,
                listing,
            } => {
                b.put_u8(TAG_CONFIG);
                b.put_u32_le(*node);
                put_string(&mut b, graph_base);
                b.put_u8(u8::from(*listing));
                b.put_u32_le(workers.len() as u32);
                for w in workers {
                    b.put_u64_le(w.start);
                    b.put_u64_le(w.end);
                    b.put_u64_le(w.budget_edges);
                    b.put_u8(w.flags());
                    b.put_u32_le(w.io_latency_us);
                }
            }
            Message::Results { node, workers } => {
                b.put_u8(TAG_RESULTS);
                b.put_u32_le(*node);
                b.put_u32_le(workers.len() as u32);
                for w in workers {
                    b.put_u32_le(w.worker);
                    for v in [
                        w.start,
                        w.end,
                        w.triangles,
                        w.iterations,
                        w.cpu_ops,
                        w.bytes_read,
                        w.bytes_written,
                        w.seeks,
                        w.io_ops,
                        w.io_nanos,
                        w.wall_nanos,
                    ] {
                        b.put_u64_le(v);
                    }
                }
            }
            Message::Triangles { node, triples } => {
                b.put_u8(TAG_TRIANGLES);
                b.put_u32_le(*node);
                b.put_u32_le(triples.len() as u32);
                for &(u, v, w) in triples {
                    b.put_u32_le(u);
                    b.put_u32_le(v);
                    b.put_u32_le(w);
                }
            }
            Message::NodeError { node, detail } => {
                b.put_u8(TAG_NODE_ERROR);
                b.put_u32_le(*node);
                put_string(&mut b, detail);
            }
        }
        b.freeze()
    }

    /// Decode a buffer produced by [`encode`](Self::encode).
    pub fn decode(mut buf: Bytes) -> Result<Self> {
        if buf.remaining() < 5 {
            return Err(ClusterError::Protocol("short message".into()));
        }
        let tag = buf.get_u8();
        let node = buf.get_u32_le();
        match tag {
            TAG_CONFIG => {
                let graph_base = get_string(&mut buf)?;
                need(&buf, 5)?;
                let listing = buf.get_u8() != 0;
                let count = buf.get_u32_le() as usize;
                need(&buf, count * 29)?;
                let workers = (0..count)
                    .map(|_| {
                        let (start, end, budget_edges) =
                            (buf.get_u64_le(), buf.get_u64_le(), buf.get_u64_le());
                        let flags = buf.get_u8();
                        WorkerConfig {
                            start,
                            end,
                            budget_edges,
                            scan_pruning: flags & FLAG_SCAN_PRUNING != 0,
                            overlap_io: flags & FLAG_OVERLAP_IO != 0,
                            io_latency_us: buf.get_u32_le(),
                        }
                    })
                    .collect();
                Ok(Message::Config {
                    node,
                    graph_base,
                    workers,
                    listing,
                })
            }
            TAG_RESULTS => {
                need(&buf, 4)?;
                let count = buf.get_u32_le() as usize;
                need(&buf, count * (4 + 11 * 8))?;
                let workers = (0..count)
                    .map(|_| WorkerSummary {
                        worker: buf.get_u32_le(),
                        start: buf.get_u64_le(),
                        end: buf.get_u64_le(),
                        triangles: buf.get_u64_le(),
                        iterations: buf.get_u64_le(),
                        cpu_ops: buf.get_u64_le(),
                        bytes_read: buf.get_u64_le(),
                        bytes_written: buf.get_u64_le(),
                        seeks: buf.get_u64_le(),
                        io_ops: buf.get_u64_le(),
                        io_nanos: buf.get_u64_le(),
                        wall_nanos: buf.get_u64_le(),
                    })
                    .collect();
                Ok(Message::Results { node, workers })
            }
            TAG_TRIANGLES => {
                need(&buf, 4)?;
                let count = buf.get_u32_le() as usize;
                need(&buf, count * 12)?;
                let triples = (0..count)
                    .map(|_| (buf.get_u32_le(), buf.get_u32_le(), buf.get_u32_le()))
                    .collect();
                Ok(Message::Triangles { node, triples })
            }
            TAG_NODE_ERROR => {
                let detail = get_string(&mut buf)?;
                Ok(Message::NodeError { node, detail })
            }
            t => Err(ClusterError::Protocol(format!("unknown tag {t}"))),
        }
    }

    /// Encoded size in bytes (what the network accounting charges).
    pub fn wire_size(&self) -> u64 {
        self.encode().len() as u64
    }
}

fn put_string(b: &mut BytesMut, s: &str) {
    b.put_u32_le(s.len() as u32);
    b.put_slice(s.as_bytes());
}

fn get_string(buf: &mut Bytes) -> Result<String> {
    need(buf, 4)?;
    let len = buf.get_u32_le() as usize;
    need(buf, len)?;
    let raw = buf.split_to(len);
    String::from_utf8(raw.to_vec())
        .map_err(|_| ClusterError::Protocol("invalid utf-8 string".into()))
}

fn need(buf: &Bytes, n: usize) -> Result<()> {
    if buf.remaining() < n {
        Err(ClusterError::Protocol(format!(
            "truncated message: need {n}, have {}",
            buf.remaining()
        )))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_summary(i: u32) -> WorkerSummary {
        WorkerSummary {
            worker: i,
            start: 10 * i as u64,
            end: 10 * i as u64 + 10,
            triangles: 42 + i as u64,
            iterations: 3,
            cpu_ops: 1_000_000,
            bytes_read: 4096,
            bytes_written: 0,
            seeks: 2,
            io_ops: 7,
            io_nanos: 123_456,
            wall_nanos: 999_999,
        }
    }

    #[test]
    fn config_round_trip() {
        let msg = Message::Config {
            node: 3,
            graph_base: "/data/node3/oriented".into(),
            workers: vec![
                WorkerConfig {
                    start: 0,
                    end: 100,
                    budget_edges: 50,
                    scan_pruning: true,
                    overlap_io: false,
                    io_latency_us: 0,
                },
                WorkerConfig {
                    start: 100,
                    end: 220,
                    budget_edges: 50,
                    scan_pruning: false,
                    overlap_io: true,
                    io_latency_us: 50,
                },
            ],
            listing: true,
        };
        assert_eq!(Message::decode(msg.encode()).unwrap(), msg);
    }

    #[test]
    fn results_round_trip() {
        let msg = Message::Results {
            node: 1,
            workers: (0..5).map(sample_summary).collect(),
        };
        assert_eq!(Message::decode(msg.encode()).unwrap(), msg);
    }

    #[test]
    fn triangles_round_trip() {
        let msg = Message::Triangles {
            node: 2,
            triples: vec![(1, 2, 3), (4, 5, 6), (7, 8, 9)],
        };
        assert_eq!(Message::decode(msg.encode()).unwrap(), msg);
    }

    #[test]
    fn node_error_round_trip() {
        let msg = Message::NodeError {
            node: 7,
            detail: "disk on fire".into(),
        };
        assert_eq!(Message::decode(msg.encode()).unwrap(), msg);
    }

    #[test]
    fn wire_size_matches_encoding() {
        let msg = Message::Triangles {
            node: 0,
            triples: vec![(1, 2, 3); 100],
        };
        // 1 tag + 4 node + 4 count + 100 * 12
        assert_eq!(msg.wire_size(), 9 + 1200);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Message::decode(Bytes::from_static(&[])).is_err());
        assert!(Message::decode(Bytes::from_static(&[9, 0, 0, 0, 0])).is_err());
        // truncated config
        let msg = Message::Config {
            node: 0,
            graph_base: "x".into(),
            workers: vec![WorkerConfig {
                start: 0,
                end: 1,
                budget_edges: 1,
                scan_pruning: true,
                overlap_io: true,
                io_latency_us: 0,
            }],
            listing: false,
        };
        let enc = msg.encode();
        let cut = enc.slice(0..enc.len() - 3);
        assert!(Message::decode(cut).is_err());
    }

    #[test]
    fn empty_collections_round_trip() {
        let msg = Message::Results {
            node: 0,
            workers: vec![],
        };
        assert_eq!(Message::decode(msg.encode()).unwrap(), msg);
        let msg = Message::Triangles {
            node: 0,
            triples: vec![],
        };
        assert_eq!(Message::decode(msg.encode()).unwrap(), msg);
    }
}
