//! The wire protocol between master and nodes.
//!
//! Messages use a compact hand-rolled little-endian binary encoding (tag
//! byte + fields) so their exact byte sizes are meaningful for the
//! network accounting: the `Θ(NP)` configuration term and the `Θ(T)`
//! listing term of Theorem IV.3 are measured from these encodings.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use pdtl_io::{Codec, IoBackend};

use crate::error::{ClusterError, Result};

/// One logical processor's configuration `C_{i,j}` (Figure 1): its
/// memory budget, pivot-edge range and MGT engine flags.
///
/// **Wire format.** Worker records are *length-prefixed*: each record
/// is a `u16` byte length followed by that many bytes, of which the
/// first [`WIRE_LEN`](Self::WIRE_LEN) are the fields below in order;
/// decoders skip any trailing bytes they do not understand, so the next
/// engine option extends the record without breaking older decoders (or
/// this one — see the forward-compat test). PR 3-era `Config` messages
/// (fixed 29-byte records under the original tag) still decode: the I/O
/// backend lives in bits 1–2 of the flags byte, positioned so the old
/// `overlap_io` bit maps onto `Blocking`/`Prefetch` exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerConfig {
    /// Range start (oriented adjacency position).
    pub start: u64,
    /// Range end (exclusive).
    pub end: u64,
    /// Memory budget in edges.
    pub budget_edges: u64,
    /// Enable the rank-space scan pruning (bound skips + `vhigh` cap).
    pub scan_pruning: bool,
    /// Which I/O backend the worker's MGT engine streams through.
    pub backend: IoBackend,
    /// Emulated per-block device latency in microseconds (0 = real
    /// hardware) — see `MgtOptions::io_latency`.
    pub io_latency_us: u32,
    /// Injected read fault: deliver this many `u32`s through the scan
    /// source, then fail (`MgtOptions::read_fault`). Rides the
    /// length-prefixed record tail — the flags byte is full (bits 1–2
    /// hold the backend), and PR 5-era decoders skip the tail — and is
    /// only encoded when set, so fault-free records stay byte-identical
    /// to PR 5's.
    pub read_fault: Option<u64>,
    /// On-disk codec the worker's node writes its oriented replica in
    /// (`MgtOptions::codec`). Rides the record tail *after* the fault
    /// tail — tail fields are positional, so the fault tail is emitted
    /// (presence byte 0) whenever the codec needs encoding — and is
    /// only encoded when not [`Codec::Raw`], keeping default records
    /// byte-identical to PR 5's and fault-only records to PR 7's.
    /// Unknown discriminants from newer encoders decode as `Raw`.
    pub codec: Codec,
}

/// Wire flag bits of [`WorkerConfig`].
const FLAG_SCAN_PRUNING: u8 = 1;
/// Bits 1–2 of the flags byte: the [`IoBackend`] discriminant
/// (`0 = Blocking`, `1 = Prefetch`, `2 = Mmap`, `3 = Uring`). PR 3
/// used bit 1 as a bare `overlap_io` flag, which this mapping
/// subsumes: old `overlap_io = true` bytes decode as `Prefetch`,
/// `false` as `Blocking`. PR 4 reserved discriminant 3, which its
/// decoders degrade to the default backend — an old node handed a
/// `Uring` config therefore runs, it just overlaps with threads
/// instead of kernel queues. The 2-bit field is now full: a fifth
/// backend must claim a fresh field in the length-prefixed record
/// tail (which old decoders skip), not grow this one.
const BACKEND_SHIFT: u8 = 1;
const BACKEND_MASK: u8 = 0b110;

impl WorkerConfig {
    /// Known record bytes: `start` + `end` + `budget_edges` (u64 each),
    /// flags (u8), `io_latency_us` (u32). Newer encoders may append
    /// fields after these; the length prefix tells decoders how much
    /// to skip.
    pub const WIRE_LEN: usize = 8 + 8 + 8 + 1 + 4;

    /// Record tail bytes appended when `read_fault` is set: a presence
    /// byte plus the `u64` budget.
    const FAULT_TAIL_LEN: usize = 1 + 8;

    /// Record tail bytes appended after the fault tail when the codec
    /// is not [`Codec::Raw`]: the codec discriminant.
    const CODEC_TAIL_LEN: usize = 1;

    /// Pack the engine flags into the wire byte.
    fn flags(&self) -> u8 {
        let backend = match self.backend {
            IoBackend::Blocking => 0u8,
            IoBackend::Prefetch => 1,
            IoBackend::Mmap => 2,
            IoBackend::Uring => 3,
        };
        u8::from(self.scan_pruning) * FLAG_SCAN_PRUNING + (backend << BACKEND_SHIFT)
    }

    /// Unpack the backend discriminant. Every value of the 2-bit field
    /// is now assigned; platforms that cannot serve a decoded backend
    /// degrade at `IoBackend::resolve` time in the engine, never here.
    fn backend_from_flags(flags: u8) -> IoBackend {
        match (flags & BACKEND_MASK) >> BACKEND_SHIFT {
            0 => IoBackend::Blocking,
            1 => IoBackend::Prefetch,
            2 => IoBackend::Mmap,
            _ => IoBackend::Uring,
        }
    }

    /// Encode one length-prefixed record. Tail fields are positional
    /// and appended only as far as needed: nothing for a fault-free
    /// `Raw` record (byte-identical to PR 5), the fault tail alone for
    /// a fault-bearing `Raw` record (byte-identical to PR 7), and the
    /// fault tail (presence byte 0 when no fault) followed by the
    /// codec byte for a non-raw codec.
    fn encode_record(&self, b: &mut BytesMut) {
        let codec_tail = self.codec != Codec::Raw;
        let fault_tail = self.read_fault.is_some() || codec_tail;
        let len = Self::WIRE_LEN
            + if fault_tail { Self::FAULT_TAIL_LEN } else { 0 }
            + if codec_tail { Self::CODEC_TAIL_LEN } else { 0 };
        b.put_u16_le(len as u16);
        b.put_u64_le(self.start);
        b.put_u64_le(self.end);
        b.put_u64_le(self.budget_edges);
        b.put_u8(self.flags());
        b.put_u32_le(self.io_latency_us);
        if fault_tail {
            b.put_u8(u8::from(self.read_fault.is_some()));
            b.put_u64_le(self.read_fault.unwrap_or(0));
        }
        if codec_tail {
            b.put_u8(self.codec.discriminant());
        }
    }

    /// Decode the fixed known fields shared by both wire generations.
    fn decode_fields(buf: &mut Bytes) -> Self {
        let (start, end, budget_edges) = (buf.get_u64_le(), buf.get_u64_le(), buf.get_u64_le());
        let flags = buf.get_u8();
        WorkerConfig {
            start,
            end,
            budget_edges,
            scan_pruning: flags & FLAG_SCAN_PRUNING != 0,
            backend: Self::backend_from_flags(flags),
            io_latency_us: buf.get_u32_le(),
            read_fault: None,
            codec: Codec::Raw,
        }
    }

    /// Decode one length-prefixed record, skipping any trailing bytes a
    /// newer encoder may have appended (forward compatibility).
    fn decode_record(buf: &mut Bytes) -> Result<Self> {
        need(buf, 2)?;
        let len = buf.get_u16_le() as usize;
        need(buf, len)?;
        if len < Self::WIRE_LEN {
            return Err(ClusterError::Protocol(format!(
                "worker record of {len} bytes, need at least {}",
                Self::WIRE_LEN
            )));
        }
        let mut cfg = Self::decode_fields(buf);
        let mut rest = len - Self::WIRE_LEN;
        if rest >= Self::FAULT_TAIL_LEN {
            let present = buf.get_u8() != 0;
            let budget = buf.get_u64_le();
            cfg.read_fault = present.then_some(budget);
            rest -= Self::FAULT_TAIL_LEN;
        }
        if rest >= Self::CODEC_TAIL_LEN {
            // Unknown discriminants (a newer master's codec) degrade to
            // Raw: the node still writes a replica every engine reads.
            cfg.codec = Codec::from_discriminant(buf.get_u8()).unwrap_or(Codec::Raw);
            rest -= Self::CODEC_TAIL_LEN;
        }
        buf.advance(rest);
        Ok(cfg)
    }
}

/// A node-level fault directive injected by the master's
/// [`FaultPlan`](crate::FaultPlan), executed by `serve_node` when the
/// config arrives. On the wire it is a kind byte plus a `u32` argument
/// inside the Config message's length-prefixed directives tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NodeFault {
    /// No injected fault.
    #[default]
    None,
    /// Panic the node thread (a crashed process).
    Panic,
    /// Return from the serve loop, dropping the connection.
    Drop,
    /// Accept the config and go silent: no heartbeats, no results (a
    /// wedged process). The node still honors `Shutdown`.
    Stall,
    /// Sleep this many milliseconds before starting work, while
    /// heartbeats keep flowing (a slow node, not a dead one).
    Delay(u32),
}

impl NodeFault {
    fn wire_kind(self) -> (u8, u32) {
        match self {
            NodeFault::None => (0, 0),
            NodeFault::Panic => (1, 0),
            NodeFault::Drop => (2, 0),
            NodeFault::Stall => (3, 0),
            NodeFault::Delay(ms) => (4, ms),
        }
    }

    fn from_wire(kind: u8, arg: u32) -> Self {
        match kind {
            1 => NodeFault::Panic,
            2 => NodeFault::Drop,
            3 => NodeFault::Stall,
            4 => NodeFault::Delay(arg),
            // Unknown kinds (a newer master) degrade to no fault: a
            // node that cannot simulate a failure mode just works.
            _ => NodeFault::None,
        }
    }
}

/// Runtime directives for one node dispatch, carried in a
/// length-prefixed tail after the Config message's worker records
/// (which PR 5-era decoders ignore, and whose absence this decoder
/// defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NodeDirectives {
    /// Milliseconds between `Progress` heartbeats while workers run;
    /// `0` disables heartbeats (the PR 5 behaviour).
    pub heartbeat_ms: u32,
    /// Injected fault for this dispatch.
    pub fault: NodeFault,
}

impl NodeDirectives {
    /// Known tail bytes: heartbeat (u32), fault kind (u8) + arg (u32).
    const WIRE_LEN: usize = 4 + 1 + 4;

    fn encode_tail(&self, b: &mut BytesMut) {
        b.put_u16_le(Self::WIRE_LEN as u16);
        b.put_u32_le(self.heartbeat_ms);
        let (kind, arg) = self.fault.wire_kind();
        b.put_u8(kind);
        b.put_u32_le(arg);
    }

    /// Decode the directives tail if present; a PR 5-era Config ends at
    /// the worker records and yields the defaults.
    fn decode_tail(buf: &mut Bytes) -> Result<Self> {
        if buf.remaining() < 2 {
            return Ok(Self::default());
        }
        let len = buf.get_u16_le() as usize;
        need(buf, len)?;
        if len < Self::WIRE_LEN {
            // A shorter tail from some future pruned encoding: treat as
            // absent rather than misparse.
            buf.advance(len);
            return Ok(Self::default());
        }
        let heartbeat_ms = buf.get_u32_le();
        let kind = buf.get_u8();
        let arg = buf.get_u32_le();
        buf.advance(len - Self::WIRE_LEN);
        Ok(NodeDirectives {
            heartbeat_ms,
            fault: NodeFault::from_wire(kind, arg),
        })
    }
}

/// One worker's result summary sent back to the master.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Worker index within the node.
    pub worker: u32,
    /// Range start.
    pub start: u64,
    /// Range end.
    pub end: u64,
    /// Triangles found.
    pub triangles: u64,
    /// MGT chunk iterations.
    pub iterations: u64,
    /// Counted CPU operations.
    pub cpu_ops: u64,
    /// Bytes read from disk.
    pub bytes_read: u64,
    /// Bytes written to disk.
    pub bytes_written: u64,
    /// Disk seeks.
    pub seeks: u64,
    /// Read + write operations.
    pub io_ops: u64,
    /// Nanoseconds of I/O activity. Under the prefetch backend this
    /// runs concurrently with compute (device time, not stall time),
    /// so it may approach or exceed `wall_nanos`.
    pub io_nanos: u64,
    /// Worker wall time in nanoseconds.
    pub wall_nanos: u64,
}

/// The analytics operation a serve-mode [`Message::Query`] requests.
///
/// On the wire every operation is one fixed 17-byte record — kind byte,
/// `u32` arg `a`, `u64` arg `b`, `u32` arg `c` — so adding an operation
/// never changes message framing. Unused args encode as zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryOperation {
    /// Exact triangle count (kind 0).
    Count,
    /// Exact listing; at most `limit` triples are returned in the
    /// response (the count is always exact) (kind 1, `a = limit`).
    List {
        /// Maximum triples echoed back in the response.
        limit: u32,
    },
    /// Clustering coefficients: the response carries the average local
    /// coefficient and the transitivity ratio (kind 2).
    Clustering,
    /// K-truss: the response carries the `k`-truss edge count and the
    /// maximum `k` of the decomposition (kind 3, `a = k`).
    KTruss {
        /// The truss order requested.
        k: u32,
    },
    /// DOULION estimate averaged over `trials` sparsifications (kind 4,
    /// `a = p_ppm`, `b = seed`, `c = trials`).
    Doulion {
        /// Edge-keep probability in parts per million (`1_000_000` = 1.0);
        /// an integer so the wire stays free of float encodings.
        p_ppm: u32,
        /// Base RNG seed; trial `t` uses `seed + t`.
        seed: u64,
        /// Number of independent estimates averaged.
        trials: u32,
    },
}

impl QueryOperation {
    /// Record bytes: kind + `a` + `b` + `c`.
    const WIRE_LEN: usize = 1 + 4 + 8 + 4;

    fn encode(&self, b: &mut BytesMut) {
        let (kind, a, bb, c) = match *self {
            QueryOperation::Count => (0u8, 0u32, 0u64, 0u32),
            QueryOperation::List { limit } => (1, limit, 0, 0),
            QueryOperation::Clustering => (2, 0, 0, 0),
            QueryOperation::KTruss { k } => (3, k, 0, 0),
            QueryOperation::Doulion {
                p_ppm,
                seed,
                trials,
            } => (4, p_ppm, seed, trials),
        };
        b.put_u8(kind);
        b.put_u32_le(a);
        b.put_u64_le(bb);
        b.put_u32_le(c);
    }

    fn decode(buf: &mut Bytes) -> Result<Self> {
        need(buf, Self::WIRE_LEN)?;
        let kind = buf.get_u8();
        let a = buf.get_u32_le();
        let b = buf.get_u64_le();
        let c = buf.get_u32_le();
        match kind {
            0 => Ok(QueryOperation::Count),
            1 => Ok(QueryOperation::List { limit: a }),
            2 => Ok(QueryOperation::Clustering),
            3 => Ok(QueryOperation::KTruss { k: a }),
            4 => Ok(QueryOperation::Doulion {
                p_ppm: a,
                seed: b,
                trials: c,
            }),
            k => Err(ClusterError::Protocol(format!(
                "unknown operation kind {k}"
            ))),
        }
    }

    /// Human-readable operation name (CLI/report output).
    pub fn name(&self) -> &'static str {
        match self {
            QueryOperation::Count => "count",
            QueryOperation::List { .. } => "list",
            QueryOperation::Clustering => "clustering",
            QueryOperation::KTruss { .. } => "ktruss",
            QueryOperation::Doulion { .. } => "doulion",
        }
    }
}

/// Per-query engine knobs carried by [`Message::Query`] — the serve-mode
/// analogue of a [`WorkerConfig`]: each query picks its own parallelism,
/// memory budget, I/O backend and codec.
///
/// **Wire format.** A length-prefixed record in the [`WorkerConfig`]
/// style: `u16` length, then `cores` (u32), `budget_edges` (u64), the
/// shared flags byte (bit 0 scan pruning, bits 1–2 backend), the codec
/// discriminant (u8), and `io_latency_us` (u32). Decoders skip trailing
/// bytes, so future knobs extend the record without a new tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryOptions {
    /// Worker threads for this query; `0` means "server default".
    pub cores: u32,
    /// Per-worker memory budget in edges (the paper's `M`).
    pub budget_edges: u64,
    /// Enable rank-space scan pruning.
    pub scan_pruning: bool,
    /// I/O backend the MGT scan streams through.
    pub backend: IoBackend,
    /// Which oriented on-disk replica to run against.
    pub codec: Codec,
    /// Emulated per-block device latency in microseconds (0 = real
    /// hardware) — doubles as a deterministic slow-query injection.
    pub io_latency_us: u32,
}

impl Default for QueryOptions {
    fn default() -> Self {
        Self {
            cores: 0,
            budget_edges: 1 << 20,
            scan_pruning: true,
            backend: IoBackend::default_from_env(),
            codec: Codec::default_from_env(),
            io_latency_us: 0,
        }
    }
}

impl QueryOptions {
    /// Known record bytes: cores + budget + flags + codec + latency.
    const WIRE_LEN: usize = 4 + 8 + 1 + 1 + 4;

    fn encode_record(&self, b: &mut BytesMut) {
        b.put_u16_le(Self::WIRE_LEN as u16);
        b.put_u32_le(self.cores);
        b.put_u64_le(self.budget_edges);
        let backend = match self.backend {
            IoBackend::Blocking => 0u8,
            IoBackend::Prefetch => 1,
            IoBackend::Mmap => 2,
            IoBackend::Uring => 3,
        };
        b.put_u8(u8::from(self.scan_pruning) * FLAG_SCAN_PRUNING + (backend << BACKEND_SHIFT));
        b.put_u8(self.codec.discriminant());
        b.put_u32_le(self.io_latency_us);
    }

    fn decode_record(buf: &mut Bytes) -> Result<Self> {
        need(buf, 2)?;
        let len = buf.get_u16_le() as usize;
        need(buf, len)?;
        if len < Self::WIRE_LEN {
            return Err(ClusterError::Protocol(format!(
                "query options record of {len} bytes, need at least {}",
                Self::WIRE_LEN
            )));
        }
        let cores = buf.get_u32_le();
        let budget_edges = buf.get_u64_le();
        let flags = buf.get_u8();
        let codec = Codec::from_discriminant(buf.get_u8()).unwrap_or(Codec::Raw);
        let io_latency_us = buf.get_u32_le();
        buf.advance(len - Self::WIRE_LEN);
        Ok(QueryOptions {
            cores,
            budget_edges,
            scan_pruning: flags & FLAG_SCAN_PRUNING != 0,
            backend: WorkerConfig::backend_from_flags(flags),
            codec,
            io_latency_us,
        })
    }
}

/// One catalog entry in a [`Message::StatsResult`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogGraphInfo {
    /// Graph name (the catalog file stem).
    pub name: String,
    /// Vertex count.
    pub vertices: u32,
    /// Undirected edge count `|E*|`.
    pub m_star: u64,
}

/// Aggregate serve-mode counters returned by a stats request.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServerStats {
    /// Queries answered successfully since boot.
    pub served: u64,
    /// Queries that ended in a [`Message::QueryError`].
    pub failed: u64,
    /// Queries admitted and currently executing.
    pub inflight: u32,
    /// Catalog entries rejected at registration (failed verification).
    pub rejected_graphs: u32,
    /// Bytes read from disk across all queries.
    pub bytes_read: u64,
    /// `u32`s delivered by compressed-adjacency decoders.
    pub u32s_decoded: u64,
    /// High-water mark of concurrently admitted edges.
    pub admitted_peak: u64,
    /// Total edges the admission ledger allows at once.
    pub budget_total: u64,
    /// Fixed power-of-two latency histogram: bucket `i` counts queries
    /// whose wall time fell in `[2^i, 2^{i+1})` microseconds.
    pub latency_buckets: Vec<u64>,
    /// The graphs being served.
    pub graphs: Vec<CatalogGraphInfo>,
}

impl ServerStats {
    /// Upper bound (in microseconds) of the histogram bucket containing
    /// the `q`-quantile of recorded query latencies (`0.5` = p50,
    /// `0.99` = p99); 0 when nothing has been recorded.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let total: u64 = self.latency_buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &count) in self.latency_buckets.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return 1u64 << (i + 1);
            }
        }
        1u64 << self.latency_buckets.len()
    }
}

/// Protocol messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Master → node: the node's id, graph replica base path, and one
    /// config per local core.
    Config {
        /// Node id (0 = master's own node).
        node: u32,
        /// Base path of the node's local oriented-graph replica.
        graph_base: String,
        /// Per-core configurations.
        workers: Vec<WorkerConfig>,
        /// Whether to stream triangle lists back.
        listing: bool,
        /// Heartbeat cadence and injected fault for this dispatch
        /// (length-prefixed wire tail; defaults when absent).
        directives: NodeDirectives,
    },
    /// Node → master: per-worker summaries.
    Results {
        /// Node id.
        node: u32,
        /// Per-worker results.
        workers: Vec<WorkerSummary>,
    },
    /// Node → master: a batch of listed triangles (cone first).
    Triangles {
        /// Node id.
        node: u32,
        /// Triples `(u, v, w)`.
        triples: Vec<(u32, u32, u32)>,
    },
    /// Node → master: node failed with an error message.
    NodeError {
        /// Node id.
        node: u32,
        /// Human-readable failure description.
        detail: String,
    },
    /// Node → master: liveness heartbeat while workers run, so the
    /// master can tell a slow node from a wedged one.
    Progress {
        /// Node id.
        node: u32,
        /// Monotonic heartbeat sequence number within the dispatch.
        seq: u32,
    },
    /// Master → node: end the serve loop and exit cleanly.
    Shutdown,
    /// Client → server (serve mode): run one analytics operation
    /// against a named catalog graph.
    Query {
        /// Client-chosen request id, echoed in the response.
        id: u32,
        /// Catalog graph name.
        graph: String,
        /// The operation to run.
        op: QueryOperation,
        /// Per-query engine knobs.
        options: QueryOptions,
    },
    /// Server → client: a successful query answer. The meaning of the
    /// scalar fields is per-operation (see the serve-mode wire table in
    /// ARCHITECTURE.md): `triangles` is the exact count for the MGT
    /// operations, `value_bits` an `f64` in bits for clustering and
    /// DOULION (the `k`-truss edge count for `ktruss`), and `aux` the
    /// transitivity bits / max-`k` / kept-edge count.
    QueryResult {
        /// Echoed request id.
        id: u32,
        /// Exact triangle count (0 where the operation has none).
        triangles: u64,
        /// Primary per-operation value (often `f64::to_bits`).
        value_bits: u64,
        /// Secondary per-operation value.
        aux: u64,
        /// Server-side wall time of the query in nanoseconds.
        wall_nanos: u64,
        /// Per-worker MGT counters of the run (empty for operations
        /// that do not run the disk engine).
        workers: Vec<WorkerSummary>,
        /// Listed triples (`list` only, capped at the request's limit).
        triples: Vec<(u32, u32, u32)>,
    },
    /// Server → client: the query failed with a typed, human-readable
    /// reason; the server keeps serving.
    QueryError {
        /// Echoed request id.
        id: u32,
        /// Failure description.
        detail: String,
    },
    /// Client → server: request the aggregate serve-mode counters.
    StatsRequest,
    /// Server → client: catalog plus aggregate counters.
    StatsResult {
        /// The counters.
        stats: ServerStats,
    },
}

/// PR 3-era `Config` tag: fixed 29-byte worker records, no length
/// prefix. Decoded for compatibility, never emitted.
const TAG_CONFIG_LEGACY: u8 = 1;
const TAG_RESULTS: u8 = 2;
const TAG_TRIANGLES: u8 = 3;
const TAG_NODE_ERROR: u8 = 4;
/// Current `Config` tag: length-prefixed worker records.
const TAG_CONFIG: u8 = 5;
const TAG_PROGRESS: u8 = 6;
const TAG_SHUTDOWN: u8 = 7;
/// Serve-mode request/response tags (PR 10). They extend the same tag
/// space — a serve-mode client and a cluster node share one decoder.
const TAG_QUERY: u8 = 8;
const TAG_QUERY_RESULT: u8 = 9;
const TAG_QUERY_ERROR: u8 = 10;
const TAG_STATS_REQUEST: u8 = 11;
const TAG_STATS_RESULT: u8 = 12;

impl Message {
    /// Encode into a byte buffer.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::new();
        match self {
            Message::Config {
                node,
                graph_base,
                workers,
                listing,
                directives,
            } => {
                b.put_u8(TAG_CONFIG);
                b.put_u32_le(*node);
                put_string(&mut b, graph_base);
                b.put_u8(u8::from(*listing));
                b.put_u32_le(workers.len() as u32);
                for w in workers {
                    w.encode_record(&mut b);
                }
                // PR 5-era decoders stop at the last worker record and
                // ignore this tail.
                directives.encode_tail(&mut b);
            }
            Message::Results { node, workers } => {
                b.put_u8(TAG_RESULTS);
                b.put_u32_le(*node);
                put_summaries(&mut b, workers);
            }
            Message::Triangles { node, triples } => {
                b.put_u8(TAG_TRIANGLES);
                b.put_u32_le(*node);
                b.put_u32_le(triples.len() as u32);
                for &(u, v, w) in triples {
                    b.put_u32_le(u);
                    b.put_u32_le(v);
                    b.put_u32_le(w);
                }
            }
            Message::NodeError { node, detail } => {
                b.put_u8(TAG_NODE_ERROR);
                b.put_u32_le(*node);
                put_string(&mut b, detail);
            }
            Message::Progress { node, seq } => {
                b.put_u8(TAG_PROGRESS);
                b.put_u32_le(*node);
                b.put_u32_le(*seq);
            }
            Message::Shutdown => {
                b.put_u8(TAG_SHUTDOWN);
                // Filler id: every message carries a u32 after the tag.
                b.put_u32_le(0);
            }
            Message::Query {
                id,
                graph,
                op,
                options,
            } => {
                b.put_u8(TAG_QUERY);
                b.put_u32_le(*id);
                put_string(&mut b, graph);
                op.encode(&mut b);
                options.encode_record(&mut b);
            }
            Message::QueryResult {
                id,
                triangles,
                value_bits,
                aux,
                wall_nanos,
                workers,
                triples,
            } => {
                b.put_u8(TAG_QUERY_RESULT);
                b.put_u32_le(*id);
                b.put_u64_le(*triangles);
                b.put_u64_le(*value_bits);
                b.put_u64_le(*aux);
                b.put_u64_le(*wall_nanos);
                put_summaries(&mut b, workers);
                b.put_u32_le(triples.len() as u32);
                for &(u, v, w) in triples {
                    b.put_u32_le(u);
                    b.put_u32_le(v);
                    b.put_u32_le(w);
                }
            }
            Message::QueryError { id, detail } => {
                b.put_u8(TAG_QUERY_ERROR);
                b.put_u32_le(*id);
                put_string(&mut b, detail);
            }
            Message::StatsRequest => {
                b.put_u8(TAG_STATS_REQUEST);
                b.put_u32_le(0);
            }
            Message::StatsResult { stats } => {
                b.put_u8(TAG_STATS_RESULT);
                b.put_u32_le(0);
                b.put_u64_le(stats.served);
                b.put_u64_le(stats.failed);
                b.put_u32_le(stats.inflight);
                b.put_u32_le(stats.rejected_graphs);
                b.put_u64_le(stats.bytes_read);
                b.put_u64_le(stats.u32s_decoded);
                b.put_u64_le(stats.admitted_peak);
                b.put_u64_le(stats.budget_total);
                b.put_u32_le(stats.latency_buckets.len() as u32);
                for &count in &stats.latency_buckets {
                    b.put_u64_le(count);
                }
                b.put_u32_le(stats.graphs.len() as u32);
                for g in &stats.graphs {
                    put_string(&mut b, &g.name);
                    b.put_u32_le(g.vertices);
                    b.put_u64_le(g.m_star);
                }
            }
        }
        b.freeze()
    }

    /// Decode a buffer produced by [`encode`](Self::encode).
    pub fn decode(mut buf: Bytes) -> Result<Self> {
        if buf.remaining() < 5 {
            return Err(ClusterError::Protocol("short message".into()));
        }
        let tag = buf.get_u8();
        let node = buf.get_u32_le();
        match tag {
            TAG_CONFIG => {
                let graph_base = get_string(&mut buf)?;
                need(&buf, 5)?;
                let listing = buf.get_u8() != 0;
                let count = buf.get_u32_le() as usize;
                let workers = (0..count)
                    .map(|_| WorkerConfig::decode_record(&mut buf))
                    .collect::<Result<Vec<_>>>()?;
                let directives = NodeDirectives::decode_tail(&mut buf)?;
                Ok(Message::Config {
                    node,
                    graph_base,
                    workers,
                    listing,
                    directives,
                })
            }
            TAG_CONFIG_LEGACY => {
                // PR 3-era encoding: fixed-size records, no prefix. The
                // flags-byte layout is shared, so the old overlap_io
                // bit maps onto Blocking/Prefetch directly.
                let graph_base = get_string(&mut buf)?;
                need(&buf, 5)?;
                let listing = buf.get_u8() != 0;
                let count = buf.get_u32_le() as usize;
                need(&buf, count * WorkerConfig::WIRE_LEN)?;
                let workers = (0..count)
                    .map(|_| WorkerConfig::decode_fields(&mut buf))
                    .collect();
                Ok(Message::Config {
                    node,
                    graph_base,
                    workers,
                    listing,
                    directives: NodeDirectives::default(),
                })
            }
            TAG_RESULTS => {
                let workers = get_summaries(&mut buf)?;
                Ok(Message::Results { node, workers })
            }
            TAG_TRIANGLES => {
                need(&buf, 4)?;
                let count = buf.get_u32_le() as usize;
                need(&buf, count * 12)?;
                let triples = (0..count)
                    .map(|_| (buf.get_u32_le(), buf.get_u32_le(), buf.get_u32_le()))
                    .collect();
                Ok(Message::Triangles { node, triples })
            }
            TAG_NODE_ERROR => {
                let detail = get_string(&mut buf)?;
                Ok(Message::NodeError { node, detail })
            }
            TAG_PROGRESS => {
                need(&buf, 4)?;
                let seq = buf.get_u32_le();
                Ok(Message::Progress { node, seq })
            }
            TAG_SHUTDOWN => Ok(Message::Shutdown),
            TAG_QUERY => {
                let graph = get_string(&mut buf)?;
                let op = QueryOperation::decode(&mut buf)?;
                let options = QueryOptions::decode_record(&mut buf)?;
                Ok(Message::Query {
                    id: node,
                    graph,
                    op,
                    options,
                })
            }
            TAG_QUERY_RESULT => {
                need(&buf, 4 * 8)?;
                let triangles = buf.get_u64_le();
                let value_bits = buf.get_u64_le();
                let aux = buf.get_u64_le();
                let wall_nanos = buf.get_u64_le();
                let workers = get_summaries(&mut buf)?;
                need(&buf, 4)?;
                let count = buf.get_u32_le() as usize;
                need(&buf, count * 12)?;
                let triples = (0..count)
                    .map(|_| (buf.get_u32_le(), buf.get_u32_le(), buf.get_u32_le()))
                    .collect();
                Ok(Message::QueryResult {
                    id: node,
                    triangles,
                    value_bits,
                    aux,
                    wall_nanos,
                    workers,
                    triples,
                })
            }
            TAG_QUERY_ERROR => {
                let detail = get_string(&mut buf)?;
                Ok(Message::QueryError { id: node, detail })
            }
            TAG_STATS_REQUEST => Ok(Message::StatsRequest),
            TAG_STATS_RESULT => {
                need(&buf, 8 + 8 + 4 + 4 + 8 * 4)?;
                let served = buf.get_u64_le();
                let failed = buf.get_u64_le();
                let inflight = buf.get_u32_le();
                let rejected_graphs = buf.get_u32_le();
                let bytes_read = buf.get_u64_le();
                let u32s_decoded = buf.get_u64_le();
                let admitted_peak = buf.get_u64_le();
                let budget_total = buf.get_u64_le();
                need(&buf, 4)?;
                let buckets = buf.get_u32_le() as usize;
                need(&buf, buckets * 8)?;
                let latency_buckets = (0..buckets).map(|_| buf.get_u64_le()).collect();
                need(&buf, 4)?;
                let count = buf.get_u32_le() as usize;
                let graphs = (0..count)
                    .map(|_| {
                        let name = get_string(&mut buf)?;
                        need(&buf, 4 + 8)?;
                        Ok(CatalogGraphInfo {
                            name,
                            vertices: buf.get_u32_le(),
                            m_star: buf.get_u64_le(),
                        })
                    })
                    .collect::<Result<Vec<_>>>()?;
                Ok(Message::StatsResult {
                    stats: ServerStats {
                        served,
                        failed,
                        inflight,
                        rejected_graphs,
                        bytes_read,
                        u32s_decoded,
                        admitted_peak,
                        budget_total,
                        latency_buckets,
                        graphs,
                    },
                })
            }
            t => Err(ClusterError::Protocol(format!("unknown tag {t}"))),
        }
    }

    /// Encoded size in bytes (what the network accounting charges).
    pub fn wire_size(&self) -> u64 {
        self.encode().len() as u64
    }
}

/// Encode a `u32` count followed by the fixed 92-byte summary records
/// (shared by `Results` and `QueryResult`).
fn put_summaries(b: &mut BytesMut, workers: &[WorkerSummary]) {
    b.put_u32_le(workers.len() as u32);
    for w in workers {
        b.put_u32_le(w.worker);
        for v in [
            w.start,
            w.end,
            w.triangles,
            w.iterations,
            w.cpu_ops,
            w.bytes_read,
            w.bytes_written,
            w.seeks,
            w.io_ops,
            w.io_nanos,
            w.wall_nanos,
        ] {
            b.put_u64_le(v);
        }
    }
}

fn get_summaries(buf: &mut Bytes) -> Result<Vec<WorkerSummary>> {
    need(buf, 4)?;
    let count = buf.get_u32_le() as usize;
    need(buf, count * (4 + 11 * 8))?;
    Ok((0..count)
        .map(|_| WorkerSummary {
            worker: buf.get_u32_le(),
            start: buf.get_u64_le(),
            end: buf.get_u64_le(),
            triangles: buf.get_u64_le(),
            iterations: buf.get_u64_le(),
            cpu_ops: buf.get_u64_le(),
            bytes_read: buf.get_u64_le(),
            bytes_written: buf.get_u64_le(),
            seeks: buf.get_u64_le(),
            io_ops: buf.get_u64_le(),
            io_nanos: buf.get_u64_le(),
            wall_nanos: buf.get_u64_le(),
        })
        .collect())
}

fn put_string(b: &mut BytesMut, s: &str) {
    b.put_u32_le(s.len() as u32);
    b.put_slice(s.as_bytes());
}

fn get_string(buf: &mut Bytes) -> Result<String> {
    need(buf, 4)?;
    let len = buf.get_u32_le() as usize;
    need(buf, len)?;
    let raw = buf.split_to(len);
    String::from_utf8(raw.to_vec())
        .map_err(|_| ClusterError::Protocol("invalid utf-8 string".into()))
}

fn need(buf: &Bytes, n: usize) -> Result<()> {
    if buf.remaining() < n {
        Err(ClusterError::Protocol(format!(
            "truncated message: need {n}, have {}",
            buf.remaining()
        )))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_summary(i: u32) -> WorkerSummary {
        WorkerSummary {
            worker: i,
            start: 10 * i as u64,
            end: 10 * i as u64 + 10,
            triangles: 42 + i as u64,
            iterations: 3,
            cpu_ops: 1_000_000,
            bytes_read: 4096,
            bytes_written: 0,
            seeks: 2,
            io_ops: 7,
            io_nanos: 123_456,
            wall_nanos: 999_999,
        }
    }

    #[test]
    fn config_round_trip() {
        let msg = Message::Config {
            node: 3,
            graph_base: "/data/node3/oriented".into(),
            workers: vec![
                WorkerConfig {
                    start: 0,
                    end: 100,
                    budget_edges: 50,
                    scan_pruning: true,
                    backend: IoBackend::Blocking,
                    io_latency_us: 0,
                    read_fault: None,
                    codec: Codec::Raw,
                },
                WorkerConfig {
                    start: 100,
                    end: 220,
                    budget_edges: 50,
                    scan_pruning: false,
                    backend: IoBackend::Prefetch,
                    io_latency_us: 50,
                    read_fault: None,
                    codec: Codec::Raw,
                },
                WorkerConfig {
                    start: 220,
                    end: 300,
                    budget_edges: 50,
                    scan_pruning: true,
                    backend: IoBackend::Mmap,
                    io_latency_us: 7,
                    read_fault: None,
                    codec: Codec::Raw,
                },
                WorkerConfig {
                    start: 300,
                    end: 420,
                    budget_edges: 50,
                    scan_pruning: true,
                    backend: IoBackend::Uring,
                    io_latency_us: 0,
                    read_fault: None,
                    codec: Codec::Raw,
                },
            ],
            listing: true,
            directives: NodeDirectives::default(),
        };
        assert_eq!(Message::decode(msg.encode()).unwrap(), msg);
    }

    #[test]
    fn pr3_era_config_still_decodes() {
        // A Config message exactly as PR 3 encoded it: old tag byte,
        // fixed 29-byte worker records, flags bit 1 = overlap_io. The
        // overlap bit must map onto Blocking/Prefetch.
        let mut b = BytesMut::new();
        b.put_u8(1); // TAG_CONFIG_LEGACY
        b.put_u32_le(3); // node
        put_string(&mut b, "/data/node3/oriented");
        b.put_u8(1); // listing
        b.put_u32_le(2); // worker count
        for (flags, latency) in [(0b01u8, 0u32), (0b11, 50)] {
            b.put_u64_le(10);
            b.put_u64_le(20);
            b.put_u64_le(64);
            b.put_u8(flags);
            b.put_u32_le(latency);
        }
        let decoded = Message::decode(b.freeze()).unwrap();
        let Message::Config { workers, node, .. } = decoded else {
            panic!("expected Config, got {decoded:?}");
        };
        assert_eq!(node, 3);
        assert_eq!(
            workers,
            vec![
                WorkerConfig {
                    start: 10,
                    end: 20,
                    budget_edges: 64,
                    scan_pruning: true,
                    backend: IoBackend::Blocking, // overlap_io = false
                    io_latency_us: 0,
                    read_fault: None,
                    codec: Codec::Raw,
                },
                WorkerConfig {
                    start: 10,
                    end: 20,
                    budget_edges: 64,
                    scan_pruning: true,
                    backend: IoBackend::Prefetch, // overlap_io = true
                    io_latency_us: 50,
                    read_fault: None,
                    codec: Codec::Raw,
                },
            ]
        );
    }

    #[test]
    fn forward_compat_decoder_skips_unknown_record_tail() {
        // A future encoder appends a field to each worker record and
        // bumps the length prefix; this decoder must parse the fields
        // it knows and skip the rest, for every worker in the message.
        let workers = [(0u64, 100u64, 0b011u8), (100, 250, 0b101)];
        let mut b = BytesMut::new();
        b.put_u8(5); // TAG_CONFIG
        b.put_u32_le(9);
        put_string(&mut b, "/g");
        b.put_u8(0);
        b.put_u32_le(workers.len() as u32);
        for &(start, end, flags) in &workers {
            b.put_u16_le(29 + 6); // future record: 6 extra bytes
            b.put_u64_le(start);
            b.put_u64_le(end);
            b.put_u64_le(1024);
            b.put_u8(flags);
            b.put_u32_le(0);
            b.put_slice(b"future"); // the unknown field
        }
        let decoded = Message::decode(b.freeze()).unwrap();
        let Message::Config { workers: got, .. } = decoded else {
            panic!("expected Config, got {decoded:?}");
        };
        assert_eq!(got.len(), 2);
        assert_eq!((got[0].start, got[0].end), (0, 100));
        assert_eq!(got[0].backend, IoBackend::Prefetch);
        assert!(got[0].scan_pruning);
        assert_eq!((got[1].start, got[1].end), (100, 250));
        assert_eq!(got[1].backend, IoBackend::Mmap);
        assert!(got[1].scan_pruning);
    }

    #[test]
    fn backend_discriminants_cover_the_two_bit_field() {
        // PR 4 reserved discriminant 3 and degraded it to the default
        // backend; it now names Uring, so decoding wire bytes written
        // by a newer (uring-aware) encoder yields Uring here — while
        // the old decoder's degradation path keeps those same bytes
        // runnable on PR 4-era nodes. The field is full: growing it
        // would reinterpret old flag bytes, so a fifth backend must use
        // the record tail.
        assert_eq!(WorkerConfig::backend_from_flags(0b000), IoBackend::Blocking);
        assert_eq!(WorkerConfig::backend_from_flags(0b010), IoBackend::Prefetch);
        assert_eq!(WorkerConfig::backend_from_flags(0b100), IoBackend::Mmap);
        assert_eq!(WorkerConfig::backend_from_flags(0b110), IoBackend::Uring);
        // scan_pruning (bit 0) never bleeds into the backend field.
        assert_eq!(WorkerConfig::backend_from_flags(0b111), IoBackend::Uring);
        assert_eq!(WorkerConfig::backend_from_flags(0b001), IoBackend::Blocking);
    }

    #[test]
    fn uring_config_round_trips_through_the_wire() {
        // The discriminant-3 encoding decodes bit-exactly, alongside
        // the forward-compat record-tail skip.
        let cfg = WorkerConfig {
            start: 7,
            end: 900,
            budget_edges: 4096,
            scan_pruning: false,
            backend: IoBackend::Uring,
            io_latency_us: 50,
            read_fault: None,
            codec: Codec::Raw,
        };
        let mut b = BytesMut::new();
        cfg.encode_record(&mut b);
        let encoded = b.freeze();
        // flags byte: backend 3 in bits 1-2, pruning bit clear
        assert_eq!(encoded[2 + 24], 0b110);
        let mut buf = encoded;
        assert_eq!(WorkerConfig::decode_record(&mut buf).unwrap(), cfg);
    }

    #[test]
    fn truncated_and_undersized_records_rejected() {
        let msg = Message::Config {
            node: 0,
            graph_base: "x".into(),
            workers: vec![WorkerConfig {
                start: 0,
                end: 1,
                budget_edges: 1,
                scan_pruning: true,
                backend: IoBackend::Prefetch,
                io_latency_us: 0,
                read_fault: None,
                codec: Codec::Raw,
            }],
            listing: false,
            directives: NodeDirectives::default(),
        };
        // record cut mid-field
        let enc = msg.encode();
        assert!(Message::decode(enc.slice(0..enc.len() - 3)).is_err());
        // a length prefix smaller than the known fields
        let mut b = BytesMut::new();
        b.put_u8(5);
        b.put_u32_le(0);
        put_string(&mut b, "x");
        b.put_u8(0);
        b.put_u32_le(1);
        b.put_u16_le(4); // too short to hold the known fields
        b.put_u32_le(0);
        let err = Message::decode(b.freeze()).unwrap_err();
        assert!(err.to_string().contains("worker record"), "{err}");
    }

    #[test]
    fn results_round_trip() {
        let msg = Message::Results {
            node: 1,
            workers: (0..5).map(sample_summary).collect(),
        };
        assert_eq!(Message::decode(msg.encode()).unwrap(), msg);
    }

    #[test]
    fn triangles_round_trip() {
        let msg = Message::Triangles {
            node: 2,
            triples: vec![(1, 2, 3), (4, 5, 6), (7, 8, 9)],
        };
        assert_eq!(Message::decode(msg.encode()).unwrap(), msg);
    }

    #[test]
    fn node_error_round_trip() {
        let msg = Message::NodeError {
            node: 7,
            detail: "disk on fire".into(),
        };
        assert_eq!(Message::decode(msg.encode()).unwrap(), msg);
    }

    #[test]
    fn progress_and_shutdown_round_trip() {
        let msg = Message::Progress { node: 3, seq: 17 };
        assert_eq!(Message::decode(msg.encode()).unwrap(), msg);
        let msg = Message::Shutdown;
        assert_eq!(Message::decode(msg.encode()).unwrap(), msg);
    }

    #[test]
    fn config_with_directives_and_read_fault_round_trips() {
        let msg = Message::Config {
            node: 2,
            graph_base: "/data/node2/oriented".into(),
            workers: vec![
                WorkerConfig {
                    start: 0,
                    end: 64,
                    budget_edges: 32,
                    scan_pruning: true,
                    backend: IoBackend::Prefetch,
                    io_latency_us: 0,
                    read_fault: Some(1000),
                    codec: Codec::Raw,
                },
                WorkerConfig {
                    start: 64,
                    end: 128,
                    budget_edges: 32,
                    scan_pruning: true,
                    backend: IoBackend::Mmap,
                    io_latency_us: 0,
                    read_fault: None,
                    codec: Codec::Raw,
                },
            ],
            listing: false,
            directives: NodeDirectives {
                heartbeat_ms: 250,
                fault: NodeFault::Delay(40),
            },
        };
        assert_eq!(Message::decode(msg.encode()).unwrap(), msg);
        for fault in [
            NodeFault::None,
            NodeFault::Panic,
            NodeFault::Drop,
            NodeFault::Stall,
        ] {
            let msg = Message::Config {
                node: 0,
                graph_base: "/g".into(),
                workers: vec![],
                listing: true,
                directives: NodeDirectives {
                    heartbeat_ms: 0,
                    fault,
                },
            };
            assert_eq!(Message::decode(msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn pr5_era_config_without_tails_still_decodes() {
        // A Config exactly as PR 5 encoded it: current tag,
        // length-prefixed 29-byte records, nothing after the last
        // record. Directives default, no injected faults.
        let mut b = BytesMut::new();
        b.put_u8(5); // TAG_CONFIG
        b.put_u32_le(4);
        put_string(&mut b, "/data/node4/oriented");
        b.put_u8(0);
        b.put_u32_le(1);
        b.put_u16_le(29);
        b.put_u64_le(5);
        b.put_u64_le(55);
        b.put_u64_le(128);
        b.put_u8(0b011); // pruning + prefetch
        b.put_u32_le(0);
        let decoded = Message::decode(b.freeze()).unwrap();
        let Message::Config {
            workers,
            directives,
            ..
        } = decoded
        else {
            panic!("expected Config, got {decoded:?}");
        };
        assert_eq!(directives, NodeDirectives::default());
        assert_eq!(workers[0].read_fault, None);
        assert_eq!((workers[0].start, workers[0].end), (5, 55));
    }

    #[test]
    fn pr5_era_decoder_ignores_new_tails() {
        // Replays PR 5's Config decode loop (records only, trailing
        // bytes never examined) against the current encoder's output:
        // an old node handed a directives tail and a fault-bearing
        // record still reads every field it knows.
        let msg = Message::Config {
            node: 6,
            graph_base: "/data/node6/oriented".into(),
            workers: vec![WorkerConfig {
                start: 3,
                end: 33,
                budget_edges: 16,
                scan_pruning: true,
                backend: IoBackend::Uring,
                io_latency_us: 9,
                read_fault: Some(77),
                codec: Codec::Raw,
            }],
            listing: true,
            directives: NodeDirectives {
                heartbeat_ms: 100,
                fault: NodeFault::Panic,
            },
        };
        let mut buf = msg.encode();
        // -- PR 5 decode loop, verbatim logic --
        assert_eq!(buf.get_u8(), 5);
        assert_eq!(buf.get_u32_le(), 6);
        let graph_base = get_string(&mut buf).unwrap();
        let listing = buf.get_u8() != 0;
        let count = buf.get_u32_le() as usize;
        let mut workers = Vec::new();
        for _ in 0..count {
            let len = buf.get_u16_le() as usize;
            assert!(len >= WorkerConfig::WIRE_LEN);
            let w = WorkerConfig::decode_fields(&mut buf);
            buf.advance(len - WorkerConfig::WIRE_LEN); // skip unknown tail
            workers.push(w);
        }
        // -- end PR 5 loop: remaining bytes (directives) were ignored --
        assert_eq!(graph_base, "/data/node6/oriented");
        assert!(listing);
        assert_eq!((workers[0].start, workers[0].end), (3, 33));
        assert_eq!(workers[0].backend, IoBackend::Uring);
        assert_eq!(workers[0].read_fault, None); // old decoder: unknown field
        assert!(buf.remaining() > 0, "directives tail rides after records");
    }

    #[test]
    fn codec_rides_the_record_tail() {
        // The codec byte round-trips in every fault combination, and
        // the tail stays positional: raw fault-free records are 29
        // bytes (PR 5 byte-identity), raw fault-bearing records 38
        // (PR 7 byte-identity), and a non-raw codec always pays the
        // full 39 — fault tail (presence byte 0 when unset) first,
        // codec byte after.
        for (read_fault, codec, expect_len) in [
            (None, Codec::Raw, 29usize),
            (Some(77), Codec::Raw, 38),
            (None, Codec::DeltaVarint, 39),
            (Some(77), Codec::DeltaVarint, 39),
        ] {
            let cfg = WorkerConfig {
                start: 5,
                end: 500,
                budget_edges: 256,
                scan_pruning: true,
                backend: IoBackend::Prefetch,
                io_latency_us: 3,
                read_fault,
                codec,
            };
            let mut b = BytesMut::new();
            cfg.encode_record(&mut b);
            let encoded = b.freeze();
            assert_eq!(
                encoded.len(),
                2 + expect_len,
                "{read_fault:?} {codec}: record length"
            );
            let mut buf = encoded;
            assert_eq!(WorkerConfig::decode_record(&mut buf).unwrap(), cfg);
        }
    }

    #[test]
    fn pr7_era_decoder_reads_the_fault_through_the_codec_tail() {
        // Replays PR 7's decode loop (known fields + fault tail, then
        // advance whatever remains) against the current encoder: a
        // node that predates the codec field still reads the range,
        // flags and injected fault of a delta-varint record, and
        // treats the codec byte as an unknown tail. The fault tail
        // being emitted with presence byte 0 whenever the codec needs
        // encoding is exactly what keeps the old decoder from
        // misparsing the codec byte as a fault presence flag.
        let cfg = WorkerConfig {
            start: 11,
            end: 111,
            budget_edges: 64,
            scan_pruning: true,
            backend: IoBackend::Uring,
            io_latency_us: 9,
            read_fault: Some(1234),
            codec: Codec::DeltaVarint,
        };
        let mut b = BytesMut::new();
        cfg.encode_record(&mut b);
        let mut buf = b.freeze();
        // -- PR 7 decode loop, verbatim logic --
        let len = buf.get_u16_le() as usize;
        assert!(len >= WorkerConfig::WIRE_LEN);
        let mut w = WorkerConfig::decode_fields(&mut buf);
        let mut rest = len - WorkerConfig::WIRE_LEN;
        if rest >= WorkerConfig::FAULT_TAIL_LEN {
            let present = buf.get_u8() != 0;
            let budget = buf.get_u64_le();
            w.read_fault = present.then_some(budget);
            rest -= WorkerConfig::FAULT_TAIL_LEN;
        }
        buf.advance(rest); // the codec byte, unknown to PR 7
                           // -- end PR 7 loop --
        assert_eq!((w.start, w.end), (11, 111));
        assert_eq!(w.backend, IoBackend::Uring);
        assert_eq!(w.read_fault, Some(1234));
        assert_eq!(w.codec, Codec::Raw, "old decoder: unknown field");
        assert_eq!(buf.remaining(), 0);

        // The fault-free variant too: presence byte 0 must decode as
        // "no fault" on PR 7, not as a truncated tail.
        let mut b = BytesMut::new();
        WorkerConfig {
            read_fault: None,
            ..cfg
        }
        .encode_record(&mut b);
        let mut buf = b.freeze();
        let len = buf.get_u16_le() as usize;
        let mut w = WorkerConfig::decode_fields(&mut buf);
        let mut rest = len - WorkerConfig::WIRE_LEN;
        if rest >= WorkerConfig::FAULT_TAIL_LEN {
            let present = buf.get_u8() != 0;
            let budget = buf.get_u64_le();
            w.read_fault = present.then_some(budget);
            rest -= WorkerConfig::FAULT_TAIL_LEN;
        }
        buf.advance(rest);
        assert_eq!(w.read_fault, None);
    }

    #[test]
    fn unknown_codec_discriminant_degrades_to_raw() {
        // A newer master's third codec: the fault tail plus an
        // unassigned codec byte must decode, with the codec degraded
        // to Raw rather than rejected — the node still writes a
        // replica every engine can read.
        let mut b = BytesMut::new();
        b.put_u16_le((WorkerConfig::WIRE_LEN + 9 + 1) as u16);
        b.put_u64_le(0);
        b.put_u64_le(10);
        b.put_u64_le(4);
        b.put_u8(0b011);
        b.put_u32_le(0);
        b.put_u8(0); // fault tail: absent
        b.put_u64_le(0);
        b.put_u8(250); // unassigned codec discriminant
        let mut buf = b.freeze();
        let cfg = WorkerConfig::decode_record(&mut buf).unwrap();
        assert_eq!(cfg.codec, Codec::Raw);
        assert_eq!(cfg.read_fault, None);
    }

    #[test]
    fn query_round_trips_every_operation() {
        for op in [
            QueryOperation::Count,
            QueryOperation::List { limit: 128 },
            QueryOperation::Clustering,
            QueryOperation::KTruss { k: 4 },
            QueryOperation::Doulion {
                p_ppm: 500_000,
                seed: 42,
                trials: 16,
            },
        ] {
            let msg = Message::Query {
                id: 7,
                graph: "rmat-12".into(),
                op,
                options: QueryOptions {
                    cores: 3,
                    budget_edges: 4096,
                    scan_pruning: true,
                    backend: IoBackend::Mmap,
                    codec: Codec::DeltaVarint,
                    io_latency_us: 50,
                },
            };
            assert_eq!(Message::decode(msg.encode()).unwrap(), msg, "{}", op.name());
        }
    }

    #[test]
    fn query_result_and_error_round_trip() {
        let msg = Message::QueryResult {
            id: 9,
            triangles: 1140,
            value_bits: 0.61f64.to_bits(),
            aux: 0.55f64.to_bits(),
            wall_nanos: 1_234_567,
            workers: (0..3).map(sample_summary).collect(),
            triples: vec![(1, 2, 3), (4, 5, 6)],
        };
        assert_eq!(Message::decode(msg.encode()).unwrap(), msg);
        let msg = Message::QueryError {
            id: 9,
            detail: "unknown graph \"orkut\"".into(),
        };
        assert_eq!(Message::decode(msg.encode()).unwrap(), msg);
    }

    #[test]
    fn stats_round_trip() {
        assert_eq!(
            Message::decode(Message::StatsRequest.encode()).unwrap(),
            Message::StatsRequest
        );
        let msg = Message::StatsResult {
            stats: ServerStats {
                served: 100,
                failed: 3,
                inflight: 2,
                rejected_graphs: 1,
                bytes_read: 1 << 30,
                u32s_decoded: 77,
                admitted_peak: 9000,
                budget_total: 10_000,
                latency_buckets: (0..32).map(|i| i as u64).collect(),
                graphs: vec![
                    CatalogGraphInfo {
                        name: "rmat-12".into(),
                        vertices: 4096,
                        m_star: 30_000,
                    },
                    CatalogGraphInfo {
                        name: "wheel".into(),
                        vertices: 21,
                        m_star: 40,
                    },
                ],
            },
        };
        assert_eq!(Message::decode(msg.encode()).unwrap(), msg);
    }

    #[test]
    fn query_forward_compat_skips_unknown_options_tail() {
        // A future client appends an option to the length-prefixed
        // record; today's server reads the fields it knows and skips
        // the rest — same contract as WorkerConfig records.
        let mut b = BytesMut::new();
        b.put_u8(8); // TAG_QUERY
        b.put_u32_le(5);
        put_string(&mut b, "g");
        QueryOperation::KTruss { k: 3 }.encode(&mut b);
        b.put_u16_le((QueryOptions::WIRE_LEN + 4) as u16);
        b.put_u32_le(2); // cores
        b.put_u64_le(512); // budget
        b.put_u8(0b101); // pruning + mmap
        b.put_u8(1); // delta-varint
        b.put_u32_le(0); // latency
        b.put_slice(b"next"); // the unknown field
        let decoded = Message::decode(b.freeze()).unwrap();
        let Message::Query { options, op, .. } = decoded else {
            panic!("expected Query, got {decoded:?}");
        };
        assert_eq!(op, QueryOperation::KTruss { k: 3 });
        assert_eq!(options.cores, 2);
        assert_eq!(options.backend, IoBackend::Mmap);
        assert_eq!(options.codec, Codec::DeltaVarint);
    }

    #[test]
    fn unknown_operation_kind_rejected() {
        let mut b = BytesMut::new();
        b.put_u8(8); // TAG_QUERY
        b.put_u32_le(0);
        put_string(&mut b, "g");
        b.put_u8(99); // unassigned kind
        b.put_u32_le(0);
        b.put_u64_le(0);
        b.put_u32_le(0);
        QueryOptions::default().encode_record(&mut b);
        let err = Message::decode(b.freeze()).unwrap_err();
        assert!(err.to_string().contains("operation kind"), "{err}");
    }

    #[test]
    fn truncated_query_result_rejected() {
        let msg = Message::QueryResult {
            id: 1,
            triangles: 5,
            value_bits: 0,
            aux: 0,
            wall_nanos: 10,
            workers: vec![sample_summary(0)],
            triples: vec![(1, 2, 3)],
        };
        let enc = msg.encode();
        for cut in [3usize, 20, enc.len() - 5] {
            assert!(Message::decode(enc.slice(0..cut)).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn stats_quantiles_come_from_the_histogram() {
        let mut stats = ServerStats {
            latency_buckets: vec![0; 32],
            ..Default::default()
        };
        assert_eq!(stats.quantile_micros(0.5), 0, "empty histogram");
        // 90 queries in [2^7, 2^8) µs, 10 in [2^10, 2^11) µs.
        stats.latency_buckets[7] = 90;
        stats.latency_buckets[10] = 10;
        assert_eq!(stats.quantile_micros(0.50), 1 << 8);
        assert_eq!(stats.quantile_micros(0.90), 1 << 8);
        assert_eq!(stats.quantile_micros(0.99), 1 << 11);
        assert_eq!(stats.quantile_micros(1.0), 1 << 11);
    }

    #[test]
    fn wire_size_matches_encoding() {
        let msg = Message::Triangles {
            node: 0,
            triples: vec![(1, 2, 3); 100],
        };
        // 1 tag + 4 node + 4 count + 100 * 12
        assert_eq!(msg.wire_size(), 9 + 1200);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Message::decode(Bytes::from_static(&[])).is_err());
        assert!(Message::decode(Bytes::from_static(&[9, 0, 0, 0, 0])).is_err());
    }

    #[test]
    fn empty_collections_round_trip() {
        let msg = Message::Results {
            node: 0,
            workers: vec![],
        };
        assert_eq!(Message::decode(msg.encode()).unwrap(), msg);
        let msg = Message::Triangles {
            node: 0,
            triples: vec![],
        };
        assert_eq!(Message::decode(msg.encode()).unwrap(), msg);
    }
}
